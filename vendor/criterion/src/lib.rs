//! Offline stand-in for `criterion`: a wall-clock timing harness with
//! criterion's group/bench API shape. Each benchmark runs a dedicated
//! warm-up phase (caches, branch predictors, frame pools and the
//! allocator all reach steady state before anything is recorded), then a
//! series of timed samples. Reported statistics follow criterion's
//! shape: sample means pass a Tukey-fence outlier rejection (1.5 × IQR
//! beyond the quartiles — a stray scheduler preemption or page-cache
//! miss must not move the mean), then a deterministic bootstrap
//! resampling of the surviving samples yields a 95 % confidence
//! interval on the mean, so a reader can judge whether a delta clears
//! the run-to-run noise rather than eyeballing a standard deviation.
//!
//! Set `BENCH_JSON_DIR=<dir>` to additionally write one
//! `BENCH_<id>.json` per benchmark with the raw per-sample means, the
//! robust statistics (outlier counts, CI bounds) and the iteration
//! counts — the machine-readable record small (<10 %) regression claims
//! are checked against.

use std::fmt::Display;
use std::path::Path;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

const DEFAULT_SAMPLE_SIZE: usize = 100;
/// Wall-clock spent warming up before any sample is recorded.
const WARMUP_BUDGET: Duration = Duration::from_millis(300);
/// Per-benchmark wall-clock budget for the measured samples; long
/// simulation benches get a handful of samples, short ones the full
/// sample count.
const TIME_BUDGET: Duration = Duration::from_millis(1000);
/// Samples collected per benchmark (each sample times a batch of
/// iterations); the spread across samples is the reported variance.
const SAMPLES: usize = 10;

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size: DEFAULT_SAMPLE_SIZE,
            throughput: None,
            rounds_per_iter: None,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_one(&id, DEFAULT_SAMPLE_SIZE, None, None, f);
        self
    }
}

/// Throughput annotation for a group; folded into the report line.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
    BytesDecimal(u64),
}

/// A named parameter for `bench_with_input`.
pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }

    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId(format!("{}/{}", function_name.into(), parameter))
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

/// A group of related benchmarks sharing sample size and throughput.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    rounds_per_iter: Option<u64>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Declares that one benchmark iteration internally runs `n`
    /// workload rounds (an iterative benchmark like `fig_iter` runs a
    /// whole multi-round job per call). Recorded in the `BENCH_JSON_DIR`
    /// output as `rounds_per_iter` plus the derived `per_round_samples`,
    /// so a per-round claim can be audited against the number of round
    /// executions that actually backed it.
    pub fn rounds_per_iter(&mut self, n: u64) -> &mut Self {
        self.rounds_per_iter = Some(n);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into());
        run_one(&id, self.sample_size, self.throughput, self.rounds_per_iter, f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = format!("{}/{}", self.name, id);
        run_one(&id, self.sample_size, self.throughput, self.rounds_per_iter, |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// Hands the closure-under-test a timer.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` calls of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Robust summary of one benchmark's per-sample means.
#[derive(Debug, Clone, PartialEq)]
pub struct SampleStats {
    /// Mean over the samples that survived outlier rejection.
    pub mean: f64,
    /// Standard deviation over the surviving samples.
    pub sd: f64,
    /// Minimum / maximum over ALL samples (outliers included — the raw
    /// envelope is part of the record even when it doesn't drive the
    /// mean).
    pub min: f64,
    pub max: f64,
    /// Samples kept after the Tukey fence.
    pub kept: usize,
    /// Samples rejected as outliers.
    pub outliers: usize,
    /// Bootstrap 95 % confidence interval on the mean.
    pub ci95_lo: f64,
    pub ci95_hi: f64,
}

/// Linear-interpolated quantile of an ascending-sorted slice.
fn quantile(sorted: &[f64], q: f64) -> f64 {
    let n = sorted.len();
    if n == 1 {
        return sorted[0];
    }
    let pos = q * (n - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

/// Resamples drawn with a fixed-seed xorshift64*, so the CI is a pure
/// function of the samples — reruns of the analysis never disagree.
const BOOTSTRAP_RESAMPLES: usize = 1000;

/// Tukey-fence outlier rejection followed by a deterministic bootstrap
/// CI of the mean. With fewer than 4 samples (no meaningful quartiles)
/// or a zero IQR, every sample is kept.
pub fn analyze(samples: &[f64]) -> SampleStats {
    assert!(!samples.is_empty(), "analyze() needs at least one sample");
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("sample times are finite"));
    let (min, max) = (sorted[0], sorted[sorted.len() - 1]);

    let kept: Vec<f64> = if sorted.len() >= 4 {
        let q1 = quantile(&sorted, 0.25);
        let q3 = quantile(&sorted, 0.75);
        let iqr = q3 - q1;
        if iqr > 0.0 {
            let (lo, hi) = (q1 - 1.5 * iqr, q3 + 1.5 * iqr);
            let inliers: Vec<f64> =
                sorted.iter().copied().filter(|&s| s >= lo && s <= hi).collect();
            if inliers.len() >= 2 { inliers } else { sorted.clone() }
        } else {
            sorted.clone()
        }
    } else {
        sorted.clone()
    };

    let n = kept.len() as f64;
    let mean = kept.iter().sum::<f64>() / n;
    let sd = if kept.len() > 1 {
        (kept.iter().map(|m| (m - mean) * (m - mean)).sum::<f64>() / (n - 1.0)).sqrt()
    } else {
        0.0
    };

    // Percentile bootstrap over the inliers. xorshift64* with a fixed
    // seed: statistically ample for index draws, and fully reproducible.
    let mut state: u64 = 0x5EED_CAFE_F00D_D1CE;
    let mut draw = |bound: usize| -> usize {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        (state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 33) as usize % bound
    };
    let mut means = Vec::with_capacity(BOOTSTRAP_RESAMPLES);
    for _ in 0..BOOTSTRAP_RESAMPLES {
        let sum: f64 = (0..kept.len()).map(|_| kept[draw(kept.len())]).sum();
        means.push(sum / n);
    }
    means.sort_by(|a, b| a.partial_cmp(b).expect("means of finite samples are finite"));
    let ci95_lo = quantile(&means, 0.025);
    let ci95_hi = quantile(&means, 0.975);

    SampleStats { mean, sd, min, max, kept: kept.len(), outliers: samples.len() - kept.len(), ci95_lo, ci95_hi }
}

fn run_one<F: FnMut(&mut Bencher)>(
    id: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    rounds_per_iter: Option<u64>,
    mut f: F,
) {
    // Calibration: one iteration to estimate the per-iter cost.
    let mut bencher = Bencher { iters: 1, elapsed: Duration::ZERO };
    f(&mut bencher);
    let per_iter = bencher.elapsed.max(Duration::from_nanos(1));

    // Warm-up: run (unrecorded) until the warm-up budget is spent, so the
    // first sample does not pay cold-cache/cold-pool costs.
    let warm_iters = (WARMUP_BUDGET.as_nanos() / per_iter.as_nanos()).clamp(1, 10_000) as u64;
    let mut bencher = Bencher { iters: warm_iters, elapsed: Duration::ZERO };
    f(&mut bencher);
    let per_iter = (bencher.elapsed / warm_iters as u32).max(Duration::from_nanos(1));

    // Measurement: SAMPLES batches of `iters_per_sample` iterations; the
    // spread across batch means is the reported noise.
    let budgeted = (TIME_BUDGET.as_nanos() / per_iter.as_nanos()).max(1) as u64;
    let total_iters = budgeted.min(sample_size as u64).max(SAMPLES as u64);
    let iters_per_sample = (total_iters / SAMPLES as u64).max(1);
    let mut sample_means: Vec<f64> = Vec::with_capacity(SAMPLES);
    for _ in 0..SAMPLES {
        let mut bencher = Bencher { iters: iters_per_sample, elapsed: Duration::ZERO };
        f(&mut bencher);
        sample_means.push(bencher.elapsed.as_secs_f64() / iters_per_sample as f64);
    }
    let stats = analyze(&sample_means);

    let rate = match throughput {
        Some(Throughput::Elements(n)) => {
            format!("  thrpt: {}/s", si(n as f64 / stats.mean, "elem"))
        }
        Some(Throughput::Bytes(n)) | Some(Throughput::BytesDecimal(n)) => {
            format!("  thrpt: {}/s", si(n as f64 / stats.mean, "B"))
        }
        None => String::new(),
    };
    let outliers = if stats.outliers > 0 {
        format!("  ({} outlier{} rejected)", stats.outliers, if stats.outliers == 1 { "" } else { "s" })
    } else {
        String::new()
    };
    println!(
        "{id:<60} time: {:>12} ± {:<10} ci95 [{} .. {}] ({SAMPLES}x{iters_per_sample} iters){rate}{outliers}",
        fmt_time(stats.mean),
        fmt_time(stats.sd),
        fmt_time(stats.ci95_lo),
        fmt_time(stats.ci95_hi),
    );

    if let Ok(dir) = std::env::var("BENCH_JSON_DIR") {
        if let Err(e) = write_json_record(
            Path::new(&dir),
            id,
            &sample_means,
            warm_iters,
            iters_per_sample,
            rounds_per_iter,
        ) {
            eprintln!("criterion shim: could not write BENCH json for {id}: {e}");
        }
    }
}

/// Serializes one benchmark's raw measurements to
/// `<dir>/BENCH_<sanitized id>.json`: the per-sample means (seconds),
/// the robust statistics (`mean_s`/`sd_s` are computed after outlier
/// rejection; `min_s`/`max_s` span ALL samples; `ci95_lo_s`/`ci95_hi_s`
/// bound the bootstrap CI), and the warm-up and per-sample iteration
/// counts — everything needed to audit a small-regression claim after
/// the fact.
fn write_json_record(
    dir: &Path,
    id: &str,
    sample_means: &[f64],
    warmup_iters: u64,
    iters_per_sample: u64,
    rounds_per_iter: Option<u64>,
) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    let stats = analyze(sample_means);
    let samples: Vec<String> = sample_means.iter().map(|s| format!("{s:e}")).collect();
    let sanitized: String = id
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect();
    // Iterative benchmarks (rounds_per_iter set) additionally record how
    // many per-round executions back each reported number.
    let rounds = rounds_per_iter.map_or(String::new(), |n| {
        format!(
            "  \"rounds_per_iter\": {},\n  \"per_round_samples\": {},\n",
            n,
            n * iters_per_sample * sample_means.len() as u64,
        )
    });
    let json = format!(
        "{{\n  \"id\": \"{}\",\n  \"mean_s\": {:e},\n  \"sd_s\": {:e},\n  \
         \"min_s\": {:e},\n  \"max_s\": {:e},\n  \"ci95_lo_s\": {:e},\n  \
         \"ci95_hi_s\": {:e},\n  \"sample_count\": {},\n  \"kept_samples\": {},\n  \
         \"outliers_rejected\": {},\n  \
         \"iters_per_sample\": {},\n  \"warmup_iters\": {},\n{}  \"samples_s\": [{}]\n}}\n",
        id.replace('\\', "\\\\").replace('"', "\\\""),
        stats.mean,
        stats.sd,
        stats.min,
        stats.max,
        stats.ci95_lo,
        stats.ci95_hi,
        sample_means.len(),
        stats.kept,
        stats.outliers,
        iters_per_sample,
        warmup_iters,
        rounds,
        samples.join(", "),
    );
    std::fs::write(dir.join(format!("BENCH_{sanitized}.json")), json)
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.2} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.2} s")
    }
}

fn si(rate: f64, unit: &str) -> String {
    if rate >= 1e9 {
        format!("{:.2} G{unit}", rate / 1e9)
    } else if rate >= 1e6 {
        format!("{:.2} M{unit}", rate / 1e6)
    } else if rate >= 1e3 {
        format!("{:.2} K{unit}", rate / 1e3)
    } else {
        format!("{rate:.2} {unit}")
    }
}

/// Builds the group-runner function the way criterion's plain form does.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $(
                $target(&mut criterion);
            )+
        }
    };
}

/// Entry point running each group in sequence.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $(
                $group();
            )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(5);
        group.throughput(Throughput::Elements(10));
        let mut runs = 0u32;
        group.bench_function("noop", |b| {
            runs += 1;
            b.iter(|| black_box(1 + 1))
        });
        group.bench_with_input(BenchmarkId::from_parameter(42), &42u32, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        group.finish();
        assert!(runs >= 2, "calibration + measurement passes expected");
    }

    #[test]
    fn json_record_round_trips_the_measurements() {
        let dir = std::env::temp_dir().join(format!("criterion-shim-test-{}", std::process::id()));
        let samples = [1.5e-3, 2.0e-3, 1.0e-3];
        write_json_record(&dir, "group/bench: odd\"id\"", &samples, 7, 42, None).unwrap();
        let path = dir.join("BENCH_group_bench__odd_id_.json");
        let text = std::fs::read_to_string(&path).unwrap();
        // Raw samples, min/max and iteration counts are all recorded.
        assert!(text.contains("\"sample_count\": 3"), "{text}");
        assert!(text.contains("\"iters_per_sample\": 42"));
        assert!(text.contains("\"warmup_iters\": 7"));
        assert!(text.contains("\"min_s\": 1e-3"));
        assert!(text.contains("\"max_s\": 2e-3"));
        assert!(text.contains("\"samples_s\": [1.5e-3, 2e-3, 1e-3]"));
        // The id survives escaping.
        assert!(text.contains("odd\\\"id\\\""));
        // Non-iterative benchmarks carry no per-round fields.
        assert!(!text.contains("rounds_per_iter"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Iterative benchmarks (`rounds_per_iter` declared on the group)
    /// record how many per-round executions back each number — the
    /// audit trail for a "median over interleaved rounds" claim.
    #[test]
    fn json_record_carries_per_round_sample_counts() {
        let dir = std::env::temp_dir()
            .join(format!("criterion-shim-rounds-{}", std::process::id()));
        let samples = [1.0e-3, 2.0e-3];
        write_json_record(&dir, "fig_iter/x", &samples, 3, 4, Some(10)).unwrap();
        let text =
            std::fs::read_to_string(dir.join("BENCH_fig_iter_x.json")).unwrap();
        assert!(text.contains("\"rounds_per_iter\": 10"), "{text}");
        // 2 samples × 4 iters × 10 rounds = 80 round executions.
        assert!(text.contains("\"per_round_samples\": 80"), "{text}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// A lone scheduler-preemption-sized spike in an otherwise tight
    /// cluster must be fenced out: the mean stays on the cluster and the
    /// CI never stretches toward the spike.
    #[test]
    fn outlier_rejection_fences_a_spike() {
        let samples = [1.00e-3, 1.02e-3, 0.99e-3, 1.01e-3, 1.00e-3, 1.03e-3, 0.98e-3, 9.0e-3];
        let stats = analyze(&samples);
        assert_eq!(stats.outliers, 1, "{stats:?}");
        assert_eq!(stats.kept, 7);
        assert!(stats.mean < 1.1e-3, "mean dragged by the spike: {stats:?}");
        assert!(stats.ci95_hi < 1.1e-3, "CI dragged by the spike: {stats:?}");
        // The raw envelope still records the spike.
        assert_eq!(stats.max, 9.0e-3);
    }

    /// Clean synthetic noise: nothing rejected, the CI brackets the true
    /// mean and is narrower than the full sample spread.
    #[test]
    fn bootstrap_ci_brackets_the_mean_of_clean_noise() {
        // Symmetric noise around 2 ms, no outliers by construction.
        let samples: Vec<f64> =
            (0..20).map(|i| 2.0e-3 + ((i % 7) as f64 - 3.0) * 1e-5).collect();
        let stats = analyze(&samples);
        assert_eq!(stats.outliers, 0);
        assert!(stats.ci95_lo <= stats.mean && stats.mean <= stats.ci95_hi, "{stats:?}");
        assert!(stats.ci95_hi - stats.ci95_lo < stats.max - stats.min, "{stats:?}");
    }

    /// The bootstrap is seeded, so the analysis is a pure function of
    /// the samples — two runs can never disagree about a CI.
    #[test]
    fn analysis_is_deterministic() {
        let samples = [1.0e-3, 1.5e-3, 2.0e-3, 1.2e-3, 1.7e-3, 1.4e-3];
        assert_eq!(analyze(&samples), analyze(&samples));
    }

    /// Degenerate inputs: identical samples (zero IQR) keep everything
    /// and collapse the CI; tiny sample counts skip the fence entirely.
    #[test]
    fn degenerate_samples_are_kept_whole() {
        let flat = analyze(&[5.0e-3; 6]);
        assert_eq!(flat.outliers, 0);
        assert_eq!(flat.mean, 5.0e-3);
        assert_eq!((flat.ci95_lo, flat.ci95_hi), (5.0e-3, 5.0e-3));

        let tiny = analyze(&[1.0e-3, 8.0e-3, 1.1e-3]);
        assert_eq!(tiny.outliers, 0, "3 samples have no meaningful quartiles");
        assert_eq!(tiny.kept, 3);
    }

    /// The JSON record carries the robust statistics alongside the raw
    /// samples, so a regression check can re-derive everything.
    #[test]
    fn json_record_carries_robust_statistics() {
        let dir =
            std::env::temp_dir().join(format!("criterion-shim-stats-{}", std::process::id()));
        let samples = [1.00e-3, 1.02e-3, 0.99e-3, 1.01e-3, 1.00e-3, 1.03e-3, 0.98e-3, 9.0e-3];
        write_json_record(&dir, "robust/x", &samples, 3, 4, None).unwrap();
        let text = std::fs::read_to_string(dir.join("BENCH_robust_x.json")).unwrap();
        assert!(text.contains("\"outliers_rejected\": 1"), "{text}");
        assert!(text.contains("\"kept_samples\": 7"), "{text}");
        assert!(text.contains("\"ci95_lo_s\":"), "{text}");
        assert!(text.contains("\"ci95_hi_s\":"), "{text}");
        // max_s still spans the rejected spike.
        assert!(text.contains("\"max_s\": 9e-3"), "{text}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn time_formatting() {
        assert!(fmt_time(2.5e-9).ends_with("ns"));
        assert!(fmt_time(2.5e-6).ends_with("µs"));
        assert!(fmt_time(2.5e-3).ends_with("ms"));
        assert!(fmt_time(2.5).ends_with('s'));
    }
}
