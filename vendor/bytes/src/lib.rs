//! Offline stand-in for the `bytes` crate: an immutable, cheaply clonable
//! byte buffer. Only the surface this workspace uses is implemented; see
//! `vendor/README.md`.

use std::borrow::Borrow;
use std::fmt;
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// A cheaply clonable, immutable slice of bytes (reference-counted).
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Creates an empty `Bytes`.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Creates `Bytes` from a static slice (copied once; the real crate
    /// borrows, but callers only rely on the signature).
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes::from(bytes.to_vec())
    }

    /// Length of the view.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A sub-view sharing the same allocation.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of bounds");
        Bytes { data: Arc::clone(&self.data), start: self.start + lo, end: self.start + hi }
    }

    /// Copies the view into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let data: Arc<[u8]> = Arc::from(v);
        let end = data.len();
        Bytes { data, start: 0, end }
    }
}

impl From<Box<[u8]>> for Bytes {
    fn from(v: Box<[u8]>) -> Self {
        Bytes::from(v.into_vec())
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Self {
        Bytes::from(v.to_vec())
    }
}

impl From<&'static str> for Bytes {
    fn from(v: &'static str) -> Self {
        Bytes::from(v.as_bytes().to_vec())
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<T: IntoIterator<Item = u8>>(iter: T) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_ref().iter()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_ref() == other.as_ref()
    }
}
impl Eq for Bytes {}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_ref().cmp(other.as_ref())
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_ref().hash(state);
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_ref() == other
    }
}
impl PartialEq<Bytes> for [u8] {
    fn eq(&self, other: &Bytes) -> bool {
        self == other.as_ref()
    }
}
impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_ref() == other.as_slice()
    }
}
impl PartialEq<Bytes> for Vec<u8> {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_ref()
    }
}
impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_ref() == *other
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_ref() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_shares_and_bounds() {
        let b = Bytes::from(vec![1u8, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(&s[..], &[2, 3, 4]);
        assert_eq!(s.slice(..).len(), 3);
        assert_eq!(b.len(), 5);
    }

    #[test]
    fn equality_against_vecs_and_slices() {
        let b = Bytes::from(vec![9u8, 8]);
        assert_eq!(b, vec![9u8, 8]);
        assert_eq!(b, [9u8, 8][..]);
        assert!(b == vec![9u8, 8]);
    }

    #[test]
    fn empty_and_static() {
        assert!(Bytes::new().is_empty());
        assert_eq!(Bytes::from_static(b"hi").to_vec(), b"hi");
    }
}
