//! Offline stand-in for the `rand` crate exposing the 0.9-style API this
//! workspace uses: `SeedableRng::seed_from_u64`, `rngs::SmallRng`, and
//! `Rng::{random, random_range, random_bool}`.
//!
//! The generator is xoshiro256++ seeded through splitmix64 — deterministic
//! per seed, statistically solid for simulation, but a *different stream*
//! from crates.io `rand`. Nothing in the workspace asserts golden random
//! values; everything asserts properties of the outputs.

use std::ops::{Range, RangeInclusive};

/// Core generator interface: a source of uniform 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

/// Seeding interface; only `seed_from_u64` is used by this workspace.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// High-level sampling methods, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    /// A uniform value of a `Standard`-distributed type.
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::standard(self)
    }

    /// A uniform value in the given range (half-open or inclusive).
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        self.random::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types with a canonical uniform distribution over the full domain
/// (integers) or `[0, 1)` (floats).
pub trait Standard: Sized {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}
impl Standard for i128 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        u128::standard(rng) as i128
    }
}

impl Standard for bool {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Types over which uniform range sampling is defined. The blanket
/// `SampleRange` impls below mirror crates.io rand's shape so type
/// inference at call sites behaves identically.
pub trait SampleUniform: Sized + PartialOrd {
    fn sample_between<R: RngCore + ?Sized>(lo: Self, hi: Self, inclusive: bool, rng: &mut R) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(lo: Self, hi: Self, inclusive: bool, rng: &mut R) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + inclusive as u128;
                assert!(span > 0, "empty range");
                let offset = (u128::standard(rng) % span) as i128;
                (lo as i128 + offset) as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(lo: Self, hi: Self, _inclusive: bool, rng: &mut R) -> Self {
                assert!(lo <= hi, "empty range");
                lo + (<$t>::standard(rng)) * (hi - lo)
            }
        }
    )*};
}
impl_sample_uniform_float!(f32, f64);

/// Ranges that can produce a uniform sample.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "empty range");
        T::sample_between(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "empty range");
        T::sample_between(lo, hi, true, rng)
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the same family the real `SmallRng` uses on 64-bit
    /// targets. Deterministic for a given seed.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.random::<u64>(), c.random::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: u8 = rng.random_range(0..26u8);
            assert!(x < 26);
            let y = rng.random_range(4..=12usize);
            assert!((4..=12).contains(&y));
            let f: f64 = rng.random_range(-2.0..2.0);
            assert!((-2.0..2.0).contains(&f));
            let i = rng.random_range(-100i32..100);
            assert!((-100..100).contains(&i));
        }
    }

    #[test]
    fn unit_floats_cover_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut lo = false;
        let mut hi = false;
        for _ in 0..10_000 {
            let f: f64 = rng.random();
            assert!((0.0..1.0).contains(&f));
            lo |= f < 0.1;
            hi |= f > 0.9;
        }
        assert!(lo && hi, "unit floats never reached the interval edges");
    }

    #[test]
    fn random_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(5);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "p=0.25 gave {hits}/10000");
    }
}
