//! The subset of `proptest::prelude` this workspace uses.

pub use crate::{any, prop, Arbitrary, ProptestConfig, Strategy};
pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
