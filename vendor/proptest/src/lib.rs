//! Offline stand-in for `proptest`: the `proptest!` macro, a `Strategy`
//! trait with the combinators this workspace uses (ranges, tuples, `any`,
//! `prop::collection::vec`, `prop::sample::select`, `prop_map`), and a
//! deterministic case runner.
//!
//! Differences from crates.io proptest, by design:
//!
//! * **No shrinking.** A failing case reports the generated inputs verbatim.
//! * **Deterministic.** Case `i` of every test derives its RNG from `i`
//!   (plus the optional `PROPTEST_RNG_SEED` env var), so failures reproduce
//!   exactly across runs and machines.

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};

pub mod prelude;

/// Per-case RNG handed to strategies.
pub struct TestRng(SmallRng);

impl TestRng {
    fn for_case(global_seed: u64, case: u64) -> Self {
        TestRng(SmallRng::seed_from_u64(
            global_seed ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        ))
    }

    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// Runner configuration. Only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A generator of values of `Self::Value`.
pub trait Strategy {
    type Value: Debug;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { source: self, map: f }
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    map: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.map)(self.source.generate(rng))
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Debug + Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite, sign-symmetric, wide dynamic range.
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let exp = (rng.next_u64() % 61) as i32 - 30;
        (unit - 0.5) * 2f64.powi(exp)
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        f64::arbitrary(rng) as f32
    }
}

/// Strategy returned by [`any`].
pub struct Any<A>(std::marker::PhantomData<A>);

/// The canonical strategy for `A`.
pub fn any<A: Arbitrary>() -> Any<A> {
    Any(std::marker::PhantomData)
}

impl<A: Arbitrary> Strategy for Any<A> {
    type Value = A;
    fn generate(&self, rng: &mut TestRng) -> A {
        A::arbitrary(rng)
    }
}

macro_rules! impl_strategy_for_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.0.random_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.0.random_range(self.clone())
            }
        }
    )*};
}
impl_strategy_for_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_strategy_for_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}
impl_strategy_for_tuple!(A: 0);
impl_strategy_for_tuple!(A: 0, B: 1);
impl_strategy_for_tuple!(A: 0, B: 1, C: 2);
impl_strategy_for_tuple!(A: 0, B: 1, C: 2, D: 3);

/// Size bound for collection strategies.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi_inclusive: n }
    }
}
impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange { lo: r.start, hi_inclusive: r.end - 1 }
    }
}
impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange { lo: *r.start(), hi_inclusive: *r.end() }
    }
}

pub mod collection {
    use super::*;

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.0.random_range(self.size.lo..=self.size.hi_inclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod sample {
    use super::*;

    /// Strategy drawing uniformly from a fixed set of values.
    pub struct Select<T>(Vec<T>);

    pub fn select<T: Clone + Debug>(values: &[T]) -> Select<T> {
        assert!(!values.is_empty(), "select over an empty set");
        Select(values.to_vec())
    }

    impl<T: Clone + Debug> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0[rng.0.random_range(0..self.0.len())].clone()
        }
    }
}

/// `prop::…` paths as used at call sites (`prop::collection::vec`, …).
pub mod prop {
    pub use crate::collection;
    pub use crate::sample;
}

fn global_seed() -> u64 {
    std::env::var("PROPTEST_RNG_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xDA1E_7000_0000_0001)
}

/// Drives `body` for `config.cases` cases. On panic, reports the case
/// number and the generated inputs, then propagates the panic.
pub fn run_cases<F>(config: &ProptestConfig, mut body: F)
where
    F: FnMut(&mut TestRng, &mut Vec<String>),
{
    let seed = global_seed();
    for case in 0..config.cases {
        let mut rng = TestRng::for_case(seed, case as u64);
        let mut inputs = Vec::new();
        let result = catch_unwind(AssertUnwindSafe(|| body(&mut rng, &mut inputs)));
        if let Err(panic) = result {
            eprintln!(
                "proptest case {case}/{} failed (PROPTEST_RNG_SEED={seed}) with inputs:",
                config.cases
            );
            for line in &inputs {
                eprintln!("    {line}");
            }
            resume_unwind(panic);
        }
    }
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            panic!("prop_assert failed: {}", stringify!($cond));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            panic!($($fmt)*);
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            panic!(
                "prop_assert_eq failed: `{}` != `{}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            );
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            panic!($($fmt)*);
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            panic!(
                "prop_assert_ne failed: both sides equal\n value: {:?}",
                l
            );
        }
    }};
}

/// The `proptest!` block macro: an optional `#![proptest_config(..)]`
/// followed by `#[test]` functions whose parameters are either
/// `name in strategy` or `name: Type` (shorthand for `any::<Type>()`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@funcs ($config) $($rest)*);
    };
    (@funcs ($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($params:tt)*) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $config;
                $crate::run_cases(&config, |__proptest_rng, __proptest_inputs| {
                    $crate::proptest!(@bind __proptest_rng, __proptest_inputs, $($params)*);
                    $body
                });
            }
        )*
    };
    (@bind $rng:ident, $inputs:ident $(,)?) => {};
    (@bind $rng:ident, $inputs:ident, $name:ident in $strat:expr) => {
        $crate::proptest!(@one $rng, $inputs, $name, $strat);
    };
    (@bind $rng:ident, $inputs:ident, $name:ident in $strat:expr, $($rest:tt)*) => {
        $crate::proptest!(@one $rng, $inputs, $name, $strat);
        $crate::proptest!(@bind $rng, $inputs, $($rest)*);
    };
    (@bind $rng:ident, $inputs:ident, $name:ident: $ty:ty) => {
        $crate::proptest!(@one $rng, $inputs, $name, $crate::any::<$ty>());
    };
    (@bind $rng:ident, $inputs:ident, $name:ident: $ty:ty, $($rest:tt)*) => {
        $crate::proptest!(@one $rng, $inputs, $name, $crate::any::<$ty>());
        $crate::proptest!(@bind $rng, $inputs, $($rest)*);
    };
    (@one $rng:ident, $inputs:ident, $name:ident, $strat:expr) => {
        let $name = $crate::Strategy::generate(&$strat, $rng);
        $inputs.push(format!("{} = {:?}", stringify!($name), $name));
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@funcs ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn evens() -> impl Strategy<Value = u32> {
        (0u32..1000).prop_map(|x| x * 2)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn mapped_strategy_applies(x in evens()) {
            prop_assert!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn mixed_params(a in 1u8..10, b: u32, flag: bool) {
            prop_assert!((1..10).contains(&a));
            let _ = (b, flag);
        }

        #[test]
        fn vec_and_select(
            v in prop::collection::vec(any::<u8>(), 0..=16),
            pick in prop::sample::select(&[3u8, 5, 7][..]),
        ) {
            prop_assert!(v.len() <= 16);
            prop_assert!([3, 5, 7].contains(&pick));
        }

        #[test]
        fn tuples_compose(pair in (0u8..4, 10u32..20).prop_map(|(a, b)| (b, a))) {
            prop_assert!(pair.0 >= 10 && pair.1 < 4);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let mut first = Vec::new();
        let mut second = Vec::new();
        for out in [&mut first, &mut second] {
            crate::run_cases(&ProptestConfig::with_cases(8), |rng, _| {
                out.push(<u64 as crate::Arbitrary>::arbitrary(rng));
            });
        }
        assert_eq!(first, second);
    }
}
