//! Offline stand-in for `proptest`: the `proptest!` macro, a `Strategy`
//! trait with the combinators this workspace uses (ranges, tuples, `any`,
//! `prop::collection::vec`, `prop::sample::select`, `prop_map`), and a
//! deterministic case runner with basic shrinking.
//!
//! Differences from crates.io proptest, by design:
//!
//! * **Basic shrinking only.** On failure the runner greedily applies
//!   halving / shrink-to-zero candidates (integers halve toward their
//!   lower bound, vectors halve their length, tuples shrink one component
//!   at a time) and reports both the original and the minimized inputs.
//!   `prop_map`ped and `select`ed strategies do not shrink (no inverse).
//! * **Deterministic.** Case `i` of every test derives its RNG from `i`
//!   (plus the optional `PROPTEST_RNG_SEED` env var), so failures reproduce
//!   exactly across runs and machines.

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};
use std::panic::{catch_unwind, AssertUnwindSafe};

use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};

pub mod prelude;

/// Per-case RNG handed to strategies.
pub struct TestRng(SmallRng);

impl TestRng {
    fn for_case(global_seed: u64, case: u64) -> Self {
        TestRng(SmallRng::seed_from_u64(
            global_seed ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        ))
    }

    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// Runner configuration. Only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A generator of values of `Self::Value`.
pub trait Strategy {
    type Value: Debug + Clone;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Shrink candidates for a failing `value`, most aggressive first.
    /// An empty list means the value is fully minimized (or the strategy
    /// cannot shrink). Candidates must be *smaller* by some measure that
    /// reaches a fixpoint, or the runner's shrink budget cuts the search.
    fn shrink(&self, _value: &Self::Value) -> Vec<Self::Value> {
        Vec::new()
    }

    /// Maps generated values through `f`.
    fn prop_map<O: Debug + Clone, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { source: self, map: f }
    }
}

/// Strategy produced by [`Strategy::prop_map`]. Does not shrink (the
/// mapping cannot be inverted).
pub struct Map<S, F> {
    source: S,
    map: F,
}

impl<S: Strategy, O: Debug + Clone, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.map)(self.source.generate(rng))
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Debug + Clone + Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;

    /// Shrink candidates (see [`Strategy::shrink`]).
    fn shrink(&self) -> Vec<Self> {
        Vec::new()
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
            fn shrink(&self) -> Vec<Self> {
                let mut out = Vec::new();
                if *self != 0 {
                    out.push(0);
                    let half = *self / 2;
                    if half != 0 {
                        out.push(half);
                    }
                }
                out
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
    fn shrink(&self) -> Vec<Self> {
        if *self { vec![false] } else { Vec::new() }
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite, sign-symmetric, wide dynamic range.
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let exp = (rng.next_u64() % 61) as i32 - 30;
        (unit - 0.5) * 2f64.powi(exp)
    }
    fn shrink(&self) -> Vec<Self> {
        if *self != 0.0 { vec![0.0] } else { Vec::new() }
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        f64::arbitrary(rng) as f32
    }
    fn shrink(&self) -> Vec<Self> {
        if *self != 0.0 { vec![0.0] } else { Vec::new() }
    }
}

/// Strategy returned by [`any`].
pub struct Any<A>(std::marker::PhantomData<A>);

/// The canonical strategy for `A`.
pub fn any<A: Arbitrary>() -> Any<A> {
    Any(std::marker::PhantomData)
}

impl<A: Arbitrary> Strategy for Any<A> {
    type Value = A;
    fn generate(&self, rng: &mut TestRng) -> A {
        A::arbitrary(rng)
    }
    fn shrink(&self, value: &A) -> Vec<A> {
        value.shrink()
    }
}

/// Halving shrink toward the range's lower bound: try the bound itself,
/// then the midpoint between bound and value. Arithmetic runs in `i128`
/// so signed ranges spanning zero cannot overflow.
macro_rules! int_range_shrink {
    ($t:ty, $lo:expr, $value:expr) => {{
        let (lo, v) = ($lo, $value);
        let mut out = Vec::new();
        if v != lo {
            out.push(lo);
            let mid = ((lo as i128) + ((v as i128 - lo as i128) / 2)) as $t;
            if mid != lo && mid != v {
                out.push(mid);
            }
        }
        out
    }};
}

macro_rules! impl_strategy_for_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.0.random_range(self.clone())
            }
            fn shrink(&self, value: &$t) -> Vec<$t> {
                int_range_shrink!($t, self.start, *value)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.0.random_range(self.clone())
            }
            fn shrink(&self, value: &$t) -> Vec<$t> {
                int_range_shrink!($t, *self.start(), *value)
            }
        }
    )*};
}
impl_strategy_for_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_strategy_for_float_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.0.random_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.0.random_range(self.clone())
            }
        }
    )*};
}
impl_strategy_for_float_range!(f32, f64);

macro_rules! impl_strategy_for_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                let mut out = Vec::new();
                $(
                    for candidate in self.$idx.shrink(&value.$idx) {
                        let mut v = value.clone();
                        v.$idx = candidate;
                        out.push(v);
                    }
                )+
                out
            }
        }
    };
}
impl_strategy_for_tuple!(A: 0);
impl_strategy_for_tuple!(A: 0, B: 1);
impl_strategy_for_tuple!(A: 0, B: 1, C: 2);
impl_strategy_for_tuple!(A: 0, B: 1, C: 2, D: 3);
impl_strategy_for_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_strategy_for_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4, G: 5);

/// Size bound for collection strategies.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi_inclusive: n }
    }
}
impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange { lo: r.start, hi_inclusive: r.end - 1 }
    }
}
impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange { lo: *r.start(), hi_inclusive: *r.end() }
    }
}

pub mod collection {
    use super::*;

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.0.random_range(self.size.lo..=self.size.hi_inclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
        /// Length shrinking: empty (or the minimum length), half, one
        /// less — never below the strategy's lower size bound.
        fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
            let mut out = Vec::new();
            let len = value.len();
            if len > self.size.lo {
                out.push(value[..self.size.lo].to_vec());
                let half = self.size.lo + (len - self.size.lo) / 2;
                if half != self.size.lo && half != len {
                    out.push(value[..half].to_vec());
                }
                if len - 1 != self.size.lo && len - 1 != half {
                    out.push(value[..len - 1].to_vec());
                }
            }
            out
        }
    }
}

pub mod sample {
    use super::*;

    /// Strategy drawing uniformly from a fixed set of values. Does not
    /// shrink (no order is assumed among the samples).
    pub struct Select<T>(Vec<T>);

    pub fn select<T: Clone + Debug>(values: &[T]) -> Select<T> {
        assert!(!values.is_empty(), "select over an empty set");
        Select(values.to_vec())
    }

    impl<T: Clone + Debug> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0[rng.0.random_range(0..self.0.len())].clone()
        }
    }
}

/// `prop::…` paths as used at call sites (`prop::collection::vec`, …).
pub mod prop {
    pub use crate::collection;
    pub use crate::sample;
}

fn global_seed() -> u64 {
    std::env::var("PROPTEST_RNG_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xDA1E_7000_0000_0001)
}

/// Cap on property re-executions spent minimizing one failure.
const SHRINK_BUDGET: usize = 512;

fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Drives `body` for `config.cases` cases over values drawn from
/// `strategy`. On failure the input is greedily minimized with
/// [`Strategy::shrink`] and the run panics with both the original and the
/// minimized counterexample.
pub fn run_cases<S: Strategy>(config: &ProptestConfig, strategy: &S, body: impl Fn(S::Value)) {
    let seed = global_seed();
    for case in 0..config.cases {
        let mut rng = TestRng::for_case(seed, case as u64);
        let value = strategy.generate(&mut rng);
        let fails = |v: &S::Value| {
            catch_unwind(AssertUnwindSafe(|| body(v.clone()))).err()
        };
        let Some(first_panic) = fails(&value) else { continue };

        // Greedy shrink: adopt the first failing candidate, repeat until
        // no candidate fails (or the budget runs out).
        let original = format!("{value:?}");
        let mut current = value;
        let mut last_panic = first_panic;
        let mut runs = 0usize;
        'shrinking: loop {
            for candidate in strategy.shrink(&current) {
                runs += 1;
                if runs > SHRINK_BUDGET {
                    break 'shrinking;
                }
                if let Some(panic) = fails(&candidate) {
                    current = candidate;
                    last_panic = panic;
                    continue 'shrinking;
                }
            }
            break;
        }

        eprintln!(
            "proptest case {case}/{} failed (PROPTEST_RNG_SEED={seed})\n  original:  {original}\n  minimized: {current:?}",
            config.cases,
        );
        panic!(
            "proptest case {case} failed; minimized input: {current:?} (original: {original}); panic: {}",
            panic_text(last_panic.as_ref()),
        );
    }
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            panic!("prop_assert failed: {}", stringify!($cond));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            panic!($($fmt)*);
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            panic!(
                "prop_assert_eq failed: `{}` != `{}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            );
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            panic!($($fmt)*);
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            panic!(
                "prop_assert_ne failed: both sides equal\n value: {:?}",
                l
            );
        }
    }};
}

/// The `proptest!` block macro: an optional `#![proptest_config(..)]`
/// followed by `#[test]` functions whose parameters are either
/// `name in strategy` or `name: Type` (shorthand for `any::<Type>()`).
/// All parameter strategies are packed into one tuple strategy so the
/// runner can shrink failing inputs component-wise.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@funcs ($config) $($rest)*);
    };
    (@funcs ($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($params:tt)*) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $config;
                $crate::proptest!(@acc config, [] [] ($($params)*) $body);
            }
        )*
    };
    // Accumulate `name in strategy` / `name: Type` parameters into a
    // name list and a parenthesized-strategy list, then run.
    (@acc $config:ident, [$($n:ident)*] [$(($s:expr))*] ($name:ident in $strat:expr, $($rest:tt)*) $body:block) => {
        $crate::proptest!(@acc $config, [$($n)* $name] [$(($s))* ($strat)] ($($rest)*) $body)
    };
    (@acc $config:ident, [$($n:ident)*] [$(($s:expr))*] ($name:ident in $strat:expr) $body:block) => {
        $crate::proptest!(@acc $config, [$($n)* $name] [$(($s))* ($strat)] () $body)
    };
    (@acc $config:ident, [$($n:ident)*] [$(($s:expr))*] ($name:ident : $ty:ty, $($rest:tt)*) $body:block) => {
        $crate::proptest!(@acc $config, [$($n)* $name] [$(($s))* ($crate::any::<$ty>())] ($($rest)*) $body)
    };
    (@acc $config:ident, [$($n:ident)*] [$(($s:expr))*] ($name:ident : $ty:ty) $body:block) => {
        $crate::proptest!(@acc $config, [$($n)* $name] [$(($s))* ($crate::any::<$ty>())] () $body)
    };
    (@acc $config:ident, [$($n:ident)+] [$(($s:expr))+] () $body:block) => {
        $crate::run_cases(&$config, &($($s,)+), move |($($n,)+)| $body)
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@funcs ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn evens() -> impl Strategy<Value = u32> {
        (0u32..1000).prop_map(|x| x * 2)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn mapped_strategy_applies(x in evens()) {
            prop_assert!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn mixed_params(a in 1u8..10, b: u32, flag: bool) {
            prop_assert!((1..10).contains(&a));
            let _ = (b, flag);
        }

        #[test]
        fn vec_and_select(
            v in prop::collection::vec(any::<u8>(), 0..=16),
            pick in prop::sample::select(&[3u8, 5, 7][..]),
        ) {
            prop_assert!(v.len() <= 16);
            prop_assert!([3, 5, 7].contains(&pick));
        }

        #[test]
        fn tuples_compose(pair in (0u8..4, 10u32..20).prop_map(|(a, b)| (b, a))) {
            prop_assert!(pair.0 >= 10 && pair.1 < 4);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let mut first = Vec::new();
        let mut second = Vec::new();
        for out in [&mut first, &mut second] {
            let collected = std::cell::RefCell::new(Vec::new());
            crate::run_cases(&ProptestConfig::with_cases(8), &(crate::any::<u64>(),), |(v,)| {
                collected.borrow_mut().push(v);
            });
            out.extend(collected.into_inner());
        }
        assert_eq!(first, second);
    }

    /// The ROADMAP-requested demonstration: a failing property is
    /// re-reported with a *minimized* counterexample. `x < 1` fails for
    /// every x ≥ 1 and halving converges on exactly 1.
    #[test]
    fn shrinking_minimizes_counterexample() {
        let result = std::panic::catch_unwind(|| {
            crate::run_cases(&ProptestConfig::with_cases(4), &(0u32..10_000,), |(x,)| {
                assert!(x < 1, "x must be zero, got {x}");
            });
        });
        let payload = result.expect_err("property must fail");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .expect("runner panics with a String");
        assert!(
            msg.contains("minimized input: (1,)"),
            "halving should minimize to exactly 1: {msg}"
        );
        assert!(msg.contains("original:"), "original input must be reported: {msg}");
    }

    /// Vector inputs shrink by length toward the strategy's minimum.
    #[test]
    fn vectors_shrink_by_length() {
        let strat = (prop::collection::vec(any::<u8>(), 2..40),);
        let result = std::panic::catch_unwind(|| {
            crate::run_cases(&ProptestConfig::with_cases(8), &strat, |(v,)| {
                assert!(v.len() < 3, "too long: {}", v.len());
            });
        });
        let payload = result.expect_err("property must fail for some generated vec");
        let msg = payload.downcast_ref::<String>().cloned().unwrap();
        // Minimized to a 3-element vector (the smallest failing length).
        let minimized = msg
            .split("minimized input: ")
            .nth(1)
            .and_then(|rest| rest.split(" (original").next())
            .unwrap();
        let elems = minimized.trim_start_matches("([").chars().filter(|&c| c == ',').count();
        assert_eq!(elems, 3, "vector should have shrunk to 3 elements: {msg}");
    }
}
