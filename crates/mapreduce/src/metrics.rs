//! Reducer compute-time model and summary statistics.
//!
//! The paper measures wall-clock "execution time at the reducer" on Xeon
//! servers; our substrate is a simulator, so reducer compute is *modeled*
//! with explicit per-record costs. The model captures the §4 trade-off
//! exactly: a baseline reducer merges pre-sorted mapper runs
//! (`n·log2(k)`), while a DAIET reducer receives unordered aggregated
//! pairs and must fully sort them (`n·log2(n)`) — "the reduction in the
//! amount of data to sort makes this overhead negligible".

/// Per-record costs in nanoseconds (defaults sized for a ≈2 GHz core
/// handling small string records; only ratios matter for Figure 3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Receiving + deserializing one record (syscall amortization, copy,
    /// string materialization).
    pub recv_ns: f64,
    /// One comparison-move step of a k-way merge (× n·log2 k).
    pub merge_ns: f64,
    /// One comparison-move step of a full sort (× n·log2 n).
    pub sort_ns: f64,
    /// Applying the reduce function to one record.
    pub reduce_ns: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel { recv_ns: 450.0, merge_ns: 90.0, sort_ns: 70.0, reduce_ns: 60.0 }
    }
}

impl CostModel {
    /// Time for a baseline reducer: `n` records arriving as `k` pre-sorted
    /// runs (one per mapper), k-way merged, then reduced.
    pub fn baseline_reduce_ns(&self, n: usize, k: usize) -> f64 {
        let n_f = n as f64;
        let log_k = (k.max(2) as f64).log2();
        n_f * self.recv_ns + n_f * log_k * self.merge_ns + n_f * self.reduce_ns
    }

    /// Time for a DAIET reducer: `n` unordered records, fully sorted,
    /// then reduced.
    pub fn daiet_reduce_ns(&self, n: usize) -> f64 {
        let n_f = n as f64;
        let log_n = (n.max(2) as f64).log2();
        n_f * self.recv_ns + n_f * log_n * self.sort_ns + n_f * self.reduce_ns
    }
}

/// Per-reducer measurements from one run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReducerMetrics {
    /// Reducer index (= tree id in DAIET modes).
    pub reducer: usize,
    /// Application-level bytes received (serialized records/pairs,
    /// including DAIET preambles).
    pub app_bytes: u64,
    /// Frames delivered to the reducer NIC.
    pub nic_frames_in: u64,
    /// Frames observed at the NIC in both directions (what a packet
    /// capture reports; TCP ACKs count here).
    pub nic_frames_observed: u64,
    /// Records received (pre host-side merge).
    pub records: usize,
    /// Distinct keys after merging.
    pub distinct_keys: usize,
    /// Modeled reduce time in nanoseconds.
    pub reduce_time_ns: f64,
    /// Whether the final output matched the ground truth.
    pub correct: bool,
}

/// Five-number summary for box plots (Figure 3's presentation).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoxStats {
    /// Minimum.
    pub min: f64,
    /// First quartile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub q3: f64,
    /// Maximum.
    pub max: f64,
}

impl BoxStats {
    /// Computes the summary of `values` (empty input yields all-NaN).
    pub fn of(values: &[f64]) -> BoxStats {
        if values.is_empty() {
            return BoxStats { min: f64::NAN, q1: f64::NAN, median: f64::NAN, q3: f64::NAN, max: f64::NAN };
        }
        let mut v = values.to_vec();
        v.sort_by(|a, b| a.partial_cmp(b).expect("no NaN inputs"));
        BoxStats {
            min: v[0],
            q1: quantile(&v, 0.25),
            median: quantile(&v, 0.5),
            q3: quantile(&v, 0.75),
            max: v[v.len() - 1],
        }
    }
}

impl core::fmt::Display for BoxStats {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "min {:6.2}  q1 {:6.2}  med {:6.2}  q3 {:6.2}  max {:6.2}",
            self.min, self.q1, self.median, self.q3, self.max
        )
    }
}

/// Linear-interpolated quantile of a pre-sorted slice.
fn quantile(sorted: &[f64], q: f64) -> f64 {
    if sorted.len() == 1 {
        return sorted[0];
    }
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

/// Percentage reduction of `ours` relative to `baseline`
/// (`100 × (1 − ours/baseline)`).
pub fn reduction_pct(ours: f64, baseline: f64) -> f64 {
    100.0 * (1.0 - ours / baseline)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn daiet_reduce_is_cheaper_despite_sorting() {
        // The §4 claim: the reducer sorts from scratch, but over ~11×
        // fewer records it still wins big.
        let m = CostModel::default();
        let aggregated = 16_000;
        let baseline_records = aggregated * 11;
        let t_base = m.baseline_reduce_ns(baseline_records, 24);
        let t_daiet = m.daiet_reduce_ns(aggregated);
        let reduction = reduction_pct(t_daiet, t_base);
        assert!(
            (75.0..92.0).contains(&reduction),
            "reduce-time reduction {reduction:.1}% out of the paper's neighbourhood"
        );
    }

    #[test]
    fn sort_overhead_visible_at_equal_sizes() {
        // With no data reduction, the full sort must cost *more* than the
        // merge — DAIET's trade-off only pays off through aggregation.
        let m = CostModel::default();
        assert!(m.daiet_reduce_ns(100_000) > m.baseline_reduce_ns(100_000, 24));
    }

    #[test]
    fn box_stats_on_known_values() {
        let s = BoxStats::of(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.q1, 2.0);
        assert_eq!(s.median, 3.0);
        assert_eq!(s.q3, 4.0);
        assert_eq!(s.max, 5.0);
        let s = BoxStats::of(&[7.0]);
        assert_eq!(s.median, 7.0);
        assert_eq!(s.min, 7.0);
    }

    #[test]
    fn box_stats_interpolates() {
        let s = BoxStats::of(&[0.0, 10.0]);
        assert_eq!(s.q1, 2.5);
        assert_eq!(s.median, 5.0);
        assert_eq!(s.q3, 7.5);
    }

    #[test]
    fn reduction_pct_basics() {
        assert_eq!(reduction_pct(10.0, 100.0), 90.0);
        assert_eq!(reduction_pct(100.0, 100.0), 0.0);
        assert!(reduction_pct(110.0, 100.0) < 0.0);
    }

    #[test]
    fn empty_box_stats_are_nan() {
        assert!(BoxStats::of(&[]).median.is_nan());
    }
}
