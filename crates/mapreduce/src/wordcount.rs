//! The WordCount corpus generator.
//!
//! The paper's input is "a 500 MB file containing random words that are
//! not causing hash collisions" (their footnote: "Our current prototype
//! does not manage collisions"), sized so each reducer's partition fits
//! the 16 K-pair switch registers. Reductions are *ratios*, so the corpus
//! can be scaled down as long as its shape is preserved; the shape knobs
//! are explicit here:
//!
//! * `distinct_words` — dictionary size (≈ `16 K × reducers` at paper
//!   scale so registers fill without overflowing);
//! * `mean_multiplicity` — how many of the `n_mappers` mappers hold each
//!   word. This is the single most important knob: with mapper-side
//!   combining, the network sees `multiplicity` partial counts per word,
//!   and in-network aggregation collapses them to one, so pair-level
//!   reduction ≈ `1 − 1/multiplicity` (defaults calibrated to the paper's
//!   ≈90.5 % packet reduction vs the UDP baseline);
//! * word lengths uniform in `min_len..=max_len` (≤ 16) — sets the
//!   variable-length baseline's bytes per record and thus the data-volume
//!   reduction.
//!
//! Collision-freedom is enforced exactly the way the paper's dataset was
//! built: rejection-sampling words until, within each reducer's
//! partition, every word maps to a distinct `CRC32 % register_cells`
//! slot.

use daiet_wire::checksum::crc32;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use daiet_wire::fnv::{FnvBuildHasher, FnvHashMap, FnvHashSet};

use crate::serialize::Record;

/// Corpus parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CorpusSpec {
    /// Number of map tasks (paper: 24).
    pub n_mappers: usize,
    /// Number of reduce tasks (paper: 12).
    pub n_reducers: usize,
    /// Dictionary size across all reducers.
    pub distinct_words: usize,
    /// Mean number of mappers holding each word (clamped to
    /// `1..=n_mappers`).
    pub mean_multiplicity: f64,
    /// Standard deviation of the multiplicity.
    pub sd_multiplicity: f64,
    /// Shortest generated word.
    pub min_len: usize,
    /// Longest generated word (≤ 16).
    pub max_len: usize,
    /// Register cells per tree (collision-freedom is enforced against
    /// this); use the DAIET config's value.
    pub register_cells: usize,
    /// RNG seed.
    pub seed: u64,
}

impl CorpusSpec {
    /// Paper-shaped defaults at reduced scale: 24 mappers, 12 reducers,
    /// multiplicity ≈ 11, 5–14-character words. `distinct_words` is left
    /// small enough for tests; benches scale it up to `16 K × 12`.
    pub fn paper_scaled(distinct_words: usize, seed: u64) -> CorpusSpec {
        CorpusSpec {
            n_mappers: 24,
            n_reducers: 12,
            distinct_words,
            mean_multiplicity: 10.5,
            sd_multiplicity: 2.0,
            min_len: 7,
            max_len: 14,
            register_cells: 16 * 1024,
            seed,
        }
    }

    /// A small configuration for unit tests.
    pub fn tiny(seed: u64) -> CorpusSpec {
        CorpusSpec {
            n_mappers: 4,
            n_reducers: 2,
            distinct_words: 60,
            mean_multiplicity: 2.5,
            sd_multiplicity: 0.8,
            min_len: 3,
            max_len: 10,
            register_cells: 1024,
            seed,
        }
    }
}

/// Deterministic partitioner: which reducer owns a word.
pub fn partition(word: &str, n_reducers: usize) -> usize {
    (crc32(word.as_bytes()) as usize) % n_reducers
}

/// A generated corpus, already mapper-combined (one record per distinct
/// word per mapper — the classic WordCount combiner output the shuffle
/// actually moves).
#[derive(Debug, Clone)]
pub struct Corpus {
    /// The specification that produced this corpus.
    pub spec: CorpusSpec,
    /// `partitions[mapper][reducer]` = that mapper's records bound for
    /// that reducer.
    pub partitions: Vec<Vec<Vec<Record>>>,
    /// Ground truth: final count per word.
    pub truth: FnvHashMap<String, u32>,
    /// Per-reducer sorted ground truth, precomputed once (the correctness
    /// check runs after every simulated shuffle; recomputing it per run
    /// used to dominate small benches).
    expected: Vec<Vec<(String, u32)>>,
}

impl Corpus {
    /// Generates a corpus from `spec`.
    pub fn generate(spec: &CorpusSpec) -> Corpus {
        assert!(spec.max_len <= 16, "words must fit DAIET keys");
        assert!(spec.min_len >= 1 && spec.min_len <= spec.max_len);
        assert!(spec.n_mappers >= 1 && spec.n_reducers >= 1);
        let mut rng = SmallRng::seed_from_u64(spec.seed);

        // 1. Dictionary: unique words, collision-free per reducer.
        let mut words: Vec<String> = Vec::with_capacity(spec.distinct_words);
        let mut seen: FnvHashSet<String> =
            FnvHashSet::with_capacity_and_hasher(spec.distinct_words, FnvBuildHasher::default());
        let mut used_cells: Vec<FnvHashSet<u32>> = vec![FnvHashSet::default(); spec.n_reducers];
        while words.len() < spec.distinct_words {
            let len = rng.random_range(spec.min_len..=spec.max_len);
            let w: String = (0..len)
                .map(|_| (b'a' + rng.random_range(0..26u8)) as char)
                .collect();
            if seen.contains(&w) {
                continue;
            }
            let r = partition(&w, spec.n_reducers);
            // The switch hashes the padded 16-byte key.
            let key = daiet_wire::daiet::Key::from_str_key(&w).expect("len <= 16");
            let cell = crc32(&key.0) % spec.register_cells as u32;
            if !used_cells[r].insert(cell) {
                continue; // would collide in-switch: reject, like the paper's dataset
            }
            seen.insert(w.clone());
            words.push(w);
        }

        // 2. Spread each word over a sampled set of mappers.
        let mut partitions: Vec<Vec<Vec<Record>>> =
            vec![vec![Vec::new(); spec.n_reducers]; spec.n_mappers];
        let mut truth: FnvHashMap<String, u32> =
            FnvHashMap::with_capacity_and_hasher(words.len(), FnvBuildHasher::default());
        for w in &words {
            let r = partition(w, spec.n_reducers);
            let mult = sample_multiplicity(&mut rng, spec);
            let holders = sample_mappers(&mut rng, spec.n_mappers, mult);
            let mut total = 0u32;
            for m in holders {
                let count = rng.random_range(1..=9u32);
                total += count;
                partitions[m][r].push(Record { word: w.clone(), count });
            }
            truth.insert(w.clone(), total);
        }

        let mut expected: Vec<Vec<(String, u32)>> = vec![Vec::new(); spec.n_reducers];
        for (w, &c) in &truth {
            expected[partition(w, spec.n_reducers)].push((w.clone(), c));
        }
        for e in &mut expected {
            e.sort();
        }

        Corpus { spec: *spec, partitions, truth, expected }
    }

    /// Total shuffle records (pre-aggregation).
    pub fn total_records(&self) -> usize {
        self.partitions
            .iter()
            .flat_map(|per_reducer| per_reducer.iter())
            .map(std::vec::Vec::len)
            .sum()
    }

    /// Distinct words destined for reducer `r`.
    pub fn distinct_for_reducer(&self, r: usize) -> usize {
        self.truth.keys().filter(|w| partition(w, self.spec.n_reducers) == r).count()
    }

    /// Mean mapper multiplicity actually realized.
    pub fn realized_multiplicity(&self) -> f64 {
        self.total_records() as f64 / self.truth.len() as f64
    }

    /// The reference result for reducer `r`, sorted by word — what a
    /// correct shuffle+reduce must produce. Precomputed at generation.
    pub fn expected_reduction(&self, r: usize) -> &[(String, u32)] {
        &self.expected[r]
    }
}

fn sample_multiplicity(rng: &mut SmallRng, spec: &CorpusSpec) -> usize {
    // Approximate normal via the sum of three uniforms (Irwin–Hall),
    // cheap and deterministic; clamp to the legal range.
    let u: f64 = (rng.random::<f64>() + rng.random::<f64>() + rng.random::<f64>() - 1.5) * 2.0;
    let x = spec.mean_multiplicity + u * spec.sd_multiplicity;
    (x.round() as i64).clamp(1, spec.n_mappers as i64) as usize
}

fn sample_mappers(rng: &mut SmallRng, n: usize, k: usize) -> Vec<usize> {
    // Partial Fisher-Yates for a k-subset.
    let mut idx: Vec<usize> = (0..n).collect();
    for i in 0..k.min(n) {
        let j = rng.random_range(i..n);
        idx.swap(i, j);
    }
    idx.truncate(k.min(n));
    idx
}

#[cfg(test)]
mod tests {
    use super::*;
    use daiet_wire::daiet::Key;

    #[test]
    fn generation_is_deterministic() {
        let a = Corpus::generate(&CorpusSpec::tiny(5));
        let b = Corpus::generate(&CorpusSpec::tiny(5));
        assert_eq!(a.truth, b.truth);
        let c = Corpus::generate(&CorpusSpec::tiny(6));
        assert_ne!(a.truth, c.truth);
    }

    #[test]
    fn truth_matches_partitions() {
        let corpus = Corpus::generate(&CorpusSpec::tiny(1));
        let mut sums: FnvHashMap<String, u32> = FnvHashMap::default();
        for mapper in &corpus.partitions {
            for reducer_part in mapper {
                for rec in reducer_part {
                    *sums.entry(rec.word.clone()).or_insert(0) += rec.count;
                }
            }
        }
        assert_eq!(sums, corpus.truth);
        assert_eq!(corpus.truth.len(), 60);
    }

    #[test]
    fn words_go_to_their_partition() {
        let corpus = Corpus::generate(&CorpusSpec::tiny(2));
        for mapper in &corpus.partitions {
            for (r, recs) in mapper.iter().enumerate() {
                for rec in recs {
                    assert_eq!(partition(&rec.word, corpus.spec.n_reducers), r);
                }
            }
        }
    }

    #[test]
    fn collision_freedom_holds_per_reducer() {
        let spec = CorpusSpec { register_cells: 128, ..CorpusSpec::tiny(3) };
        let corpus = Corpus::generate(&spec);
        for r in 0..spec.n_reducers {
            let mut cells = FnvHashSet::default();
            for w in corpus.truth.keys().filter(|w| partition(w, spec.n_reducers) == r) {
                let key = Key::from_str_key(w).unwrap();
                let cell = crc32(&key.0) % spec.register_cells as u32;
                assert!(cells.insert(cell), "collision on {w} in reducer {r}");
            }
        }
    }

    #[test]
    fn multiplicity_lands_near_target() {
        let spec = CorpusSpec {
            distinct_words: 2000,
            ..CorpusSpec::paper_scaled(2000, 4)
        };
        let corpus = Corpus::generate(&spec);
        let m = corpus.realized_multiplicity();
        assert!((10.0..12.0).contains(&m), "multiplicity {m}");
    }

    #[test]
    fn word_lengths_respect_bounds() {
        let corpus = Corpus::generate(&CorpusSpec::tiny(7));
        for w in corpus.truth.keys() {
            assert!(w.len() >= 3 && w.len() <= 10, "{w}");
        }
    }

    #[test]
    fn expected_reduction_is_sorted_and_partitioned() {
        let corpus = Corpus::generate(&CorpusSpec::tiny(8));
        let total: usize = (0..2).map(|r| corpus.expected_reduction(r).len()).sum();
        assert_eq!(total, corpus.truth.len());
        let red = corpus.expected_reduction(0);
        assert!(red.windows(2).all(|w| w[0].0 < w[1].0));
    }
}
