//! Drives a complete WordCount shuffle over the simulator in each of the
//! three modes of §5 and collects the Figure-3 measurements.
//!
//! * [`ShuffleMode::TcpBaseline`] — "the original TCP-based data
//!   exchange": every mapper opens a TCP connection per reducer and
//!   streams its (pre-sorted, variable-length) partition;
//! * [`ShuffleMode::UdpNoAgg`] — "using UDP and the DAIET protocol, but
//!   without executing data aggregation in the switch": same DAIET
//!   packets, switches merely forward;
//! * [`ShuffleMode::DaietAgg`] — full DAIET: switches aggregate on-path.
//!
//! The topology mirrors the paper's testbed: one switch, every mapper and
//! reducer on its own port (they ran 24 mapper + 12 reducer containers
//! behind one bmv2 switch). The runner is topology-generic — pass any
//! [`TopologyPlan`] — so multi-switch trees are exercised in the
//! integration tests.

// lint:allow-file(layer-netsim): end-to-end WordCount runner — constructs the
// Simulator and TCP-baseline nodes directly. It is the experiment harness;
// the map/reduce/aggregation logic it exercises stays fabric-only.
use crate::metrics::{BoxStats, CostModel, ReducerMetrics};
use crate::serialize;
use crate::wordcount::Corpus;
use daiet::agg::AggFn;
use daiet::controller::{AggregationMode, Controller, JobPlacement};
use daiet::worker::ReducerHost;
use daiet::DaietConfig;
use daiet_dataplane::Resources;
use daiet_netsim::topology::{Role, TopologyPlan};
use daiet_netsim::{
    FramePool, LinkSpec, NodeId, PartitionMap, SimDuration, SimTime, Simulator,
};
use daiet_transport::tcp::{BulkSenderNode, SinkReceiverNode, TcpConfig};
use std::cell::RefCell;
use daiet_wire::fnv::FnvHashMap;

/// The shuffle transport under test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShuffleMode {
    /// TCP streams, mapper-side sort, reducer-side k-way merge.
    TcpBaseline,
    /// DAIET packets without in-network aggregation.
    UdpNoAgg,
    /// DAIET with in-network aggregation.
    DaietAgg,
}

/// TCP port reducers listen on in the baseline.
const SHUFFLE_PORT: u16 = 9000;


/// One complete run's results.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// The transport that produced these numbers.
    pub mode: ShuffleMode,
    /// Per-reducer measurements, indexed by reducer.
    pub reducers: Vec<ReducerMetrics>,
    /// Frames dropped anywhere in the network (must be 0 in the loss-free
    /// configurations for the UDP modes to be meaningful).
    pub frames_dropped: u64,
    /// Simulated quiescence time: when the last event of any kind fired.
    /// Under injected faults this includes trailing retransmission-timer
    /// tails long after the data landed.
    pub finished_at: SimTime,
    /// Simulated time the last reducer received its complete input — the
    /// application-level completion the figures plot. Falls back to
    /// `finished_at` when a receiver never tracked it.
    pub data_done_at: SimTime,
}

impl RunOutcome {
    /// True when every reducer produced the ground-truth output.
    pub fn all_correct(&self) -> bool {
        self.reducers.iter().all(|r| r.correct)
    }
}

/// Orchestrates runs of one corpus over one topology.
pub struct Runner {
    /// The generated workload.
    pub corpus: Corpus,
    /// DAIET parameters.
    pub daiet_config: DaietConfig,
    /// Reduce-time model.
    pub cost: CostModel,
    /// Link parameters for every edge.
    pub link: LinkSpec,
    /// Switch chip profile.
    pub resources: Resources,
    /// Gap between UDP frames at each mapper.
    pub pacing: SimDuration,
    /// Simulation seed.
    pub seed: u64,
    /// Recycle frame buffers through the simulator's [`FramePool`]
    /// (default). Disable to force plain allocation — results must be
    /// bit-identical either way, which `tests/` asserts.
    pub pooling: bool,
    /// Execution partitions for the simulator (default: the
    /// `DAIET_PARTITIONS` environment variable, else 1). Results must be
    /// bit-identical at any setting — `tests/partition_properties`
    /// asserts it.
    pub partitions: usize,
    /// Per-partition frame pools shared across this runner's runs (see
    /// `make_sim`). Pools are `Rc`-backed and partition-local, so one per
    /// partition, grown on demand.
    pools: RefCell<Vec<FramePool>>,
    /// Copies of each frame mappers transmit (1 = no redundancy; pair
    /// with `daiet_config.reliability` so duplicates are suppressed).
    pub redundancy: u32,
}

impl Runner {
    /// A runner with paper-shaped defaults over `corpus`.
    pub fn new(corpus: Corpus) -> Runner {
        let register_cells = corpus.spec.register_cells;
        Runner {
            corpus,
            daiet_config: DaietConfig { register_cells, ..DaietConfig::default() },
            cost: CostModel::default(),
            // Generous queues: the paper's bmv2 testbed was not
            // loss-limited, and the UDP prototype has no loss recovery.
            link: LinkSpec::fast().with_queue_bytes(4 * 1024 * 1024),
            resources: Resources::tofino_like(),
            pacing: SimDuration::from_micros(2),
            seed: 42,
            pooling: true,
            partitions: daiet_netsim::env_partitions(),
            pools: RefCell::new(Vec::new()),
            redundancy: 1,
        }
    }

    /// Arms the full reliability story for the UDP modes: dedup windows
    /// everywhere, NACK recovery on every segment (mapper→switch,
    /// switch→switch, switch→reducer) and `faults` on **every** link —
    /// redundancy stays at `k = 1`, recovery alone must carry the run.
    pub fn with_recovery(mut self, faults: daiet_netsim::FaultProfile) -> Runner {
        self.daiet_config.reliability = true;
        self.daiet_config.nack_recovery = true;
        self.daiet_config = self.daiet_config.with_rtx_sized_for_flush();
        self.link = self.link.with_faults(faults);
        self
    }

    fn make_sim(&self, plan: &TopologyPlan) -> (Simulator, PartitionMap) {
        let pmap = plan.partition_map(self.partitions);
        let mut sim = Simulator::with_partitions(self.seed, pmap.clone());
        if !self.pooling {
            for p in 0..sim.partition_count() {
                sim.set_frame_pool_for(p, FramePool::disabled());
            }
        } else {
            // One pool per partition across this runner's runs: repeated
            // runs (benches, multi-mode comparisons) recycle the previous
            // run's buffers instead of growing a cold pool from scratch
            // each time — which matters once retransmit rings hold frames
            // long enough that a run's working set exceeds the in-flight
            // population. Buffer reuse is semantics-neutral
            // (`tests/pool_properties`); pools are partition-local
            // because their buffers are `Rc`-backed.
            let mut pools = self.pools.borrow_mut();
            while pools.len() < sim.partition_count() {
                pools.push(FramePool::new());
            }
            for p in 0..sim.partition_count() {
                sim.set_frame_pool_for(p, pools[p].clone());
            }
        }
        (sim, pmap)
    }

    /// The star topology of the paper's testbed for this corpus.
    pub fn star_plan(&self) -> TopologyPlan {
        let spec = &self.corpus.spec;
        TopologyPlan::star(spec.n_mappers + spec.n_reducers, self.link)
    }

    /// Mapper plan slots (hosts `0..n_mappers` in the star plan).
    pub(crate) fn placement(&self, plan: &TopologyPlan) -> JobPlacement {
        let hosts = plan.hosts();
        let spec = &self.corpus.spec;
        assert!(hosts.len() >= spec.n_mappers + spec.n_reducers, "plan too small");
        JobPlacement {
            mappers: hosts[..spec.n_mappers].to_vec(),
            reducers: hosts[spec.n_mappers..spec.n_mappers + spec.n_reducers].to_vec(),
        }
    }

    /// Runs `mode` on the star topology.
    pub fn run(&self, mode: ShuffleMode) -> RunOutcome {
        let plan = self.star_plan();
        self.run_on(&plan, mode)
    }

    /// Runs `mode` on an arbitrary topology plan.
    pub fn run_on(&self, plan: &TopologyPlan, mode: ShuffleMode) -> RunOutcome {
        match mode {
            ShuffleMode::TcpBaseline => self.run_tcp(plan),
            ShuffleMode::UdpNoAgg => self.run_udp(plan, AggregationMode::PassThrough),
            ShuffleMode::DaietAgg => self.run_udp(plan, AggregationMode::InNetwork),
        }
    }

    fn run_tcp(&self, plan: &TopologyPlan) -> RunOutcome {
        let placement = self.placement(plan);
        let spec = &self.corpus.spec;
        // PassThrough deployment still builds the L2 forwarding tables.
        let controller = Controller::new(self.daiet_config, AggFn::Sum);
        let (_dep, mut switches) = controller
            .deploy(plan, &placement, self.resources, AggregationMode::PassThrough)
            .expect("deployment fits");

        let (mut sim, _pmap) = self.make_sim(plan);
        let mut ids: Vec<NodeId> = Vec::with_capacity(plan.len());
        let tcp_cfg = TcpConfig::default();

        for slot in 0..plan.len() {
            let id = match plan.role(slot) {
                Role::Host => {
                    if let Some(m) = placement.mappers.iter().position(|&s| s == slot) {
                        // Jobs: one stream per reducer, sorted records
                        // (mappers sort in the baseline).
                        let jobs: Vec<(u32, u16, Vec<u8>)> = (0..spec.n_reducers)
                            .map(|r| {
                                let mut recs = self.corpus.partitions[m][r].clone();
                                recs.sort_by(|a, b| a.word.cmp(&b.word));
                                (
                                    placement.reducers[r] as u32,
                                    SHUFFLE_PORT,
                                    serialize::encode_varlen(&recs),
                                )
                            })
                            .collect();
                        sim.add_node(Box::new(BulkSenderNode::new(slot as u32, tcp_cfg, jobs)))
                    } else {
                        sim.add_node(Box::new(SinkReceiverNode::new(slot as u32, tcp_cfg, SHUFFLE_PORT)))
                    }
                }
                Role::Switch => sim.add_node(Box::new(
                    switches.remove(&slot).expect("controller built every switch"),
                )),
            };
            ids.push(id);
        }
        plan.wire(&mut sim, &ids);
        let finished_at = sim.run_until(SimTime(SimDuration::from_secs(120).as_nanos()));

        let mut reducers = Vec::with_capacity(spec.n_reducers);
        for (r, &slot) in placement.reducers.iter().enumerate() {
            let node = sim.node_ref::<SinkReceiverNode>(ids[slot]).expect("reducer node");
            let mut merged: FnvHashMap<String, u32> = FnvHashMap::default();
            let mut records = 0usize;
            let mut app_bytes = 0u64;
            for stream in node.received.values() {
                app_bytes += stream.len() as u64;
                let recs = serialize::decode_varlen(stream).expect("TCP delivers byte-exact");
                records += recs.len();
                for rec in recs {
                    *merged.entry(rec.word).or_insert(0) += rec.count;
                }
            }
            let mut got: Vec<(String, u32)> = merged.iter().map(|(w, &c)| (w.clone(), c)).collect();
            got.sort();
            let correct = got == self.corpus.expected_reduction(r)
                && node.finished.len() == spec.n_mappers;
            let nic = sim.node_stats(ids[slot]);
            reducers.push(ReducerMetrics {
                reducer: r,
                app_bytes,
                nic_frames_in: nic.frames_in,
                nic_frames_observed: nic.frames_observed(),
                records,
                distinct_keys: merged.len(),
                reduce_time_ns: self.cost.baseline_reduce_ns(records, spec.n_mappers),
                correct,
            });
        }
        let data_done_at = placement
            .reducers
            .iter()
            .map(|&slot| {
                sim.node_ref::<SinkReceiverNode>(ids[slot])
                    .and_then(|n| n.last_fin_at)
                    .unwrap_or(finished_at)
            })
            .max()
            .unwrap_or(finished_at);
        RunOutcome {
            mode: ShuffleMode::TcpBaseline,
            reducers,
            frames_dropped: total_drops(&sim),
            finished_at,
            data_done_at,
        }
    }

    fn run_udp(&self, plan: &TopologyPlan, agg: AggregationMode) -> RunOutcome {
        let placement = self.placement(plan);
        let spec = &self.corpus.spec;
        let controller = Controller::new(self.daiet_config, AggFn::Sum);
        let (dep, mut switches) = controller
            .deploy(plan, &placement, self.resources, agg)
            .expect("deployment fits");

        let (mut sim, pmap) = self.make_sim(plan);
        let mut ids: Vec<NodeId> = Vec::with_capacity(plan.len());
        for slot in 0..plan.len() {
            let id = match plan.role(slot) {
                Role::Host => {
                    if let Some(m) = placement.mappers.iter().position(|&s| s == slot) {
                        let partitions: Vec<_> = (0..spec.n_reducers)
                            .map(|r| {
                                (
                                    dep.tree_id(r),
                                    dep.endpoints(slot, r),
                                    serialize::to_pairs(&self.corpus.partitions[m][r]),
                                )
                            })
                            .collect();
                        // Preloaded frames must come from the pool of the
                        // partition that will transmit them (pools are
                        // strictly partition-local).
                        let pool = sim.partition_pool(pmap.part_of(slot)).clone();
                        sim.add_node(Box::new(daiet::worker::multi_tree_sender(
                            &self.daiet_config,
                            m,
                            &partitions,
                            self.redundancy,
                            self.pacing,
                            &pool,
                            "udp-mapper",
                        )))
                    } else {
                        let r = placement
                            .reducers
                            .iter()
                            .position(|&s| s == slot)
                            .expect("host is mapper or reducer");
                        sim.add_node(Box::new(daiet::worker::reducer_host(
                            &self.daiet_config,
                            AggFn::Sum,
                            &dep,
                            r,
                            slot,
                            &placement.mappers,
                        )))
                    }
                }
                Role::Switch => sim.add_node(Box::new(
                    switches.remove(&slot).expect("controller built every switch"),
                )),
            };
            ids.push(id);
        }
        plan.wire(&mut sim, &ids);
        let finished_at = sim.run_until(SimTime(SimDuration::from_secs(120).as_nanos()));

        let mode = match agg {
            AggregationMode::InNetwork => ShuffleMode::DaietAgg,
            AggregationMode::PassThrough => ShuffleMode::UdpNoAgg,
        };
        let mut reducers = Vec::with_capacity(spec.n_reducers);
        for (r, &slot) in placement.reducers.iter().enumerate() {
            let node = sim.node_ref::<ReducerHost>(ids[slot]).expect("reducer node");
            let stats = node.collector.stats();
            let mut got: Vec<(String, u32)> = node
                .collector
                .get_all()
                .map(|(k, v)| (k.display_lossy(), v))
                .collect();
            got.sort();
            let correct = node.collector.is_complete() && got == self.corpus.expected_reduction(r);
            let nic = sim.node_stats(ids[slot]);
            reducers.push(ReducerMetrics {
                reducer: r,
                app_bytes: stats.app_bytes,
                nic_frames_in: nic.frames_in,
                nic_frames_observed: nic.frames_observed(),
                records: stats.pairs_received as usize,
                distinct_keys: node.collector.len(),
                reduce_time_ns: self.cost.daiet_reduce_ns(stats.pairs_received as usize),
                correct,
            });
        }
        let data_done_at = placement
            .reducers
            .iter()
            .map(|&slot| {
                sim.node_ref::<ReducerHost>(ids[slot])
                    .and_then(|n| n.completed_at)
                    .unwrap_or(finished_at)
            })
            .max()
            .unwrap_or(finished_at);
        RunOutcome { mode, reducers, frames_dropped: total_drops(&sim), finished_at, data_done_at }
    }
}

fn total_drops(sim: &Simulator) -> u64 {
    (0..sim.link_count())
        .map(|l| {
            let s = sim.link_stats(l);
            s.dirs[0].drops_overflow + s.dirs[0].drops_fault + s.dirs[1].drops_overflow
                + s.dirs[1].drops_fault
        })
        .sum()
}

/// The four Figure-3 panels, as percentage reductions per reducer.
#[derive(Debug, Clone)]
pub struct Fig3Summary {
    /// Data volume at the reducer: DAIET vs TCP baseline.
    pub data_volume: BoxStats,
    /// Modeled reduce time: DAIET vs TCP baseline.
    pub reduce_time: BoxStats,
    /// Frames at the reducer NIC: DAIET vs UDP baseline.
    pub packets_vs_udp: BoxStats,
    /// Frames at the reducer NIC (both directions): DAIET vs TCP.
    pub packets_vs_tcp: BoxStats,
}

impl Fig3Summary {
    /// Builds the panels from the three runs.
    pub fn from_runs(tcp: &RunOutcome, udp: &RunOutcome, daiet: &RunOutcome) -> Fig3Summary {
        use crate::metrics::reduction_pct;
        let n = daiet.reducers.len();
        assert!(tcp.reducers.len() == n && udp.reducers.len() == n);
        let mut vol = Vec::new();
        let mut time = Vec::new();
        let mut pkt_udp = Vec::new();
        let mut pkt_tcp = Vec::new();
        for r in 0..n {
            let (t, u, d) = (&tcp.reducers[r], &udp.reducers[r], &daiet.reducers[r]);
            vol.push(reduction_pct(d.app_bytes as f64, t.app_bytes as f64));
            time.push(reduction_pct(d.reduce_time_ns, t.reduce_time_ns));
            pkt_udp.push(reduction_pct(
                d.nic_frames_observed as f64,
                u.nic_frames_observed as f64,
            ));
            pkt_tcp.push(reduction_pct(
                d.nic_frames_observed as f64,
                t.nic_frames_observed as f64,
            ));
        }
        Fig3Summary {
            data_volume: BoxStats::of(&vol),
            reduce_time: BoxStats::of(&time),
            packets_vs_udp: BoxStats::of(&pkt_udp),
            packets_vs_tcp: BoxStats::of(&pkt_tcp),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wordcount::CorpusSpec;

    fn tiny_runner(seed: u64) -> Runner {
        let corpus = Corpus::generate(&CorpusSpec::tiny(seed));
        Runner::new(corpus)
    }

    #[test]
    fn daiet_mode_is_correct_and_reduces() {
        let runner = tiny_runner(1);
        let daiet = runner.run(ShuffleMode::DaietAgg);
        assert!(daiet.all_correct(), "DAIET output mismatched ground truth");
        assert_eq!(daiet.frames_dropped, 0);
        let udp = runner.run(ShuffleMode::UdpNoAgg);
        assert!(udp.all_correct());
        // Aggregation strictly reduces records and frames.
        for (d, u) in daiet.reducers.iter().zip(&udp.reducers) {
            assert!(d.records <= u.records);
            assert!(d.nic_frames_in <= u.nic_frames_in);
        }
        let d_total: usize = daiet.reducers.iter().map(|r| r.records).sum();
        let u_total: usize = udp.reducers.iter().map(|r| r.records).sum();
        assert!(d_total < u_total, "no aggregation happened");
    }

    #[test]
    fn tcp_baseline_is_correct() {
        let runner = tiny_runner(2);
        let tcp = runner.run(ShuffleMode::TcpBaseline);
        assert!(tcp.all_correct(), "TCP shuffle output mismatched");
        // TCP reducers exchange frames both ways (ACKs).
        for r in &tcp.reducers {
            assert!(r.nic_frames_observed > r.nic_frames_in);
        }
    }

    #[test]
    fn fig3_summary_shows_reductions() {
        let runner = tiny_runner(3);
        let tcp = runner.run(ShuffleMode::TcpBaseline);
        let udp = runner.run(ShuffleMode::UdpNoAgg);
        let daiet = runner.run(ShuffleMode::DaietAgg);
        let fig = Fig3Summary::from_runs(&tcp, &udp, &daiet);
        // Tiny corpora have modest multiplicity (≈2.5) so the reductions
        // are smaller than the paper's, but all must be positive.
        assert!(fig.data_volume.median > 0.0, "{:?}", fig.data_volume);
        assert!(fig.packets_vs_udp.median > 0.0, "{:?}", fig.packets_vs_udp);
        assert!(fig.reduce_time.median > 0.0, "{:?}", fig.reduce_time);
    }

    /// The PR-4 acceptance scenario: loss + duplication + reordering on
    /// EVERY link, no redundancy (k = 1) — NACK recovery alone must make
    /// both UDP modes produce the exact ground-truth reduction.
    #[test]
    fn recovery_survives_chaos_on_every_link_at_k1() {
        let chaos = daiet_netsim::FaultProfile::chaos(0.08, 0.08, 0.08, 20_000);
        let runner = tiny_runner(17).with_recovery(chaos);
        let mut any_drops = false;
        for mode in [ShuffleMode::UdpNoAgg, ShuffleMode::DaietAgg] {
            let out = runner.run(mode);
            any_drops |= out.frames_dropped > 0;
            assert!(out.all_correct(), "{mode:?} diverged under chaos at k=1");
        }
        assert!(any_drops, "faults never fired — the test proved nothing");
    }

    #[test]
    fn multi_switch_topology_works_end_to_end() {
        // 3 hosts per leaf × 2 leaves handles 4 mappers + 2 reducers.
        let spec = CorpusSpec { n_mappers: 4, n_reducers: 2, ..CorpusSpec::tiny(4) };
        let corpus = Corpus::generate(&spec);
        let runner = Runner::new(corpus);
        let plan = TopologyPlan::leaf_spine(3, 2, 2, runner.link);
        let out = runner.run_on(&plan, ShuffleMode::DaietAgg);
        assert!(out.all_correct());
        assert_eq!(out.frames_dropped, 0);
    }
}
