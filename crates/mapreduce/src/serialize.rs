//! Record encodings for the shuffle.
//!
//! The TCP baseline streams **variable-length** records (length-prefixed
//! word + 4-byte count), the natural on-disk format of a MapReduce
//! implementation. DAIET requires **fixed-size** pairs so packetization
//! can slice the serialized partition at pair boundaries without
//! deserializing (§4) — at the cost of padding every key to 16 bytes,
//! which the paper calls out as measured overhead ("the fixed-size length
//! of strings in our implementation … forces a 16 B key even for smaller
//! strings").

use daiet_wire::daiet::{Key, Pair, KEY_LEN};

/// One logical shuffle record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    /// The word (≤ 16 bytes).
    pub word: String,
    /// Its partial count.
    pub count: u32,
}

/// Encodes records in the baseline's variable-length format:
/// `u8 len ‖ word bytes ‖ u32 count`.
pub fn encode_varlen(records: &[Record]) -> Vec<u8> {
    let mut out = Vec::with_capacity(records.len() * 12);
    for r in records {
        debug_assert!(r.word.len() <= u8::MAX as usize);
        out.push(r.word.len() as u8);
        out.extend_from_slice(r.word.as_bytes());
        out.extend_from_slice(&r.count.to_be_bytes());
    }
    out
}

/// Decodes a variable-length stream. Returns `None` on a malformed tail
/// (truncated record).
pub fn decode_varlen(mut data: &[u8]) -> Option<Vec<Record>> {
    let mut out = Vec::new();
    while !data.is_empty() {
        let len = data[0] as usize;
        if data.len() < 1 + len + 4 {
            return None;
        }
        let word = String::from_utf8(data[1..1 + len].to_vec()).ok()?;
        let count = u32::from_be_bytes([data[1 + len], data[2 + len], data[3 + len], data[4 + len]]);
        out.push(Record { word, count });
        data = &data[1 + len + 4..];
    }
    Some(out)
}

/// The byte size of one record in the variable-length encoding.
pub fn varlen_size(word: &str) -> usize {
    1 + word.len() + 4
}

/// Converts records to DAIET fixed-size pairs. Words longer than
/// [`KEY_LEN`] are rejected upstream (the corpus generator never produces
/// them).
pub fn to_pairs(records: &[Record]) -> Vec<Pair> {
    records
        .iter()
        .map(|r| Pair::new(Key::from_str_key(&r.word).expect("corpus words fit 16 bytes"), r.count))
        .collect()
}

/// Converts pairs back to records (trimming key padding).
pub fn from_pairs(pairs: &[(Key, u32)]) -> Vec<Record> {
    pairs
        .iter()
        .map(|(k, v)| Record { word: k.display_lossy(), count: *v })
        .collect()
}

/// The byte size of one record in DAIET's fixed encoding (always 20).
pub const fn fixed_size() -> usize {
    KEY_LEN + 4
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Record> {
        vec![
            Record { word: "a".into(), count: 1 },
            Record { word: "sixteen-chars-xy".into(), count: 7 },
            Record { word: "medium".into(), count: 42 },
        ]
    }

    #[test]
    fn varlen_round_trips() {
        let recs = sample();
        let bytes = encode_varlen(&recs);
        assert_eq!(decode_varlen(&bytes).unwrap(), recs);
        // Size: (1+1+4) + (1+16+4) + (1+6+4) = 38.
        assert_eq!(bytes.len(), 38);
        assert_eq!(varlen_size("a") + varlen_size("sixteen-chars-xy") + varlen_size("medium"), 38);
    }

    #[test]
    fn truncated_varlen_is_rejected() {
        let bytes = encode_varlen(&sample());
        assert!(decode_varlen(&bytes[..bytes.len() - 1]).is_none());
        assert!(decode_varlen(&bytes[..1]).is_none());
        assert_eq!(decode_varlen(&[]).unwrap(), vec![]);
    }

    #[test]
    fn fixed_encoding_pads_keys() {
        let pairs = to_pairs(&sample());
        assert_eq!(pairs.len(), 3);
        // Every pair costs 20 bytes regardless of word length — the
        // paper's overhead observation.
        assert_eq!(fixed_size(), 20);
        let back = from_pairs(&pairs.iter().map(|p| (p.key, p.value)).collect::<Vec<_>>());
        assert_eq!(back[0].word, "a");
        assert_eq!(back[1].word, "sixteen-chars-xy");
        assert_eq!(back[2].count, 42);
    }

    #[test]
    fn fixed_is_larger_for_short_words_smaller_never() {
        for r in sample() {
            assert!(fixed_size() >= varlen_size(&r.word) || r.word.len() > 15);
        }
    }
}
