//! # daiet-mapreduce — the Figure-3 workload
//!
//! A MapReduce shuffle with pluggable transports, reproducing the paper's
//! §5 evaluation: "The 12 workers execute a WordCount benchmark on an
//! implementation of MapReduce adapted to send the map results using
//! DAIET", compared against two baselines — "(i) using the original
//! TCP-based data exchange and (ii) using UDP and the DAIET protocol, but
//! without executing data aggregation in the switch."
//!
//! * [`wordcount`] — the corpus generator (collision-free words, per-word
//!   mapper multiplicity, word-length distribution — the knobs that set
//!   the reduction ratios) and ground-truth computation;
//! * [`serialize`] — record encodings: the baseline's variable-length
//!   records vs DAIET's fixed 16 B + 4 B pairs (whose padding the paper
//!   reports as measured overhead);
//! * [`metrics`] — the reducer compute-time model (merge of pre-sorted
//!   runs vs full sort of unordered aggregates — §4's trade-off) and
//!   box-plot statistics;
//! * [`runner`] — drives a complete job over the simulator in each of the
//!   three shuffle modes and collects per-reducer measurements.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod loopback;
pub mod metrics;
pub mod runner;
pub mod serialize;
pub mod tenant;
pub mod wordcount;

pub use metrics::{BoxStats, CostModel, ReducerMetrics};
pub use runner::{RunOutcome, Runner, ShuffleMode};
pub use tenant::WordCountTenant;
pub use wordcount::{Corpus, CorpusSpec};
