//! WordCount over the real-time UDP loopback backend.
//!
//! The same corpus, controller deployment and protocol nodes as
//! [`Runner::run_on`](crate::Runner) with a UDP mode — but instead of a
//! simulator, every slot runs a [`daiet_fabric::NodeDriver`] on its own
//! thread, exchanging genuine datagrams over `127.0.0.1`. This is the
//! backend-equivalence anchor: for a loss-free run (or a lossy run with
//! NACK recovery armed), the reducers' sorted output must be
//! **byte-identical** to the simulator's — `tests/fabric_properties.rs`
//! asserts it.

use crate::serialize;
use crate::Runner;
use daiet::controller::{AggregationMode, Controller};
use daiet::loopback::{wall_clock_config, LoopbackJob, ReducerReport};
use daiet::AggFn;
use daiet_fabric::{DriverStats, ExitReason, FaultShim};
use daiet_netsim::topology::TopologyPlan;

/// One loopback WordCount run's results.
#[derive(Debug)]
pub struct LoopbackOutcome {
    /// Per-reducer reports, indexed by reducer.
    pub reducers: Vec<ReducerReport>,
    /// Per-reducer sorted `(word, count)` output, decoded from the keys
    /// — directly comparable to [`Corpus::expected_reduction`] and to
    /// the simulator runner's read-out.
    ///
    /// [`Corpus::expected_reduction`]: crate::Corpus::expected_reduction
    pub words: Vec<Vec<(String, u32)>>,
    /// Frames dropped by fault shims across all slots.
    pub shim_dropped: u64,
    /// Per-slot driver socket counters.
    pub driver_stats: Vec<DriverStats>,
    /// Whether any driver hit the wall-clock deadline (a wedged run).
    pub deadlined: bool,
}

impl LoopbackOutcome {
    /// True when every reducer completed with exact ground-truth output.
    pub fn all_correct(&self, runner: &Runner) -> bool {
        self.reducers.iter().enumerate().all(|(r, rep)| {
            rep.complete
                && rep.recovery_satisfied
                && self.words[r] == runner.corpus.expected_reduction(r)
        })
    }
}

/// Runs the corpus's WordCount shuffle over loopback UDP sockets:
/// `shim_for(slot)` supplies each slot's egress fault injection
/// ([`FaultShim::none`] for a clean run), `deadline` bounds the
/// wall-clock run time. The runner's `daiet_config` is rescaled with
/// [`wall_clock_config`] — the run is in real time, so sim-scale NACK
/// timeouts would fire off spuriously.
pub fn run_wordcount_loopback(
    runner: &Runner,
    plan: &TopologyPlan,
    mode: AggregationMode,
    shim_for: impl FnMut(usize) -> FaultShim,
    deadline: std::time::Duration,
) -> LoopbackOutcome {
    let mut shim_for = shim_for;
    let placement = runner.placement(plan);
    let spec = &runner.corpus.spec;
    let config = wall_clock_config(runner.daiet_config);
    let job = LoopbackJob::deploy(
        Controller::new(config, AggFn::Sum),
        plan.clone(),
        placement.clone(),
        runner.resources,
        mode,
    )
    .expect("deployment fits");

    let shards: Vec<Vec<Vec<daiet_wire::daiet::Pair>>> = (0..spec.n_mappers)
        .map(|m| {
            (0..spec.n_reducers)
                .map(|r| serialize::to_pairs(&runner.corpus.partitions[m][r]))
                .collect()
        })
        .collect();
    // Sim pacing is tuned for virtual time; at wall clock the driver
    // loop itself paces (one timer fire per iteration), so anything at
    // or above the timer-wheel granularity behaves the same. Clamp up
    // to 50 µs to keep kernel socket buffers comfortable.
    let pacing = daiet_fabric::Duration::from_nanos(runner.pacing.as_nanos().max(50_000));
    let mut specs = job.specs(shards, pacing, runner.redundancy);
    for (slot, spec) in specs.iter_mut().enumerate() {
        spec.shim = shim_for(slot);
    }
    let out = daiet_fabric::run_cluster(specs, &job.links(), deadline);

    let deadlined = out.iter().any(|o| o.exit == ExitReason::Deadline);
    let shim_dropped = out.iter().map(|o| o.stats.shim_dropped).sum();
    let driver_stats: Vec<DriverStats> = out.iter().map(|o| o.stats).collect();
    let mut outcomes: Vec<Option<ReducerReport>> = out
        .into_iter()
        .map(|o| o.result.downcast::<ReducerReport>().ok().map(|b| *b))
        .collect();
    let reducers: Vec<ReducerReport> = placement
        .reducers
        .iter()
        .map(|&slot| outcomes[slot].take().expect("reducer slots produce reports"))
        .collect();
    let words: Vec<Vec<(String, u32)>> = reducers
        .iter()
        .map(|rep| {
            rep.pairs.iter().map(|(k, v)| (k.display_lossy(), *v)).collect()
        })
        .collect();
    LoopbackOutcome { reducers, words, shim_dropped, driver_stats, deadlined }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wordcount::{Corpus, CorpusSpec};

    /// A tiny corpus end-to-end over real sockets, in-network
    /// aggregation, no injected loss: every reducer must land exactly on
    /// the ground truth.
    #[test]
    fn tiny_wordcount_completes_over_loopback() {
        let runner = Runner::new(Corpus::generate(&CorpusSpec::tiny(3)));
        let plan = runner.star_plan();
        let out = run_wordcount_loopback(
            &runner,
            &plan,
            AggregationMode::InNetwork,
            |_| FaultShim::none(),
            std::time::Duration::from_secs(60),
        );
        assert!(!out.deadlined, "run hit the deadline");
        assert!(out.all_correct(&runner), "reducers diverged from ground truth");
        assert_eq!(out.shim_dropped, 0);
    }

    /// Seeded loss on the switch's egress — the frames that carry the
    /// aggregated results — with NACK recovery armed: the run must still
    /// land exactly, and must actually have dropped and recovered
    /// something.
    #[test]
    fn switch_egress_loss_is_nack_recovered_over_loopback() {
        let spec = CorpusSpec::tiny(5);
        let mut runner = Runner::new(Corpus::generate(&spec));
        runner.daiet_config.reliability = true;
        runner.daiet_config.nack_recovery = true;
        runner.daiet_config = runner.daiet_config.with_rtx_sized_for_flush();
        let plan = runner.star_plan();
        let switch_slot = plan.switches()[0];
        let out = run_wordcount_loopback(
            &runner,
            &plan,
            AggregationMode::InNetwork,
            |slot| {
                if slot == switch_slot {
                    // Scripted drop of egress frame 0 guarantees at least
                    // one loss even when the seeded 10% stream spares the
                    // handful of frames a tiny corpus produces.
                    FaultShim::seeded(77, 0.10, 0.0).with_scripted_drops([0])
                } else {
                    FaultShim::none()
                }
            },
            std::time::Duration::from_secs(60),
        );
        assert!(!out.deadlined, "recovery never converged");
        assert!(out.all_correct(&runner), "loss leaked into the result");
        assert!(out.shim_dropped > 0, "shim injected no loss — test is vacuous");
        let nacks: u64 = out.reducers.iter().map(|r| r.nacks_emitted).sum();
        assert!(nacks > 0, "loss was repaired without NACKs?");
    }
}
