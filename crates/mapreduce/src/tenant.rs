//! WordCount as a multi-tenant job: the [`daiet::tenant::TenantWorkload`]
//! adapter over the deterministic [`Corpus`] generator.
//!
//! One round, `n_mappers` senders, one SUM tree per reducer. The shards
//! fed to the fabric are exactly the corpus's per-reducer map-output
//! partitions, so `verify` can check the collected trees against
//! [`Corpus::expected_reduction`] bit-for-bit — the same ground truth the
//! single-tenant runner uses.

use crate::wordcount::{Corpus, CorpusSpec};
use daiet::agg::AggFn;
use daiet::tenant::{fold_round_digest, TenantWorkload, DIGEST_SEED};
use daiet_wire::daiet::{Key, Pair};

/// A WordCount job runnable under the multi-tenant scheduler.
#[derive(Debug, Clone)]
pub struct WordCountTenant {
    corpus: Corpus,
    collected: Vec<Vec<(Key, u32)>>,
    digest: u64,
}

impl WordCountTenant {
    /// A tenant over a freshly generated corpus.
    pub fn new(spec: &CorpusSpec) -> WordCountTenant {
        WordCountTenant {
            corpus: Corpus::generate(spec),
            collected: Vec::new(),
            digest: DIGEST_SEED,
        }
    }

    /// A small tenant for tests (the [`CorpusSpec::tiny`] shape).
    pub fn tiny(seed: u64) -> WordCountTenant {
        WordCountTenant::new(&CorpusSpec::tiny(seed))
    }

    /// The corpus this job shuffles.
    pub fn corpus(&self) -> &Corpus {
        &self.corpus
    }
}

impl TenantWorkload for WordCountTenant {
    fn label(&self) -> String {
        format!("wordcount[{}w]", self.corpus.spec.distinct_words)
    }

    fn senders(&self) -> usize {
        self.corpus.spec.n_mappers
    }

    fn aggs(&self) -> Vec<AggFn> {
        vec![AggFn::Sum; self.corpus.spec.n_reducers]
    }

    fn rounds(&self) -> u64 {
        1
    }

    fn shards(&mut self, _round: u64) -> Vec<Vec<Vec<Pair>>> {
        self.corpus
            .partitions
            .iter()
            .map(|per_reducer| {
                per_reducer
                    .iter()
                    .map(|records| {
                        records
                            .iter()
                            .map(|rec| {
                                let key = Key::from_str_key(&rec.word)
                                    .expect("corpus words fit the key width");
                                Pair::new(key, rec.count)
                            })
                            .collect()
                    })
                    .collect()
            })
            .collect()
    }

    fn absorb(&mut self, _round: u64, per_tree: Vec<Vec<(Key, u32)>>) {
        self.digest = fold_round_digest(self.digest, &per_tree);
        self.collected = per_tree;
    }

    fn digest(&self) -> u64 {
        self.digest
    }

    fn verify(&self) -> Result<(), String> {
        if self.collected.len() != self.corpus.spec.n_reducers {
            return Err(format!(
                "wordcount: got {} trees, expected {}",
                self.collected.len(),
                self.corpus.spec.n_reducers
            ));
        }
        for (r, got) in self.collected.iter().enumerate() {
            let want = self.corpus.expected_reduction(r);
            if got.len() != want.len() {
                return Err(format!(
                    "wordcount reducer {r}: {} words, expected {}",
                    got.len(),
                    want.len()
                ));
            }
            for ((gk, gv), (word, count)) in got.iter().zip(want) {
                let wk = Key::from_str_key(word).expect("corpus word fits the key width");
                if *gk != wk || gv != count {
                    return Err(format!(
                        "wordcount reducer {r}: got ({}, {gv}), expected ({word}, {count})",
                        gk.display_lossy()
                    ));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shards_cover_every_record_exactly_once() {
        let mut t = WordCountTenant::tiny(3);
        let shards = t.shards(0);
        assert_eq!(shards.len(), t.corpus.spec.n_mappers);
        let total: usize = shards
            .iter()
            .flat_map(|per_tree| per_tree.iter().map(Vec::len))
            .sum();
        assert_eq!(total, t.corpus.total_records());
    }

    #[test]
    fn absorbing_the_expected_reduction_verifies() {
        let mut t = WordCountTenant::tiny(4);
        let per_tree: Vec<Vec<(Key, u32)>> = (0..t.corpus.spec.n_reducers)
            .map(|r| {
                t.corpus
                    .expected_reduction(r)
                    .iter()
                    .map(|(w, c)| (Key::from_str_key(w).unwrap(), *c))
                    .collect()
            })
            .collect();
        t.absorb(0, per_tree);
        t.verify().expect("expected reduction must verify");
        assert_ne!(t.digest(), DIGEST_SEED, "digest folds the result");
    }

    #[test]
    fn a_wrong_count_fails_verification() {
        let mut t = WordCountTenant::tiny(4);
        let mut per_tree: Vec<Vec<(Key, u32)>> = (0..t.corpus.spec.n_reducers)
            .map(|r| {
                t.corpus
                    .expected_reduction(r)
                    .iter()
                    .map(|(w, c)| (Key::from_str_key(w).unwrap(), *c))
                    .collect()
            })
            .collect();
        per_tree[0][0].1 = per_tree[0][0].1.wrapping_add(1);
        t.absorb(0, per_tree);
        assert!(t.verify().is_err());
    }
}
