//! The Figure-1(c) series: per-iteration traffic reduction ratio for
//! PageRank, SSSP and WCC.
//!
//! "The traffic reduction ratio is calculated by combining all the
//! messages sent to the same destination into a single message by
//! applying the aggregation function used by the algorithm, i.e., sum,
//! inside the network" — i.e. `1 − distinct_destinations / messages` per
//! superstep, the quantity [`crate::pregel::MessageCensus`] records.

use crate::algos::{PageRank, Sssp, Wcc};
use crate::graph::Graph;
use crate::pregel::{run, MessageCensus};

/// Which algorithm to drive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlgoKind {
    /// PageRank (sum combiner); runs on the directed graph.
    PageRank,
    /// Single-source shortest paths (min combiner) from vertex 0, on the
    /// undirected view (like GPS's SSSP on LiveJournal).
    Sssp,
    /// Weakly connected components (min combiner), undirected view.
    Wcc,
}

impl AlgoKind {
    /// Display name matching the figure legend.
    pub fn name(&self) -> &'static str {
        match self {
            AlgoKind::PageRank => "PageRank",
            AlgoKind::Sssp => "SSSP",
            AlgoKind::Wcc => "WCC",
        }
    }
}

/// One iteration's traffic numbers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SuperstepTraffic {
    /// Iteration (1-based like the figure's x-axis).
    pub iteration: usize,
    /// Messages the wire would carry unaggregated.
    pub messages: u64,
    /// Messages after perfect per-destination combining.
    pub combined: u64,
    /// The reduction ratio `1 − combined/messages`.
    pub reduction: f64,
}

/// Runs `algo` on `graph` for up to `iterations` supersteps and returns
/// the reduction series (entries stop early if the algorithm converges,
/// as WCC and SSSP do).
pub fn reduction_series(algo: AlgoKind, graph: &Graph, iterations: usize) -> Vec<SuperstepTraffic> {
    let census: Vec<MessageCensus> = match algo {
        AlgoKind::PageRank => run(&PageRank::default(), graph, iterations).1,
        AlgoKind::Sssp => {
            let und = graph.undirected();
            run(&Sssp { source: 0 }, &und, iterations).1
        }
        AlgoKind::Wcc => {
            let und = graph.undirected();
            run(&Wcc, &und, iterations).1
        }
    };
    census
        .into_iter()
        .take(iterations)
        .enumerate()
        .filter(|(_, c)| c.produced > 0)
        .map(|(i, c)| SuperstepTraffic {
            iteration: i + 1,
            messages: c.produced,
            combined: c.distinct_destinations,
            reduction: c.reduction_ratio(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{rmat, RmatSpec};

    fn lj(scale: u32) -> Graph {
        rmat(&RmatSpec::livejournal_like(scale, 11))
    }

    #[test]
    fn pagerank_reduction_is_high_and_flat() {
        // Paper: "the traffic reduction ratio is almost the same across
        // all iterations", approaching 1 − V/E ≈ 0.93 on LiveJournal.
        let g = lj(12);
        let series = reduction_series(AlgoKind::PageRank, &g, 10);
        assert_eq!(series.len(), 10);
        let first = series[0].reduction;
        assert!(first > 0.80, "PageRank reduction {first:.3}");
        for s in &series {
            assert!((s.reduction - first).abs() < 0.03, "not flat: {series:?}");
        }
    }

    #[test]
    fn sssp_reduction_rises_with_the_frontier() {
        let g = lj(12);
        let series = reduction_series(AlgoKind::Sssp, &g, 10);
        assert!(series.len() >= 3);
        let early = series[0].reduction;
        let peak = series.iter().map(|s| s.reduction).fold(0.0f64, f64::max);
        assert!(
            peak > early + 0.2,
            "SSSP should climb: early {early:.3}, peak {peak:.3} ({series:?})"
        );
    }

    #[test]
    fn wcc_starts_high_then_falls() {
        let g = lj(12);
        let series = reduction_series(AlgoKind::Wcc, &g, 10);
        assert!(series.len() >= 3);
        let first = series[0].reduction;
        let last = series.last().unwrap().reduction;
        assert!(first > 0.5, "WCC first iteration reduction {first:.3}");
        assert!(last < first, "WCC should decay: {series:?}");
    }

    #[test]
    fn reductions_sit_in_the_papers_band() {
        // "The potential traffic reduction ratio in all the three
        // applications ranges from 48% up to 93%" — check the envelope
        // of the meaningful (high-volume) iterations.
        let g = lj(13);
        for algo in [AlgoKind::PageRank, AlgoKind::Sssp, AlgoKind::Wcc] {
            let series = reduction_series(algo, &g, 10);
            let peak = series.iter().map(|s| s.reduction).fold(0.0f64, f64::max);
            assert!(
                (0.45..=0.97).contains(&peak),
                "{}: peak reduction {peak:.3} outside band",
                algo.name()
            );
        }
    }

    #[test]
    fn combined_never_exceeds_messages() {
        let g = lj(10);
        for algo in [AlgoKind::PageRank, AlgoKind::Sssp, AlgoKind::Wcc] {
            for s in reduction_series(algo, &g, 10) {
                assert!(s.combined <= s.messages);
                assert!((0.0..=1.0).contains(&s.reduction));
            }
        }
    }
}
