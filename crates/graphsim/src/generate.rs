//! Graph generators.
//!
//! The paper's LiveJournal snapshot (4.8 M vertices, 68 M edges, power-law
//! degrees, average degree ≈14.2) is substituted with an R-MAT generator
//! using the classic skew (a=0.57, b=0.19, c=0.19, d=0.05). The traffic
//! reduction ratio of Figure 1(c) is a function of degree structure and
//! per-superstep activation, both of which R-MAT preserves; the scale is
//! configurable so benches can approach the original size while tests
//! stay fast.

use crate::graph::Graph;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// R-MAT parameters.
#[derive(Debug, Clone, Copy)]
pub struct RmatSpec {
    /// log2 of the vertex count.
    pub scale: u32,
    /// Edges per vertex (LiveJournal ≈ 14.2, rounded to 14).
    pub edge_factor: usize,
    /// Quadrant probabilities (must sum to ~1).
    pub a: f64,
    /// Upper-right quadrant.
    pub b: f64,
    /// Lower-left quadrant.
    pub c: f64,
    /// RNG seed.
    pub seed: u64,
}

impl RmatSpec {
    /// LiveJournal-shaped at `scale` (vertices = `2^scale`).
    pub fn livejournal_like(scale: u32, seed: u64) -> RmatSpec {
        RmatSpec { scale, edge_factor: 14, a: 0.57, b: 0.19, c: 0.19, seed }
    }
}

/// Generates an R-MAT graph.
pub fn rmat(spec: &RmatSpec) -> Graph {
    let n = 1usize << spec.scale;
    let m = n * spec.edge_factor;
    let mut rng = SmallRng::seed_from_u64(spec.seed);
    let mut edges = Vec::with_capacity(m);
    for _ in 0..m {
        let (mut x0, mut x1) = (0usize, n);
        let (mut y0, mut y1) = (0usize, n);
        while x1 - x0 > 1 {
            let r: f64 = rng.random();
            let (dx, dy) = if r < spec.a {
                (0, 0)
            } else if r < spec.a + spec.b {
                (1, 0)
            } else if r < spec.a + spec.b + spec.c {
                (0, 1)
            } else {
                (1, 1)
            };
            let mx = (x0 + x1) / 2;
            let my = (y0 + y1) / 2;
            if dx == 0 {
                x1 = mx;
            } else {
                x0 = mx;
            }
            if dy == 0 {
                y1 = my;
            } else {
                y0 = my;
            }
        }
        edges.push((x0 as u32, y0 as u32));
    }
    Graph::from_edges(n, &edges)
}

/// A deterministic path graph `0 → 1 → … → n−1` (tests).
pub fn path(n: usize) -> Graph {
    let edges: Vec<(u32, u32)> = (0..n as u32 - 1).map(|i| (i, i + 1)).collect();
    Graph::from_edges(n, &edges)
}

/// A complete bipartite-ish fan: every vertex of the first class points
/// at every vertex of the second (tests aggregate-heavy traffic).
pub fn fan(sources: usize, sinks: usize) -> Graph {
    let mut edges = Vec::with_capacity(sources * sinks);
    for s in 0..sources as u32 {
        for t in 0..sinks as u32 {
            edges.push((s, sources as u32 + t));
        }
    }
    Graph::from_edges(sources + sinks, &edges)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rmat_has_requested_size() {
        let g = rmat(&RmatSpec::livejournal_like(10, 1));
        assert_eq!(g.vertices(), 1024);
        assert_eq!(g.edges(), 1024 * 14);
        assert!((g.avg_degree() - 14.0).abs() < 1e-9);
    }

    #[test]
    fn rmat_is_deterministic_per_seed() {
        let a = rmat(&RmatSpec::livejournal_like(8, 5));
        let b = rmat(&RmatSpec::livejournal_like(8, 5));
        for v in 0..a.vertices() as u32 {
            assert_eq!(a.out(v), b.out(v));
        }
        let c = rmat(&RmatSpec::livejournal_like(8, 6));
        let differs = (0..a.vertices() as u32).any(|v| a.out(v) != c.out(v));
        assert!(differs);
    }

    #[test]
    fn rmat_degrees_are_skewed() {
        let g = rmat(&RmatSpec::livejournal_like(12, 2));
        let mut degrees: Vec<usize> = (0..g.vertices() as u32).map(|v| g.out_degree(v)).collect();
        degrees.sort_unstable_by(|a, b| b.cmp(a));
        // Power law: the top 1% of vertices hold far more than 1% of
        // edges (LiveJournal-like hubs).
        let top: usize = degrees[..g.vertices() / 100].iter().sum();
        assert!(
            top as f64 > 0.10 * g.edges() as f64,
            "top-1% held only {top} of {} edges",
            g.edges()
        );
    }

    #[test]
    fn helpers_shape_as_documented() {
        let p = path(5);
        assert_eq!(p.out(0), &[1]);
        assert_eq!(p.out(4), &[] as &[u32]);
        let f = fan(3, 2);
        assert_eq!(f.out(0), &[3, 4]);
        assert_eq!(f.out_degree(4), 0);
        assert_eq!(f.edges(), 6);
    }
}
