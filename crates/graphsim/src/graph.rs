//! Directed graphs in compressed sparse row form.

/// A directed graph, CSR-encoded: `offsets[v]..offsets[v+1]` indexes the
/// out-neighbors of `v` in `targets`.
#[derive(Debug, Clone)]
pub struct Graph {
    offsets: Vec<usize>,
    targets: Vec<u32>,
}

impl Graph {
    /// Builds a graph with `n` vertices from an edge list. Parallel edges
    /// are kept (they carry distinct messages in Pregel); self-loops are
    /// kept too.
    pub fn from_edges(n: usize, edges: &[(u32, u32)]) -> Graph {
        let mut degree = vec![0usize; n];
        for &(s, _) in edges {
            degree[s as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut acc = 0usize;
        offsets.push(0);
        for d in &degree {
            acc += d;
            offsets.push(acc);
        }
        let mut cursor = offsets.clone();
        let mut targets = vec![0u32; edges.len()];
        for &(s, t) in edges {
            targets[cursor[s as usize]] = t;
            cursor[s as usize] += 1;
        }
        Graph { offsets, targets }
    }

    /// Vertex count.
    pub fn vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Edge count.
    pub fn edges(&self) -> usize {
        self.targets.len()
    }

    /// Out-neighbors of `v`.
    pub fn out(&self, v: u32) -> &[u32] {
        &self.targets[self.offsets[v as usize]..self.offsets[v as usize + 1]]
    }

    /// Out-degree of `v`.
    pub fn out_degree(&self, v: u32) -> usize {
        self.out(v).len()
    }

    /// Average out-degree.
    pub fn avg_degree(&self) -> f64 {
        self.edges() as f64 / self.vertices() as f64
    }

    /// The graph with every edge reversed (used to build undirected views
    /// for WCC and SSSP on directed inputs).
    pub fn reversed(&self) -> Graph {
        let mut edges = Vec::with_capacity(self.edges());
        for v in 0..self.vertices() as u32 {
            for &t in self.out(v) {
                edges.push((t, v));
            }
        }
        Graph::from_edges(self.vertices(), &edges)
    }

    /// An undirected view: both directions of every edge, deduplicated.
    pub fn undirected(&self) -> Graph {
        let mut edges = Vec::with_capacity(self.edges() * 2);
        for v in 0..self.vertices() as u32 {
            for &t in self.out(v) {
                edges.push((v, t));
                edges.push((t, v));
            }
        }
        edges.sort_unstable();
        edges.dedup();
        Graph::from_edges(self.vertices(), &edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Graph {
        Graph::from_edges(3, &[(0, 1), (1, 2), (2, 0)])
    }

    #[test]
    fn csr_layout_is_correct() {
        let g = Graph::from_edges(4, &[(0, 1), (0, 2), (2, 3), (3, 0)]);
        assert_eq!(g.vertices(), 4);
        assert_eq!(g.edges(), 4);
        assert_eq!(g.out(0), &[1, 2]);
        assert_eq!(g.out(1), &[] as &[u32]);
        assert_eq!(g.out(2), &[3]);
        assert_eq!(g.out_degree(3), 1);
        assert_eq!(g.avg_degree(), 1.0);
    }

    #[test]
    fn reversal_flips_edges() {
        let g = triangle().reversed();
        assert_eq!(g.out(1), &[0]);
        assert_eq!(g.out(2), &[1]);
        assert_eq!(g.out(0), &[2]);
    }

    #[test]
    fn undirected_doubles_and_dedups() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 0), (1, 2)]);
        let u = g.undirected();
        assert_eq!(u.out(0), &[1]);
        assert_eq!(u.out(1), &[0, 2]);
        assert_eq!(u.out(2), &[1]);
        assert_eq!(u.edges(), 4);
    }

    #[test]
    fn parallel_edges_are_kept_in_directed_form() {
        let g = Graph::from_edges(2, &[(0, 1), (0, 1)]);
        assert_eq!(g.out(0), &[1, 1]);
    }
}
