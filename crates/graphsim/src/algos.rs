//! The three algorithms of Figure 1(c), each "associated with a
//! commutative and associative aggregation function" (§3).

use crate::graph::Graph;
use crate::pregel::VertexProgram;

/// PageRank with sum-combining.
///
/// "each vertex starts by sending its PageRank value to all its
/// neighbours. Then, each vertex in the next iteration receives and sums
/// the various values from its neighbours and calculates a new PageRank
/// value … In each iteration, all vertices are active" (§3).
pub struct PageRank {
    /// Damping factor (0.85 classically).
    pub damping: f64,
}

impl Default for PageRank {
    fn default() -> Self {
        PageRank { damping: 0.85 }
    }
}

impl VertexProgram for PageRank {
    type State = f64;
    type Msg = f64;

    fn combine(&self, a: f64, b: f64) -> f64 {
        a + b
    }

    fn init(&self, _v: u32, graph: &Graph) -> f64 {
        1.0 / graph.vertices() as f64
    }

    fn first_messages(&self, v: u32, state: &f64, graph: &Graph) -> Vec<(u32, f64)> {
        let deg = graph.out_degree(v);
        if deg == 0 {
            return vec![];
        }
        let share = *state / deg as f64;
        graph.out(v).iter().map(|&t| (t, share)).collect()
    }

    fn step(&self, v: u32, state: &mut f64, inbox: f64, graph: &Graph) -> Vec<(u32, f64)> {
        *state = (1.0 - self.damping) / graph.vertices() as f64 + self.damping * inbox;
        let deg = graph.out_degree(v);
        if deg == 0 {
            return vec![];
        }
        let share = *state / deg as f64;
        graph.out(v).iter().map(|&t| (t, share)).collect()
    }
}

/// Single-source shortest paths with min-combining (unit edge weights).
///
/// "SSSP starts by sending a smaller number of messages from the source
/// vertex. In the following iteration, the number of messages increases
/// exponentially" (§3).
pub struct Sssp {
    /// The source vertex.
    pub source: u32,
}

impl VertexProgram for Sssp {
    type State = u64;
    type Msg = u64;

    fn combine(&self, a: u64, b: u64) -> u64 {
        a.min(b)
    }

    fn init(&self, v: u32, _graph: &Graph) -> u64 {
        if v == self.source {
            0
        } else {
            u64::MAX
        }
    }

    fn first_messages(&self, v: u32, state: &u64, graph: &Graph) -> Vec<(u32, u64)> {
        if *state == 0 {
            graph.out(v).iter().map(|&t| (t, 1)).collect()
        } else {
            vec![]
        }
    }

    fn step(&self, v: u32, state: &mut u64, inbox: u64, graph: &Graph) -> Vec<(u32, u64)> {
        if inbox < *state {
            *state = inbox;
            graph.out(v).iter().map(|&t| (t, inbox + 1)).collect()
        } else {
            vec![]
        }
    }
}

/// Weakly connected components with min-combining over component labels.
///
/// "WCC starts by sending large number of messages from all vertices
/// which decrease as the algorithm converges" (§3). Run on the
/// undirected view of the graph.
pub struct Wcc;

impl VertexProgram for Wcc {
    type State = u32;
    type Msg = u32;

    fn combine(&self, a: u32, b: u32) -> u32 {
        a.min(b)
    }

    fn init(&self, v: u32, _graph: &Graph) -> u32 {
        v
    }

    fn first_messages(&self, v: u32, state: &u32, graph: &Graph) -> Vec<(u32, u32)> {
        graph.out(v).iter().map(|&t| (t, *state)).collect()
    }

    fn step(&self, v: u32, state: &mut u32, inbox: u32, graph: &Graph) -> Vec<(u32, u32)> {
        if inbox < *state {
            *state = inbox;
            graph.out(v).iter().map(|&t| (t, inbox)).collect()
        } else {
            vec![]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::path;
    use crate::pregel::run;

    #[test]
    fn pagerank_sums_to_one_and_ranks_hubs() {
        // Star pointing at vertex 0: 0 should outrank the leaves.
        let mut edges = vec![];
        for v in 1..=5u32 {
            edges.push((v, 0));
            edges.push((0, v));
        }
        let g = Graph::from_edges(6, &edges);
        let (ranks, _) = run(&PageRank::default(), &g, 30);
        let total: f64 = ranks.iter().sum();
        assert!((total - 1.0).abs() < 1e-6, "ranks sum to {total}");
        for leaf in 1..6 {
            assert!(ranks[0] > ranks[leaf]);
        }
    }

    #[test]
    fn sssp_computes_hop_distances() {
        let g = path(5);
        let (dist, _) = run(&Sssp { source: 0 }, &g, 10);
        assert_eq!(dist, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn sssp_unreachable_stays_infinite() {
        let g = Graph::from_edges(3, &[(0, 1)]);
        let (dist, _) = run(&Sssp { source: 0 }, &g, 10);
        assert_eq!(dist[2], u64::MAX);
    }

    #[test]
    fn sssp_frontier_grows_then_shrinks() {
        // Binary-tree-ish fanout: message volume rises for a few rounds.
        let mut edges = vec![];
        for v in 0..31u32 {
            if 2 * v + 2 < 63 {
                edges.push((v, 2 * v + 1));
                edges.push((v, 2 * v + 2));
            }
        }
        let g = Graph::from_edges(63, &edges);
        let (_, census) = run(&Sssp { source: 0 }, &g, 20);
        let produced: Vec<u64> = census.iter().map(|c| c.produced).collect();
        let max_idx = produced
            .iter()
            .enumerate()
            .max_by_key(|(_, &p)| p)
            .map(|(i, _)| i)
            .unwrap();
        assert!(max_idx > 0, "message volume should grow: {produced:?}");
    }

    #[test]
    fn wcc_labels_components() {
        // Two components: {0,1,2} and {3,4}.
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (3, 4)]).undirected();
        let (labels, _) = run(&Wcc, &g, 20);
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[1], labels[2]);
        assert_eq!(labels[3], labels[4]);
        assert_ne!(labels[0], labels[3]);
        assert_eq!(labels[0], 0);
        assert_eq!(labels[3], 3);
    }

    #[test]
    fn wcc_message_volume_decreases() {
        // On a long path, label 0 propagates one hop per superstep; the
        // first superstep floods from everyone, later ones quiet down —
        // the paper's "decrease as the algorithm converges".
        let g = path(40).undirected();
        let (_, census) = run(&Wcc, &g, 100);
        assert!(census[0].produced > census[census.len() - 1].produced);
        assert!(census.first().unwrap().active_vertices == 40);
        assert!(census.last().unwrap().active_vertices <= 2);
    }
}
