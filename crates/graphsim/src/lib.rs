//! # daiet-graphsim — the Figure-1(c) workload
//!
//! Reproduces the paper's §3 graph-analytics analysis: PageRank, SSSP and
//! WCC run on a Pregel-style vertex-centric engine (the paper used GPS, a
//! Pregel clone, on the LiveJournal graph: 4.8 M vertices, 68 M edges).
//! Each algorithm's messages combine with a commutative/associative
//! function (sum for PageRank, min for SSSP and WCC), so "the traffic
//! reduction ratio is calculated by combining all the messages sent to
//! the same destination into a single message by applying the aggregation
//! function used by the algorithm … inside the network".
//!
//! * [`graph`] — CSR graphs;
//! * [`generate`] — R-MAT power-law generator (LiveJournal-shaped at
//!   configurable scale) plus small deterministic graphs for tests;
//! * [`pregel`] — the BSP engine with combiners and a per-superstep
//!   message census;
//! * [`algos`] — PageRank, SSSP, WCC as vertex programs;
//! * [`traffic`] — the Figure-1(c) reduction-ratio series;
//! * [`netrun`] — Pregel supersteps carried by the real dataplane (one
//!   DAIET round per superstep, in-network combiners), bit-identical to
//!   the analytic engine even under link faults.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod algos;
pub mod generate;
pub mod graph;
pub mod netrun;
pub mod pregel;
pub mod traffic;

pub use graph::Graph;
pub use netrun::{FixedPageRank, PacketPregelOutcome, PacketPregelSpec};
pub use traffic::{reduction_series, AlgoKind, SuperstepTraffic};
