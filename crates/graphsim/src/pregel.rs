//! A Pregel-style BSP engine with message combiners and a traffic census.
//!
//! Vertices run a [`VertexProgram`] per superstep over their inbox,
//! emitting messages along out-edges; a commutative/associative combiner
//! merges messages addressed to the same vertex. The engine records, per
//! superstep, how many messages were produced (what the wire would carry
//! without in-network combining) and how many distinct destinations were
//! addressed (the floor in-network aggregation can reach) — exactly the
//! two quantities behind Figure 1(c).

use crate::graph::Graph;
use daiet::agg::AggFn;

/// Per-superstep message census.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MessageCensus {
    /// Messages emitted by vertex programs.
    pub produced: u64,
    /// Distinct destination vertices addressed.
    pub distinct_destinations: u64,
    /// Vertices active this superstep.
    pub active_vertices: u64,
}

impl MessageCensus {
    /// The Figure-1(c) quantity: fraction of messages removable by
    /// combining per destination (0 when no messages flowed).
    pub fn reduction_ratio(&self) -> f64 {
        if self.produced == 0 {
            0.0
        } else {
            1.0 - self.distinct_destinations as f64 / self.produced as f64
        }
    }
}

/// The interface a vertex program implements.
pub trait VertexProgram {
    /// Per-vertex state.
    type State: Clone;
    /// Message value (merged by the combiner).
    type Msg: Copy;

    /// The combiner (must be commutative and associative, §1).
    fn combine(&self, a: Self::Msg, b: Self::Msg) -> Self::Msg;

    /// Initial state of vertex `v`.
    fn init(&self, v: u32, graph: &Graph) -> Self::State;

    /// Messages every vertex sends in superstep 0 (before any inbox).
    fn first_messages(&self, v: u32, state: &Self::State, graph: &Graph) -> Vec<(u32, Self::Msg)>;

    /// Processes the combined inbox of `v`; returns outgoing messages.
    /// Returning no messages (and not mutating state) lets the vertex go
    /// inactive; it reactivates when messaged.
    fn step(
        &self,
        v: u32,
        state: &mut Self::State,
        inbox: Self::Msg,
        graph: &Graph,
    ) -> Vec<(u32, Self::Msg)>;
}

/// Runs `program` for up to `max_supersteps`, returning final states and
/// the per-superstep census (entry 0 covers the initial broadcast).
pub fn run<P: VertexProgram>(
    program: &P,
    graph: &Graph,
    max_supersteps: usize,
) -> (Vec<P::State>, Vec<MessageCensus>) {
    let n = graph.vertices();
    let mut states: Vec<P::State> = (0..n as u32).map(|v| program.init(v, graph)).collect();
    let mut census = Vec::new();

    // Superstep 0: initial messages.
    let mut inbox: Vec<Option<P::Msg>> = vec![None; n];
    let mut c = MessageCensus::default();
    for v in 0..n as u32 {
        let out = program.first_messages(v, &states[v as usize], graph);
        if !out.is_empty() {
            c.active_vertices += 1;
        }
        for (dst, msg) in out {
            c.produced += 1;
            let slot = &mut inbox[dst as usize];
            *slot = Some(match slot.take() {
                Some(prev) => program.combine(prev, msg),
                None => msg,
            });
        }
    }
    c.distinct_destinations = inbox.iter().filter(|m| m.is_some()).count() as u64;
    census.push(c);

    for _ in 1..=max_supersteps {
        let mut next: Vec<Option<P::Msg>> = vec![None; n];
        let mut c = MessageCensus::default();
        let mut any = false;
        for v in 0..n as u32 {
            if let Some(msg) = inbox[v as usize].take() {
                any = true;
                c.active_vertices += 1;
                for (dst, out) in program.step(v, &mut states[v as usize], msg, graph) {
                    c.produced += 1;
                    let slot = &mut next[dst as usize];
                    *slot = Some(match slot.take() {
                        Some(prev) => program.combine(prev, out),
                        None => out,
                    });
                }
            }
        }
        if !any {
            break;
        }
        c.distinct_destinations = next.iter().filter(|m| m.is_some()).count() as u64;
        census.push(c);
        inbox = next;
        if c.produced == 0 {
            break;
        }
    }
    (states, census)
}

/// Convenience: wraps an [`AggFn`] as a combiner over `u64` message lanes
/// (used by tests; the algorithms implement `combine` directly on their
/// natural types).
pub fn agg_combine(agg: AggFn, a: u32, b: u32) -> u32 {
    agg.apply(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{fan, path};

    /// Floods a token along a path: each vertex forwards once.
    struct Flood;
    impl VertexProgram for Flood {
        type State = bool; // reached?
        type Msg = u32;

        fn combine(&self, a: u32, b: u32) -> u32 {
            a.min(b)
        }
        fn init(&self, v: u32, _g: &Graph) -> bool {
            v == 0
        }
        fn first_messages(&self, v: u32, state: &bool, g: &Graph) -> Vec<(u32, u32)> {
            if *state {
                g.out(v).iter().map(|&t| (t, 1)).collect()
            } else {
                vec![]
            }
        }
        fn step(&self, v: u32, state: &mut bool, _m: u32, g: &Graph) -> Vec<(u32, u32)> {
            if *state {
                return vec![];
            }
            *state = true;
            g.out(v).iter().map(|&t| (t, 1)).collect()
        }
    }

    #[test]
    fn flood_reaches_whole_path() {
        let g = path(6);
        let (states, census) = run(&Flood, &g, 20);
        assert!(states.iter().skip(1).all(|&b| b), "{states:?}");
        // One message per superstep along a path: no combining possible.
        for c in &census {
            assert_eq!(c.produced, c.distinct_destinations);
            assert_eq!(c.reduction_ratio(), 0.0);
        }
        // 5 hops of messages (supersteps 0..=4 emit).
        assert_eq!(census.len(), 6);
    }

    #[test]
    fn fan_in_messages_combine() {
        // 10 sources all message 2 sinks: 20 produced, 2 destinations.
        let g = fan(10, 2);
        struct Blast;
        impl VertexProgram for Blast {
            type State = ();
            type Msg = u32;
            fn combine(&self, a: u32, b: u32) -> u32 {
                a + b
            }
            fn init(&self, _v: u32, _g: &Graph) {}
            fn first_messages(&self, v: u32, _s: &(), g: &Graph) -> Vec<(u32, u32)> {
                g.out(v).iter().map(|&t| (t, 1)).collect()
            }
            fn step(&self, _v: u32, _s: &mut (), _m: u32, _g: &Graph) -> Vec<(u32, u32)> {
                vec![]
            }
        }
        let (_, census) = run(&Blast, &g, 5);
        assert_eq!(census[0].produced, 20);
        assert_eq!(census[0].distinct_destinations, 2);
        assert!((census[0].reduction_ratio() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn combiner_semantics_respected() {
        // Min-combining the fan: every sink sees min = its combined inbox.
        let g = fan(3, 1);
        struct MinBlast;
        impl VertexProgram for MinBlast {
            type State = u32;
            type Msg = u32;
            fn combine(&self, a: u32, b: u32) -> u32 {
                a.min(b)
            }
            fn init(&self, _v: u32, _g: &Graph) -> u32 {
                u32::MAX
            }
            fn first_messages(&self, v: u32, _s: &u32, g: &Graph) -> Vec<(u32, u32)> {
                g.out(v).iter().map(|&t| (t, 10 + v)).collect()
            }
            fn step(&self, _v: u32, s: &mut u32, m: u32, _g: &Graph) -> Vec<(u32, u32)> {
                *s = m;
                vec![]
            }
        }
        let (states, _) = run(&MinBlast, &g, 3);
        assert_eq!(states[3], 10); // min(10, 11, 12)
    }

    #[test]
    fn engine_terminates_when_quiet() {
        let g = path(3);
        let (_, census) = run(&Flood, &g, 1000);
        assert!(census.len() <= 4);
    }
}
