//! Pregel supersteps driven **through the real dataplane**: every
//! superstep's message exchange becomes one DAIET round over a long-lived
//! leaf-spine simulation, with the switches running the algorithm's
//! combiner in-network (§3: "combining all the messages sent to the same
//! destination into a single message by applying the aggregation function
//! used by the algorithm … inside the network").
//!
//! The driver ([`run_packet`]) mirrors [`crate::pregel::run`]'s loop
//! statement for statement — vertex partitioning across workers, one
//! shard of `(dst, msg)` pairs per worker per superstep, the aggregated
//! inbox read back from the collector — so for any
//! [`VertexProgram`] whose `combine` equals a wire [`AggFn`] over `u32`
//! lanes, the packet run's final states **and** per-superstep
//! [`MessageCensus`] are bit-identical to the analytic engine's. That is
//! what `tests/iterative_recovery.rs` pins, loss-free and under
//! every-link chaos at k = 1.
//!
//! [`FixedPageRank`] is the all-integer PageRank this enables: ranks in
//! 16-bit fixed point, SUM-combined (wrapping `u32` addition is exact
//! two's-complement addition, and it is what [`AggFn::Sum`] runs on the
//! switch). [`crate::algos::Wcc`]'s MIN combiner rides the same driver
//! unchanged via [`AggFn::Min`].

// lint:allow-file(layer-netsim): network-mode PageRank harness — drives the
// IterativeRunner under the Simulator. The rank-update aggregation
// protocol itself stays fabric-only.
use crate::graph::Graph;
use crate::pregel::{MessageCensus, VertexProgram};
use daiet::agg::AggFn;
use daiet::worker::{IterativeRunner, IterativeSpec};
use daiet::DaietConfig;
use daiet_netsim::topology::TopologyPlan;
use daiet_netsim::{FaultProfile, LinkSpec, SimDuration};
use daiet_wire::daiet::{Key, Pair};

/// Fractional bits of [`FixedPageRank`]'s rank encoding.
pub const RANK_FRAC_BITS: u32 = 16;
const SCALE: u64 = 1 << RANK_FRAC_BITS;

/// PageRank in pure integer arithmetic: ranks are 16-bit fixed point,
/// messages are rank shares, the combiner is wrapping addition — exactly
/// the [`AggFn::Sum`] a DAIET switch executes, so in-network combining is
/// bit-exact rather than merely approximate. Semantics mirror
/// [`crate::algos::PageRank`] (damping, share-per-out-edge, all vertices
/// active every iteration); only the number representation differs.
pub struct FixedPageRank {
    /// Damping factor in permille (850 = the classic 0.85).
    pub damping_permille: u64,
}

impl Default for FixedPageRank {
    fn default() -> Self {
        FixedPageRank { damping_permille: 850 }
    }
}

impl VertexProgram for FixedPageRank {
    type State = u32;
    type Msg = u32;

    fn combine(&self, a: u32, b: u32) -> u32 {
        a.wrapping_add(b)
    }

    fn init(&self, _v: u32, graph: &Graph) -> u32 {
        (SCALE / graph.vertices() as u64) as u32
    }

    fn first_messages(&self, v: u32, state: &u32, graph: &Graph) -> Vec<(u32, u32)> {
        let deg = graph.out_degree(v);
        if deg == 0 {
            return vec![];
        }
        let share = state / deg as u32;
        graph.out(v).iter().map(|&t| (t, share)).collect()
    }

    fn step(&self, v: u32, state: &mut u32, inbox: u32, graph: &Graph) -> Vec<(u32, u32)> {
        let n = graph.vertices() as u64;
        let dp = self.damping_permille;
        let base = ((1000 - dp) * SCALE / (1000 * n)) as u32;
        let damped = (dp * u64::from(inbox) / 1000) as u32;
        *state = base.wrapping_add(damped);
        let deg = graph.out_degree(v);
        if deg == 0 {
            return vec![];
        }
        let share = *state / deg as u32;
        graph.out(v).iter().map(|&t| (t, share)).collect()
    }
}

/// Wire key of a destination vertex: id in bytes 0–3 (big-endian).
pub fn vertex_key(v: u32) -> Key {
    let mut k = [0u8; 16];
    k[0..4].copy_from_slice(&v.to_be_bytes());
    Key(k)
}

/// Inverse of [`vertex_key`].
pub fn vertex_key_decode(key: &Key) -> u32 {
    let k = &key.0;
    u32::from_be_bytes([k[0], k[1], k[2], k[3]])
}

/// Network configuration of one packet-level Pregel run.
#[derive(Debug, Clone)]
pub struct PacketPregelSpec {
    /// Graph workers (vertex `v` lives on worker `v % workers`).
    pub workers: usize,
    /// The wire aggregation function — must equal the program's
    /// `combine` on `u32` lanes (SUM for [`FixedPageRank`], MIN for
    /// [`crate::algos::Wcc`]).
    pub agg: AggFn,
    /// Fault profile applied to **every** link.
    pub faults: FaultProfile,
    /// Arm NACK recovery (k = 1).
    pub recovery: bool,
    /// Arm dedup windows even without recovery — the redundancy-only
    /// reliability rig (recovery implies them regardless; fully off is
    /// the paper-faithful prototype).
    pub dedup: bool,
    /// Copies of each frame (redundancy-only rigs set this > 1).
    pub redundancy: u32,
    /// Simulation seed.
    pub seed: u64,
}

impl Default for PacketPregelSpec {
    fn default() -> Self {
        PacketPregelSpec {
            workers: 4,
            agg: AggFn::Sum,
            faults: FaultProfile::NONE,
            recovery: true,
            dedup: true,
            redundancy: 1,
            seed: 13,
        }
    }
}

/// What a packet-level Pregel run produced.
#[derive(Debug)]
pub struct PacketPregelOutcome<S> {
    /// Final vertex states.
    pub states: Vec<S>,
    /// Per-superstep census — comparable entry-for-entry with
    /// [`crate::pregel::run`]'s.
    pub census: Vec<MessageCensus>,
    /// Network rounds driven (= census entries).
    pub rounds: u64,
    /// Frames dropped by fault injection over the whole run.
    pub fault_drops: u64,
    /// NACK frames the inbox collector emitted (0 without recovery).
    pub nacks_emitted: u64,
}

/// Ships one superstep's sharded messages as a DAIET round and reads the
/// combined inbox back. Messages with equal destinations merge in the
/// network (and any stragglers at the collector) under `spec.agg`.
fn ship_round(
    runner: &mut IterativeRunner,
    shards: Vec<Vec<(u32, u32)>>,
    n: usize,
) -> Result<(Vec<Option<u32>>, u64), String> {
    let shard_pairs: Vec<Vec<Vec<Pair>>> = shards
        .into_iter()
        .map(|msgs| {
            vec![msgs
                .into_iter()
                .map(|(dst, val)| Pair::new(vertex_key(dst), val))
                .collect()]
        })
        .collect();
    let out = runner.run_round(&shard_pairs)?;
    let mut inbox: Vec<Option<u32>> = vec![None; n];
    for (k, v) in &out.per_reducer[0] {
        inbox[vertex_key_decode(k) as usize] = Some(*v);
    }
    Ok((inbox, out.net.fault_drops()))
}

/// Runs `program` for up to `max_supersteps` with every message exchange
/// carried by the dataplane — the packet-level counterpart of
/// [`crate::pregel::run`], returning bit-comparable states and census.
/// Errors if any round cannot be completed exactly (loss beyond the NACK
/// budget).
pub fn run_packet<P: VertexProgram<Msg = u32>>(
    program: &P,
    graph: &Graph,
    max_supersteps: usize,
    spec: &PacketPregelSpec,
) -> Result<PacketPregelOutcome<P::State>, String> {
    let n = graph.vertices();
    let workers = spec.workers.max(1);
    let hosts_per_leaf = 3;
    let leaves = (workers + 1).div_ceil(hosts_per_leaf);
    let link = LinkSpec::fast()
        .with_queue_bytes(4 * 1024 * 1024)
        .with_faults(spec.faults);
    let plan = TopologyPlan::leaf_spine(hosts_per_leaf, leaves.max(2), 2, link);
    let config = DaietConfig {
        register_cells: 8192,
        reliability: spec.dedup || spec.recovery || spec.redundancy > 1,
        nack_recovery: spec.recovery,
        ..DaietConfig::default()
    }
    .with_rtx_sized_for_flush();
    let mut ispec =
        IterativeSpec::new(config, plan, (0..workers).collect(), vec![workers]);
    ispec.agg = spec.agg;
    ispec.redundancy = spec.redundancy;
    ispec.seed = spec.seed;
    ispec.pacing = SimDuration::from_micros(1);
    let mut runner = IterativeRunner::build(ispec)?;

    let mut states: Vec<P::State> =
        (0..n as u32).map(|v| program.init(v, graph)).collect();
    let mut census: Vec<MessageCensus> = Vec::new();
    let mut fault_drops = 0u64;

    // Superstep 0: the initial broadcast, sharded by vertex owner.
    let mut shards: Vec<Vec<(u32, u32)>> = vec![Vec::new(); workers];
    let mut c = MessageCensus::default();
    for v in 0..n as u32 {
        let out = program.first_messages(v, &states[v as usize], graph);
        if !out.is_empty() {
            c.active_vertices += 1;
        }
        for (dst, msg) in out {
            c.produced += 1;
            shards[v as usize % workers].push((dst, msg));
        }
    }
    let (mut inbox, drops) = ship_round(&mut runner, shards, n)?;
    fault_drops += drops;
    c.distinct_destinations = inbox.iter().filter(|m| m.is_some()).count() as u64;
    census.push(c);

    for _ in 1..=max_supersteps {
        let mut shards: Vec<Vec<(u32, u32)>> = vec![Vec::new(); workers];
        let mut c = MessageCensus::default();
        let mut any = false;
        for v in 0..n as u32 {
            if let Some(msg) = inbox[v as usize].take() {
                any = true;
                c.active_vertices += 1;
                for (dst, out) in program.step(v, &mut states[v as usize], msg, graph) {
                    c.produced += 1;
                    shards[v as usize % workers].push((dst, out));
                }
            }
        }
        if !any {
            break;
        }
        let (next, drops) = ship_round(&mut runner, shards, n)?;
        fault_drops += drops;
        c.distinct_destinations = next.iter().filter(|m| m.is_some()).count() as u64;
        census.push(c);
        inbox = next;
        if c.produced == 0 {
            break;
        }
    }
    Ok(PacketPregelOutcome {
        states,
        census,
        rounds: runner.rounds_run(),
        fault_drops,
        nacks_emitted: runner.reducer(0).nacks_emitted(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algos::PageRank;
    use crate::generate::{fan, rmat, RmatSpec};
    use crate::pregel::run;

    #[test]
    fn vertex_key_round_trips() {
        for v in [0u32, 1, 255, 1 << 20, u32::MAX] {
            assert_eq!(vertex_key_decode(&vertex_key(v)), v);
        }
    }

    /// The fixed-point program must generate the exact message
    /// *structure* of the float one — the census depends only on the
    /// graph, so Figure 1(c)'s reduction series is unchanged.
    #[test]
    fn fixed_pagerank_census_matches_float_pagerank() {
        let g = rmat(&RmatSpec::livejournal_like(7, 11));
        let (_, float_census) = run(&PageRank::default(), &g, 6);
        let (_, fixed_census) = run(&FixedPageRank::default(), &g, 6);
        assert_eq!(float_census, fixed_census);
    }

    /// Integer PageRank still ranks like PageRank: the hub of a star
    /// outranks its leaves, and total rank is conserved up to integer
    /// truncation.
    #[test]
    fn fixed_pagerank_ranks_hubs() {
        let mut edges = vec![];
        for v in 1..=5u32 {
            edges.push((v, 0));
            edges.push((0, v));
        }
        let g = Graph::from_edges(6, &edges);
        let (ranks, _) = run(&FixedPageRank::default(), &g, 30);
        for leaf in 1..6 {
            assert!(ranks[0] > ranks[leaf], "hub must outrank leaf {leaf}: {ranks:?}");
        }
        let total: u64 = ranks.iter().map(|&r| u64::from(r)).sum();
        // Truncation only ever loses rank, never creates it.
        assert!(total <= SCALE, "rank overflow: {total}");
        assert!(total > SCALE * 9 / 10, "too much truncation loss: {total}");
    }

    /// Messages sum in fixed point exactly: a fan of sources sharing one
    /// sink delivers the wrapping-add of all shares.
    #[test]
    fn fixed_combiner_is_wrapping_sum() {
        let g = fan(10, 1);
        let p = FixedPageRank::default();
        let (_, census) = run(&p, &g, 2);
        assert_eq!(census[0].produced, 10);
        assert_eq!(census[0].distinct_destinations, 1);
        // And the combiner itself is AggFn::Sum on the nose.
        assert_eq!(p.combine(3_000_000_000, 2_000_000_000),
                   AggFn::Sum.apply(3_000_000_000, 2_000_000_000));
    }
}
