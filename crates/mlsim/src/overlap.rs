//! The Figure-1(a,b) overlap metric and experiment driver.
//!
//! "We evaluate the overlap of the tensor updates, i.e., the portion of
//! tensor elements that are updated by multiple workers at the same time.
//! This overlap is representative of the possible data reduction
//! achievable when the updates are aggregated inside the network" (§3).
//!
//! Overlap per step = `|elements updated by ≥ 2 workers| / |elements
//! updated by ≥ 1 worker|`, measured over the weight-matrix rows the
//! workers' shipped gradients *significantly* touch. "Significantly"
//! models what actually goes on the wire: elements whose magnitude is
//! below a small fraction of the update's largest element are not
//! distinguishable from zero in the serialized sparse delta (and would be
//! dropped by any thresholding/compression in the sender). The threshold
//! is the calibration point between the two figure panels: at mini-batch
//! 3 every touched row carries weight comparable to the maximum, so the
//! metric degenerates to plain support overlap; at mini-batch 100 the
//! long tail of rarely-active pixels falls below threshold and the
//! effective update shrinks to the commonly-active core.

use crate::data::{DataSpec, Dataset};
use crate::optimizer::{Adam, Optimizer, Sgd};
use crate::psworker::{PsCluster, StepTrace};
use daiet_wire::fnv::FnvHashMap;

/// One point of the Figure-1 curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OverlapPoint {
    /// Training step.
    pub step: usize,
    /// Overlap percentage (0–100).
    pub overlap_pct: f64,
    /// Rows touched by at least one worker.
    pub union_rows: usize,
    /// Rows touched by at least two workers.
    pub shared_rows: usize,
}

/// Computes the overlap of one step's updates; `threshold_frac` is the
/// significance cutoff relative to each worker's own largest element.
pub fn step_overlap(trace: &StepTrace, threshold_frac: f32) -> OverlapPoint {
    let mut counts: FnvHashMap<usize, u32> = FnvHashMap::default();
    for wu in &trace.updates {
        let max_mag = wu
            .grad
            .rows
            .iter()
            .flat_map(|(_, g)| g.iter())
            .fold(0.0f32, |m, &v| m.max(v.abs()));
        let cutoff = max_mag * threshold_frac;
        for (r, g) in &wu.grad.rows {
            let row_mag = g.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
            if row_mag >= cutoff && row_mag > 0.0 {
                *counts.entry(*r).or_insert(0) += 1;
            }
        }
    }
    let union_rows = counts.len();
    let shared_rows = counts.values().filter(|&&c| c >= 2).count();
    let overlap_pct = if union_rows == 0 {
        0.0
    } else {
        100.0 * shared_rows as f64 / union_rows as f64
    };
    OverlapPoint { step: trace.step, overlap_pct, union_rows, shared_rows }
}

/// Which optimizer the experiment trains with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Which {
    /// Fig 1(a): SGD, mini-batch 3.
    Sgd,
    /// Fig 1(b): Adam, mini-batch 100.
    Adam,
}

/// Parameters of one Figure-1 run.
#[derive(Debug, Clone, Copy)]
pub struct OverlapRun {
    /// The optimizer / mini-batch configuration.
    pub which: Which,
    /// Workers (paper: 5).
    pub workers: usize,
    /// Steps to record (paper: 200).
    pub steps: usize,
    /// Mini-batch override (`None` = the paper's value: 3 for SGD,
    /// 100 for Adam).
    pub batch: Option<usize>,
    /// Significance cutoff for "updated" elements (fraction of the
    /// worker's largest element; see module docs).
    pub threshold_frac: f32,
    /// Mean active pixels per synthetic image.
    pub mean_active: usize,
    /// Dataset seed.
    pub seed: u64,
}

impl OverlapRun {
    /// The paper's Fig 1(a) configuration. `mean_active` and
    /// `threshold_frac` are the calibration pair (chosen once, recorded
    /// in EXPERIMENTS.md) that lands the synthetic workload on the
    /// paper's measured bands: ≈42.5 % (SGD) and ≈66.5 % (Adam).
    pub fn fig1a() -> OverlapRun {
        OverlapRun {
            which: Which::Sgd,
            workers: 5,
            steps: 200,
            batch: None,
            threshold_frac: 0.15,
            mean_active: 40,
            seed: 7,
        }
    }

    /// The paper's Fig 1(b) configuration.
    pub fn fig1b() -> OverlapRun {
        OverlapRun { which: Which::Adam, ..OverlapRun::fig1a() }
    }

    /// The effective mini-batch size.
    pub fn batch_size(&self) -> usize {
        self.batch.unwrap_or(match self.which {
            Which::Sgd => 3,
            Which::Adam => 100,
        })
    }

    /// Runs the experiment, returning one point per step.
    pub fn run(&self) -> Vec<OverlapPoint> {
        let data = Dataset::generate(&DataSpec {
            n: 6000,
            mean_active: self.mean_active,
            seed: self.seed,
        });
        match self.which {
            Which::Sgd => self.drive(&data, Sgd::new(0.1)),
            Which::Adam => self.drive(&data, Adam::new(0.01)),
        }
    }

    fn drive<O: Optimizer>(&self, data: &Dataset, opt: O) -> Vec<OverlapPoint> {
        let mut cluster = PsCluster::new(self.workers, self.batch_size(), opt);
        (0..self.steps)
            .map(|s| step_overlap(&cluster.step(data, s), self.threshold_frac))
            .collect()
    }
}

/// Mean overlap of a run.
pub fn mean_overlap(points: &[OverlapPoint]) -> f64 {
    points.iter().map(|p| p.overlap_pct).sum::<f64>() / points.len().max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(which: Which, workers: usize, steps: usize) -> Vec<OverlapPoint> {
        OverlapRun { which, workers, steps, seed: 3, ..OverlapRun::fig1a() }.run()
    }

    fn mk(rows: &[usize]) -> crate::psworker::WorkerGrad {
        use crate::model::SparseGrad;
        crate::psworker::WorkerGrad {
            worker: 0,
            grad: SparseGrad {
                rows: rows.iter().map(|&r| (r, [1.0; 10])).collect(),
                bias: [0.0; 10],
            },
        }
    }

    #[test]
    fn overlap_definition_on_synthetic_trace() {
        // Worker A touches {1,2,3}, B touches {3,4}: union 4, shared 1.
        let trace = StepTrace { step: 0, updates: vec![mk(&[1, 2, 3]), mk(&[3, 4])] };
        let p = step_overlap(&trace, 0.0);
        assert_eq!(p.union_rows, 4);
        assert_eq!(p.shared_rows, 1);
        assert!((p.overlap_pct - 25.0).abs() < 1e-9);
    }

    #[test]
    fn threshold_drops_insignificant_rows() {
        use crate::model::SparseGrad;
        use crate::psworker::WorkerGrad;
        let grad = SparseGrad {
            rows: vec![(0, [1.0; 10]), (1, [0.001; 10]), (2, [0.5; 10])],
            bias: [0.0; 10],
        };
        let trace = StepTrace {
            step: 0,
            updates: vec![WorkerGrad { worker: 0, grad: grad.clone() }, WorkerGrad { worker: 1, grad }],
        };
        // At 5%: rows 0 and 2 survive, row 1 (0.1% of max) does not.
        let p = step_overlap(&trace, 0.05);
        assert_eq!(p.union_rows, 2);
        assert_eq!(p.shared_rows, 2);
        // At 0 threshold everything counts.
        let p0 = step_overlap(&trace, 0.0);
        assert_eq!(p0.union_rows, 3);
    }

    #[test]
    fn empty_step_is_zero_overlap() {
        let trace = StepTrace { step: 0, updates: vec![] };
        assert_eq!(step_overlap(&trace, 0.05).overlap_pct, 0.0);
    }

    #[test]
    fn sgd_overlap_sits_in_the_papers_band() {
        // Paper Fig 1(a): ≈34–50 %, average ≈42.5 %. Allow slack: the
        // claim being reproduced is "SGD mini-batches overlap moderately".
        let points = quick(Which::Sgd, 5, 30);
        let mean = mean_overlap(&points);
        assert!((30.0..55.0).contains(&mean), "SGD mean overlap {mean:.1}%");
    }

    #[test]
    fn adam_overlap_is_higher_than_sgd() {
        // Paper Fig 1(b) vs 1(a): Adam (mb=100) ≈66.5 % > SGD (mb=3)
        // ≈42.5 %.
        let sgd = mean_overlap(&quick(Which::Sgd, 5, 15));
        let adam = mean_overlap(&quick(Which::Adam, 5, 15));
        assert!(
            adam > sgd + 10.0,
            "expected Adam ≫ SGD, got adam {adam:.1}% vs sgd {sgd:.1}%"
        );
        assert!((55.0..80.0).contains(&adam), "Adam mean overlap {adam:.1}%");
    }

    #[test]
    fn overlap_increases_with_worker_count() {
        // §3: "we experimented while increasing the number of workers
        // from two to five … the overlap increases."
        let two = mean_overlap(&quick(Which::Sgd, 2, 15));
        let five = mean_overlap(&quick(Which::Sgd, 5, 15));
        assert!(five > two, "5 workers {five:.1}% !> 2 workers {two:.1}%");
    }

    #[test]
    fn overlap_is_stable_across_steps() {
        // "the overlap percentage is consistent among different
        // iterations" — standard deviation within a few points.
        let points = quick(Which::Sgd, 5, 30);
        let mean = mean_overlap(&points);
        let var = points
            .iter()
            .map(|p| (p.overlap_pct - mean).powi(2))
            .sum::<f64>()
            / points.len() as f64;
        assert!(var.sqrt() < 8.0, "sd {:.2} too jittery", var.sqrt());
    }
}
