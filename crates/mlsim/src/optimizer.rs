//! Optimizers: mini-batch SGD and Adam (Kingma & Ba), sparse-aware — an
//! update step touches only the gradient's support, matching how
//! TensorFlow workers ship sparse tensor deltas to the parameter server.

use crate::data::CLASSES;
use crate::model::SparseGrad;
use daiet_wire::fnv::FnvHashMap;

/// A parameter update: deltas for the touched rows plus bias.
#[derive(Debug, Clone)]
pub struct Update {
    /// `(row, delta per class)` entries.
    pub rows: Vec<(usize, [f32; CLASSES])>,
    /// Bias delta.
    pub bias: [f32; CLASSES],
}

impl Update {
    /// Rows this update writes.
    pub fn touched_rows(&self) -> impl Iterator<Item = usize> + '_ {
        self.rows.iter().map(|(r, _)| *r)
    }
}

/// An optimizer turns gradients into parameter updates.
pub trait Optimizer {
    /// Computes the update for `grad` (may keep internal state per row).
    fn step(&mut self, grad: &SparseGrad) -> Update;
    /// Diagnostic name.
    fn name(&self) -> &'static str;
}

/// Plain mini-batch SGD: `Δ = −lr · g`.
#[derive(Debug, Clone)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
}

impl Sgd {
    /// SGD at learning rate `lr`.
    pub fn new(lr: f32) -> Sgd {
        Sgd { lr }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, grad: &SparseGrad) -> Update {
        let rows = grad
            .rows
            .iter()
            .map(|(r, g)| {
                let mut d = [0.0f32; CLASSES];
                for (d, g) in d.iter_mut().zip(g) {
                    *d = -self.lr * g;
                }
                (*r, d)
            })
            .collect();
        let mut bias = [0.0f32; CLASSES];
        for (b, g) in bias.iter_mut().zip(&grad.bias) {
            *b = -self.lr * g;
        }
        Update { rows, bias }
    }

    fn name(&self) -> &'static str {
        "sgd"
    }
}

/// Adam with sparse (lazy) moment updates: first/second moments are kept
/// per touched row, as TensorFlow's sparse Adam does.
#[derive(Debug, Clone)]
pub struct Adam {
    /// Learning rate.
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Numerical stabilizer.
    pub eps: f32,
    t: i32,
    m: FnvHashMap<usize, [f32; CLASSES]>,
    v: FnvHashMap<usize, [f32; CLASSES]>,
    m_bias: [f32; CLASSES],
    v_bias: [f32; CLASSES],
}

impl Adam {
    /// Adam with the standard defaults (β1 = 0.9, β2 = 0.999).
    pub fn new(lr: f32) -> Adam {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: FnvHashMap::default(),
            v: FnvHashMap::default(),
            m_bias: [0.0; CLASSES],
            v_bias: [0.0; CLASSES],
        }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, grad: &SparseGrad) -> Update {
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t);
        let bc2 = 1.0 - self.beta2.powi(self.t);
        let mut rows = Vec::with_capacity(grad.rows.len());
        for (r, g) in &grad.rows {
            let m = self.m.entry(*r).or_insert([0.0; CLASSES]);
            let v = self.v.entry(*r).or_insert([0.0; CLASSES]);
            let mut d = [0.0f32; CLASSES];
            for c in 0..CLASSES {
                m[c] = self.beta1 * m[c] + (1.0 - self.beta1) * g[c];
                v[c] = self.beta2 * v[c] + (1.0 - self.beta2) * g[c] * g[c];
                let m_hat = m[c] / bc1;
                let v_hat = v[c] / bc2;
                d[c] = -self.lr * m_hat / (v_hat.sqrt() + self.eps);
            }
            rows.push((*r, d));
        }
        let mut bias = [0.0f32; CLASSES];
        for (c, b) in bias.iter_mut().enumerate() {
            let g = grad.bias[c];
            self.m_bias[c] = self.beta1 * self.m_bias[c] + (1.0 - self.beta1) * g;
            self.v_bias[c] = self.beta2 * self.v_bias[c] + (1.0 - self.beta2) * g * g;
            let m_hat = self.m_bias[c] / bc1;
            let v_hat = self.v_bias[c] / bc2;
            *b = -self.lr * m_hat / (v_hat.sqrt() + self.eps);
        }
        Update { rows, bias }
    }

    fn name(&self) -> &'static str {
        "adam"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grad(rows: &[(usize, f32)]) -> SparseGrad {
        SparseGrad {
            rows: rows
                .iter()
                .map(|&(r, g)| {
                    let mut row = [0.0f32; CLASSES];
                    row[0] = g;
                    (r, row)
                })
                .collect(),
            bias: [0.0; CLASSES],
        }
    }

    #[test]
    fn sgd_is_linear_in_gradient() {
        let mut opt = Sgd::new(0.1);
        let u = opt.step(&grad(&[(3, 2.0)]));
        assert_eq!(u.rows.len(), 1);
        assert!((u.rows[0].1[0] + 0.2).abs() < 1e-6);
        assert_eq!(u.rows[0].0, 3);
    }

    #[test]
    fn adam_first_step_is_lr_sized() {
        // With bias correction, the first Adam step ≈ −lr · sign(g).
        let mut opt = Adam::new(0.01);
        let u = opt.step(&grad(&[(0, 5.0)]));
        assert!((u.rows[0].1[0] + 0.01).abs() < 1e-4, "{}", u.rows[0].1[0]);
        let mut opt2 = Adam::new(0.01);
        let u2 = opt2.step(&grad(&[(0, -5.0)]));
        assert!((u2.rows[0].1[0] - 0.01).abs() < 1e-4);
    }

    #[test]
    fn adam_keeps_per_row_state() {
        let mut opt = Adam::new(0.01);
        opt.step(&grad(&[(1, 1.0)]));
        opt.step(&grad(&[(2, 1.0)]));
        // Row 2's first step must still be bias-corrected as if fresh in
        // *its* moments — but the global t advanced; both rows tracked.
        assert_eq!(opt.m.len(), 2);
        assert_eq!(opt.v.len(), 2);
    }

    #[test]
    fn updates_touch_exactly_the_gradient_support() {
        for opt in [&mut Sgd::new(0.1) as &mut dyn Optimizer, &mut Adam::new(0.1)] {
            let g = grad(&[(2, 1.0), (7, -3.0), (100, 0.5)]);
            let u = opt.step(&g);
            let touched: Vec<usize> = u.touched_rows().collect();
            assert_eq!(touched, vec![2, 7, 100], "{}", opt.name());
        }
    }
}
