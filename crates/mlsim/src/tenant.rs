//! Iterative SGD as a multi-tenant job: the
//! [`daiet::tenant::TenantWorkload`] adapter over [`NetCluster`].
//!
//! Multi-round: each round one worker shard of quantized gradients per
//! sender, one SUM tree, and the aggregated lane sums applied to the
//! server model before the next round's gradients are computed — so the
//! job's rounds are genuinely dependent, the property that makes
//! mid-stream isolation failures visible in the digest trace. `verify`
//! replays the in-memory reference pipeline (same quantize → sum → apply
//! path) and compares per-step model digests bit-for-bit.

use crate::data::{DataSpec, Dataset};
use crate::netrun::{grad_key_decode, model_digest, quantize_grad, reference_sums, LaneSums, NetCluster};
use crate::optimizer::Sgd;
use daiet::agg::AggFn;
use daiet::tenant::{fold_round_digest, TenantWorkload, DIGEST_SEED};
use daiet_wire::daiet::{Key, Pair};

/// A synchronous-SGD training job runnable under the multi-tenant
/// scheduler.
pub struct SgdTenant {
    data_spec: DataSpec,
    data: Dataset,
    cluster: NetCluster<Sgd>,
    workers: usize,
    batch: usize,
    steps: u64,
    lr: f32,
    digests: Vec<u32>,
    wire_digest: u64,
}

impl SgdTenant {
    /// A training job of `workers` workers × `steps` steps over a fresh
    /// synthetic dataset.
    pub fn new(workers: usize, batch: usize, steps: u64, lr: f32, data: DataSpec) -> SgdTenant {
        SgdTenant {
            data_spec: data,
            data: Dataset::generate(&data),
            cluster: NetCluster::new(workers, batch, Sgd::new(lr)),
            workers,
            batch,
            steps,
            lr,
            digests: Vec::new(),
            wire_digest: DIGEST_SEED,
        }
    }

    /// A small job for tests: 3 workers × 2 steps over a 30-sample set
    /// with few active pixels (keeps per-round pair counts small).
    pub fn tiny(seed: u64) -> SgdTenant {
        let data = DataSpec { n: 30, mean_active: 20, seed };
        SgdTenant::new(3, 2, 2, 0.1, data)
    }

    /// Per-step model fingerprints absorbed so far.
    pub fn step_digests(&self) -> &[u32] {
        &self.digests
    }
}

impl TenantWorkload for SgdTenant {
    fn label(&self) -> String {
        format!("sgd[{}wx{}s]", self.workers, self.steps)
    }

    fn senders(&self) -> usize {
        self.workers
    }

    fn aggs(&self) -> Vec<AggFn> {
        vec![AggFn::Sum]
    }

    fn rounds(&self) -> u64 {
        self.steps
    }

    fn shards(&mut self, _round: u64) -> Vec<Vec<Vec<Pair>>> {
        // Gradients are a function of the server model, which absorbed
        // the previous round's sums — the scheduler guarantees rounds are
        // issued in order, one at a time per job.
        self.cluster
            .compute_updates(&self.data)
            .iter()
            .map(|u| vec![quantize_grad(&u.grad)])
            .collect()
    }

    fn absorb(&mut self, _round: u64, per_tree: Vec<Vec<(Key, u32)>>) {
        self.wire_digest = fold_round_digest(self.wire_digest, &per_tree);
        let mut sums = LaneSums::new();
        for (key, value) in per_tree.first().map_or(&[][..], Vec::as_slice) {
            sums.insert(grad_key_decode(key), *value);
        }
        self.cluster.apply_sums(&sums);
        self.digests.push(model_digest(&self.cluster.server));
    }

    fn digest(&self) -> u64 {
        self.wire_digest
    }

    fn verify(&self) -> Result<(), String> {
        if self.digests.len() != self.steps as usize {
            return Err(format!(
                "sgd: {} steps absorbed, expected {}",
                self.digests.len(),
                self.steps
            ));
        }
        let data = Dataset::generate(&self.data_spec);
        let mut reference = NetCluster::new(self.workers, self.batch, Sgd::new(self.lr));
        for (step, &got) in self.digests.iter().enumerate() {
            let updates = reference.compute_updates(&data);
            let sums = reference_sums(&updates);
            reference.apply_sums(&sums);
            let want = model_digest(&reference.server);
            if got != want {
                return Err(format!(
                    "sgd step {step}: model digest {got:#010x} diverges from reference {want:#010x}"
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    /// Drives the job the way a lossless SUM-aggregating network would:
    /// wrapping-sum every worker's pairs per round and absorb the merge.
    fn drive_lossless(t: &mut SgdTenant) {
        for round in 0..t.rounds() {
            let shards = t.shards(round);
            let mut merged: BTreeMap<Key, u32> = BTreeMap::new();
            for per_tree in &shards {
                for p in &per_tree[0] {
                    let e = merged.entry(p.key).or_insert(0);
                    *e = e.wrapping_add(p.value);
                }
            }
            t.absorb(round, vec![merged.into_iter().collect()]);
        }
    }

    #[test]
    fn absorbing_lossless_sums_verifies() {
        let mut t = SgdTenant::tiny(5);
        drive_lossless(&mut t);
        t.verify().expect("lossless sums must match the reference");
        assert_eq!(t.step_digests().len(), 2);
        assert_ne!(t.digest(), DIGEST_SEED);
    }

    #[test]
    fn a_corrupted_round_fails_verification() {
        let mut t = SgdTenant::tiny(6);
        let shards = t.shards(0);
        let mut merged: BTreeMap<Key, u32> = BTreeMap::new();
        for per_tree in &shards {
            for p in &per_tree[0] {
                let e = merged.entry(p.key).or_insert(0);
                *e = e.wrapping_add(p.value);
            }
        }
        // Flip one lane — the digest trace must diverge from step 0 on.
        let mut pairs: Vec<(Key, u32)> = merged.into_iter().collect();
        pairs[0].1 = pairs[0].1.wrapping_add(1);
        t.absorb(0, vec![pairs]);
        t.absorb(1, vec![Vec::new()]);
        assert!(t.verify().is_err());
    }

    #[test]
    fn digest_traces_are_deterministic_per_seed() {
        let mut a = SgdTenant::tiny(7);
        let mut b = SgdTenant::tiny(7);
        drive_lossless(&mut a);
        drive_lossless(&mut b);
        assert_eq!(a.digest(), b.digest());
        assert_eq!(a.step_digests(), b.step_digests());
        let mut c = SgdTenant::tiny(8);
        drive_lossless(&mut c);
        assert_ne!(a.digest(), c.digest());
    }
}
