//! # daiet-mlsim — the Figure-1(a,b) workload
//!
//! Reproduces the paper's §3 machine-learning analysis: "a Soft-Max Neural
//! Network using mini-batch Stochastic Gradient Descent (SGD) and Adam
//! optimization … trained to correctly identify the digits" on MNIST,
//! with "one parameter server … five machines run as many worker
//! processes", measuring **the overlap of the tensor updates, i.e., the
//! portion of tensor elements that are updated by multiple workers at the
//! same time" — the quantity that bounds the data reduction in-network
//! aggregation could achieve on parameter-server traffic.
//!
//! MNIST itself is substituted with a calibrated synthetic generator
//! ([`data`]): centre-biased stroke images with MNIST-like per-image
//! active-pixel density, which is the only property the overlap metric
//! depends on (the gradient of a softmax layer touches exactly the rows
//! of active input pixels in the mini-batch union).
//!
//! * [`data`] — synthetic digit generator;
//! * [`model`] — softmax regression with cross-entropy loss;
//! * [`optimizer`] — SGD and Adam;
//! * [`psworker`] — parameter-server/worker simulation producing sparse
//!   updates per step;
//! * [`overlap`] — the Figure-1 overlap metric and experiment driver;
//! * [`netrun`] — the same training loop driven packet-level through the
//!   real dataplane (fixed-point gradients, one DAIET round per step),
//!   bit-identical to an in-memory reference even under link faults.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod data;
pub mod model;
pub mod netrun;
pub mod optimizer;
pub mod overlap;
pub mod psworker;
pub mod tenant;

pub use netrun::{NetTrainOutcome, NetTrainSpec};
pub use overlap::{OverlapPoint, OverlapRun};
pub use tenant::SgdTenant;
