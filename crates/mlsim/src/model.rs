//! Softmax regression ("Soft-Max Neural Network" in the paper's §3): a
//! single dense layer `W ∈ R^{DIM×CLASSES}` + bias, cross-entropy loss.
//!
//! The gradient structure is what matters for the overlap experiment:
//! `∂L/∂W[p][c] = x[p] · (softmax(z)[c] − y[c])`, so the rows of `W`
//! touched by one mini-batch are exactly the union of the batch's active
//! pixels — sparse, centre-biased, and overlapping across workers.

use crate::data::{Sample, CLASSES, DIM};

/// The trainable parameters.
#[derive(Debug, Clone)]
pub struct Model {
    /// Row-major weights: `w[pixel * CLASSES + class]`.
    pub w: Vec<f32>,
    /// Per-class bias.
    pub b: Vec<f32>,
}

/// A sparse gradient: only rows whose pixel was active carry values.
#[derive(Debug, Clone)]
pub struct SparseGrad {
    /// `(pixel row, per-class gradient)` entries, ascending by row.
    pub rows: Vec<(usize, [f32; CLASSES])>,
    /// Bias gradient (always dense — it is one row).
    pub bias: [f32; CLASSES],
}

impl SparseGrad {
    /// The set of touched rows.
    pub fn touched_rows(&self) -> impl Iterator<Item = usize> + '_ {
        self.rows.iter().map(|(r, _)| *r)
    }
}

impl Default for Model {
    fn default() -> Self {
        Model::new()
    }
}

impl Model {
    /// Zero-initialized model (fine for softmax regression — the loss is
    /// convex).
    pub fn new() -> Model {
        Model { w: vec![0.0; DIM * CLASSES], b: vec![0.0; CLASSES] }
    }

    /// Class logits for one sample.
    pub fn logits(&self, x: &[f32]) -> [f32; CLASSES] {
        let mut z = [0.0f32; CLASSES];
        z.copy_from_slice(&self.b);
        for (p, &xp) in x.iter().enumerate() {
            if xp != 0.0 {
                let row = &self.w[p * CLASSES..(p + 1) * CLASSES];
                for c in 0..CLASSES {
                    z[c] += xp * row[c];
                }
            }
        }
        z
    }

    /// Softmax probabilities.
    pub fn predict_proba(&self, x: &[f32]) -> [f32; CLASSES] {
        softmax(&self.logits(x))
    }

    /// Arg-max class.
    pub fn predict(&self, x: &[f32]) -> usize {
        let p = self.logits(x);
        let mut best = 0;
        for c in 1..CLASSES {
            if p[c] > p[best] {
                best = c;
            }
        }
        best
    }

    /// Mean cross-entropy over `batch`.
    pub fn loss(&self, batch: &[&Sample]) -> f32 {
        let mut total = 0.0f32;
        for s in batch {
            let p = self.predict_proba(&s.pixels);
            total -= p[s.label].max(1e-9).ln();
        }
        total / batch.len() as f32
    }

    /// Sparse mini-batch gradient (mean over the batch). Rows = union of
    /// active pixels across the batch.
    pub fn gradient(&self, batch: &[&Sample]) -> SparseGrad {
        let inv = 1.0 / batch.len() as f32;
        let mut acc: std::collections::BTreeMap<usize, [f32; CLASSES]> = Default::default();
        let mut bias = [0.0f32; CLASSES];
        for s in batch {
            let p = self.predict_proba(&s.pixels);
            let mut err = p;
            err[s.label] -= 1.0;
            for c in 0..CLASSES {
                bias[c] += err[c] * inv;
            }
            for (pixel, &xp) in s.pixels.iter().enumerate() {
                if xp != 0.0 {
                    let row = acc.entry(pixel).or_insert([0.0; CLASSES]);
                    for c in 0..CLASSES {
                        row[c] += xp * err[c] * inv;
                    }
                }
            }
        }
        SparseGrad { rows: acc.into_iter().collect(), bias }
    }

    /// Applies a dense delta to touched rows: `w[r] += delta[r]`.
    pub fn apply_rows(&mut self, rows: &[(usize, [f32; CLASSES])], bias: &[f32; CLASSES]) {
        for (r, delta) in rows {
            let row = &mut self.w[r * CLASSES..(r + 1) * CLASSES];
            for (w, d) in row.iter_mut().zip(delta) {
                *w += d;
            }
        }
        for (b, d) in self.b.iter_mut().zip(bias) {
            *b += d;
        }
    }

    /// Classification accuracy over samples.
    pub fn accuracy(&self, samples: &[Sample]) -> f64 {
        let correct = samples.iter().filter(|s| self.predict(&s.pixels) == s.label).count();
        correct as f64 / samples.len() as f64
    }
}

/// Numerically stable softmax.
pub fn softmax(z: &[f32; CLASSES]) -> [f32; CLASSES] {
    let max = z.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut out = [0.0f32; CLASSES];
    let mut sum = 0.0f32;
    for c in 0..CLASSES {
        out[c] = (z[c] - max).exp();
        sum += out[c];
    }
    for o in &mut out {
        *o /= sum;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{DataSpec, Dataset};

    #[test]
    fn softmax_sums_to_one() {
        let z = [1.0, 2.0, 3.0, -1.0, 0.0, 0.5, 2.5, -2.0, 1.5, 0.1];
        let p = softmax(&z);
        let sum: f32 = p.iter().sum();
        assert!((sum - 1.0).abs() < 1e-5);
        assert!(p.iter().all(|&x| x > 0.0));
        // Largest logit gets largest probability.
        assert_eq!(
            p.iter().enumerate().max_by(|a, b| a.1.partial_cmp(b.1).unwrap()).unwrap().0,
            2
        );
    }

    #[test]
    fn gradient_rows_match_batch_support() {
        let d = Dataset::generate(&DataSpec { n: 6, ..Default::default() });
        let m = Model::new();
        let batch: Vec<&Sample> = d.samples.iter().take(3).collect();
        let g = m.gradient(&batch);
        let support: std::collections::HashSet<usize> =
            batch.iter().flat_map(|s| s.active_pixels()).collect();
        let touched: std::collections::HashSet<usize> = g.touched_rows().collect();
        assert_eq!(touched, support);
    }

    #[test]
    fn gradient_descends_the_loss() {
        let d = Dataset::generate(&DataSpec { n: 30, ..Default::default() });
        let mut m = Model::new();
        let batch: Vec<&Sample> = d.samples.iter().collect();
        let before = m.loss(&batch);
        for _ in 0..20 {
            let g = m.gradient(&batch);
            let lr = 0.5f32;
            let step: Vec<(usize, [f32; CLASSES])> = g
                .rows
                .iter()
                .map(|(r, row)| {
                    let mut d = [0.0f32; CLASSES];
                    for c in 0..CLASSES {
                        d[c] = -lr * row[c];
                    }
                    (*r, d)
                })
                .collect();
            let mut bias = [0.0f32; CLASSES];
            for (b, g) in bias.iter_mut().zip(&g.bias) {
                *b = -lr * g;
            }
            m.apply_rows(&step, &bias);
        }
        let after = m.loss(&batch);
        assert!(after < before * 0.7, "loss {before} -> {after}");
    }

    #[test]
    fn training_reaches_usable_accuracy() {
        // Convex problem on synthetic digits: full-batch GD should
        // separate the 10 stroke patterns far above chance.
        let d = Dataset::generate(&DataSpec { n: 200, ..Default::default() });
        let mut m = Model::new();
        let batch: Vec<&Sample> = d.samples.iter().collect();
        for _ in 0..60 {
            let g = m.gradient(&batch);
            let lr = 1.0f32;
            let step: Vec<(usize, [f32; CLASSES])> = g
                .rows
                .iter()
                .map(|(r, row)| {
                    let mut dd = [0.0f32; CLASSES];
                    for c in 0..CLASSES {
                        dd[c] = -lr * row[c];
                    }
                    (*r, dd)
                })
                .collect();
            let mut bias = [0.0f32; CLASSES];
            for (b, g) in bias.iter_mut().zip(&g.bias) {
                *b = -lr * g;
            }
            m.apply_rows(&step, &bias);
        }
        let acc = m.accuracy(&d.samples);
        assert!(acc > 0.8, "accuracy {acc}");
    }
}
