//! Packet-level parameter-server training — the Figure-1 workload driven
//! **through the real dataplane** instead of the analytic model.
//!
//! §3's loop ("the worker sends its parameter updates to the server which
//! aggregates the local updates from each worker") is exactly the
//! iterative traffic the paper argues for, so this module runs it as one
//! DAIET round per SGD step over a long-lived leaf-spine
//! [`Simulator`](daiet_netsim::Simulator): per step every worker
//! quantizes its sparse gradient to fixed point ([`quantize_grad`]),
//! ships it as key/value pairs (key = weight coordinate, value =
//! two's-complement lane), the switches SUM-aggregate in flight, and the
//! server decodes the lane sums into the mean gradient.
//!
//! Fixed point is what makes the network path *bit-identical* to an
//! in-memory execution: wrapping `u32` addition is exact two's-complement
//! addition, so the aggregated lane equals the integer sum of the
//! workers' quantized elements no matter how the switches associate it.
//! [`NetCluster::apply_sums`] is the **single** decode-and-apply path —
//! the in-memory reference ([`NetTrainSpec::run_reference`]) and the
//! packet run ([`NetTrainSpec::run_packet`]) differ only in who computed the sums,
//! which is precisely the property the acceptance test pins
//! (`tests/iterative_recovery.rs`), loss-free and under chaos at k = 1.

// lint:allow-file(layer-netsim): network-mode training harness — drives the
// IterativeRunner under the Simulator with fault profiles. The gradient
// aggregation protocol itself stays fabric-only.
use crate::data::{DataSpec, Dataset, Sample, CLASSES, DIM};
use crate::model::{Model, SparseGrad};
use crate::optimizer::Optimizer;
use crate::psworker::WorkerGrad;
use daiet::agg::fixed;
use daiet::worker::{IterativeRunner, IterativeSpec};
use daiet::DaietConfig;
use daiet_netsim::topology::TopologyPlan;
use daiet_netsim::{FaultProfile, LinkSpec, SimDuration};
use daiet_wire::checksum::crc32;
use daiet_wire::daiet::{Key, Pair};
use std::collections::BTreeMap;

/// Fractional bits of the gradient fixed-point encoding. Gradients of the
/// softmax layer live in `[-1, 1]`; 16 fractional bits leave 15 integer
/// bits of headroom for the worker sum, far beyond 5 workers' reach.
pub const GRAD_FRAC_BITS: u32 = 16;

/// The pseudo-row carrying the bias gradient (real rows are `0..DIM`).
pub const BIAS_ROW: u32 = DIM as u32;

/// Wire key of one weight coordinate: row in bytes 0–3, class in 4–7
/// (big-endian), rest zero.
pub fn grad_key(row: u32, class: u32) -> Key {
    let mut k = [0u8; 16];
    k[0..4].copy_from_slice(&row.to_be_bytes());
    k[4..8].copy_from_slice(&class.to_be_bytes());
    Key(k)
}

/// Inverse of [`grad_key`].
pub fn grad_key_decode(key: &Key) -> (u32, u32) {
    let k = &key.0;
    (
        u32::from_be_bytes([k[0], k[1], k[2], k[3]]),
        u32::from_be_bytes([k[4], k[5], k[6], k[7]]),
    )
}

/// Quantizes one worker's sparse gradient into wire pairs. Zero lanes are
/// skipped (they would ship bytes to add nothing); the reference executor
/// quantizes through this same function, so both paths agree on exactly
/// which coordinates exist.
pub fn quantize_grad(grad: &SparseGrad) -> Vec<Pair> {
    let mut pairs = Vec::new();
    for (row, g) in &grad.rows {
        for (c, &v) in g.iter().enumerate() {
            let lane = fixed::encode(f64::from(v), GRAD_FRAC_BITS);
            if lane != 0 {
                pairs.push(Pair::new(grad_key(*row as u32, c as u32), lane));
            }
        }
    }
    for (c, &v) in grad.bias.iter().enumerate() {
        let lane = fixed::encode(f64::from(v), GRAD_FRAC_BITS);
        if lane != 0 {
            pairs.push(Pair::new(grad_key(BIAS_ROW, c as u32), lane));
        }
    }
    pairs
}

/// Lane sums keyed by weight coordinate — what the network (or the
/// reference executor) hands the server each step.
pub type LaneSums = BTreeMap<(u32, u32), u32>;

/// The in-memory ground truth: every worker's quantized pairs summed with
/// wrapping `u32` addition, i.e. exactly what a lossless SUM-aggregating
/// network computes.
pub fn reference_sums(updates: &[WorkerGrad]) -> LaneSums {
    let mut sums = LaneSums::new();
    for wu in updates {
        for p in quantize_grad(&wu.grad) {
            let e = sums.entry(grad_key_decode(&p.key)).or_insert(0u32);
            *e = e.wrapping_add(p.value);
        }
    }
    sums
}

/// A synchronous PS cluster whose server consumes **aggregated lane
/// sums** instead of raw worker gradients — the half of
/// [`crate::psworker::PsCluster`] that survives when the summation moves
/// into the network. Gradient computation and shard cursors are identical
/// to the analytic cluster; only the aggregation transport differs.
pub struct NetCluster<O: Optimizer> {
    /// The authoritative model at the server.
    pub server: Model,
    optimizer: O,
    n_workers: usize,
    batch: usize,
    cursor: Vec<usize>,
}

impl<O: Optimizer> NetCluster<O> {
    /// A cluster of `n_workers` workers drawing mini-batches of `batch`.
    pub fn new(n_workers: usize, batch: usize, optimizer: O) -> NetCluster<O> {
        NetCluster {
            server: Model::new(),
            optimizer,
            n_workers,
            batch,
            cursor: (0..n_workers).collect(),
        }
    }

    /// Every worker's gradient for this step (round-robin disjoint
    /// shards, as in [`crate::psworker::PsCluster::step`]).
    pub fn compute_updates(&mut self, data: &Dataset) -> Vec<WorkerGrad> {
        let mut updates = Vec::with_capacity(self.n_workers);
        for w in 0..self.n_workers {
            let mut batch: Vec<&Sample> = Vec::with_capacity(self.batch);
            for _ in 0..self.batch {
                batch.push(&data.samples[self.cursor[w] % data.samples.len()]);
                self.cursor[w] += self.n_workers;
            }
            let grad = self.server.gradient(&batch);
            updates.push(WorkerGrad { worker: w, grad });
        }
        updates
    }

    /// Decodes aggregated lane sums into the mean gradient and applies
    /// one optimizer step — the single code path both the reference and
    /// the packet run go through, so their models cannot diverge unless
    /// the sums themselves differ.
    pub fn apply_sums(&mut self, sums: &LaneSums) {
        let inv = 1.0 / self.n_workers as f32;
        let mut rows: BTreeMap<usize, [f32; CLASSES]> = BTreeMap::new();
        let mut bias = [0.0f32; CLASSES];
        for (&(row, class), &lane) in sums {
            let mean = fixed::decode(lane, GRAD_FRAC_BITS) as f32 * inv;
            if row == BIAS_ROW {
                bias[class as usize] = mean;
            } else {
                rows.entry(row as usize).or_insert([0.0; CLASSES])[class as usize] = mean;
            }
        }
        let mean_grad = SparseGrad { rows: rows.into_iter().collect(), bias };
        let update = self.optimizer.step(&mean_grad);
        self.server.apply_rows(&update.rows, &update.bias);
    }
}

/// CRC-32 over the model's parameter bits — the per-step convergence
/// fingerprint two runs are compared by (collision-safe enough for a
/// 10-step trace; the acceptance test also compares final accuracy).
pub fn model_digest(m: &Model) -> u32 {
    let mut bytes = Vec::with_capacity((m.w.len() + m.b.len()) * 4);
    for v in m.w.iter().chain(m.b.iter()) {
        bytes.extend_from_slice(&v.to_bits().to_le_bytes());
    }
    crc32(&bytes)
}

/// One packet-level training configuration.
#[derive(Debug, Clone)]
pub struct NetTrainSpec {
    /// Workers (paper: 5).
    pub workers: usize,
    /// Mini-batch per worker.
    pub batch: usize,
    /// SGD steps (= network rounds).
    pub steps: usize,
    /// SGD learning rate.
    pub lr: f32,
    /// The synthetic dataset.
    pub data: DataSpec,
    /// Simulation seed.
    pub seed: u64,
    /// Fault profile applied to **every** link.
    pub faults: FaultProfile,
    /// Arm NACK recovery (k = 1). Off = the redundancy-only
    /// configuration mlsim ran under before this harness existed.
    pub recovery: bool,
    /// Arm dedup windows even without recovery — the redundancy-only
    /// reliability rig (recovery implies them regardless; fully off is
    /// the paper-faithful prototype).
    pub dedup: bool,
    /// Copies of each frame (redundancy-only rigs set this > 1).
    pub redundancy: u32,
    /// Execution partitions for the underlying simulator (default: the
    /// `DAIET_PARTITIONS` environment variable, else 1). The digest trace
    /// must be bit-identical at any setting.
    pub partitions: usize,
}

impl Default for NetTrainSpec {
    fn default() -> Self {
        NetTrainSpec {
            workers: 5,
            batch: 3,
            steps: 10,
            lr: 0.1,
            data: DataSpec { n: 300, ..DataSpec::default() },
            seed: 11,
            faults: FaultProfile::NONE,
            recovery: true,
            dedup: true,
            redundancy: 1,
            partitions: daiet_netsim::env_partitions(),
        }
    }
}

/// What one training run produced.
#[derive(Debug, Clone)]
pub struct NetTrainOutcome {
    /// Per-step model fingerprints ([`model_digest`] after each apply).
    pub digests: Vec<u32>,
    /// Final accuracy over the training set.
    pub accuracy: f64,
    /// Frames the network dropped by fault injection (whole run).
    pub fault_drops: u64,
    /// NACK frames the server emitted (0 without recovery).
    pub nacks_emitted: u64,
    /// Frames arriving at the server, per round (from the per-round
    /// stats deltas — NOT cumulative).
    pub server_frames_per_round: Vec<u64>,
    /// Pairs shipped by workers over the whole run (pre-aggregation).
    pub pairs_shipped: u64,
}

impl NetTrainSpec {
    fn cluster(&self) -> NetCluster<crate::optimizer::Sgd> {
        NetCluster::new(self.workers, self.batch, crate::optimizer::Sgd::new(self.lr))
    }

    /// The in-memory reference: identical quantize → sum → apply
    /// pipeline, no network. Digest trace and accuracy are the ground
    /// truth the packet run must reproduce bit-for-bit.
    pub fn run_reference(&self) -> NetTrainOutcome {
        let data = Dataset::generate(&self.data);
        let mut cluster = self.cluster();
        let mut digests = Vec::with_capacity(self.steps);
        let mut pairs_shipped = 0u64;
        for _ in 0..self.steps {
            let updates = cluster.compute_updates(&data);
            pairs_shipped += updates
                .iter()
                .map(|u| quantize_grad(&u.grad).len() as u64)
                .sum::<u64>();
            let sums = reference_sums(&updates);
            cluster.apply_sums(&sums);
            digests.push(model_digest(&cluster.server));
        }
        NetTrainOutcome {
            digests,
            accuracy: cluster.server.accuracy(&data.samples),
            fault_drops: 0,
            nacks_emitted: 0,
            server_frames_per_round: Vec::new(),
            pairs_shipped,
        }
    }

    /// Runs training over the real dataplane: workers and the parameter
    /// server on a leaf-spine fabric, one DAIET round per step, switch
    /// registers flushed and reused across rounds. Errors if any round
    /// cannot be completed exactly (loss beyond the NACK budget).
    pub fn run_packet(&self) -> Result<NetTrainOutcome, String> {
        let data = Dataset::generate(&self.data);
        let mut cluster = self.cluster();

        // Leaves of 3 hosts cover the paper's 5 workers + 1 server.
        let hosts_per_leaf = 3;
        let leaves = (self.workers + 1).div_ceil(hosts_per_leaf);
        let link = LinkSpec::fast()
            .with_queue_bytes(4 * 1024 * 1024)
            .with_faults(self.faults);
        let plan = TopologyPlan::leaf_spine(hosts_per_leaf, leaves.max(2), 2, link);
        let config = DaietConfig {
            register_cells: 8192,
            reliability: self.dedup || self.recovery || self.redundancy > 1,
            nack_recovery: self.recovery,
            ..DaietConfig::default()
        }
        .with_rtx_sized_for_flush();
        let mut spec = IterativeSpec::new(
            config,
            plan,
            (0..self.workers).collect(),
            vec![self.workers],
        );
        spec.redundancy = self.redundancy;
        spec.seed = self.seed;
        spec.pacing = SimDuration::from_micros(1);
        spec.partitions = self.partitions;
        let mut runner = IterativeRunner::build(spec)?;

        let mut digests = Vec::with_capacity(self.steps);
        let mut server_frames_per_round = Vec::with_capacity(self.steps);
        let mut pairs_shipped = 0u64;
        let mut fault_drops = 0u64;
        let server_node = runner.node_id(self.workers);
        for _ in 0..self.steps {
            let updates = cluster.compute_updates(&data);
            let shards: Vec<Vec<Vec<Pair>>> = updates
                .iter()
                .map(|u| {
                    let pairs = quantize_grad(&u.grad);
                    pairs_shipped += pairs.len() as u64;
                    vec![pairs]
                })
                .collect();
            let out = runner.run_round(&shards)?;
            fault_drops += out.net.fault_drops();
            server_frames_per_round.push(out.net.nodes[server_node.0].frames_in);
            let sums: LaneSums = out.per_reducer[0]
                .iter()
                .map(|(k, v)| (grad_key_decode(k), *v))
                .collect();
            cluster.apply_sums(&sums);
            digests.push(model_digest(&cluster.server));
        }
        Ok(NetTrainOutcome {
            digests,
            accuracy: cluster.server.accuracy(&data.samples),
            fault_drops,
            nacks_emitted: runner.reducer(0).nacks_emitted(),
            server_frames_per_round,
            pairs_shipped,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grad_key_round_trips() {
        for (r, c) in [(0u32, 0u32), (783, 9), (BIAS_ROW, 3), (u32::MAX, 7)] {
            assert_eq!(grad_key_decode(&grad_key(r, c)), (r, c));
        }
    }

    #[test]
    fn quantized_pairs_skip_zero_lanes_and_cover_bias() {
        let grad = SparseGrad {
            rows: vec![(3, {
                let mut g = [0.0f32; CLASSES];
                g[1] = 0.5;
                g
            })],
            bias: {
                let mut b = [0.0f32; CLASSES];
                b[9] = -0.25;
                b
            },
        };
        let pairs = quantize_grad(&grad);
        assert_eq!(pairs.len(), 2, "one weight lane + one bias lane");
        assert_eq!(grad_key_decode(&pairs[0].key), (3, 1));
        assert_eq!(fixed::decode(pairs[0].value, GRAD_FRAC_BITS), 0.5);
        assert_eq!(grad_key_decode(&pairs[1].key), (BIAS_ROW, 9));
        assert_eq!(fixed::decode(pairs[1].value, GRAD_FRAC_BITS), -0.25);
    }

    #[test]
    fn reference_sums_are_exact_signed_fixed_point() {
        let mk = |v: f32| WorkerGrad {
            worker: 0,
            grad: SparseGrad {
                rows: vec![(0, {
                    let mut g = [0.0f32; CLASSES];
                    g[0] = v;
                    g
                })],
                bias: [0.0; CLASSES],
            },
        };
        // +0.75 and −0.5 sum to +0.25 exactly, through wrapping u32.
        let sums = reference_sums(&[mk(0.75), mk(-0.5)]);
        assert_eq!(sums.len(), 1);
        assert_eq!(fixed::decode(sums[&(0, 0)], GRAD_FRAC_BITS), 0.25);
    }

    #[test]
    fn reference_run_trains_and_is_deterministic() {
        let spec = NetTrainSpec { steps: 5, ..NetTrainSpec::default() };
        let a = spec.run_reference();
        let b = spec.run_reference();
        assert_eq!(a.digests, b.digests);
        assert_eq!(a.accuracy, b.accuracy);
        assert_eq!(a.digests.len(), 5);
        // Five steps of quantized SGD must already beat chance by a lot.
        assert!(a.accuracy > 0.4, "accuracy {}", a.accuracy);
    }
}
