//! Synthetic MNIST-like digit images.
//!
//! The overlap measurement depends only on *which pixels are active* per
//! image: the softmax gradient for an image touches exactly the weight
//! rows of its nonzero pixels. MNIST's relevant shape properties are (i)
//! ≈150 of 784 pixels active per image (≈19 %), (ii) strong centre bias
//! (borders are almost always blank), and (iii) class-specific stroke
//! patterns with per-image jitter. The generator reproduces those three
//! properties with a per-class prototype mask plus noise.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Image side (28 × 28 like MNIST).
pub const SIDE: usize = 28;
/// Pixels per image.
pub const DIM: usize = SIDE * SIDE;
/// Number of digit classes.
pub const CLASSES: usize = 10;

/// One labelled image.
#[derive(Debug, Clone)]
pub struct Sample {
    /// Pixel intensities in `[0, 1]`; most are exactly 0.
    pub pixels: Vec<f32>,
    /// The digit label `0..10`.
    pub label: usize,
}

impl Sample {
    /// Indices of active (nonzero) pixels.
    pub fn active_pixels(&self) -> Vec<usize> {
        self.pixels
            .iter()
            .enumerate()
            .filter(|(_, &v)| v > 0.0)
            .map(|(i, _)| i)
            .collect()
    }
}

/// Deterministic synthetic dataset.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// All samples.
    pub samples: Vec<Sample>,
}

/// Generator parameters.
#[derive(Debug, Clone, Copy)]
pub struct DataSpec {
    /// Samples to generate.
    pub n: usize,
    /// Mean active pixels per image (MNIST ≈ 150).
    pub mean_active: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for DataSpec {
    fn default() -> Self {
        DataSpec { n: 6000, mean_active: 150, seed: 1 }
    }
}

/// Per-class prototype: a set of stroke segments through the image
/// centre; images sample pixels near the prototype strokes.
fn class_prototype(class: usize) -> Vec<(f32, f32, f32, f32)> {
    // Hand-placed stroke endpoints per digit shape family (coarse but
    // class-distinct, all centre-biased like real digits).
    let c = SIDE as f32 / 2.0;
    let r = SIDE as f32 / 3.2;
    match class {
        0 => vec![(c - r, c, c, c - r), (c, c - r, c + r, c), (c + r, c, c, c + r), (c, c + r, c - r, c)],
        1 => vec![(c, c - r, c, c + r)],
        2 => vec![(c - r, c - r, c + r, c - r), (c + r, c - r, c - r, c + r), (c - r, c + r, c + r, c + r)],
        3 => vec![(c - r, c - r, c + r, c), (c + r, c, c - r, c + r)],
        4 => vec![(c - r, c - r, c - r, c), (c - r, c, c + r, c), (c + r / 2.0, c - r, c + r / 2.0, c + r)],
        5 => vec![(c + r, c - r, c - r, c - r), (c - r, c - r, c + r, c + r)],
        6 => vec![(c, c - r, c - r, c + r / 2.0), (c - r, c + r / 2.0, c + r, c + r / 2.0)],
        7 => vec![(c - r, c - r, c + r, c - r), (c + r, c - r, c - r / 2.0, c + r)],
        8 => vec![(c - r, c - r / 2.0, c + r, c - r / 2.0), (c - r, c + r / 2.0, c + r, c + r / 2.0), (c, c - r, c, c + r)],
        _ => vec![(c - r, c - r, c - r, c + r), (c - r, c - r, c + r, c - r), (c + r, c - r, c + r, c + r)],
    }
}

impl Dataset {
    /// Generates `spec.n` images, labels uniform over the classes.
    pub fn generate(spec: &DataSpec) -> Dataset {
        let mut rng = SmallRng::seed_from_u64(spec.seed);
        let mut samples = Vec::with_capacity(spec.n);
        for i in 0..spec.n {
            let label = i % CLASSES;
            samples.push(Self::one(&mut rng, label, spec.mean_active));
        }
        Dataset { samples }
    }

    fn one(rng: &mut SmallRng, label: usize, mean_active: usize) -> Sample {
        let mut pixels = vec![0.0f32; DIM];
        let strokes = class_prototype(label);
        // Per-image jitter: translate the whole glyph slightly.
        let dx: f32 = rng.random_range(-2.0..2.0);
        let dy: f32 = rng.random_range(-2.0..2.0);
        let thickness: f32 = rng.random_range(1.2..2.2);
        let mut active = 0usize;
        // Rasterize strokes with thickness noise until we hit the target
        // density band.
        let target = (mean_active as f32 * rng.random_range(0.8..1.2)) as usize;
        let mut pass = 0;
        while active < target && pass < 8 {
            for &(x0, y0, x1, y1) in &strokes {
                let steps = 40;
                for s in 0..=steps {
                    let t = s as f32 / steps as f32;
                    let x = x0 + (x1 - x0) * t + dx + rng.random_range(-thickness..thickness);
                    let y = y0 + (y1 - y0) * t + dy + rng.random_range(-thickness..thickness);
                    let (xi, yi) = (x.round() as i32, y.round() as i32);
                    if (0..SIDE as i32).contains(&xi) && (0..SIDE as i32).contains(&yi) {
                        let idx = yi as usize * SIDE + xi as usize;
                        if pixels[idx] == 0.0 {
                            active += 1;
                        }
                        pixels[idx] = (pixels[idx] + rng.random_range(0.3..1.0)).min(1.0);
                        if active >= target {
                            break;
                        }
                    }
                }
                if active >= target {
                    break;
                }
            }
            pass += 1;
        }
        Sample { pixels, label }
    }

    /// Mean active pixels across the dataset.
    pub fn mean_active(&self) -> f64 {
        let total: usize = self.samples.iter().map(|s| s.active_pixels().len()).sum();
        total as f64 / self.samples.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = Dataset::generate(&DataSpec { n: 20, ..Default::default() });
        let b = Dataset::generate(&DataSpec { n: 20, ..Default::default() });
        for (x, y) in a.samples.iter().zip(&b.samples) {
            assert_eq!(x.pixels, y.pixels);
            assert_eq!(x.label, y.label);
        }
    }

    #[test]
    fn density_is_mnist_like() {
        let d = Dataset::generate(&DataSpec { n: 200, mean_active: 150, seed: 3 });
        let mean = d.mean_active();
        assert!((100.0..200.0).contains(&mean), "mean active pixels {mean}");
    }

    #[test]
    fn labels_cycle_through_classes() {
        let d = Dataset::generate(&DataSpec { n: 25, ..Default::default() });
        for (i, s) in d.samples.iter().enumerate() {
            assert_eq!(s.label, i % CLASSES);
        }
    }

    #[test]
    fn images_are_centre_biased() {
        let d = Dataset::generate(&DataSpec { n: 100, ..Default::default() });
        let mut border = 0usize;
        let mut centre = 0usize;
        for s in &d.samples {
            for idx in s.active_pixels() {
                let (x, y) = (idx % SIDE, idx / SIDE);
                if !(3..SIDE - 3).contains(&x) || !(3..SIDE - 3).contains(&y) {
                    border += 1;
                } else {
                    centre += 1;
                }
            }
        }
        assert!(centre > border * 10, "centre {centre} vs border {border}");
    }

    #[test]
    fn classes_have_distinct_footprints() {
        let d = Dataset::generate(&DataSpec { n: 100, ..Default::default() });
        let union = |class: usize| -> std::collections::HashSet<usize> {
            d.samples
                .iter()
                .filter(|s| s.label == class)
                .flat_map(super::Sample::active_pixels)
                .collect()
        };
        let a = union(0);
        let b = union(1);
        let inter = a.intersection(&b).count();
        // Digit 1 (a vertical bar) must be much smaller than digit 0's
        // ring, and not contained in it.
        assert!(inter < a.len(), "class footprints identical");
        assert!(b.len() < a.len());
    }
}
