//! Parameter-server training simulation.
//!
//! §3's setup: "one acts as the parameter server while the other five
//! machines run as many worker processes … each worker is training the
//! same model on different mini-batches of the data. In each iteration,
//! the worker sends its parameter updates to the server which aggregates
//! the local updates from each worker. Then, the parameters at each
//! worker are updated according to their values at the parameter
//! server."
//!
//! Synchronous data parallelism: per step every worker computes a sparse
//! gradient on its own mini-batch, converts it to an update with its
//! optimizer replica, ships the update, and the server applies the
//! aggregate. The *update support sets* per worker per step are the raw
//! material of the Figure-1 overlap metric.

use crate::data::{Dataset, Sample, CLASSES};
use crate::model::{Model, SparseGrad};
use crate::optimizer::Optimizer;
use std::collections::BTreeMap;

/// What one worker sent in one step: its sparse mini-batch gradient (the
/// parameter server owns the optimizer state, as in TensorFlow's PS
/// architecture — workers ship gradients, the server applies them).
#[derive(Debug, Clone)]
pub struct WorkerGrad {
    /// Which worker.
    pub worker: usize,
    /// The sparse gradient.
    pub grad: SparseGrad,
}

/// The per-step record the overlap analysis consumes.
#[derive(Debug, Clone)]
pub struct StepTrace {
    /// Step index.
    pub step: usize,
    /// Every worker's shipped gradient this step.
    pub updates: Vec<WorkerGrad>,
}

/// A synchronous parameter-server cluster.
pub struct PsCluster<O: Optimizer> {
    /// The authoritative model at the server.
    pub server: Model,
    optimizer: O,
    n_workers: usize,
    batch: usize,
    cursor: Vec<usize>,
}

impl<O: Optimizer> PsCluster<O> {
    /// A cluster of `n_workers` workers, the server applying `optimizer`,
    /// each worker drawing mini-batches of `batch` samples.
    pub fn new(n_workers: usize, batch: usize, optimizer: O) -> PsCluster<O> {
        PsCluster {
            server: Model::new(),
            optimizer,
            n_workers,
            batch,
            cursor: (0..n_workers).collect(),
        }
    }

    /// Runs one synchronous step over `data`, returning the trace.
    ///
    /// Worker `w` reads samples `cursor, cursor + n_workers, …` so the
    /// workers' shards are disjoint (data parallelism), then advances its
    /// cursor — the same round-robin sharding TF's input pipelines use.
    pub fn step(&mut self, data: &Dataset, step_idx: usize) -> StepTrace {
        let mut updates = Vec::with_capacity(self.n_workers);
        for w in 0..self.n_workers {
            // Collect this worker's mini-batch.
            let mut batch: Vec<&Sample> = Vec::with_capacity(self.batch);
            for _ in 0..self.batch {
                batch.push(&data.samples[self.cursor[w] % data.samples.len()]);
                self.cursor[w] += self.n_workers;
            }
            // Gradient against the current server parameters (synchronous
            // training: everyone reads the same snapshot).
            let grad = self.server.gradient(&batch);
            updates.push(WorkerGrad { worker: w, grad });
        }

        // Server aggregates the gradients — *vector addition over the
        // touched rows*, the exact operation DAIET runs in-network — then
        // applies its optimizer once to the mean gradient.
        let inv = 1.0 / self.n_workers as f32;
        let mut rows: BTreeMap<usize, [f32; CLASSES]> = BTreeMap::new();
        let mut bias = [0.0f32; CLASSES];
        for wu in &updates {
            for (r, g) in &wu.grad.rows {
                let acc = rows.entry(*r).or_insert([0.0; CLASSES]);
                for (a, g) in acc.iter_mut().zip(g) {
                    *a += g * inv;
                }
            }
            for (b, g) in bias.iter_mut().zip(&wu.grad.bias) {
                *b += g * inv;
            }
        }
        let mean_grad = SparseGrad { rows: rows.into_iter().collect(), bias };
        let update = self.optimizer.step(&mean_grad);
        self.server.apply_rows(&update.rows, &update.bias);

        StepTrace { step: step_idx, updates }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::DataSpec;
    use crate::optimizer::{Adam, Sgd};

    #[test]
    fn workers_see_disjoint_shards() {
        let data = Dataset::generate(&DataSpec { n: 100, ..Default::default() });
        let mut cluster = PsCluster::new(5, 3, Sgd::new(0.1));
        let _ = cluster.step(&data, 0);
        // Cursors advanced by batch × n_workers from distinct offsets.
        assert_eq!(cluster.cursor, vec![15, 16, 17, 18, 19]);
    }

    #[test]
    fn training_converges_under_ps() {
        let data = Dataset::generate(&DataSpec { n: 300, ..Default::default() });
        let mut cluster = PsCluster::new(5, 10, Sgd::new(1.0));
        for s in 0..40 {
            cluster.step(&data, s);
        }
        let acc = cluster.server.accuracy(&data.samples);
        assert!(acc > 0.6, "accuracy {acc}");
    }

    #[test]
    fn adam_cluster_also_converges() {
        let data = Dataset::generate(&DataSpec { n: 300, ..Default::default() });
        let mut cluster = PsCluster::new(5, 10, Adam::new(0.05));
        for s in 0..40 {
            cluster.step(&data, s);
        }
        let acc = cluster.server.accuracy(&data.samples);
        assert!(acc > 0.6, "accuracy {acc}");
    }

    #[test]
    fn gradient_support_matches_batch_support() {
        let data = Dataset::generate(&DataSpec { n: 60, ..Default::default() });
        let mut cluster = PsCluster::new(2, 3, Sgd::new(0.1));
        let trace = cluster.step(&data, 0);
        assert_eq!(trace.updates.len(), 2);
        for wu in &trace.updates {
            assert!(!wu.grad.rows.is_empty());
            // Rows ascend (BTreeMap order upstream).
            let rows: Vec<usize> = wu.grad.touched_rows().collect();
            assert!(rows.windows(2).all(|w| w[0] < w[1]));
        }
    }
}
