//! Query model and the in-memory reference executor.
//!
//! A query is `SELECT group, agg₀, agg₁, … FROM t GROUP BY group` where
//! every aggregate is one of the commutative/associative functions the
//! paper names as offloadable (§1 explicitly lists SQL aggregation
//! operators next to MapReduce as partition/aggregate workloads). `AVG`
//! is *not* itself associative — it decomposes into a SUM lane and a
//! COUNT lane, recombined at the coordinator (see
//! [`crate::plan::QueryPlan`]).
//!
//! All value arithmetic is on wrapping `u32` lanes — the same semantics
//! [`daiet::agg::AggFn`] applies in the switch — so the reference
//! executor, the TCP baseline and the in-network path are bit-comparable.

use crate::table::Table;
use std::collections::BTreeMap;

/// One aggregate expression over a value column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Aggregate {
    /// `COUNT(*)` — rows per group.
    Count,
    /// `SUM(cᵢ)` (wrapping 32-bit sum).
    Sum(usize),
    /// `MIN(cᵢ)` (unsigned).
    Min(usize),
    /// `MAX(cᵢ)` (unsigned).
    Max(usize),
    /// `AVG(cᵢ)` — decomposed into SUM + COUNT lanes; the final value is
    /// the exact rational [`AggOut::Ratio`].
    Avg(usize),
}

impl Aggregate {
    /// The column the aggregate reads (`None` for `COUNT(*)`).
    pub fn column(&self) -> Option<usize> {
        match *self {
            Aggregate::Count => None,
            Aggregate::Sum(c) | Aggregate::Min(c) | Aggregate::Max(c) | Aggregate::Avg(c) => {
                Some(c)
            }
        }
    }

    /// SQL-ish rendering (`SUM(c2)`).
    pub fn label(&self) -> String {
        match *self {
            Aggregate::Count => "COUNT(*)".into(),
            Aggregate::Sum(c) => format!("SUM(c{c})"),
            Aggregate::Min(c) => format!("MIN(c{c})"),
            Aggregate::Max(c) => format!("MAX(c{c})"),
            Aggregate::Avg(c) => format!("AVG(c{c})"),
        }
    }
}

/// A multi-aggregate GROUP BY query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Query {
    /// The select-list aggregates, in output order.
    pub aggregates: Vec<Aggregate>,
}

impl Query {
    /// A query over the given aggregates.
    pub fn new(aggregates: Vec<Aggregate>) -> Query {
        Query { aggregates }
    }

    /// Checks the select list against the table width.
    pub fn validate(&self, n_columns: usize) -> Result<(), String> {
        if self.aggregates.is_empty() {
            return Err("query selects no aggregates".into());
        }
        for a in &self.aggregates {
            if let Some(c) = a.column() {
                if c >= n_columns {
                    return Err(format!(
                        "{} references column {c} but the table has {n_columns}",
                        a.label()
                    ));
                }
            }
        }
        Ok(())
    }

    /// SQL-ish rendering of the whole query.
    pub fn describe(&self) -> String {
        let list: Vec<String> = self.aggregates.iter().map(Aggregate::label).collect();
        format!("SELECT g, {} FROM t GROUP BY g", list.join(", "))
    }

    /// Executes the query in memory over the whole table — the ground
    /// truth every network execution mode must match **bit for bit**.
    pub fn reference(&self, table: &Table) -> QueryResult {
        let mut acc: BTreeMap<u32, Vec<Acc>> = BTreeMap::new();
        for shard in &table.shards {
            for row in shard {
                let entry = acc
                    .entry(row.group)
                    .or_insert_with(|| self.aggregates.iter().map(Acc::init).collect());
                for (a, agg) in entry.iter_mut().zip(&self.aggregates) {
                    a.feed(agg, &row.cols);
                }
            }
        }
        QueryResult {
            rows: acc
                .into_iter()
                .map(|(group, accs)| GroupRow {
                    group,
                    values: accs.into_iter().map(Acc::finish).collect(),
                })
                .collect(),
        }
    }
}

/// Streaming accumulator for one aggregate of one group.
enum Acc {
    Count(u32),
    Sum(u32),
    Min(u32),
    Max(u32),
    Avg { sum: u32, count: u32 },
}

impl Acc {
    fn init(agg: &Aggregate) -> Acc {
        match *agg {
            Aggregate::Count => Acc::Count(0),
            Aggregate::Sum(_) => Acc::Sum(0),
            Aggregate::Min(_) => Acc::Min(u32::MAX),
            Aggregate::Max(_) => Acc::Max(0),
            Aggregate::Avg(_) => Acc::Avg { sum: 0, count: 0 },
        }
    }

    fn feed(&mut self, agg: &Aggregate, cols: &[u32]) {
        match (self, *agg) {
            (Acc::Count(n), Aggregate::Count) => *n = n.wrapping_add(1),
            (Acc::Sum(s), Aggregate::Sum(c)) => *s = s.wrapping_add(cols[c]),
            (Acc::Min(m), Aggregate::Min(c)) => *m = (*m).min(cols[c]),
            (Acc::Max(m), Aggregate::Max(c)) => *m = (*m).max(cols[c]),
            (Acc::Avg { sum, count }, Aggregate::Avg(c)) => {
                *sum = sum.wrapping_add(cols[c]);
                *count = count.wrapping_add(1);
            }
            _ => unreachable!("accumulator/aggregate mismatch"),
        }
    }

    fn finish(self) -> AggOut {
        match self {
            Acc::Count(n) => AggOut::Int(n),
            Acc::Sum(s) => AggOut::Int(s),
            Acc::Min(m) => AggOut::Int(m),
            Acc::Max(m) => AggOut::Int(m),
            Acc::Avg { sum, count } => AggOut::Ratio { sum, count },
        }
    }
}

/// The final value of one aggregate for one group. Integer-only so
/// cross-mode comparison is exact (`==` is bit-identity, no float
/// tolerance); `AVG` stays an exact rational until the caller asks for a
/// float.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggOut {
    /// COUNT / SUM / MIN / MAX.
    Int(u32),
    /// AVG as its exact (sum, count) decomposition.
    Ratio {
        /// Wrapping 32-bit sum lane.
        sum: u32,
        /// Count lane.
        count: u32,
    },
}

impl AggOut {
    /// Numeric rendering (AVG divides; everything else converts).
    pub fn as_f64(&self) -> f64 {
        match *self {
            AggOut::Int(v) => f64::from(v),
            AggOut::Ratio { sum, count } => {
                if count == 0 {
                    f64::NAN
                } else {
                    f64::from(sum) / f64::from(count)
                }
            }
        }
    }
}

/// One output row: the group and its aggregate values in select-list
/// order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroupRow {
    /// The GROUP BY key.
    pub group: u32,
    /// Aggregate values, parallel to `query.aggregates`.
    pub values: Vec<AggOut>,
}

/// A complete query result, rows sorted by group id. `==` between two
/// results is exact bit-identity of every aggregate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryResult {
    /// Output rows in ascending group order.
    pub rows: Vec<GroupRow>,
}

impl QueryResult {
    /// Number of groups in the result.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the result has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::{Row, TableSpec};

    /// A two-worker table with hand-checkable content.
    fn mini_table() -> Table {
        let spec = TableSpec {
            n_workers: 2,
            rows_per_worker: 3,
            n_groups: 2,
            n_columns: 2,
            zipf_s: 0.0,
            max_value: 100,
            seed: 0,
        };
        Table {
            spec,
            shards: vec![
                vec![
                    Row { group: 0, cols: vec![10, 5] },
                    Row { group: 1, cols: vec![20, 7] },
                    Row { group: 0, cols: vec![30, 3] },
                ],
                vec![
                    Row { group: 1, cols: vec![40, 9] },
                    Row { group: 0, cols: vec![50, 1] },
                ],
            ],
        }
    }

    #[test]
    fn reference_computes_all_aggregates() {
        let q = Query::new(vec![
            Aggregate::Count,
            Aggregate::Sum(0),
            Aggregate::Min(1),
            Aggregate::Max(1),
            Aggregate::Avg(0),
        ]);
        let r = q.reference(&mini_table());
        assert_eq!(r.len(), 2);
        let g0 = &r.rows[0];
        assert_eq!(g0.group, 0);
        assert_eq!(
            g0.values,
            vec![
                AggOut::Int(3),
                AggOut::Int(90),
                AggOut::Int(1),
                AggOut::Int(5),
                AggOut::Ratio { sum: 90, count: 3 },
            ]
        );
        let g1 = &r.rows[1];
        assert_eq!(g1.group, 1);
        assert_eq!(
            g1.values,
            vec![
                AggOut::Int(2),
                AggOut::Int(60),
                AggOut::Int(7),
                AggOut::Int(9),
                AggOut::Ratio { sum: 60, count: 2 },
            ]
        );
        assert_eq!(g1.values[4].as_f64(), 30.0);
    }

    #[test]
    fn sum_wraps_like_the_switch() {
        let mut t = mini_table();
        t.shards[0][0].cols[0] = u32::MAX;
        t.shards[0][2].cols[0] = 2;
        t.shards[1][1].cols[0] = 0;
        let q = Query::new(vec![Aggregate::Sum(0)]);
        let r = q.reference(&t);
        // u32::MAX + 2 + 0 wraps to 1, exactly as AggFn::Sum would.
        assert_eq!(r.rows[0].values[0], AggOut::Int(1));
    }

    #[test]
    fn validate_checks_columns() {
        let q = Query::new(vec![Aggregate::Sum(5)]);
        assert!(q.validate(2).unwrap_err().contains("column 5"));
        assert!(Query::new(vec![]).validate(2).is_err());
        assert!(Query::new(vec![Aggregate::Count]).validate(0).is_ok());
    }

    #[test]
    fn describe_reads_like_sql() {
        let q = Query::new(vec![Aggregate::Count, Aggregate::Avg(2)]);
        assert_eq!(q.describe(), "SELECT g, COUNT(*), AVG(c2) FROM t GROUP BY g");
    }

    #[test]
    fn empty_ratio_is_nan_not_panic() {
        assert!(AggOut::Ratio { sum: 0, count: 0 }.as_f64().is_nan());
    }
}
