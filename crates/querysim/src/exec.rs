//! Executes a planned GROUP BY query over the simulator in the three
//! modes of the paper's §5 evaluation, transplanted from WordCount to
//! SQL:
//!
//! * [`QueryMode::TcpBaseline`] — every worker streams its combined
//!   partial aggregates to the coordinator over TCP (the classic
//!   shuffle-to-one-node plan of a distributed SQL engine);
//! * [`QueryMode::UdpNoAgg`] — the same partials as DAIET packets, one
//!   tree per lane, switches merely forwarding;
//! * [`QueryMode::DaietAgg`] — full DAIET: the switch merges each lane's
//!   partials on-path, so the coordinator receives one pair per
//!   `(lane, group)` instead of one per `(lane, group, worker)`.
//!
//! All three assemble their lanes through [`QueryPlan::assemble`] and
//! must produce **bit-identical** [`QueryResult`]s (the integration and
//! property tests enforce this against [`Query::reference`]).
//!
//! The optional reliability harness ([`QueryRunner::with_reliability`])
//! pairs `k`-redundant senders with dedup windows at the switch and the
//! coordinator; worker→switch links can then be given loss/duplication
//! faults while the query still answers exactly.

// lint:allow-file(layer-netsim): GROUP BY executor harness — builds the
// Simulator, places scan/reduce nodes, and compares backends. The DAIET
// aggregation path under test remains fabric-only.
use crate::plan::QueryPlan;
use crate::query::{Query, QueryResult};
use crate::table::{group_of_key, Table};
use daiet::agg::AggFn;
use daiet::controller::{AggregationMode, Controller, JobPlacement};
use daiet::worker::{receive_daiet, Collector};
use daiet::DaietConfig;
use daiet_dataplane::Resources;
use daiet_netsim::topology::{Role, TopologyPlan};
use daiet_netsim::{
    Fabric, FaultProfile, Frame, LinkSpec, Node, NodeId, NodeStats, PortId,
    SimDuration, SimTime, Simulator,
};
use daiet_transport::tcp::{BulkSenderNode, SinkReceiverNode, TcpConfig};
use std::collections::BTreeMap;

/// The execution strategy under test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryMode {
    /// TCP shuffle of worker partials to the coordinator.
    TcpBaseline,
    /// DAIET packets without in-network aggregation.
    UdpNoAgg,
    /// DAIET with in-network aggregation.
    DaietAgg,
}

/// TCP port the coordinator listens on in the baseline.
const QUERY_PORT: u16 = 9100;

/// Encodes one worker's per-lane partials for the TCP baseline:
/// `u8 lane ‖ u32 group ‖ u32 value` per record (the compact varlen-style
/// framing a row-oriented engine would ship).
fn encode_partials(partials: &[Vec<daiet_wire::daiet::Pair>]) -> Vec<u8> {
    // The lane byte would silently wrap past 256 lanes, folding records
    // into the wrong lanes' aggregation functions; QueryRunner::new
    // rejects such plans up front, this is the last line of defense.
    assert!(partials.len() <= 256, "lane index does not fit the u8 encoding");
    let mut out = Vec::new();
    for (lane, pairs) in partials.iter().enumerate() {
        for pair in pairs {
            let g = group_of_key(&pair.key).expect("planner emits group keys");
            out.push(lane as u8);
            out.extend_from_slice(&g.to_be_bytes());
            out.extend_from_slice(&pair.value.to_be_bytes());
        }
    }
    out
}

/// Decodes an [`encode_partials`] stream; `None` on a truncated tail.
fn decode_partials(mut data: &[u8]) -> Option<Vec<(u8, u32, u32)>> {
    let mut out = Vec::with_capacity(data.len() / 9);
    while !data.is_empty() {
        if data.len() < 9 {
            return None;
        }
        let lane = data[0];
        let group = u32::from_be_bytes([data[1], data[2], data[3], data[4]]);
        let value = u32::from_be_bytes([data[5], data[6], data[7], data[8]]);
        out.push((lane, group, value));
        data = &data[9..];
    }
    Some(out)
}


/// The coordinator for the UDP modes: one [`Collector`] per lane (frames
/// are demultiplexed by tree id), optional receive-side duplicate
/// suppression and NACK recovery, completion when every lane saw all its
/// ENDs.
pub struct QueryCoordinatorNode {
    collectors: Vec<Collector>,
    /// Receive-side reliability (dedup and/or NACK recovery) — the same
    /// shared driver `ReducerHost` uses, so the workloads cannot drift.
    guard: daiet::reliability::ReceiverGuard,
    /// Simulated time all lanes completed, once reached.
    pub completed_at: Option<SimTime>,
}

impl QueryCoordinatorNode {
    /// A coordinator expecting `expected_ends[l]` END packets on lane `l`,
    /// merging lane `l` with `lane_aggs[l]`.
    pub fn new(lane_aggs: &[AggFn], expected_ends: &[u32], dedup: bool) -> QueryCoordinatorNode {
        assert_eq!(lane_aggs.len(), expected_ends.len());
        let mut guard = daiet::reliability::ReceiverGuard::new();
        if dedup {
            // Host-side table: unbounded (DRAM), unlike the switch's.
            guard.enable_dedup();
        }
        QueryCoordinatorNode {
            collectors: lane_aggs
                .iter()
                .zip(expected_ends)
                .map(|(&agg, &ends)| Collector::new(agg, ends))
                .collect(),
            guard,
            completed_at: None,
        }
    }

    /// Arms NACK recovery: the coordinator (simulator id `self_id`)
    /// watches one flow per `(lane tree, source)` in `sources` and NACKs
    /// delinquent ones per `config`'s timeout and budget.
    pub fn with_nack_recovery(
        mut self,
        self_id: u32,
        config: &DaietConfig,
        sources: impl IntoIterator<Item = (u16, u32)>,
    ) -> QueryCoordinatorNode {
        self.guard.arm_nack_recovery(self_id, config, sources);
        self
    }

    /// NACK frames this coordinator has sent (0 without recovery).
    pub fn nacks_emitted(&self) -> u64 {
        self.guard.nacks_emitted()
    }

    /// True once every lane's partition completed.
    pub fn is_complete(&self) -> bool {
        self.collectors.iter().all(Collector::is_complete)
    }

    /// True when NACK recovery (if armed) owes nothing: every tracked
    /// flow is gapless through its newest END (vacuously true without
    /// recovery). The loopback harness gates completion on this so a
    /// run cannot stop while a repair is still outstanding.
    pub fn recovery_satisfied(&self) -> bool {
        self.guard.all_satisfied()
    }

    /// Application payload bytes received across all lanes.
    pub fn app_bytes(&self) -> u64 {
        self.collectors.iter().map(|c| c.stats().app_bytes).sum()
    }

    /// Pairs received across all lanes (pre-merge).
    pub fn pairs_received(&self) -> u64 {
        self.collectors.iter().map(|c| c.stats().pairs_received).sum()
    }

    /// Frames suppressed as duplicates (0 without dedup), whichever
    /// filter did it — the dedup window or the gap tracker's bitmaps.
    pub fn duplicates_suppressed(&self) -> u64 {
        self.guard.duplicates_suppressed()
    }

    /// The merged per-lane group maps, decoded back to group ids.
    pub fn lane_maps(&self) -> Vec<BTreeMap<u32, u32>> {
        self.collectors
            .iter()
            .map(|c| {
                c.get_all()
                    .filter_map(|(k, v)| group_of_key(&k).map(|g| (g, v)))
                    .collect()
            })
            .collect()
    }
}

impl Node for QueryCoordinatorNode {
    fn on_packet(&mut self, ctx: &mut dyn Fabric, _port: PortId, frame: Frame) {
        let Some((hdr, src, parsed)) = receive_daiet(frame) else {
            return;
        };
        let lane = hdr.tree_id as usize;
        if lane >= self.collectors.len() {
            return; // foreign tree id — discarded before it can charge dedup state
        }
        if !self.guard.admit(&hdr, src, ctx) {
            return;
        }
        self.collectors[lane].on_parts(&hdr, parsed.daiet_pairs());
        if self.is_complete() && self.completed_at.is_none() {
            self.completed_at = Some(ctx.now());
        }
        self.guard.arm(ctx);
    }

    fn on_start(&mut self, ctx: &mut dyn Fabric) {
        self.guard.arm(ctx);
    }

    fn on_timer(&mut self, ctx: &mut dyn Fabric, _token: u64) {
        self.guard.on_timer(ctx);
    }

    fn name(&self) -> String {
        "query-coordinator".into()
    }
}

/// One complete query execution's results and measurements.
#[derive(Debug, Clone)]
pub struct QueryOutcome {
    /// The strategy that produced this outcome.
    pub mode: QueryMode,
    /// The assembled GROUP BY result.
    pub result: QueryResult,
    /// Whether the execution terminated cleanly (all streams finished /
    /// all lanes saw their ENDs). An incomplete run's `result` is partial.
    pub complete: bool,
    /// Application-payload bytes delivered to the coordinator.
    pub coord_app_bytes: u64,
    /// The coordinator's NIC counters straight from the simulator's
    /// `StatsTable` (frames/bytes in either direction).
    pub coord_nic: NodeStats,
    /// Partial-aggregate records delivered to the coordinator (pre final
    /// merge).
    pub records_received: u64,
    /// Frames dropped anywhere in the fabric (queue overflow + faults).
    pub frames_dropped: u64,
    /// Duplicates suppressed by dedup windows (switch + coordinator).
    pub duplicates_suppressed: u64,
    /// Simulated instant the coordinator's result became complete (all
    /// streams finished / all lanes saw their ENDs); `None` when the run
    /// never completed. Compare mode latencies with this.
    pub completed_at: Option<SimTime>,
    /// Simulated instant the event queue drained — later than
    /// [`completed_at`](Self::completed_at) whenever post-completion
    /// traffic (e.g. redundant copies) was still in flight.
    pub finished_at: SimTime,
}

/// Orchestrates executions of one query over one table.
pub struct QueryRunner {
    /// The sharded input table.
    pub table: Table,
    /// The query.
    pub query: Query,
    /// Its lane plan (derived once in [`QueryRunner::new`]).
    pub plan: QueryPlan,
    /// DAIET parameters (register sizing defaults to the group count).
    pub daiet_config: DaietConfig,
    /// Link parameters for every edge.
    pub link: LinkSpec,
    /// Extra faults applied to worker→switch links only (the segment the
    /// redundancy harness protects; see the module docs).
    pub worker_faults: Option<FaultProfile>,
    /// Extra faults applied to the switch→coordinator link — only
    /// survivable with NACK recovery
    /// ([`with_full_reliability`](Self::with_full_reliability)), since
    /// switch-originated flush frames are sent exactly once.
    pub coordinator_faults: Option<FaultProfile>,
    /// Copies of each frame workers transmit (1 = no redundancy).
    pub redundancy: u32,
    /// Switch chip profile.
    pub resources: Resources,
    /// Gap between UDP frames at each worker.
    pub pacing: SimDuration,
    /// Simulation seed.
    pub seed: u64,
    /// Execution partitions for the simulator (default: the
    /// `DAIET_PARTITIONS` environment variable, else 1). Results must be
    /// bit-identical at any setting.
    pub partitions: usize,
    /// Per-partition frame pools shared across this runner's runs (see
    /// `make_sim`), grown on demand.
    pools: std::cell::RefCell<Vec<daiet_netsim::FramePool>>,
}

impl QueryRunner {
    /// A runner over `table` for `query`, panicking on an invalid query
    /// or a plan of more than 256 lanes (the TCP baseline's record format
    /// carries the lane index in one byte, and no realistic chip fits
    /// that many trees anyway).
    pub fn new(table: Table, query: Query) -> QueryRunner {
        query.validate(table.spec.n_columns).expect("query matches table");
        let plan = QueryPlan::of(&query);
        assert!(
            plan.lane_count() <= 256,
            "query plans {} lanes; at most 256 are supported",
            plan.lane_count()
        );
        // Registers sized well past the GROUP BY cardinality: group keys
        // hash into cells by CRC-32, so at 2× headroom a birthday-bound
        // ~n²/2m of the groups collide and spill unaggregated; 8× keeps
        // the spill fraction in the low percents. Collisions stay *exact*
        // either way (the spillover bucket forwards victims), this is a
        // reduction-ratio knob, not correctness.
        let register_cells = (table.spec.n_groups * 8).next_power_of_two().clamp(64, 16_384);
        QueryRunner {
            table,
            query,
            plan,
            daiet_config: DaietConfig { register_cells, ..DaietConfig::default() },
            link: LinkSpec::fast().with_queue_bytes(4 * 1024 * 1024),
            worker_faults: None,
            coordinator_faults: None,
            redundancy: 1,
            resources: Resources::tofino_like(),
            pacing: SimDuration::from_micros(2),
            seed: 42,
            partitions: daiet_netsim::env_partitions(),
            pools: std::cell::RefCell::new(Vec::new()),
        }
    }

    /// Arms the reliability harness: `k`-redundant transmission, dedup
    /// windows at switch and coordinator, and `faults` on the
    /// worker→switch links.
    pub fn with_reliability(mut self, k: u32, faults: FaultProfile) -> QueryRunner {
        self.daiet_config.reliability = true;
        self.redundancy = k;
        self.worker_faults = Some(faults);
        self
    }

    /// Arms the *full* reliability story: dedup + NACK recovery on every
    /// segment, `faults` on **every** link (worker→switch and
    /// switch→coordinator), redundancy left at `k = 1` — recovery alone
    /// must carry the query to the exact answer.
    pub fn with_full_reliability(mut self, faults: FaultProfile) -> QueryRunner {
        self.daiet_config.reliability = true;
        self.daiet_config.nack_recovery = true;
        self.daiet_config = self.daiet_config.with_rtx_sized_for_flush();
        self.worker_faults = Some(faults);
        self.coordinator_faults = Some(faults);
        self
    }

    /// The star topology: workers, the coordinator, one switch. Worker
    /// links carry [`QueryRunner::worker_faults`]; the coordinator link is
    /// clean (switch-originated flush frames are sent once, so loss there
    /// needs a reverse channel — out of scope exactly as in the paper).
    pub(crate) fn make_plan(&self) -> (TopologyPlan, Vec<usize>, usize) {
        let mut plan = TopologyPlan::new();
        let workers: Vec<usize> =
            (0..self.table.spec.n_workers).map(|_| plan.add_host()).collect();
        let coord = plan.add_host();
        let sw = plan.add_switch();
        let worker_link = match self.worker_faults {
            Some(f) => self.link.with_faults(f),
            None => self.link,
        };
        for &w in &workers {
            plan.link(w, sw, worker_link);
        }
        let coord_link = match self.coordinator_faults {
            Some(f) => self.link.with_faults(f),
            None => self.link,
        };
        plan.link(coord, sw, coord_link);
        (plan, workers, coord)
    }

    pub(crate) fn placement(&self, workers: &[usize], coord: usize) -> JobPlacement {
        JobPlacement {
            mappers: workers.to_vec(),
            // One tree per lane, all rooted at the coordinator.
            reducers: vec![coord; self.plan.lane_count()],
        }
    }

    fn make_sim(&self, plan: &TopologyPlan) -> (Simulator, daiet_netsim::PartitionMap) {
        let pmap = plan.partition_map(self.partitions);
        let mut sim = Simulator::with_partitions(self.seed, pmap.clone());
        // One pool per partition across this runner's runs: repeated runs
        // recycle the previous run's buffers instead of growing a cold
        // pool each time (see `daiet_mapreduce::Runner::make_sim`).
        // Semantics-neutral; pools are `Rc`-backed and partition-local.
        let mut pools = self.pools.borrow_mut();
        while pools.len() < sim.partition_count() {
            pools.push(daiet_netsim::FramePool::new());
        }
        for p in 0..sim.partition_count() {
            sim.set_frame_pool_for(p, pools[p].clone());
        }
        drop(pools);
        (sim, pmap)
    }

    /// Runs the query under `mode`.
    pub fn run(&self, mode: QueryMode) -> QueryOutcome {
        match mode {
            QueryMode::TcpBaseline => self.run_tcp(),
            QueryMode::UdpNoAgg => self.run_udp(AggregationMode::PassThrough),
            QueryMode::DaietAgg => self.run_udp(AggregationMode::InNetwork),
        }
    }

    fn run_tcp(&self) -> QueryOutcome {
        let (plan, workers, coord) = self.make_plan();
        let placement = self.placement(&workers, coord);
        // PassThrough still installs the L2 forwarding tables.
        let controller =
            Controller::with_per_tree_agg(self.daiet_config, AggFn::Sum, self.plan.lane_aggs());
        let (_dep, mut switches) = controller
            .deploy(&plan, &placement, self.resources, AggregationMode::PassThrough)
            .expect("deployment fits");

        let (mut sim, _pmap) = self.make_sim(&plan);
        let tcp_cfg = TcpConfig::default();
        let mut ids: Vec<NodeId> = Vec::with_capacity(plan.len());
        for slot in 0..plan.len() {
            let id = match plan.role(slot) {
                Role::Host if slot != coord => {
                    let w = workers.iter().position(|&s| s == slot).expect("worker slot");
                    let payload = encode_partials(&self.plan.worker_partials(&self.table.shards[w]));
                    sim.add_node(Box::new(BulkSenderNode::new(
                        slot as u32,
                        tcp_cfg,
                        vec![(coord as u32, QUERY_PORT, payload)],
                    )))
                }
                Role::Host => sim.add_node(Box::new(SinkReceiverNode::new(
                    slot as u32,
                    tcp_cfg,
                    QUERY_PORT,
                ))),
                Role::Switch => sim.add_node(Box::new(
                    switches.remove(&slot).expect("controller built every switch"),
                )),
            };
            ids.push(id);
        }
        plan.wire(&mut sim, &ids);
        let finished_at = sim.run_until(SimTime(SimDuration::from_secs(120).as_nanos()));

        let node = sim.node_ref::<SinkReceiverNode>(ids[coord]).expect("coordinator node");
        let mut per_lane = self.plan.empty_lane_maps();
        let mut records = 0u64;
        let mut app_bytes = 0u64;
        let mut all_decoded = true;
        for stream in node.received.values() {
            app_bytes += stream.len() as u64;
            // TCP delivers byte-exact, but a run that hit the simulation
            // deadline mid-stream leaves a truncated stream. Decoding is
            // all-or-nothing: the whole torn stream is discarded and the
            // run reported incomplete rather than panicking.
            let Some(recs) = decode_partials(stream) else {
                all_decoded = false;
                continue;
            };
            records += recs.len() as u64;
            for (lane, group, value) in recs {
                self.plan.merge_record(&mut per_lane, lane as usize, group, value);
            }
        }
        let complete = all_decoded && node.finished.len() == workers.len();
        QueryOutcome {
            mode: QueryMode::TcpBaseline,
            result: self.plan.assemble(&per_lane),
            complete,
            coord_app_bytes: app_bytes,
            coord_nic: sim.node_stats(ids[coord]),
            records_received: records,
            frames_dropped: total_drops(&sim),
            duplicates_suppressed: 0,
            completed_at: if complete { node.last_fin_at } else { None },
            finished_at,
        }
    }

    fn run_udp(&self, agg_mode: AggregationMode) -> QueryOutcome {
        let (plan, workers, coord) = self.make_plan();
        let placement = self.placement(&workers, coord);
        let controller =
            Controller::with_per_tree_agg(self.daiet_config, AggFn::Sum, self.plan.lane_aggs());
        let (dep, mut switches) = controller
            .deploy(&plan, &placement, self.resources, agg_mode)
            .expect("deployment fits");

        let lane_aggs = self.plan.lane_aggs();
        let expected_ends: Vec<u32> = (0..self.plan.lane_count())
            .map(|l| dep.expected_ends(l, workers.len()))
            .collect();

        let (mut sim, pmap) = self.make_sim(&plan);
        let mut ids: Vec<NodeId> = Vec::with_capacity(plan.len());
        for slot in 0..plan.len() {
            let id = match plan.role(slot) {
                Role::Host if slot != coord => {
                    let w = workers.iter().position(|&s| s == slot).expect("worker slot");
                    let partials = self.plan.worker_partials(&self.table.shards[w]);
                    let lanes: Vec<_> = partials
                        .into_iter()
                        .enumerate()
                        .map(|(l, pairs)| (dep.tree_id(l), dep.endpoints(slot, l), pairs))
                        .collect();
                    // Preloaded frames come from the pool of the partition
                    // that will transmit them (pools are partition-local).
                    let pool = sim.partition_pool(pmap.part_of(slot)).clone();
                    sim.add_node(Box::new(daiet::worker::multi_tree_sender(
                        &self.daiet_config,
                        w,
                        &lanes,
                        self.redundancy,
                        self.pacing,
                        &pool,
                        "query-worker",
                    )))
                }
                Role::Host => {
                    let mut node = QueryCoordinatorNode::new(
                        &lane_aggs,
                        &expected_ends,
                        self.daiet_config.reliability,
                    );
                    if self.daiet_config.nack_recovery {
                        // One NACK roster across every lane: the
                        // coordinator is the reducer of all of them.
                        let sources: Vec<(u16, u32)> = (0..self.plan.lane_count())
                            .flat_map(|l| dep.nack_sources(l, &workers))
                            .collect();
                        node = node.with_nack_recovery(
                            slot as u32,
                            &self.daiet_config,
                            sources,
                        );
                    }
                    sim.add_node(Box::new(node))
                }
                Role::Switch => sim.add_node(Box::new(
                    switches.remove(&slot).expect("controller built every switch"),
                )),
            };
            ids.push(id);
        }
        plan.wire(&mut sim, &ids);
        let finished_at = sim.run_until(SimTime(SimDuration::from_secs(120).as_nanos()));

        let mode = match agg_mode {
            AggregationMode::InNetwork => QueryMode::DaietAgg,
            AggregationMode::PassThrough => QueryMode::UdpNoAgg,
        };
        let switch_dups: u64 = dep
            .engine_externs
            .iter()
            .map(|(&slot, &ext)| {
                let sw = sim
                    .node_ref::<daiet_dataplane::Switch>(ids[slot])
                    .expect("switch node");
                sw.extern_ref::<daiet::DaietEngine>(ext)
                    .expect("deployment registered the engine at this id")
                    .duplicates_suppressed()
            })
            .sum();
        let node = sim
            .node_ref::<QueryCoordinatorNode>(ids[coord])
            .expect("coordinator node");
        QueryOutcome {
            mode,
            result: self.plan.assemble(&node.lane_maps()),
            complete: node.is_complete(),
            coord_app_bytes: node.app_bytes(),
            coord_nic: sim.node_stats(ids[coord]),
            records_received: node.pairs_received(),
            frames_dropped: total_drops(&sim),
            duplicates_suppressed: switch_dups + node.duplicates_suppressed(),
            completed_at: node.completed_at,
            finished_at,
        }
    }
}

fn total_drops(sim: &Simulator) -> u64 {
    (0..sim.link_count())
        .map(|l| {
            let s = sim.link_stats(l);
            s.dirs[0].drops_overflow + s.dirs[0].drops_fault + s.dirs[1].drops_overflow
                + s.dirs[1].drops_fault
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::Aggregate;
    use crate::table::TableSpec;

    fn full_query() -> Query {
        Query::new(vec![
            Aggregate::Count,
            Aggregate::Sum(0),
            Aggregate::Min(1),
            Aggregate::Max(1),
            Aggregate::Avg(2),
        ])
    }

    #[test]
    fn tcp_codec_round_trips() {
        let table = Table::generate(&TableSpec::tiny(1));
        let plan = QueryPlan::of(&full_query());
        let partials = plan.worker_partials(&table.shards[0]);
        let bytes = encode_partials(&partials);
        let recs = decode_partials(&bytes).unwrap();
        let total: usize = partials.iter().map(Vec::len).sum();
        assert_eq!(recs.len(), total);
        assert!(decode_partials(&bytes[..bytes.len() - 1]).is_none());
        assert_eq!(decode_partials(&[]).unwrap(), vec![]);
    }

    #[test]
    fn all_three_modes_agree_with_the_reference() {
        let table = Table::generate(&TableSpec::tiny(7));
        let query = full_query();
        let truth = query.reference(&table);
        let runner = QueryRunner::new(table, query);
        for mode in [QueryMode::TcpBaseline, QueryMode::UdpNoAgg, QueryMode::DaietAgg] {
            let out = runner.run(mode);
            assert!(out.complete, "{mode:?} did not complete");
            assert_eq!(out.frames_dropped, 0, "{mode:?} dropped frames");
            assert_eq!(out.result, truth, "{mode:?} diverged from the reference");
            let done = out.completed_at.expect("complete runs record their instant");
            assert!(done <= out.finished_at);
        }
    }

    #[test]
    fn daiet_reduces_coordinator_traffic() {
        // Moderate size so group multiplicity across 8 workers is high.
        let table = Table::generate(&TableSpec {
            n_workers: 8,
            rows_per_worker: 600,
            n_groups: 64,
            ..TableSpec::tiny(3)
        });
        let runner = QueryRunner::new(table, full_query());
        let tcp = runner.run(QueryMode::TcpBaseline);
        let udp = runner.run(QueryMode::UdpNoAgg);
        let daiet = runner.run(QueryMode::DaietAgg);
        assert!(tcp.complete && udp.complete && daiet.complete);
        assert_eq!(tcp.result, daiet.result);
        assert_eq!(udp.result, daiet.result);
        // The aggregation path must measurably shrink what the
        // coordinator's NIC sees (StatsTable numbers, not app claims).
        assert!(
            daiet.coord_nic.bytes_in < tcp.coord_nic.bytes_in,
            "DAIET {} B vs TCP {} B at the coordinator NIC",
            daiet.coord_nic.bytes_in,
            tcp.coord_nic.bytes_in
        );
        assert!(
            daiet.coord_nic.bytes_in < udp.coord_nic.bytes_in,
            "DAIET {} B vs UDP {} B at the coordinator NIC",
            daiet.coord_nic.bytes_in,
            udp.coord_nic.bytes_in
        );
        assert!(daiet.coord_nic.frames_in < udp.coord_nic.frames_in);
        // Records collapse from (lane, group, worker) to (lane, group).
        assert!(daiet.records_received < udp.records_received);
    }

    #[test]
    fn duplication_faults_are_survived_with_reliability() {
        let table = Table::generate(&TableSpec::tiny(9));
        let query = full_query();
        let truth = query.reference(&table);
        let runner = QueryRunner::new(table, query).with_reliability(
            1,
            FaultProfile { duplicate: 0.4, ..FaultProfile::NONE },
        );
        for mode in [QueryMode::UdpNoAgg, QueryMode::DaietAgg] {
            let out = runner.run(mode);
            assert!(out.complete, "{mode:?} did not complete");
            assert_eq!(out.result, truth, "{mode:?} over-counted under duplication");
            assert!(out.duplicates_suppressed > 0, "{mode:?} suppressed nothing");
        }
    }

    #[test]
    fn loss_is_survived_with_redundancy() {
        let table = Table::generate(&TableSpec::tiny(13));
        let query = full_query();
        let truth = query.reference(&table);
        let runner = QueryRunner::new(table, query)
            .with_reliability(3, FaultProfile::loss(0.1));
        let out = runner.run(QueryMode::DaietAgg);
        assert!(out.frames_dropped > 0, "faults did not fire");
        assert!(out.complete, "redundancy k=3 should survive 10% loss");
        assert_eq!(out.result, truth);
    }

    /// The segment PR 3 could not protect: switch-originated flush frames
    /// lost on the switch→coordinator link. NACK recovery closes it.
    #[test]
    fn coordinator_link_loss_is_recovered_by_nacks() {
        let table = Table::generate(&TableSpec::tiny(29));
        let query = full_query();
        let truth = query.reference(&table);
        let mut runner =
            QueryRunner::new(table, query).with_full_reliability(FaultProfile::loss(0.15));
        // Confine the faults to the coordinator link so the recovered
        // losses are provably flush-frame losses.
        runner.worker_faults = None;
        let out = runner.run(QueryMode::DaietAgg);
        assert!(out.frames_dropped > 0, "faults did not fire");
        assert!(out.complete, "NACK recovery should complete the query");
        assert_eq!(out.result, truth);
    }

    /// The PR-4 acceptance scenario for the query workload: loss +
    /// duplication + reordering on every link at k = 1, results
    /// bit-identical to the in-memory reference executor.
    #[test]
    fn full_chaos_on_every_link_is_exact_at_k1() {
        let table = Table::generate(&TableSpec::tiny(31));
        let query = full_query();
        let truth = query.reference(&table);
        let chaos = FaultProfile::chaos(0.08, 0.08, 0.08, 20_000);
        let runner = QueryRunner::new(table, query).with_full_reliability(chaos);
        let mut any_drops = false;
        for mode in [QueryMode::UdpNoAgg, QueryMode::DaietAgg] {
            let out = runner.run(mode);
            any_drops |= out.frames_dropped > 0;
            assert!(out.complete, "{mode:?} did not complete under chaos");
            assert_eq!(out.result, truth, "{mode:?} diverged under chaos at k=1");
        }
        assert!(any_drops, "faults never fired — the test proved nothing");
    }

    #[test]
    #[should_panic(expected = "at most 256 are supported")]
    fn over_256_lanes_are_rejected_up_front() {
        // 300 distinct SUM columns → 300 lanes: the u8 lane byte of the
        // TCP record format cannot address them, so construction fails
        // loudly instead of corrupting results.
        let table = Table::generate(&TableSpec {
            n_workers: 2,
            rows_per_worker: 2,
            n_groups: 2,
            n_columns: 300,
            zipf_s: 0.0,
            max_value: 10,
            seed: 1,
        });
        let query = Query::new((0..300).map(Aggregate::Sum).collect());
        let _ = QueryRunner::new(table, query);
    }

    #[test]
    fn single_aggregate_queries_work() {
        let table = Table::generate(&TableSpec::tiny(21));
        for query in [
            Query::new(vec![Aggregate::Count]),
            Query::new(vec![Aggregate::Min(0)]),
            Query::new(vec![Aggregate::Avg(1)]),
        ] {
            let truth = query.reference(&table);
            let runner = QueryRunner::new(table.clone(), query);
            let out = runner.run(QueryMode::DaietAgg);
            assert!(out.complete);
            assert_eq!(out.result, truth);
        }
    }
}
