//! GROUP BY execution over the real-time UDP loopback backend.
//!
//! The same planner, worker combiners, switch engine and multi-lane
//! coordinator as [`QueryRunner::run`](crate::QueryRunner::run) in the
//! UDP modes — but every slot is a [`daiet_fabric::NodeDriver`] thread
//! exchanging genuine datagrams over `127.0.0.1`. Workers and switches
//! reuse [`daiet::loopback::LoopbackJob`]'s per-role specs verbatim; only
//! the coordinator spec is query-specific (one collector per value lane
//! instead of one [`ReducerHost`](daiet::worker::ReducerHost)).
//!
//! The backend-equivalence claim — the loopback run's assembled
//! [`QueryResult`] is **bit-identical** to both the simulator's and the
//! in-memory reference executor's — is asserted in
//! `tests/fabric_properties.rs`.

use crate::exec::{QueryCoordinatorNode, QueryRunner};
use crate::query::QueryResult;
use daiet::controller::{AggregationMode, Controller};
use daiet::loopback::{wall_clock_config, LoopbackJob};
use daiet::AggFn;
use daiet_fabric::{DriverStats, Duration, ExitReason, FaultShim, Node, NodeSpec};
use std::any::Any;
use std::collections::BTreeMap;

/// One loopback query execution's results.
#[derive(Debug)]
pub struct QueryLoopbackOutcome {
    /// The assembled GROUP BY result (compare to
    /// [`Query::reference`](crate::Query::reference) and to the
    /// simulator's [`QueryOutcome::result`](crate::QueryOutcome)).
    pub result: QueryResult,
    /// Per-lane merged group maps, pre-assembly.
    pub lane_maps: Vec<BTreeMap<u32, u32>>,
    /// Whether every lane saw all its ENDs.
    pub complete: bool,
    /// Whether NACK recovery (if armed) finished with no gaps owing.
    pub recovery_satisfied: bool,
    /// NACK frames the coordinator emitted.
    pub nacks_emitted: u64,
    /// Frames the coordinator suppressed as duplicates.
    pub duplicates_suppressed: u64,
    /// Partial-aggregate pairs delivered to the coordinator (pre-merge).
    pub records_received: u64,
    /// Frames dropped by fault shims across all slots.
    pub shim_dropped: u64,
    /// Per-slot driver socket counters.
    pub driver_stats: Vec<DriverStats>,
    /// Whether any driver hit the wall-clock deadline (a wedged run).
    pub deadlined: bool,
}

/// The coordinator's `Send` distillate, carried across the driver-thread
/// boundary by the spec's finish hook.
struct CoordReport {
    lane_maps: Vec<BTreeMap<u32, u32>>,
    complete: bool,
    recovery_satisfied: bool,
    nacks_emitted: u64,
    duplicates_suppressed: u64,
    records_received: u64,
}

/// Runs the query over loopback UDP sockets with in-network aggregation
/// (`agg_mode` picks DAIET vs pass-through, mirroring the simulator's two
/// UDP modes). `shim_for(slot)` supplies each slot's egress fault
/// injection; `deadline` bounds wall-clock run time. The runner's
/// `daiet_config` is rescaled with [`wall_clock_config`].
pub fn run_query_loopback(
    runner: &QueryRunner,
    agg_mode: AggregationMode,
    shim_for: impl FnMut(usize) -> FaultShim,
    deadline: std::time::Duration,
) -> QueryLoopbackOutcome {
    let mut shim_for = shim_for;
    let (plan, workers, coord) = runner.make_plan();
    let placement = runner.placement(&workers, coord);
    let config = wall_clock_config(runner.daiet_config);
    let controller = Controller::with_per_tree_agg(config, AggFn::Sum, runner.plan.lane_aggs());
    let job = LoopbackJob::deploy(controller, plan, placement, runner.resources, agg_mode)
        .expect("deployment fits");
    let dep = job.deployment();

    let lane_aggs = runner.plan.lane_aggs();
    let expected_ends: Vec<u32> = (0..runner.plan.lane_count())
        .map(|l| dep.expected_ends(l, workers.len()))
        .collect();
    let sources: Vec<(u16, u32)> = if config.nack_recovery {
        // One NACK roster across every lane: the coordinator is the
        // reducer of all of them.
        (0..runner.plan.lane_count()).flat_map(|l| dep.nack_sources(l, &workers)).collect()
    } else {
        Vec::new()
    };

    // See the mapreduce loopback runner for the pacing floor rationale.
    let pacing = Duration::from_nanos(runner.pacing.as_nanos().max(50_000));
    let specs: Vec<NodeSpec> = (0..job.plan().len())
        .map(|slot| {
            let shim = shim_for(slot);
            if let Some(w) = workers.iter().position(|&s| s == slot) {
                let shards = runner.plan.worker_partials(&runner.table.shards[w]);
                job.sender_spec(w, shards, pacing, runner.redundancy, shim)
            } else if slot == coord {
                coordinator_spec(&lane_aggs, &expected_ends, config, &sources, slot, shim)
            } else {
                job.switch_spec(slot, shim)
            }
        })
        .collect();
    let out = daiet_fabric::run_cluster(specs, &job.links(), deadline);

    let deadlined = out.iter().any(|o| o.exit == ExitReason::Deadline);
    let shim_dropped = out.iter().map(|o| o.stats.shim_dropped).sum();
    let driver_stats: Vec<DriverStats> = out.iter().map(|o| o.stats).collect();
    let report = out
        .into_iter()
        .nth(coord)
        .expect("coordinator slot exists")
        .result
        .downcast::<CoordReport>()
        .expect("coordinator produces a report");
    QueryLoopbackOutcome {
        result: runner.plan.assemble(&report.lane_maps),
        lane_maps: report.lane_maps,
        complete: report.complete,
        recovery_satisfied: report.recovery_satisfied,
        nacks_emitted: report.nacks_emitted,
        duplicates_suppressed: report.duplicates_suppressed,
        records_received: report.records_received,
        shim_dropped,
        driver_stats,
        deadlined,
    }
}

/// The coordinator's [`NodeSpec`]: builds a [`QueryCoordinatorNode`]
/// in-thread from `Send` ingredients, done once complete **and** gapless,
/// finishing into a [`CoordReport`].
fn coordinator_spec(
    lane_aggs: &[AggFn],
    expected_ends: &[u32],
    config: daiet::DaietConfig,
    sources: &[(u16, u32)],
    slot: usize,
    shim: FaultShim,
) -> NodeSpec {
    let lane_aggs = lane_aggs.to_vec();
    let expected_ends = expected_ends.to_vec();
    let sources = sources.to_vec();
    NodeSpec {
        build: Box::new(move || {
            let mut node =
                QueryCoordinatorNode::new(&lane_aggs, &expected_ends, config.reliability);
            if config.nack_recovery {
                node = node.with_nack_recovery(slot as u32, &config, sources);
            }
            Box::new(node)
        }),
        shim,
        done: Some(Box::new(|n: &dyn Node| {
            let coord = (n as &dyn Any)
                .downcast_ref::<QueryCoordinatorNode>()
                .expect("coordinator slot holds a QueryCoordinatorNode");
            coord.is_complete() && coord.recovery_satisfied()
        })),
        finish: Box::new(|n| {
            let coord = (n as Box<dyn Any>)
                .downcast::<QueryCoordinatorNode>()
                .expect("coordinator slot holds a QueryCoordinatorNode");
            Box::new(CoordReport {
                lane_maps: coord.lane_maps(),
                complete: coord.is_complete(),
                recovery_satisfied: coord.recovery_satisfied(),
                nacks_emitted: coord.nacks_emitted(),
                duplicates_suppressed: coord.duplicates_suppressed(),
                records_received: coord.pairs_received(),
            })
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::{Aggregate, Query};
    use crate::table::{Table, TableSpec};

    /// A multi-aggregate GROUP BY over real sockets, in-network
    /// aggregation, no injected loss: bit-identical to the in-memory
    /// reference executor.
    #[test]
    fn group_by_over_loopback_matches_reference() {
        let table = Table::generate(&TableSpec::tiny(11));
        let query = Query::new(vec![Aggregate::Count, Aggregate::Sum(0), Aggregate::Avg(1)]);
        let truth = query.reference(&table);
        let runner = QueryRunner::new(table, query);
        let out = run_query_loopback(
            &runner,
            AggregationMode::InNetwork,
            |_| FaultShim::none(),
            std::time::Duration::from_secs(60),
        );
        assert!(!out.deadlined, "run hit the deadline");
        assert!(out.complete && out.recovery_satisfied);
        assert_eq!(out.result, truth, "loopback diverged from the reference");
        assert_eq!(out.shim_dropped, 0);
    }

    /// Switch-egress loss with full reliability armed: the flush frames
    /// carrying the in-network partials get dropped and must come back
    /// via NACK recovery — and the answer still lands exactly.
    #[test]
    fn lossy_group_by_recovers_over_loopback() {
        let table = Table::generate(&TableSpec::tiny(13));
        let query = Query::new(vec![Aggregate::Sum(0), Aggregate::Min(1)]);
        let truth = query.reference(&table);
        let mut runner = QueryRunner::new(table, query);
        runner.daiet_config.reliability = true;
        runner.daiet_config.nack_recovery = true;
        runner.daiet_config = runner.daiet_config.with_rtx_sized_for_flush();
        let switch_slot = runner.table.spec.n_workers + 1;
        let out = run_query_loopback(
            &runner,
            AggregationMode::InNetwork,
            |slot| {
                if slot == switch_slot {
                    FaultShim::seeded(3, 0.10, 0.0).with_scripted_drops([0])
                } else {
                    FaultShim::none()
                }
            },
            std::time::Duration::from_secs(60),
        );
        assert!(!out.deadlined, "recovery never converged");
        assert!(out.complete && out.recovery_satisfied);
        assert_eq!(out.result, truth, "loss leaked into the result");
        assert!(out.shim_dropped > 0, "shim injected no loss — test is vacuous");
        assert!(out.nacks_emitted > 0, "loss was repaired without NACKs?");
    }
}
