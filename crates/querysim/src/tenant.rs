//! GROUP BY as a multi-tenant job: the [`daiet::tenant::TenantWorkload`]
//! adapter over the query planner.
//!
//! One round, one sender per table shard, one tree per planner lane
//! (deduplicated `AVG → SUM+COUNT` included). The coordinator-side merge
//! goes through the same [`QueryPlan::merge_record`] algebra as every
//! other execution mode, and `verify` compares the assembled result
//! against the in-memory reference executor bit-for-bit.

use crate::plan::QueryPlan;
use crate::query::{Aggregate, Query};
use crate::table::{group_of_key, Table, TableSpec};
use daiet::agg::AggFn;
use daiet::tenant::{fold_round_digest, TenantWorkload, DIGEST_SEED};
use daiet_wire::daiet::{Key, Pair};
use std::collections::BTreeMap;

/// A multi-aggregate GROUP BY job runnable under the multi-tenant
/// scheduler.
#[derive(Debug, Clone)]
pub struct GroupByTenant {
    table: Table,
    query: Query,
    plan: QueryPlan,
    per_lane: Vec<BTreeMap<u32, u32>>,
    foreign: Option<String>,
    digest: u64,
}

impl GroupByTenant {
    /// A tenant running `query` over `table`; errors if the select list
    /// does not fit the table.
    pub fn new(table: Table, query: Query) -> Result<GroupByTenant, String> {
        query.validate(table.spec.n_columns)?;
        let plan = QueryPlan::of(&query);
        let per_lane = plan.empty_lane_maps();
        Ok(GroupByTenant {
            table,
            query,
            plan,
            per_lane,
            foreign: None,
            digest: DIGEST_SEED,
        })
    }

    /// A small tenant for tests: the [`TableSpec::tiny`] table under a
    /// four-aggregate query (COUNT, SUM, MIN, AVG — exercises lane
    /// dedup).
    pub fn tiny(seed: u64) -> GroupByTenant {
        let table = Table::generate(&TableSpec::tiny(seed));
        let query = Query::new(vec![
            Aggregate::Count,
            Aggregate::Sum(0),
            Aggregate::Min(1),
            Aggregate::Avg(0),
        ]);
        GroupByTenant::new(table, query).expect("tiny query fits the tiny table")
    }

    /// The query this job runs.
    pub fn query(&self) -> &Query {
        &self.query
    }

    /// The table this job scans.
    pub fn table(&self) -> &Table {
        &self.table
    }
}

impl TenantWorkload for GroupByTenant {
    fn label(&self) -> String {
        format!("groupby[{}ln]", self.plan.lane_count())
    }

    fn senders(&self) -> usize {
        self.table.spec.n_workers
    }

    fn aggs(&self) -> Vec<AggFn> {
        self.plan.lane_aggs()
    }

    fn rounds(&self) -> u64 {
        1
    }

    fn shards(&mut self, _round: u64) -> Vec<Vec<Vec<Pair>>> {
        self.table
            .shards
            .iter()
            .map(|shard| self.plan.worker_partials(shard))
            .collect()
    }

    fn absorb(&mut self, _round: u64, per_tree: Vec<Vec<(Key, u32)>>) {
        self.digest = fold_round_digest(self.digest, &per_tree);
        for (lane, pairs) in per_tree.iter().enumerate() {
            for (key, value) in pairs {
                match group_of_key(key) {
                    Some(group) => {
                        self.plan
                            .merge_record(&mut self.per_lane, lane, group, *value);
                    }
                    None => {
                        self.foreign = Some(format!(
                            "lane {lane} received foreign key {}",
                            key.display_lossy()
                        ));
                    }
                }
            }
        }
    }

    fn digest(&self) -> u64 {
        self.digest
    }

    fn verify(&self) -> Result<(), String> {
        if let Some(why) = &self.foreign {
            return Err(format!("groupby: {why}"));
        }
        let got = self.plan.assemble(&self.per_lane);
        let want = self.query.reference(&self.table);
        if got != want {
            return Err(format!(
                "groupby: network result diverges from reference ({} vs {} groups)",
                got.len(),
                want.len()
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Absorbing each worker's partials through the lane algebra must
    /// reproduce the reference — the host-side closure property the
    /// network path relies on.
    #[test]
    fn absorbing_merged_partials_verifies() {
        let mut t = GroupByTenant::tiny(7);
        let shards = t.shards(0);
        let lanes = t.plan.lane_count();
        let mut merged: Vec<BTreeMap<Key, u32>> = vec![BTreeMap::new(); lanes];
        for per_tree in &shards {
            for (lane, pairs) in per_tree.iter().enumerate() {
                for p in pairs {
                    let agg = t.plan.lane_aggs()[lane];
                    merged[lane]
                        .entry(p.key)
                        .and_modify(|acc| *acc = agg.apply(*acc, p.value))
                        .or_insert(p.value);
                }
            }
        }
        let per_tree: Vec<Vec<(Key, u32)>> =
            merged.into_iter().map(|m| m.into_iter().collect()).collect();
        t.absorb(0, per_tree);
        t.verify().expect("merged partials must match the reference");
        assert_ne!(t.digest(), DIGEST_SEED);
    }

    #[test]
    fn foreign_keys_fail_verification() {
        let mut t = GroupByTenant::tiny(8);
        let lanes = t.plan.lane_count();
        let mut per_tree = vec![Vec::new(); lanes];
        per_tree[0].push((Key::from_str_key("intruder").unwrap(), 1));
        t.absorb(0, per_tree);
        assert!(t.verify().unwrap_err().contains("foreign"));
    }

    #[test]
    fn missing_groups_fail_verification() {
        let t = GroupByTenant::tiny(9);
        // Nothing absorbed: assemble() produces an empty result, which
        // cannot match the reference over a non-empty table.
        assert!(t.verify().is_err());
    }
}
