//! # daiet-querysim — SQL-style GROUP BY on the aggregation path
//!
//! The paper's §1 lists "the aggregation functions of SQL queries"
//! alongside MapReduce combiners as the partition/aggregate workloads
//! DAIET targets; this crate is that workload. It runs multi-aggregate
//! `GROUP BY` queries (`COUNT`, `SUM`, `MIN`, `MAX`, and `AVG` decomposed
//! into SUM+COUNT lanes) over the simulated fabric in three execution
//! modes and proves them **bit-identical**:
//!
//! * a TCP shuffle-to-coordinator baseline (the classic distributed-SQL
//!   final-aggregation plan),
//! * the DAIET protocol without in-network aggregation (UDP baseline),
//! * full DAIET in-network partial aggregation, one tree per value lane.
//!
//! The moving parts:
//!
//! * [`table`] — deterministic sharded-table generator (configurable
//!   rows, group cardinality, Zipf skew);
//! * [`query`] — the query model and the in-memory reference executor
//!   every network mode is checked against;
//! * [`plan`] — the planner mapping aggregates onto deduplicated value
//!   *lanes*, each a DAIET tree with its own
//!   [`AggFn`](daiet::agg::AggFn), plus the lane-recombination step
//!   (`AVG = SUM/COUNT`);
//! * [`exec`] — the simulator harness: worker combiners, the multi-lane
//!   coordinator, and the three modes, with optional `k`-redundant
//!   senders + dedup windows riding the reliability extension.
//!
//! ```
//! use daiet_querysim::prelude::*;
//!
//! let table = Table::generate(&TableSpec::tiny(1));
//! let query = Query::new(vec![Aggregate::Count, Aggregate::Avg(0)]);
//! let truth = query.reference(&table);
//! let runner = QueryRunner::new(table, query);
//! let out = runner.run(QueryMode::DaietAgg);
//! assert!(out.complete);
//! assert_eq!(out.result, truth); // bit-identical to the in-memory answer
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod exec;
pub mod loopback;
pub mod plan;
pub mod query;
pub mod table;
pub mod tenant;

/// One-stop imports for examples and benches.
pub mod prelude {
    pub use crate::exec::{QueryMode, QueryOutcome, QueryRunner};
    pub use crate::plan::QueryPlan;
    pub use crate::query::{AggOut, Aggregate, Query, QueryResult};
    pub use crate::table::{Table, TableSpec};
}

pub use exec::{QueryMode, QueryOutcome, QueryRunner};
pub use plan::QueryPlan;
pub use query::{AggOut, Aggregate, Query, QueryResult};
pub use table::{Table, TableSpec};
pub use tenant::GroupByTenant;
