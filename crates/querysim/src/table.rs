//! Deterministic table generation for the GROUP BY workload.
//!
//! A table is a bag of rows `(group, c0, c1, …)`, horizontally sharded
//! across workers the way a scanned base table is in a distributed SQL
//! engine. The generator's shape knobs mirror what matters for in-network
//! aggregation:
//!
//! * `n_groups` — GROUP BY cardinality. Aggregation collapses every
//!   worker's partial row for a group into one, so the reduction factor is
//!   governed by how many workers touch each group;
//! * `zipf_s` — skew of the group-frequency distribution (0 = uniform).
//!   Real GROUP BY columns are Zipf-ish: a few hot groups appear on every
//!   worker (maximal reduction), a long tail appears on one (none);
//! * `rows_per_worker` × `n_workers` — scan size.

use daiet_wire::daiet::Key;
use daiet_wire::fnv::FnvHashSet;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Table-generator parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TableSpec {
    /// Workers (= scan shards = DAIET senders).
    pub n_workers: usize,
    /// Rows each worker scans.
    pub rows_per_worker: usize,
    /// GROUP BY cardinality (group ids `0..n_groups`).
    pub n_groups: usize,
    /// Value columns per row (aggregates reference columns by index).
    pub n_columns: usize,
    /// Zipf exponent of the group distribution (`0.0` = uniform; group 0
    /// is the hottest).
    pub zipf_s: f64,
    /// Column values are uniform in `0..=max_value`.
    pub max_value: u32,
    /// RNG seed; generation is fully deterministic per spec.
    pub seed: u64,
}

impl TableSpec {
    /// A small configuration for unit tests.
    pub fn tiny(seed: u64) -> TableSpec {
        TableSpec {
            n_workers: 4,
            rows_per_worker: 50,
            n_groups: 12,
            n_columns: 3,
            zipf_s: 1.1,
            max_value: 1000,
            seed,
        }
    }

    /// A demo/bench-sized configuration: 8 workers × 4 K rows over 512
    /// groups with realistic skew.
    pub fn demo(seed: u64) -> TableSpec {
        TableSpec {
            n_workers: 8,
            rows_per_worker: 4096,
            n_groups: 512,
            n_columns: 3,
            zipf_s: 1.05,
            max_value: 100_000,
            seed,
        }
    }
}

/// One row of the table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Row {
    /// The GROUP BY key.
    pub group: u32,
    /// Value columns (`cols.len() == spec.n_columns`).
    pub cols: Vec<u32>,
}

/// A generated, worker-sharded table.
#[derive(Debug, Clone)]
pub struct Table {
    /// The specification that produced this table.
    pub spec: TableSpec,
    /// `shards[w]` = the rows worker `w` scans.
    pub shards: Vec<Vec<Row>>,
}

impl Table {
    /// Generates a table from `spec`.
    pub fn generate(spec: &TableSpec) -> Table {
        assert!(spec.n_workers >= 1, "at least one worker");
        assert!(spec.n_groups >= 1 && spec.n_groups <= u32::MAX as usize);
        assert!(spec.n_columns >= 1, "aggregates need at least one column");
        let mut rng = SmallRng::seed_from_u64(spec.seed);
        let zipf = Zipf::new(spec.n_groups, spec.zipf_s);
        let shards = (0..spec.n_workers)
            .map(|_| {
                (0..spec.rows_per_worker)
                    .map(|_| Row {
                        group: zipf.sample(&mut rng) as u32,
                        cols: (0..spec.n_columns)
                            .map(|_| rng.random_range(0..=spec.max_value))
                            .collect(),
                    })
                    .collect()
            })
            .collect();
        Table { spec: *spec, shards }
    }

    /// Total rows across all shards.
    pub fn total_rows(&self) -> usize {
        self.shards.iter().map(Vec::len).sum()
    }

    /// Number of distinct groups actually present.
    pub fn groups_present(&self) -> usize {
        let mut seen = FnvHashSet::default();
        for shard in &self.shards {
            for row in shard {
                seen.insert(row.group);
            }
        }
        seen.len()
    }

    /// Mean number of workers holding each present group — the knob that
    /// bounds how much in-network aggregation can collapse (exactly like
    /// word multiplicity in the WordCount corpus).
    pub fn group_multiplicity(&self) -> f64 {
        let mut per_worker: Vec<FnvHashSet<u32>> = Vec::new();
        for shard in &self.shards {
            per_worker.push(shard.iter().map(|r| r.group).collect());
        }
        let total: usize = per_worker.iter().map(FnvHashSet::len).sum();
        total as f64 / self.groups_present().max(1) as f64
    }
}

/// Encodes a group id as a DAIET wire key: the ASCII text `g` followed by
/// 8 hex digits — readable in packet dumps, trivially reversible, and
/// well under the 16-byte key width.
pub fn group_key(group: u32) -> Key {
    let mut bytes = [0u8; 9];
    bytes[0] = b'g';
    const HEX: &[u8; 16] = b"0123456789abcdef";
    for (i, b) in bytes[1..].iter_mut().enumerate() {
        *b = HEX[((group >> (28 - 4 * i)) & 0xf) as usize];
    }
    Key::from_bytes(&bytes).expect("9 <= KEY_LEN")
}

/// Decodes a key produced by [`group_key`]; `None` for foreign keys.
/// Strictly the [`group_key`] alphabet — lowercase hex only, so foreign
/// keys that merely look hex-ish (e.g. `"gABCDEF12"`) are refused.
pub fn group_of_key(key: &Key) -> Option<u32> {
    let t = key.trimmed();
    if t.len() != 9 || t[0] != b'g' {
        return None;
    }
    let mut g: u32 = 0;
    for &b in &t[1..] {
        let digit = match b {
            b'0'..=b'9' => b - b'0',
            b'a'..=b'f' => b - b'a' + 10,
            _ => return None,
        };
        g = (g << 4) | u32::from(digit);
    }
    Some(g)
}

/// Zipf(s) sampler over ranks `0..n` via the inverse CDF (deterministic,
/// works with the vendored `rand`). `s = 0` degenerates to uniform.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// A sampler over `n` ranks with exponent `s`.
    pub fn new(n: usize, s: f64) -> Zipf {
        assert!(n >= 1, "empty support");
        assert!(s >= 0.0 && s.is_finite(), "exponent must be finite and >= 0");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 0..n {
            acc += 1.0 / ((k + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Zipf { cdf }
    }

    /// Draws one rank.
    pub fn sample(&self, rng: &mut SmallRng) -> usize {
        let u: f64 = rng.random();
        // First rank whose cumulative mass exceeds u.
        self.cdf.partition_point(|&c| c <= u).min(self.cdf.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = Table::generate(&TableSpec::tiny(3));
        let b = Table::generate(&TableSpec::tiny(3));
        assert_eq!(a.shards, b.shards);
        let c = Table::generate(&TableSpec::tiny(4));
        assert_ne!(a.shards, c.shards);
    }

    #[test]
    fn shape_matches_spec() {
        let spec = TableSpec::tiny(1);
        let t = Table::generate(&spec);
        assert_eq!(t.shards.len(), spec.n_workers);
        assert_eq!(t.total_rows(), spec.n_workers * spec.rows_per_worker);
        for shard in &t.shards {
            for row in shard {
                assert!((row.group as usize) < spec.n_groups);
                assert_eq!(row.cols.len(), spec.n_columns);
                assert!(row.cols.iter().all(|&v| v <= spec.max_value));
            }
        }
    }

    #[test]
    fn zipf_skew_orders_group_frequencies() {
        let mut rng = SmallRng::seed_from_u64(9);
        let z = Zipf::new(10, 1.2);
        let mut counts = [0usize; 10];
        for _ in 0..20_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        // Rank 0 must dominate the tail decisively, and the head of the
        // distribution must be ordered.
        assert!(counts[0] > 4 * counts[9], "head {} tail {}", counts[0], counts[9]);
        assert!(counts[0] > counts[1] && counts[1] > counts[3]);
    }

    #[test]
    fn zipf_zero_is_roughly_uniform() {
        let mut rng = SmallRng::seed_from_u64(10);
        let z = Zipf::new(4, 0.0);
        let mut counts = [0usize; 4];
        for _ in 0..40_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "{counts:?}");
        }
    }

    #[test]
    fn group_keys_round_trip() {
        for g in [0u32, 1, 0xdead_beef, u32::MAX] {
            let k = group_key(g);
            assert_eq!(group_of_key(&k), Some(g), "group {g:#x}");
        }
        // Foreign keys decode to None — including uppercase hex, which
        // group_key never emits.
        assert_eq!(group_of_key(&Key::from_str_key("word").unwrap()), None);
        assert_eq!(group_of_key(&Key::from_str_key("g12345").unwrap()), None);
        assert_eq!(group_of_key(&Key::from_str_key("gABCDEF12").unwrap()), None);
    }

    #[test]
    fn group_keys_are_distinct_and_readable() {
        let a = group_key(7);
        let b = group_key(8);
        assert_ne!(a, b);
        assert_eq!(a.display_lossy(), "g00000007");
    }

    #[test]
    fn skewed_tables_have_high_multiplicity_heads() {
        let t = Table::generate(&TableSpec::tiny(5));
        // Group 0 (hottest under Zipf) should appear on every worker.
        let holders = t
            .shards
            .iter()
            .filter(|s| s.iter().any(|r| r.group == 0))
            .count();
        assert_eq!(holders, t.spec.n_workers);
        assert!(t.group_multiplicity() >= 1.0);
    }
}
