//! The query planner: aggregates → value lanes → DAIET trees.
//!
//! The switch aggregates 32-bit lanes with **one** function per tree, so a
//! multi-aggregate query deploys one aggregation tree per distinct
//! `(function, source)` *lane*:
//!
//! * `COUNT(*)`  → a Sum tree fed the constant 1 per row;
//! * `SUM(c)`    → a Sum tree fed column `c`;
//! * `MIN/MAX(c)` → a Min/Max tree fed column `c`;
//! * `AVG(c)`    → **two** lanes, `SUM(c)` + `COUNT(*)`, recombined at the
//!   coordinator (AVG itself is not associative; its decomposition is).
//!
//! Lanes are deduplicated: `SELECT COUNT(*), AVG(c0), SUM(c0)` plans just
//! two lanes (the count lane and the `c0` sum lane), not four. Lane index
//! = tree id = reducer index in the job placement, which is how the
//! controller knows to configure tree `i` with `lanes[i].agg`
//! ([`daiet::controller::Controller::with_per_tree_agg`]).

use crate::query::{AggOut, Aggregate, GroupRow, Query, QueryResult};
use crate::table::{group_key, Row};
use daiet::agg::AggFn;
use daiet_wire::daiet::Pair;
use std::collections::BTreeMap;

/// What feeds a lane's 32-bit value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LaneSource {
    /// The constant 1 per row (COUNT).
    CountOne,
    /// A value column.
    Column(usize),
}

/// One value lane: an aggregation function over a row-value source,
/// riding its own DAIET tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lane {
    /// The switch-side aggregation function of this lane's tree.
    pub agg: AggFn,
    /// What each row contributes to the lane.
    pub source: LaneSource,
}

impl Lane {
    /// The value a row feeds into this lane.
    #[inline]
    pub fn value_of(&self, row: &Row) -> u32 {
        match self.source {
            LaneSource::CountOne => 1,
            LaneSource::Column(c) => row.cols[c],
        }
    }
}

/// How one select-list aggregate is reassembled from lane results.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutputSpec {
    /// The aggregate is a single lane's value verbatim.
    Lane(usize),
    /// AVG: the exact ratio of a sum lane over a count lane.
    SumCount {
        /// Lane index of the SUM half.
        sum: usize,
        /// Lane index of the COUNT half.
        count: usize,
    },
}

/// A planned query: the deduplicated lanes and, per select-list
/// aggregate, how to reassemble its final value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryPlan {
    /// Value lanes; index = DAIET tree id.
    pub lanes: Vec<Lane>,
    /// Reassembly spec, parallel to `query.aggregates`.
    pub outputs: Vec<OutputSpec>,
}

impl QueryPlan {
    /// Plans `query`, deduplicating identical lanes.
    pub fn of(query: &Query) -> QueryPlan {
        let mut lanes: Vec<Lane> = Vec::new();
        let mut outputs = Vec::with_capacity(query.aggregates.len());
        let lane_for = |lanes: &mut Vec<Lane>, agg: AggFn, source: LaneSource| -> usize {
            let lane = Lane { agg, source };
            if let Some(i) = lanes.iter().position(|l| *l == lane) {
                i
            } else {
                lanes.push(lane);
                lanes.len() - 1
            }
        };
        for a in &query.aggregates {
            let spec = match *a {
                Aggregate::Count => {
                    OutputSpec::Lane(lane_for(&mut lanes, AggFn::Sum, LaneSource::CountOne))
                }
                Aggregate::Sum(c) => {
                    OutputSpec::Lane(lane_for(&mut lanes, AggFn::Sum, LaneSource::Column(c)))
                }
                Aggregate::Min(c) => {
                    OutputSpec::Lane(lane_for(&mut lanes, AggFn::Min, LaneSource::Column(c)))
                }
                Aggregate::Max(c) => {
                    OutputSpec::Lane(lane_for(&mut lanes, AggFn::Max, LaneSource::Column(c)))
                }
                Aggregate::Avg(c) => OutputSpec::SumCount {
                    sum: lane_for(&mut lanes, AggFn::Sum, LaneSource::Column(c)),
                    count: lane_for(&mut lanes, AggFn::Sum, LaneSource::CountOne),
                },
            };
            outputs.push(spec);
        }
        QueryPlan { lanes, outputs }
    }

    /// Number of lanes (= aggregation trees to deploy).
    pub fn lane_count(&self) -> usize {
        self.lanes.len()
    }

    /// Per-tree aggregation functions in tree-id order (what the
    /// controller is configured with).
    pub fn lane_aggs(&self) -> Vec<AggFn> {
        self.lanes.iter().map(|l| l.agg).collect()
    }

    /// Folds one `(lane, group, value)` record into a lane's group map
    /// with the lane's function — the single definition of the
    /// lane-merge algebra, shared by the worker combiner, the TCP
    /// baseline decoder and the cross-check tests.
    pub fn merge_record(
        &self,
        per_lane: &mut [BTreeMap<u32, u32>],
        lane: usize,
        group: u32,
        value: u32,
    ) {
        let agg = self.lanes[lane].agg;
        per_lane[lane]
            .entry(group)
            .and_modify(|acc| *acc = agg.apply(*acc, value))
            .or_insert(value);
    }

    /// Empty per-lane group maps sized to the plan (for use with
    /// [`QueryPlan::merge_record`] / [`QueryPlan::assemble`]).
    pub fn empty_lane_maps(&self) -> Vec<BTreeMap<u32, u32>> {
        vec![BTreeMap::new(); self.lanes.len()]
    }

    /// The worker-side combiner: folds one shard into per-lane, per-group
    /// partial aggregates — the only thing that travels. Pairs are sorted
    /// by group id so packetization is deterministic.
    pub fn worker_partials(&self, shard: &[Row]) -> Vec<Vec<Pair>> {
        let mut per_lane = self.empty_lane_maps();
        for row in shard {
            for (l, lane) in self.lanes.iter().enumerate() {
                self.merge_record(&mut per_lane, l, row.group, lane.value_of(row));
            }
        }
        per_lane
            .into_iter()
            .map(|partial| {
                partial
                    .into_iter()
                    .map(|(g, v)| Pair::new(group_key(g), v))
                    .collect()
            })
            .collect()
    }

    /// Recombines fully-merged per-lane group maps into the final result,
    /// in select-list order. Every lane sees every row's group, so under
    /// lossless delivery all maps share one group set; a group a lane
    /// lost (possible only under unrecovered packet loss) falls back to
    /// the lane's identity value, which the correctness check against the
    /// reference result then flags.
    pub fn assemble(&self, per_lane: &[BTreeMap<u32, u32>]) -> QueryResult {
        assert_eq!(per_lane.len(), self.lanes.len(), "one map per lane");
        let mut groups: Vec<u32> = Vec::new();
        for m in per_lane {
            for &g in m.keys() {
                groups.push(g);
            }
        }
        groups.sort_unstable();
        groups.dedup();
        let lane_value = |lane: usize, g: u32| -> u32 {
            per_lane[lane]
                .get(&g)
                .copied()
                .unwrap_or_else(|| self.lanes[lane].agg.identity())
        };
        QueryResult {
            rows: groups
                .into_iter()
                .map(|g| GroupRow {
                    group: g,
                    values: self
                        .outputs
                        .iter()
                        .map(|o| match *o {
                            OutputSpec::Lane(l) => AggOut::Int(lane_value(l, g)),
                            OutputSpec::SumCount { sum, count } => AggOut::Ratio {
                                sum: lane_value(sum, g),
                                count: lane_value(count, g),
                            },
                        })
                        .collect(),
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::{Table, TableSpec};

    #[test]
    fn avg_decomposes_into_sum_and_count_lanes() {
        let q = Query::new(vec![Aggregate::Avg(1)]);
        let p = QueryPlan::of(&q);
        assert_eq!(p.lane_count(), 2);
        assert_eq!(p.lanes[0], Lane { agg: AggFn::Sum, source: LaneSource::Column(1) });
        assert_eq!(p.lanes[1], Lane { agg: AggFn::Sum, source: LaneSource::CountOne });
        assert_eq!(p.outputs, vec![OutputSpec::SumCount { sum: 0, count: 1 }]);
    }

    #[test]
    fn lanes_are_deduplicated_across_aggregates() {
        // COUNT, AVG(c0) and SUM(c0) share lanes: count + sum(c0) only.
        let q = Query::new(vec![Aggregate::Count, Aggregate::Avg(0), Aggregate::Sum(0)]);
        let p = QueryPlan::of(&q);
        assert_eq!(p.lane_count(), 2);
        assert_eq!(
            p.outputs,
            vec![
                OutputSpec::Lane(0),
                OutputSpec::SumCount { sum: 1, count: 0 },
                OutputSpec::Lane(1),
            ]
        );
    }

    #[test]
    fn min_and_max_of_same_column_are_distinct_lanes() {
        let q = Query::new(vec![Aggregate::Min(0), Aggregate::Max(0)]);
        let p = QueryPlan::of(&q);
        assert_eq!(p.lane_count(), 2);
        assert_eq!(p.lane_aggs(), vec![AggFn::Min, AggFn::Max]);
    }

    #[test]
    fn combine_partials_equals_reference() {
        // Folding every worker's partials with the lane function must give
        // exactly the reference result — the algebraic identity in-network
        // aggregation relies on.
        let table = Table::generate(&TableSpec::tiny(11));
        let q = Query::new(vec![
            Aggregate::Count,
            Aggregate::Sum(0),
            Aggregate::Min(1),
            Aggregate::Max(2),
            Aggregate::Avg(1),
        ]);
        let p = QueryPlan::of(&q);
        let mut per_lane = p.empty_lane_maps();
        for shard in &table.shards {
            for (l, pairs) in p.worker_partials(shard).into_iter().enumerate() {
                for pair in pairs {
                    let g = crate::table::group_of_key(&pair.key).unwrap();
                    p.merge_record(&mut per_lane, l, g, pair.value);
                }
            }
        }
        assert_eq!(p.assemble(&per_lane), q.reference(&table));
    }

    #[test]
    fn worker_partials_are_sorted_and_combined() {
        let table = Table::generate(&TableSpec::tiny(12));
        let p = QueryPlan::of(&Query::new(vec![Aggregate::Count]));
        let partials = p.worker_partials(&table.shards[0]);
        assert_eq!(partials.len(), 1);
        let groups: Vec<u32> = partials[0]
            .iter()
            .map(|pr| crate::table::group_of_key(&pr.key).unwrap())
            .collect();
        let mut sorted = groups.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(groups, sorted, "one pair per group, ascending");
        // Counts over the shard sum to the shard size.
        let total: u32 = partials[0].iter().map(|pr| pr.value).sum();
        assert_eq!(total as usize, table.shards[0].len());
    }
}
