//! Property tests for the GROUP BY workload: for **arbitrary tables and
//! query shapes**, the TCP baseline, the UDP no-aggregation mode and the
//! DAIET in-network mode must produce results bit-identical to the
//! in-memory reference executor — including when worker links lose and
//! duplicate frames under the reliability harness (`RedundantSender`
//! + `DedupWindow`).

use daiet_netsim::FaultProfile;
use daiet_querysim::prelude::*;
use proptest::prelude::*;

/// Builds a query from a shape vector: each entry selects an aggregate
/// kind (0..5) and a column, reduced modulo the table width.
fn query_from_shape(shape: &[(u8, usize)], n_columns: usize) -> Query {
    let aggregates = shape
        .iter()
        .map(|&(kind, col)| {
            let c = col % n_columns;
            match kind % 5 {
                0 => Aggregate::Count,
                1 => Aggregate::Sum(c),
                2 => Aggregate::Min(c),
                3 => Aggregate::Max(c),
                _ => Aggregate::Avg(c),
            }
        })
        .collect();
    Query::new(aggregates)
}

fn spec_from(
    n_workers: usize,
    rows_per_worker: usize,
    n_groups: usize,
    n_columns: usize,
    skewed: bool,
    seed: u64,
) -> TableSpec {
    TableSpec {
        n_workers,
        rows_per_worker,
        n_groups,
        n_columns,
        zipf_s: if skewed { 1.2 } else { 0.0 },
        max_value: 1_000_000,
        seed,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The core claim, quantified over workload shape: every execution
    /// mode computes exactly the reference answer on a clean fabric.
    #[test]
    fn all_modes_bit_identical_to_reference(
        dims in (2usize..5, 5usize..50, 1usize..40, 1usize..4),
        shape in prop::collection::vec((any::<u8>(), 0usize..4), 1..5),
        skewed: bool,
        seed: u64,
    ) {
        let (n_workers, rows, n_groups, n_columns) = dims;
        let spec = spec_from(n_workers, rows, n_groups, n_columns, skewed, seed);
        let table = Table::generate(&spec);
        let query = query_from_shape(&shape, n_columns);
        let truth = query.reference(&table);
        prop_assert_eq!(truth.len(), table.groups_present());

        let runner = QueryRunner::new(table, query);
        for mode in [QueryMode::TcpBaseline, QueryMode::UdpNoAgg, QueryMode::DaietAgg] {
            let out = runner.run(mode);
            prop_assert!(out.complete, "{:?} did not complete", mode);
            prop_assert_eq!(out.frames_dropped, 0, "{:?} dropped frames", mode);
            prop_assert_eq!(&out.result, &truth, "{:?} diverged from reference", mode);
        }
    }

    /// Same quantification under injected faults: worker links lose 5%
    /// and duplicate 20% of frames, workers transmit 3-redundantly, and
    /// dedup windows at the switch and coordinator absorb the replays.
    /// Both DAIET modes must still answer bit-exactly.
    #[test]
    fn faulty_links_with_reliability_stay_bit_identical(
        dims in (2usize..5, 5usize..40, 1usize..25),
        shape in prop::collection::vec((any::<u8>(), 0usize..3), 1..4),
        seed: u64,
    ) {
        let (n_workers, rows, n_groups) = dims;
        let spec = spec_from(n_workers, rows, n_groups, 3, true, seed);
        let table = Table::generate(&spec);
        let query = query_from_shape(&shape, 3);
        let truth = query.reference(&table);
        let runner = QueryRunner::new(table, query).with_reliability(
            3,
            FaultProfile { drop: 0.05, duplicate: 0.2, ..FaultProfile::NONE },
        );
        for mode in [QueryMode::UdpNoAgg, QueryMode::DaietAgg] {
            let out = runner.run(mode);
            prop_assert!(
                out.complete,
                "{:?} did not complete (residual loss beat k=3 redundancy?)",
                mode
            );
            prop_assert_eq!(&out.result, &truth, "{:?} diverged under faults", mode);
        }
    }

    /// The planner's lane algebra holds for any shape: folding worker
    /// partials lane-wise and assembling equals the reference — without
    /// any simulation (fast, so quantified over many more cases).
    #[test]
    fn lane_decomposition_is_exact(
        dims in (1usize..6, 1usize..80, 1usize..60, 1usize..4),
        shape in prop::collection::vec((any::<u8>(), 0usize..4), 1..6),
        seed: u64,
    ) {
        let (n_workers, rows, n_groups, n_columns) = dims;
        let spec = spec_from(n_workers, rows, n_groups, n_columns, false, seed);
        let table = Table::generate(&spec);
        let query = query_from_shape(&shape, n_columns);
        let plan = QueryPlan::of(&query);
        let mut per_lane = plan.empty_lane_maps();
        for shard in &table.shards {
            for (l, pairs) in plan.worker_partials(shard).into_iter().enumerate() {
                for pair in pairs {
                    let g = daiet_querysim::table::group_of_key(&pair.key).unwrap();
                    plan.merge_record(&mut per_lane, l, g, pair.value);
                }
            }
        }
        prop_assert_eq!(plan.assemble(&per_lane), query.reference(&table));
    }
}
