//! Monotonic clocks behind one [`Time`] type.
//!
//! The simulator *is* its own clock (virtual time advances at event
//! boundaries), so it never needs this trait. Real-time drivers do: a
//! [`NodeDriver`](crate::NodeDriver) reads a [`Clock`] each loop
//! iteration and feeds the same integer-nanosecond [`Time`] to node
//! callbacks that the simulator would, so protocol code — NACK timeouts,
//! pacing gaps — is written once against `Time` and never learns whether
//! nanoseconds are virtual or wall.

use crate::time::Time;
use std::cell::Cell;
use std::time::Instant;

/// A monotonic source of fabric [`Time`].
pub trait Clock {
    /// Nanoseconds since this clock's epoch. Must never go backwards.
    fn now(&self) -> Time;
}

/// Wall-clock time from [`std::time::Instant`], with the epoch fixed at
/// construction so values start near zero (like a fresh simulation).
#[derive(Debug, Clone)]
pub struct WallClock {
    origin: Instant,
}

impl WallClock {
    /// A clock whose epoch is now.
    pub fn new() -> WallClock {
        WallClock { origin: Instant::now() }
    }
}

impl Default for WallClock {
    fn default() -> Self {
        WallClock::new()
    }
}

impl Clock for WallClock {
    fn now(&self) -> Time {
        // 2^64 ns ≈ 584 years of process uptime: the cast cannot wrap.
        Time(self.origin.elapsed().as_nanos() as u64)
    }
}

/// A hand-cranked clock for deterministic driver and timer-wheel tests.
#[derive(Debug, Default)]
pub struct ManualClock {
    now: Cell<u64>,
}

impl ManualClock {
    /// A clock frozen at the epoch.
    pub fn new() -> ManualClock {
        ManualClock { now: Cell::new(0) }
    }

    /// Advances the clock by `ns` nanoseconds.
    pub fn advance(&self, ns: u64) {
        self.now.set(self.now.get() + ns);
    }

    /// Sets the clock to an absolute instant; must not move backwards.
    pub fn set(&self, t: Time) {
        assert!(t.0 >= self.now.get(), "ManualClock must be monotonic");
        self.now.set(t.0);
    }
}

impl Clock for ManualClock {
    fn now(&self) -> Time {
        Time(self.now.get())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_clock_is_monotonic_and_starts_near_zero() {
        let c = WallClock::new();
        let a = c.now();
        let b = c.now();
        assert!(b >= a);
        // Construction-to-first-read is far below a second.
        assert!(a.as_secs_f64() < 1.0);
    }

    #[test]
    fn manual_clock_advances_on_demand() {
        let c = ManualClock::new();
        assert_eq!(c.now(), Time::ZERO);
        c.advance(250);
        assert_eq!(c.now(), Time(250));
        c.set(Time(1_000));
        assert_eq!(c.now(), Time(1_000));
    }
}
