//! # daiet-fabric — one dataplane API over two backends
//!
//! The crates above this one (`daiet` core, `daiet-dataplane`, the
//! workload runners) implement protocol behaviour as [`Node`]s: packet
//! handlers, timer handlers, a start hook. This crate defines the world
//! those handlers see — the [`Fabric`] trait (read the clock, send a
//! frame, arm a timer, borrow the [`FramePool`]) — plus the wall-clock
//! backend that drives the *same* nodes over real UDP sockets:
//!
//! * [`Node`] / [`Fabric`] — the trait boundary. The discrete-event
//!   simulator (`daiet-netsim`) implements `Fabric` on its dispatch
//!   context; nothing protocol-side ever names the simulator.
//! * [`Time`] / [`Duration`] — integer-nanosecond time, virtual or wall,
//!   unified behind one type; [`Clock`] + [`WallClock`] supply the
//!   monotonic wall variant.
//! * [`Frame`] / [`FramePool`] — pooled, `Rc`-backed frame buffers.
//!   Frames never cross a thread or socket by reference: both backends
//!   copy bytes at the boundary and re-pool on ingest.
//! * [`NodeDriver`] — a nonblocking UDP socket loop with a hashed
//!   [`TimerWheel`], driving one node per process (or per thread, via
//!   [`cluster`]).
//! * [`FaultShim`] — seeded, deterministic loss/duplication at the socket
//!   edge, so recovery tests over real sockets reproduce bit-for-bit.
//!
//! The simulator depends on this crate (for the shared types), never the
//! reverse: `daiet-fabric` knows nothing about events, links or
//! partitions.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clock;
pub mod cluster;
pub mod frame;
pub mod node;
pub mod shim;
pub mod time;
pub mod udp;
pub mod wheel;

pub use clock::{Clock, ManualClock, WallClock};
pub use cluster::{run_cluster, NodeSpec, SlotOutcome};
pub use frame::{Frame, FramePool, PoolStats};
pub use node::{counter_delta, Fabric, Node, NodeId, PortId};
pub use shim::{FaultShim, ShimDecision};
pub use time::{Duration, Time};
pub use udp::{DriverStats, ExitReason, NodeDriver, MAX_DATAGRAM};
pub use wheel::TimerWheel;
