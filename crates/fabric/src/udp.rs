//! The real-time backend: one [`Node`] driven from a nonblocking UDP
//! socket loop.
//!
//! A [`NodeDriver`] is the wall-clock counterpart of one simulator slot:
//! it owns a `Node`, a socket, a peer table (port index → peer address, in
//! the same attach order the simulator's `connect` would use), a
//! [`TimerWheel`], a [`FramePool`] and a [`FaultShim`]. Its run loop is
//! the event loop a real DAIET host or software switch would run:
//!
//! 1. fire every due timer ([`Node::on_timer`]);
//! 2. drain the socket — each datagram's bytes are copied into a pooled
//!    [`Frame`] and delivered via [`Node::on_packet`] with the [`PortId`]
//!    the source address maps to;
//! 3. check the caller's completion predicate / stop flag / deadline;
//! 4. sleep until the next timer is due (capped so new datagrams are
//!    noticed promptly).
//!
//! Frames never cross the socket edge by reference: sending copies the
//! frame's bytes into a datagram, receiving copies the datagram into a
//! frame freshly leased from *this* driver's pool — exactly the ownership
//! rule the partitioned simulator applies at partition boundaries, which
//! is why `Rc`-backed frames stay sound with no atomics anywhere.

use crate::clock::{Clock, WallClock};
use crate::frame::{Frame, FramePool};
use crate::node::{Fabric, Node, PortId};
use crate::shim::{FaultShim, ShimDecision};
use crate::time::{Duration, Time};
use crate::wheel::TimerWheel;
use std::any::Any;
use std::collections::BTreeMap;
use std::io;
use std::net::{SocketAddr, UdpSocket};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Largest datagram a driver will send or accept. Comfortably above the
/// DAIET maximal frame (252 B) and the simulator's MTU-scale frames.
pub const MAX_DATAGRAM: usize = 2048;

/// How long the loop may sleep even with no timer pending, so fresh
/// datagrams are picked up promptly without spinning a core.
const IDLE_POLL: std::time::Duration = std::time::Duration::from_micros(200);

/// Counters a driver maintains at the socket edge.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DriverStats {
    /// Datagrams handed to the node.
    pub frames_in: u64,
    /// Bytes handed to the node.
    pub bytes_in: u64,
    /// Datagrams written to the socket (after the shim).
    pub frames_out: u64,
    /// Bytes written to the socket.
    pub bytes_out: u64,
    /// Egress frames the fault shim dropped.
    pub shim_dropped: u64,
    /// Egress frames the fault shim duplicated.
    pub shim_duplicated: u64,
    /// Datagrams from addresses not in the peer table (discarded).
    pub unknown_peer: u64,
    /// Socket write errors (counted, not fatal — UDP has no delivery
    /// contract anyway).
    pub send_errors: u64,
    /// Timer callbacks fired.
    pub timers_fired: u64,
}

/// Why [`NodeDriver::run`] returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExitReason {
    /// The completion predicate returned true.
    Done,
    /// The wall-clock deadline elapsed first.
    Deadline,
    /// The shared stop flag was raised (another driver finished or the
    /// harness is tearing the cluster down).
    Stopped,
}

/// The [`Fabric`] a driver hands to its node's callbacks.
struct DriverCtx<'a> {
    now: Time,
    socket: &'a UdpSocket,
    peers: &'a [SocketAddr],
    wheel: &'a mut TimerWheel,
    pool: &'a FramePool,
    shim: &'a mut FaultShim,
    stats: &'a mut DriverStats,
}

impl DriverCtx<'_> {
    fn write(&mut self, addr: SocketAddr, frame: &Frame) {
        match self.socket.send_to(frame, addr) {
            Ok(n) => {
                self.stats.frames_out += 1;
                self.stats.bytes_out += n as u64;
            }
            Err(_) => self.stats.send_errors += 1,
        }
    }
}

impl Fabric for DriverCtx<'_> {
    fn now(&self) -> Time {
        self.now
    }

    fn send(&mut self, port: PortId, frame: Frame) {
        let addr = *self
            .peers
            .get(port.0)
            .unwrap_or_else(|| panic!("send on unconnected port {}", port.0));
        match self.shim.decide() {
            ShimDecision::Drop => {
                self.stats.shim_dropped += 1;
            }
            ShimDecision::Deliver => self.write(addr, &frame),
            ShimDecision::Duplicate => {
                self.stats.shim_duplicated += 1;
                self.write(addr, &frame);
                self.write(addr, &frame);
            }
        }
    }

    fn schedule(&mut self, delay: Duration, token: u64) {
        self.wheel.schedule(self.now + delay, token);
    }

    fn pool(&self) -> &FramePool {
        self.pool
    }

    fn port_count(&self) -> usize {
        self.peers.len()
    }
}

/// Drives one [`Node`] from a nonblocking UDP socket (see module docs).
pub struct NodeDriver {
    node: Box<dyn Node>,
    socket: UdpSocket,
    peers: Vec<SocketAddr>,
    addr_to_port: BTreeMap<SocketAddr, usize>,
    clock: Box<dyn Clock>,
    wheel: TimerWheel,
    pool: FramePool,
    shim: FaultShim,
    stats: DriverStats,
    stop: Option<Arc<AtomicBool>>,
    started: bool,
}

impl NodeDriver {
    /// Binds a fresh socket on `addr` (use `127.0.0.1:0` to let the OS
    /// pick a free port) and wraps `node`. Peers must be attached with
    /// [`set_peers`](Self::set_peers) before running.
    pub fn bind(node: Box<dyn Node>, addr: &str) -> io::Result<NodeDriver> {
        let socket = UdpSocket::bind(addr)?;
        NodeDriver::from_socket(node, socket)
    }

    /// Wraps an already-bound socket. Useful when the address must be
    /// known (and advertised) before the node — which is not `Send` — can
    /// be built on its driver thread: bind on the coordinator, move the
    /// socket (sockets are `Send`; drivers and nodes are not).
    pub fn from_socket(node: Box<dyn Node>, socket: UdpSocket) -> io::Result<NodeDriver> {
        socket.set_nonblocking(true)?;
        Ok(NodeDriver {
            node,
            socket,
            peers: Vec::new(),
            addr_to_port: BTreeMap::new(),
            clock: Box::new(WallClock::new()),
            wheel: TimerWheel::for_driver(),
            pool: FramePool::new(),
            shim: FaultShim::none(),
            stats: DriverStats::default(),
            stop: None,
            started: false,
        })
    }

    /// The socket's bound address (to advertise to peers).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.socket.local_addr()
    }

    /// Installs the peer table: `peers[p]` is the address behind
    /// [`PortId`]`(p)`, mirroring the simulator's link-attach order.
    /// Ingress datagrams from addresses outside the table are discarded
    /// (and counted), like frames from an unpatched switch port.
    pub fn set_peers(&mut self, peers: Vec<SocketAddr>) {
        self.addr_to_port = peers.iter().enumerate().map(|(i, a)| (*a, i)).collect();
        self.peers = peers;
    }

    /// Routes egress through `shim` (default: transparent).
    pub fn set_fault_shim(&mut self, shim: FaultShim) {
        self.shim = shim;
    }

    /// Replaces the wall clock (tests inject a
    /// [`ManualClock`](crate::ManualClock) through this).
    pub fn set_clock(&mut self, clock: Box<dyn Clock>) {
        self.clock = clock;
    }

    /// A shared flag that makes [`run`](Self::run) return
    /// [`ExitReason::Stopped`] when raised — how a cluster harness stops
    /// open-ended nodes (switches, idle hosts) once the interesting ones
    /// finish.
    pub fn set_stop_flag(&mut self, stop: Arc<AtomicBool>) {
        self.stop = Some(stop);
    }

    /// Socket-edge counters so far.
    pub fn stats(&self) -> DriverStats {
        let mut s = self.stats;
        s.shim_dropped = self.shim.dropped;
        s.shim_duplicated = self.shim.duplicated;
        s
    }

    /// Borrows the node downcast to its concrete type.
    pub fn node_ref<T: Any>(&self) -> Option<&T> {
        (self.node.as_ref() as &dyn Any).downcast_ref::<T>()
    }

    /// Mutably borrows the node downcast to its concrete type.
    pub fn node_mut<T: Any>(&mut self) -> Option<&mut T> {
        (self.node.as_mut() as &mut dyn Any).downcast_mut::<T>()
    }

    /// Consumes the driver, returning the node (for result extraction).
    pub fn into_node(self) -> Box<dyn Node> {
        self.node
    }

    fn ctx<'a>(
        now: Time,
        socket: &'a UdpSocket,
        peers: &'a [SocketAddr],
        wheel: &'a mut TimerWheel,
        pool: &'a FramePool,
        shim: &'a mut FaultShim,
        stats: &'a mut DriverStats,
    ) -> DriverCtx<'a> {
        DriverCtx { now, socket, peers, wheel, pool, shim, stats }
    }

    /// Runs the loop until `done(&node)` is true, `deadline` elapses, or
    /// the stop flag is raised. May be called again after returning (the
    /// node's `on_start` fires only once).
    pub fn run(
        &mut self,
        deadline: std::time::Duration,
        mut done: impl FnMut(&dyn Node) -> bool,
    ) -> ExitReason {
        // lint:allow(det-clock): run() enforces the caller's real-time deadline on
        // the blocking socket loop; this backend lives in the wall-clock domain.
        let t0 = std::time::Instant::now();
        let mut buf = [0u8; MAX_DATAGRAM];
        if !self.started {
            self.started = true;
            let now = self.clock.now();
            let mut ctx = Self::ctx(
                now,
                &self.socket,
                &self.peers,
                &mut self.wheel,
                &self.pool,
                &mut self.shim,
                &mut self.stats,
            );
            self.node.on_start(&mut ctx);
        }
        loop {
            let now = self.clock.now();
            // 1. Due timers, in deterministic (due, armed) order.
            for token in self.wheel.expire(now) {
                self.stats.timers_fired += 1;
                let mut ctx = Self::ctx(
                    now,
                    &self.socket,
                    &self.peers,
                    &mut self.wheel,
                    &self.pool,
                    &mut self.shim,
                    &mut self.stats,
                );
                self.node.on_timer(&mut ctx, token);
            }
            // 2. Drain the socket.
            loop {
                match self.socket.recv_from(&mut buf) {
                    Ok((n, from)) => {
                        let Some(&port) = self.addr_to_port.get(&from) else {
                            self.stats.unknown_peer += 1;
                            continue;
                        };
                        self.stats.frames_in += 1;
                        self.stats.bytes_in += n as u64;
                        let frame = self.pool.copy_from_slice(&buf[..n]);
                        let mut ctx = Self::ctx(
                            now,
                            &self.socket,
                            &self.peers,
                            &mut self.wheel,
                            &self.pool,
                            &mut self.shim,
                            &mut self.stats,
                        );
                        self.node.on_packet(&mut ctx, PortId(port), frame);
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    // Loopback quirk: a send to a not-yet-open peer port can
                    // surface as ECONNREFUSED on a later recv. Not fatal.
                    Err(_) => break,
                }
            }
            // 3. Exit conditions.
            if done(self.node.as_ref()) {
                return ExitReason::Done;
            }
            if self.stop.as_ref().is_some_and(|s| s.load(Ordering::Relaxed)) {
                return ExitReason::Stopped;
            }
            if t0.elapsed() >= deadline {
                return ExitReason::Deadline;
            }
            // 4. Sleep until the next timer (capped by the poll interval).
            let nap = match self.wheel.next_due() {
                Some(due) if due > now => {
                    std::time::Duration::from_nanos((due - now).as_nanos()).min(IDLE_POLL)
                }
                Some(_) => continue, // a timer is already due: go again
                None => IDLE_POLL,
            };
            std::thread::sleep(nap);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Replies to every datagram with its bytes reversed.
    struct Reverser {
        seen: u64,
    }
    impl Node for Reverser {
        fn on_packet(&mut self, ctx: &mut dyn Fabric, port: PortId, frame: Frame) {
            self.seen += 1;
            let mut buf = ctx.pool().buffer();
            buf.extend(frame.iter().rev());
            let out = ctx.pool().frame(buf);
            ctx.send(port, out);
        }
    }

    /// Sends one probe on start, counts echoes, re-probes on timer until
    /// an answer arrives (loss-tolerant).
    struct Prober {
        answers: Vec<Vec<u8>>,
    }
    impl Node for Prober {
        fn on_packet(&mut self, _ctx: &mut dyn Fabric, _port: PortId, frame: Frame) {
            self.answers.push(frame.to_vec());
        }
        fn on_start(&mut self, ctx: &mut dyn Fabric) {
            ctx.send(PortId(0), Frame::from_slice(b"abc"));
            ctx.schedule(Duration::from_millis(5), 0);
        }
        fn on_timer(&mut self, ctx: &mut dyn Fabric, _token: u64) {
            if self.answers.is_empty() {
                ctx.send(PortId(0), Frame::from_slice(b"abc"));
                ctx.schedule(Duration::from_millis(5), 0);
            }
        }
    }

    /// Runs a Reverser driver on its own thread (nodes are not `Send`,
    /// so the socket is bound here and the driver built in-thread) and a
    /// Prober on this one; returns `(probe_exit, probe_driver, rev_stats)`.
    fn probe_against_reverser(probe_shim: FaultShim) -> (ExitReason, NodeDriver, DriverStats) {
        let rev_socket = UdpSocket::bind("127.0.0.1:0").unwrap();
        let rev_addr = rev_socket.local_addr().unwrap();
        let mut probe = NodeDriver::bind(Box::new(Prober { answers: Vec::new() }), "127.0.0.1:0")
            .unwrap();
        let probe_addr = probe.local_addr().unwrap();
        probe.set_peers(vec![rev_addr]);
        probe.set_fault_shim(probe_shim);

        let stop = Arc::new(AtomicBool::new(false));
        let rev_stop = stop.clone();
        let handle = std::thread::spawn(move || {
            let mut rev =
                NodeDriver::from_socket(Box::new(Reverser { seen: 0 }), rev_socket).unwrap();
            rev.set_peers(vec![probe_addr]);
            rev.set_stop_flag(rev_stop);
            rev.run(std::time::Duration::from_secs(10), |_| false);
            rev.stats()
        });
        let reason = probe.run(std::time::Duration::from_secs(10), |n| {
            !(n as &dyn Any).downcast_ref::<Prober>().unwrap().answers.is_empty()
        });
        stop.store(true, Ordering::Relaxed);
        let rev_stats = handle.join().unwrap();
        (reason, probe, rev_stats)
    }

    #[test]
    fn two_drivers_echo_over_loopback() {
        let (reason, probe, rev_stats) = probe_against_reverser(FaultShim::none());
        assert_eq!(reason, ExitReason::Done);
        assert_eq!(probe.node_ref::<Prober>().unwrap().answers[0], b"cba");
        assert!(rev_stats.frames_in >= 1);
        assert!(probe.stats().frames_in >= 1);
    }

    #[test]
    fn scripted_egress_drop_is_recovered_by_retry() {
        // Drop the probe's first egress frame; the 5 ms re-probe timer
        // must recover the exchange.
        let (reason, probe, _) =
            probe_against_reverser(FaultShim::none().with_scripted_drops([0]));
        assert_eq!(reason, ExitReason::Done);
        let stats = probe.stats();
        assert_eq!(stats.shim_dropped, 1);
        assert!(stats.frames_out >= 1, "retry must reach the wire");
    }

    #[test]
    fn unknown_peers_are_discarded_and_counted() {
        let mut lone = NodeDriver::bind(Box::new(Reverser { seen: 0 }), "127.0.0.1:0").unwrap();
        lone.set_peers(vec![]); // knows nobody
        let addr = lone.local_addr().unwrap();
        let stranger = UdpSocket::bind("127.0.0.1:0").unwrap();
        stranger.send_to(b"hi", addr).unwrap();
        lone.run(std::time::Duration::from_millis(50), |_| false);
        assert!(lone.stats().unknown_peer >= 1);
        assert_eq!(lone.node_ref::<Reverser>().unwrap().seen, 0);
    }
}
