//! Fabric time: integer nanoseconds since an epoch.
//!
//! One [`Time`] type serves both backends. Under the discrete-event
//! simulator the epoch is simulation start and the clock advances only at
//! event boundaries; under the real-time UDP backend the epoch is the
//! moment the driver's [`Clock`](crate::Clock) was created and the values
//! track a monotonic wall clock. Integer time (rather than `f64` seconds)
//! keeps event ordering exact and simulated runs reproducible — two events
//! can only tie at the *same* nanosecond, in which case the simulator
//! queue's sequence counter breaks the tie.

use core::fmt;
use core::ops::{Add, AddAssign, Sub};

/// An instant in fabric time (nanoseconds since the backend's epoch).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Time(pub u64);

/// A span of fabric time (nanoseconds).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Duration(pub u64);

impl Time {
    /// The epoch.
    pub const ZERO: Time = Time(0);

    /// Nanoseconds since the epoch.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since the epoch, as a float (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The duration elapsed since `earlier`; saturates at zero.
    pub fn duration_since(self, earlier: Time) -> Duration {
        Duration(self.0.saturating_sub(earlier.0))
    }
}

impl Duration {
    /// The zero-length duration.
    pub const ZERO: Duration = Duration(0);

    /// From nanoseconds.
    pub const fn from_nanos(ns: u64) -> Duration {
        Duration(ns)
    }

    /// From microseconds.
    pub const fn from_micros(us: u64) -> Duration {
        Duration(us * 1_000)
    }

    /// From milliseconds.
    pub const fn from_millis(ms: u64) -> Duration {
        Duration(ms * 1_000_000)
    }

    /// From seconds.
    pub const fn from_secs(s: u64) -> Duration {
        Duration(s * 1_000_000_000)
    }

    /// Nanoseconds in this duration.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds, as a float (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The wire time for `bytes` at `bits_per_sec`, rounded up to a whole
    /// nanosecond so transmission never takes zero time.
    pub fn for_bytes(bytes: usize, bits_per_sec: u64) -> Duration {
        let bits = bytes as u128 * 8;
        let ns = (bits * 1_000_000_000).div_ceil(bits_per_sec as u128);
        Duration(ns as u64)
    }

    /// Scales the duration by an integer factor.
    pub const fn saturating_mul(self, factor: u64) -> Duration {
        Duration(self.0.saturating_mul(factor))
    }
}

impl Add<Duration> for Time {
    type Output = Time;
    fn add(self, rhs: Duration) -> Time {
        Time(self.0 + rhs.0)
    }
}

impl AddAssign<Duration> for Time {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub<Time> for Time {
    type Output = Duration;
    fn sub(self, rhs: Time) -> Duration {
        self.duration_since(rhs)
    }
}

impl Add for Duration {
    type Output = Duration;
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0 + rhs.0)
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 < 1_000 {
            write!(f, "{}ns", self.0)
        } else if self.0 < 1_000_000 {
            write!(f, "{:.2}us", self.0 as f64 / 1e3)
        } else if self.0 < 1_000_000_000 {
            write!(f, "{:.2}ms", self.0 as f64 / 1e6)
        } else {
            write!(f, "{:.3}s", self.as_secs_f64())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_behaves() {
        let t = Time::ZERO + Duration::from_micros(3);
        assert_eq!(t.as_nanos(), 3_000);
        let later = t + Duration::from_millis(1);
        assert_eq!(later - t, Duration::from_millis(1));
        // Saturating subtraction for out-of-order comparison.
        assert_eq!(t - later, Duration::ZERO);
    }

    #[test]
    fn wire_time_rounds_up() {
        // 1500 bytes at 10 Gbps = 1.2 us exactly.
        assert_eq!(
            Duration::for_bytes(1500, 10_000_000_000),
            Duration::from_nanos(1_200)
        );
        // 1 byte at 1 Tbps would be 0.008 ns; must round up to 1 ns.
        assert_eq!(
            Duration::for_bytes(1, 1_000_000_000_000),
            Duration::from_nanos(1)
        );
    }

    #[test]
    fn display_units_scale() {
        assert_eq!(Duration::from_nanos(12).to_string(), "12ns");
        assert_eq!(Duration::from_micros(12).to_string(), "12.00us");
        assert_eq!(Duration::from_millis(12).to_string(), "12.00ms");
        assert_eq!(Duration::from_secs(2).to_string(), "2.000s");
        assert_eq!(Time(1_500_000).to_string(), "0.001500s");
    }

    #[test]
    fn conversion_constructors() {
        assert_eq!(Duration::from_secs(1).as_nanos(), 1_000_000_000);
        assert_eq!(Duration::from_millis(1).as_nanos(), 1_000_000);
        assert_eq!(Duration::from_micros(1).as_nanos(), 1_000);
        assert!((Duration::from_secs(2).as_secs_f64() - 2.0).abs() < 1e-12);
    }
}
