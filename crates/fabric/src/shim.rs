//! Deterministic loss/duplication injection at the socket edge.
//!
//! The simulator injects faults per link direction (`FaultProfile` in
//! `daiet-netsim`), seeded so a given seed always drops the same frames.
//! The real-time backend needs the same property — a CI job that "proves
//! NACK recovery over genuine UDP" is worthless if the loss pattern is
//! whatever the kernel felt like — so the driver routes every egress
//! datagram through a [`FaultShim`]: a seeded `SmallRng` stream of
//! drop/duplicate decisions, plus an optional scripted list of exact
//! egress indices to drop (for regression tests that must kill one
//! specific frame, e.g. a flush END).
//!
//! Injection is on egress, before the socket write: a dropped frame never
//! reaches the wire, a duplicated one is written twice back-to-back. Both
//! are indistinguishable, to the receiver, from genuine network loss and
//! duplication.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;

/// What to do with one egress frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShimDecision {
    /// Write the datagram once.
    Deliver,
    /// Do not write the datagram at all.
    Drop,
    /// Write the datagram twice back-to-back.
    Duplicate,
}

/// A seeded fault filter for one driver's egress path (see module docs).
#[derive(Debug)]
pub struct FaultShim {
    drop_p: f64,
    dup_p: f64,
    rng: SmallRng,
    /// Exact egress indices (0-based, pre-shim count) to drop, on top of
    /// the probabilistic stream.
    scripted_drops: BTreeSet<u64>,
    seen: u64,
    /// Frames dropped (probabilistic + scripted).
    pub dropped: u64,
    /// Frames duplicated.
    pub duplicated: u64,
}

impl FaultShim {
    /// A transparent shim: every frame is delivered exactly once.
    pub fn none() -> FaultShim {
        FaultShim::seeded(0, 0.0, 0.0)
    }

    /// A shim dropping each frame with probability `drop_p` and
    /// duplicating with `dup_p`, drawn from a stream derived from `seed`.
    /// The same seed always yields the same decision sequence.
    pub fn seeded(seed: u64, drop_p: f64, dup_p: f64) -> FaultShim {
        assert!((0.0..=1.0).contains(&drop_p), "drop_p must be a probability");
        assert!((0.0..=1.0).contains(&dup_p), "dup_p must be a probability");
        FaultShim {
            drop_p,
            dup_p,
            rng: SmallRng::seed_from_u64(seed ^ SHIM_SEED_TAG),
            scripted_drops: BTreeSet::new(),
            seen: 0,
            dropped: 0,
            duplicated: 0,
        }
    }

    /// Additionally drops the frames at exactly these egress indices
    /// (counted from 0 over this driver's lifetime).
    pub fn with_scripted_drops(mut self, indices: impl IntoIterator<Item = u64>) -> FaultShim {
        self.scripted_drops.extend(indices);
        self
    }

    /// Decides the fate of the next egress frame.
    pub fn decide(&mut self) -> ShimDecision {
        let idx = self.seen;
        self.seen += 1;
        // Draw both variates unconditionally so scripted drops never
        // shift the probabilistic stream for later frames.
        let d: f64 = self.rng.random();
        let u: f64 = self.rng.random();
        if self.scripted_drops.contains(&idx) || (self.drop_p > 0.0 && d < self.drop_p) {
            self.dropped += 1;
            return ShimDecision::Drop;
        }
        if self.dup_p > 0.0 && u < self.dup_p {
            self.duplicated += 1;
            return ShimDecision::Duplicate;
        }
        ShimDecision::Deliver
    }

    /// Frames seen so far (delivered or not).
    pub fn frames_seen(&self) -> u64 {
        self.seen
    }
}

/// A seed perturbation so `FaultShim::seeded(s, ..)` and a simulator run
/// seeded `s` never share a stream by accident.
const SHIM_SEED_TAG: u64 = 0x00fa_b71c_5ead;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_transparent() {
        let mut s = FaultShim::none();
        for _ in 0..1000 {
            assert_eq!(s.decide(), ShimDecision::Deliver);
        }
        assert_eq!(s.dropped, 0);
        assert_eq!(s.duplicated, 0);
    }

    #[test]
    fn same_seed_same_decisions() {
        let run = |seed| {
            let mut s = FaultShim::seeded(seed, 0.2, 0.1);
            (0..500).map(|_| s.decide()).collect::<Vec<_>>()
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }

    #[test]
    fn rates_are_roughly_honoured() {
        let mut s = FaultShim::seeded(7, 0.1, 0.0);
        for _ in 0..10_000 {
            s.decide();
        }
        assert!((800..1200).contains(&(s.dropped as i64)), "got {}", s.dropped);
    }

    #[test]
    fn scripted_drop_hits_the_exact_frame_without_shifting_the_stream() {
        let mut plain = FaultShim::seeded(9, 0.05, 0.05);
        let base: Vec<_> = (0..100).map(|_| plain.decide()).collect();
        let mut scripted = FaultShim::seeded(9, 0.05, 0.05).with_scripted_drops([13]);
        let got: Vec<_> = (0..100).map(|_| scripted.decide()).collect();
        assert_eq!(got[13], ShimDecision::Drop);
        for i in (0..100).filter(|&i| i != 13) {
            assert_eq!(got[i], base[i], "frame {i} shifted");
        }
    }
}
