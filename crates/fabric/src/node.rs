//! The [`Node`] trait implemented by every dataplane participant (host
//! NIC stack, switch, middlebox) and the [`Fabric`] handle its callbacks
//! use to act on the world.
//!
//! # The fabric boundary
//!
//! A node never names its backend. Everything it can do — read the clock,
//! transmit a frame, arm a timer, borrow the frame pool — goes through
//! `&mut dyn Fabric`, so the *same* `Node` implementation runs unchanged
//! under the discrete-event simulator (`daiet-netsim`, where the fabric is
//! the simulator's dispatch context) and under the real-time UDP backend
//! (this crate's [`NodeDriver`](crate::NodeDriver), where `send` writes a
//! datagram to a nonblocking socket and `schedule` arms a slot in a timer
//! wheel). The trait is deliberately minimal: five methods, no
//! backend-specific escape hatch.

use crate::frame::{Frame, FramePool};
use crate::time::{Duration, Time};
use std::any::Any;

/// Identifies a node within one fabric (simulator or driver cluster).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub usize);

/// Identifies a port on a node. Ports are numbered 0.. in the order links
/// were attached (the simulator's `connect` order, or the peer-table order
/// handed to a [`NodeDriver`](crate::NodeDriver)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PortId(pub usize);

/// A dataplane device, driven by some [`Fabric`] backend.
///
/// Handlers receive a `&mut dyn Fabric` through which they interact with
/// the world (send frames, arm timers, read the clock). The `Any`
/// supertrait lets callers recover the concrete type after a run, e.g.
/// via the simulator's `node_ref` or
/// [`NodeDriver::node_ref`](crate::NodeDriver::node_ref).
pub trait Node: Any {
    /// A frame arrived on `port`.
    fn on_packet(&mut self, ctx: &mut dyn Fabric, port: PortId, frame: Frame);

    /// A timer armed via [`Fabric::schedule`] fired.
    fn on_timer(&mut self, _ctx: &mut dyn Fabric, _token: u64) {}

    /// Called once before the first event; the usual place to kick off
    /// transmissions or arm the first timer. The simulator fires it for
    /// every node in node-id order before time starts; a driver fires it
    /// when its loop starts.
    fn on_start(&mut self, _ctx: &mut dyn Fabric) {}

    /// A scripted failure (see the simulator's `NodeScript`) killed this
    /// node: volatile state — registers, rings, trackers, pending work —
    /// must be dropped here, exactly as a power cycle would. No fabric
    /// handle is provided: a dead node cannot send or schedule. Events
    /// addressed to the node while it is down are discarded by the
    /// backend.
    fn on_fail(&mut self) {}

    /// The node revived after a scripted failure. It comes back *cold*
    /// (whatever `on_fail` dropped stays dropped); this hook is the place
    /// to re-arm timers or restart periodic work.
    fn on_revive(&mut self, _ctx: &mut dyn Fabric) {}

    /// Human-readable name for traces and panics.
    fn name(&self) -> String {
        "node".to_string()
    }
}

/// What a [`Node`] callback may do to the world, independent of backend.
///
/// The simulator's dispatch context implements this over its event queue
/// and virtual clock; the UDP [`NodeDriver`](crate::NodeDriver) implements
/// it over a socket, a timer wheel and a monotonic [`Clock`](crate::Clock).
/// Handlers hold it only for the duration of one callback.
pub trait Fabric {
    /// Current fabric time (virtual under the simulator, monotonic
    /// wall-clock under a driver).
    fn now(&self) -> Time;

    /// Transmits `frame` out of `port`. Fire-and-forget, exactly like
    /// handing a frame to NIC hardware: it may still be dropped downstream
    /// (queue overflow, injected fault, lossy socket) with no feedback.
    ///
    /// Sending on an unconnected port is a programming error and panics:
    /// the topology is static, so a bad port can never be data-dependent.
    fn send(&mut self, port: PortId, frame: Frame);

    /// Arms a one-shot timer `delay` from now; `token` is returned to
    /// [`Node::on_timer`].
    fn schedule(&mut self, delay: Duration, token: u64);

    /// The backend's [`FramePool`]: build outgoing frames from
    /// [`FramePool::buffer`]s so their storage recycles instead of
    /// churning the allocator.
    fn pool(&self) -> &FramePool;

    /// Number of ports connected to this node.
    fn port_count(&self) -> usize;
}

/// Subtracts monotonic counters, loudly: fabric counters only ever grow,
/// so `later < earlier` means the caller paired snapshots from different
/// runs (or swapped the arguments) — a bug that `saturating_sub` would
/// silently flatten to 0 and `wrapping_sub` would turn into a
/// near-`u64::MAX` "delta". Panic instead, in release too: per-round
/// deltas feed acceptance numbers, so a quiet lie is worse than a crash.
/// Every per-round delta in the workspace (simulator stats, collector
/// stats) shares this one subtraction policy.
#[inline]
pub fn counter_delta(later: u64, earlier: u64, what: &str) -> u64 {
    later.checked_sub(earlier).unwrap_or_else(|| {
        panic!("{what} went backwards ({later} < {earlier}): snapshots are from different runs or swapped")
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Echo;
    impl Node for Echo {
        fn on_packet(&mut self, ctx: &mut dyn Fabric, port: PortId, frame: Frame) {
            ctx.send(port, frame);
        }
    }

    /// A minimal in-memory fabric: records sends and timers.
    struct TestFabric {
        now: Time,
        pool: FramePool,
        sent: Vec<(PortId, Frame)>,
        timers: Vec<(Time, u64)>,
    }

    impl Fabric for TestFabric {
        fn now(&self) -> Time {
            self.now
        }
        fn send(&mut self, port: PortId, frame: Frame) {
            self.sent.push((port, frame));
        }
        fn schedule(&mut self, delay: Duration, token: u64) {
            self.timers.push((self.now + delay, token));
        }
        fn pool(&self) -> &FramePool {
            &self.pool
        }
        fn port_count(&self) -> usize {
            1
        }
    }

    #[test]
    fn nodes_run_against_any_fabric_impl() {
        let mut fab = TestFabric {
            now: Time(7),
            pool: FramePool::new(),
            sent: Vec::new(),
            timers: Vec::new(),
        };
        let mut echo = Echo;
        echo.on_packet(&mut fab, PortId(0), Frame::from_slice(b"ping"));
        assert_eq!(fab.sent.len(), 1);
        assert_eq!(&fab.sent[0].1[..], b"ping");
    }

    #[test]
    fn counter_delta_subtracts() {
        assert_eq!(counter_delta(10, 4, "x"), 6);
    }

    #[test]
    #[should_panic(expected = "went backwards")]
    fn counter_delta_panics_on_regression() {
        counter_delta(3, 4, "frames");
    }
}
