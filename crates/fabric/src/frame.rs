//! Pooled, reference-counted frame buffers — the currency of the hot path.
//!
//! Every frame that crosses the simulator used to be a fresh heap
//! allocation (and, with the `bytes` shim, a second allocation plus a full
//! copy when the `Vec` was frozen into an `Arc<[u8]>`). At paper scale the
//! fig3 shuffle moves hundreds of thousands of frames, so the allocator
//! dominated the profile. [`FramePool`] breaks that cycle: a frame's
//! backing `Vec<u8>` is borrowed from a free list, wrapped in a
//! reference-counted [`Frame`], and returned to the free list when the
//! last reference drops.
//!
//! # Ownership model
//!
//! * **Who allocates:** whoever builds a frame asks a pool for a cleared
//!   [`FramePool::buffer`], writes the wire bytes, and seals it with
//!   [`FramePool::frame`]. Only a cold pool touches the global allocator.
//! * **Who holds:** a [`Frame`] is an immutable, cheaply clonable view
//!   (one `Rc` bump per clone — sender retransmit queues, link
//!   duplication and switch floods all share one buffer).
//! * **Who recycles:** nobody, explicitly. When the last `Frame` clone
//!   drops, the buffer slides back into the free list of the pool that
//!   created it. A frame may outlive its pool; the buffer is then simply
//!   freed.
//!
//! Frames are single-threaded by design, which is what lets the pool use
//! `Rc`/`RefCell` instead of atomics — and the partitioned engine keeps
//! it that way: each partition owns its own `FramePool`, and a `Frame`
//! (or its `Rc` count) **never crosses a thread**. A cross-partition
//! delivery is serialized to plain bytes on the sender's side and
//! re-pooled from the receiving partition's pool on ingest (see the
//! simulator's `sim` module docs, "Partitioned execution"), so every pool
//! stays strictly partition-local. The real-time UDP backend follows the
//! same rule at the socket edge: a frame's bytes are copied onto the wire
//! on send, and every received datagram is re-pooled from the receiving
//! driver's own pool — a `Frame` never crosses a process or thread.
//!
//! ```
//! use daiet_fabric::{Frame, FramePool};
//!
//! let pool = FramePool::new();
//! let mut buf = pool.buffer();          // cleared, possibly recycled
//! buf.extend_from_slice(b"hello");
//! let frame = pool.frame(buf);          // seal into an immutable Frame
//! let copy = frame.clone();             // refcount bump, no allocation
//! assert_eq!(&frame[..], b"hello");
//!
//! drop(frame);
//! drop(copy);                           // last ref: buffer returns home
//! assert_eq!(pool.stats().returned, 1);
//!
//! let reused = pool.buffer();           // same allocation, back again
//! assert!(reused.is_empty() && reused.capacity() >= 5);
//! assert_eq!(pool.stats().reused, 1);
//! ```

use std::cell::{Cell, RefCell};
use std::rc::{Rc, Weak};

/// Default cap on buffers parked in a pool's free list. Beyond this,
/// returned buffers are simply freed — a backstop against pathological
/// workloads hoarding memory, far above any steady-state frame count the
/// figure workloads reach.
const DEFAULT_MAX_FREE: usize = 16 * 1024;

/// Counters describing a pool's behaviour (see [`FramePool::stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Buffers handed out that had to be freshly allocated.
    pub fresh: u64,
    /// Buffers handed out from the free list (allocator bypassed).
    pub reused: u64,
    /// Buffers returned to the free list by dropped frames.
    pub returned: u64,
}

struct PoolShared {
    free: RefCell<Vec<Vec<u8>>>,
    /// Free-list capacity; 0 disables recycling entirely.
    max_free: usize,
    fresh: Cell<u64>,
    reused: Cell<u64>,
    returned: Cell<u64>,
}

impl PoolShared {
    fn give_back(&self, mut buf: Vec<u8>) {
        let mut free = self.free.borrow_mut();
        if free.len() < self.max_free && buf.capacity() > 0 {
            buf.clear();
            free.push(buf);
            self.returned.set(self.returned.get() + 1);
        }
    }
}

/// A recycling arena of frame buffers. Cloning the pool clones a handle
/// to the same free list, so a pool can be shared between the simulator
/// and the nodes that build frames ahead of time.
#[derive(Clone)]
pub struct FramePool {
    shared: Rc<PoolShared>,
}

impl Default for FramePool {
    fn default() -> Self {
        FramePool::new()
    }
}

impl FramePool {
    /// A pool with the default free-list cap.
    pub fn new() -> FramePool {
        FramePool::with_max_free(DEFAULT_MAX_FREE)
    }

    /// A pool whose free list holds at most `max_free` buffers.
    pub fn with_max_free(max_free: usize) -> FramePool {
        FramePool {
            shared: Rc::new(PoolShared {
                free: RefCell::new(Vec::new()),
                max_free,
                fresh: Cell::new(0),
                reused: Cell::new(0),
                returned: Cell::new(0),
            }),
        }
    }

    /// A pool that never recycles: every [`buffer`](Self::buffer) is a
    /// fresh allocation and dropped frames free their memory. Used to
    /// cross-check that pooling does not change simulation results.
    pub fn disabled() -> FramePool {
        FramePool::with_max_free(0)
    }

    /// True when this pool recycles buffers.
    pub fn is_recycling(&self) -> bool {
        self.shared.max_free > 0
    }

    /// Hands out a cleared buffer — recycled if one is parked, freshly
    /// allocated otherwise. Write the frame bytes into it, then seal it
    /// with [`FramePool::frame`].
    pub fn buffer(&self) -> Vec<u8> {
        match self.shared.free.borrow_mut().pop() {
            Some(buf) => {
                self.shared.reused.set(self.shared.reused.get() + 1);
                debug_assert!(buf.is_empty());
                buf
            }
            None => {
                self.shared.fresh.set(self.shared.fresh.get() + 1);
                Vec::new()
            }
        }
    }

    /// Seals `buf` into an immutable [`Frame`] whose backing storage
    /// returns to this pool when the last clone drops.
    pub fn frame(&self, buf: Vec<u8>) -> Frame {
        Frame {
            inner: Rc::new(FrameInner { buf, pool: Rc::downgrade(&self.shared) }),
        }
    }

    /// Builds a pooled frame holding a copy of `bytes`.
    pub fn copy_from_slice(&self, bytes: &[u8]) -> Frame {
        let mut buf = self.buffer();
        buf.extend_from_slice(bytes);
        self.frame(buf)
    }

    /// Allocation and recycling counters.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            fresh: self.shared.fresh.get(),
            reused: self.shared.reused.get(),
            returned: self.shared.returned.get(),
        }
    }

    /// Buffers currently parked in the free list.
    pub fn free_buffers(&self) -> usize {
        self.shared.free.borrow().len()
    }
}

impl core::fmt::Debug for FramePool {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("FramePool")
            .field("free", &self.free_buffers())
            .field("max_free", &self.shared.max_free)
            .field("stats", &self.stats())
            .finish()
    }
}

struct FrameInner {
    buf: Vec<u8>,
    /// Weak so a frame can outlive its pool (the buffer is then freed
    /// normally instead of recycled).
    pool: Weak<PoolShared>,
}

impl Drop for FrameInner {
    fn drop(&mut self) {
        if let Some(shared) = self.pool.upgrade() {
            shared.give_back(std::mem::take(&mut self.buf));
        }
    }
}

/// An immutable, reference-counted network frame.
///
/// `Frame` is the payload type of every [`crate::Node::on_packet`]
/// delivery and every [`crate::Fabric::send`]. Cloning is one refcount
/// bump; the bytes are shared, never copied. Frames built through a
/// [`FramePool`] recycle their storage on drop; frames built with
/// [`Frame::from`] a `Vec<u8>` (or [`Frame::from_slice`]) own plain heap
/// memory — convenient in tests, identical in behaviour.
#[derive(Clone)]
pub struct Frame {
    inner: Rc<FrameInner>,
}

impl Frame {
    /// An empty frame.
    pub fn new() -> Frame {
        Frame::from(Vec::new())
    }

    /// A frame holding a copy of `bytes`, not attached to any pool.
    pub fn from_slice(bytes: &[u8]) -> Frame {
        Frame::from(bytes.to_vec())
    }

    /// Number of bytes in the frame.
    pub fn len(&self) -> usize {
        self.inner.buf.len()
    }

    /// True when the frame has no bytes.
    pub fn is_empty(&self) -> bool {
        self.inner.buf.len() == 0
    }

    /// Number of live clones of this frame (diagnostics and tests).
    pub fn ref_count(&self) -> usize {
        Rc::strong_count(&self.inner)
    }

    /// Mutable access to the backing buffer, only when this is the sole
    /// reference (used by link fault injection to corrupt a frame in
    /// place instead of copying).
    pub fn try_mut(&mut self) -> Option<&mut Vec<u8>> {
        Rc::get_mut(&mut self.inner).map(|inner| &mut inner.buf)
    }
}

impl Default for Frame {
    fn default() -> Self {
        Frame::new()
    }
}

impl From<Vec<u8>> for Frame {
    fn from(buf: Vec<u8>) -> Frame {
        Frame {
            inner: Rc::new(FrameInner { buf, pool: Weak::new() }),
        }
    }
}

impl core::ops::Deref for Frame {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.inner.buf
    }
}

impl AsRef<[u8]> for Frame {
    fn as_ref(&self) -> &[u8] {
        &self.inner.buf
    }
}

impl core::borrow::Borrow<[u8]> for Frame {
    fn borrow(&self) -> &[u8] {
        &self.inner.buf
    }
}

impl PartialEq for Frame {
    fn eq(&self, other: &Self) -> bool {
        self.inner.buf == other.inner.buf
    }
}

impl Eq for Frame {}

impl core::fmt::Debug for Frame {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "Frame({} B, {} refs)", self.len(), self.ref_count())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffers_recycle_through_the_pool() {
        let pool = FramePool::new();
        let mut buf = pool.buffer();
        buf.extend_from_slice(&[1, 2, 3]);
        let cap = buf.capacity();
        let frame = pool.frame(buf);
        assert_eq!(&frame[..], &[1, 2, 3]);
        assert_eq!(pool.stats().fresh, 1);
        drop(frame);
        assert_eq!(pool.stats().returned, 1);
        let again = pool.buffer();
        assert!(again.is_empty());
        assert_eq!(again.capacity(), cap, "recycled buffer keeps capacity");
        assert_eq!(pool.stats().reused, 1);
    }

    #[test]
    fn clones_share_and_defer_recycling() {
        let pool = FramePool::new();
        let frame = pool.copy_from_slice(b"shared");
        let clone = frame.clone();
        assert_eq!(frame.ref_count(), 2);
        drop(frame);
        // Still alive through the clone: nothing returned yet.
        assert_eq!(pool.stats().returned, 0);
        assert_eq!(&clone[..], b"shared");
        drop(clone);
        assert_eq!(pool.stats().returned, 1);
    }

    #[test]
    fn disabled_pool_never_recycles() {
        let pool = FramePool::disabled();
        assert!(!pool.is_recycling());
        drop(pool.copy_from_slice(b"x"));
        assert_eq!(pool.stats().returned, 0);
        assert_eq!(pool.free_buffers(), 0);
        let b = pool.buffer();
        assert_eq!(pool.stats().fresh, 2);
        drop(b);
    }

    #[test]
    fn frame_outliving_pool_is_freed_not_recycled() {
        let pool = FramePool::new();
        let frame = pool.copy_from_slice(b"orphan");
        drop(pool);
        assert_eq!(&frame[..], b"orphan"); // buffer still valid
        drop(frame); // must not panic; Weak upgrade fails, Vec is freed
    }

    #[test]
    fn try_mut_respects_sharing() {
        let pool = FramePool::new();
        let mut frame = pool.copy_from_slice(b"abc");
        let clone = frame.clone();
        assert!(frame.try_mut().is_none(), "shared frame must not be mutable");
        drop(clone);
        frame.try_mut().unwrap()[0] = b'x';
        assert_eq!(&frame[..], b"xbc");
    }

    #[test]
    fn unpooled_frames_behave() {
        let f = Frame::from(vec![9u8; 4]);
        assert_eq!(f.len(), 4);
        assert!(!f.is_empty());
        assert_eq!(f, Frame::from_slice(&[9, 9, 9, 9]));
        assert!(Frame::new().is_empty());
        assert_eq!(format!("{f:?}"), "Frame(4 B, 1 refs)");
    }

    #[test]
    fn free_list_cap_is_enforced() {
        let pool = FramePool::with_max_free(1);
        let a = pool.copy_from_slice(b"a");
        let b = pool.copy_from_slice(b"b");
        drop(a);
        drop(b);
        assert_eq!(pool.free_buffers(), 1, "second return exceeds cap");
    }
}
