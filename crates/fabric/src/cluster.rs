//! An in-process loopback cluster: one [`NodeDriver`] per thread.
//!
//! The multi-process demo (`examples/udp_loopback.rs`) is the headline
//! act, but tests and the load generator want the same topology-over-UDP
//! plumbing without forking processes. This harness runs each node's
//! driver on its own thread, all talking through real `127.0.0.1` sockets
//! — the kernel genuinely routes every datagram, so loss injection, NACK
//! recovery and wall-clock timers are exercised exactly as they are
//! across processes.
//!
//! [`Frame`](crate::Frame)s are `Rc`-backed and must never cross threads,
//! so a caller cannot hand the harness ready-made nodes. Instead each
//! [`NodeSpec`] carries a `Send` *constructor* closure that builds the
//! node inside its own thread (from plain `Send` data: configs, corpora,
//! plans), and a `Send` *finish* closure that runs after the loop exits
//! and distills the node into a `Send` result (sorted pairs, counters).
//!
//! Run coordination: every spec may have a `done` predicate. When all
//! predicated nodes finish, a shared stop flag tears the rest down
//! (switches and senders have no natural end). If any driver's deadline
//! fires first, the stop flag is raised too, so a wedged run fails in
//! bounded time instead of hanging the suite.

use crate::node::Node;
use crate::shim::FaultShim;
use crate::udp::{DriverStats, ExitReason, NodeDriver};
use std::any::Any;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};

/// Builds one node inside its driver thread.
pub type NodeCtor = Box<dyn FnOnce() -> Box<dyn Node> + Send>;
/// Decides when a node's driver may stop (checked every loop iteration).
pub type DonePred = Box<dyn FnMut(&dyn Node) -> bool + Send>;
/// Extracts a `Send` result from the node after its driver stopped.
pub type Finish = Box<dyn FnOnce(Box<dyn Node>) -> Box<dyn Any + Send> + Send>;

/// One member of a [`run_cluster`] run.
pub struct NodeSpec {
    /// Builds the node (runs on the driver thread).
    pub build: NodeCtor,
    /// Egress fault injection for this node (default: transparent).
    pub shim: FaultShim,
    /// `Some` for nodes whose completion ends the run (reducers,
    /// coordinators); `None` for open-ended nodes (switches, senders).
    pub done: Option<DonePred>,
    /// Distills the finished node into the per-slot result.
    pub finish: Finish,
}

impl NodeSpec {
    /// An open-ended node that returns no result.
    pub fn plain(build: NodeCtor) -> NodeSpec {
        NodeSpec {
            build,
            shim: FaultShim::none(),
            done: None,
            finish: Box::new(|_| Box::new(())),
        }
    }
}

/// Per-slot outcome of a cluster run.
pub struct SlotOutcome {
    /// What the slot's finish closure produced.
    pub result: Box<dyn Any + Send>,
    /// Why the slot's driver exited.
    pub exit: ExitReason,
    /// The slot's socket-edge counters.
    pub stats: DriverStats,
}

/// Runs one driver per spec, fully meshed over loopback UDP according to
/// `links` (each `(a, b)` attaches the next port on `a` to the next port
/// on `b`, mirroring the simulator's `connect` numbering). Returns one
/// [`SlotOutcome`] per spec, in slot order.
///
/// Panics if any driver thread panics (a node assertion failing on a
/// worker thread must fail the test, not vanish).
pub fn run_cluster(
    specs: Vec<NodeSpec>,
    links: &[(usize, usize)],
    deadline: std::time::Duration,
) -> Vec<SlotOutcome> {
    let n = specs.len();
    // Port tables in link-attach order: ports[slot][p] = peer slot.
    let mut ports: Vec<Vec<usize>> = vec![Vec::new(); n];
    for &(a, b) in links {
        assert!(a < n && b < n, "link ({a},{b}) names a missing slot");
        ports[a].push(b);
        ports[b].push(a);
    }

    let stop = Arc::new(AtomicBool::new(false));
    let pending = Arc::new(AtomicUsize::new(
        specs.iter().filter(|s| s.done.is_some()).count(),
    ));
    // Address exchange: every thread binds, reports its address, then
    // waits for the full table before entering its run loop.
    let (addr_tx, addr_rx) = mpsc::channel::<(usize, SocketAddr)>();
    let mut table_txs = Vec::with_capacity(n);

    let mut handles = Vec::with_capacity(n);
    for (slot, spec) in specs.into_iter().enumerate() {
        let my_ports = ports[slot].clone();
        let addr_tx = addr_tx.clone();
        let (table_tx, table_rx) = mpsc::channel::<Vec<SocketAddr>>();
        table_txs.push(table_tx);
        let stop = stop.clone();
        let pending = pending.clone();
        handles.push(std::thread::spawn(move || {
            let NodeSpec { build, shim, mut done, finish } = spec;
            let mut driver =
                NodeDriver::bind(build(), "127.0.0.1:0").expect("bind loopback socket");
            driver.set_fault_shim(shim);
            driver.set_stop_flag(stop.clone());
            addr_tx
                .send((slot, driver.local_addr().expect("local addr")))
                .expect("report address");
            let table = table_rx.recv().expect("receive address table");
            driver.set_peers(my_ports.iter().map(|&peer| table[peer]).collect());

            let exit = match done.as_mut() {
                Some(pred) => driver.run(deadline, |n| pred(n)),
                None => driver.run(deadline, |_| false),
            };
            match exit {
                ExitReason::Done => {
                    if pending.fetch_sub(1, Ordering::SeqCst) == 1 {
                        stop.store(true, Ordering::SeqCst);
                    }
                }
                // A deadline anywhere wedges the run: release everyone.
                ExitReason::Deadline => stop.store(true, Ordering::SeqCst),
                ExitReason::Stopped => {}
            }
            let stats = driver.stats();
            SlotOutcome { result: finish(driver.into_node()), exit, stats }
        }));
    }
    drop(addr_tx);

    let mut table = vec![None; n];
    for _ in 0..n {
        let (slot, addr) = addr_rx.recv().expect("collect addresses");
        table[slot] = Some(addr);
    }
    let table: Vec<SocketAddr> = table.into_iter().map(Option::unwrap).collect();
    for tx in &table_txs {
        tx.send(table.clone()).expect("distribute address table");
    }

    handles
        .into_iter()
        .map(|h| h.join().expect("driver thread panicked"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::Frame;
    use crate::node::{Fabric, PortId};
    use crate::time::Duration;

    /// Sends `count` numbered datagrams to port 0, 1 per ms.
    struct Source {
        next: u8,
        count: u8,
    }
    impl Node for Source {
        fn on_packet(&mut self, _ctx: &mut dyn Fabric, _p: PortId, _f: Frame) {}
        fn on_start(&mut self, ctx: &mut dyn Fabric) {
            ctx.schedule(Duration::from_millis(1), 0);
        }
        fn on_timer(&mut self, ctx: &mut dyn Fabric, _t: u64) {
            if self.next < self.count {
                ctx.send(PortId(0), Frame::from_slice(&[self.next]));
                self.next += 1;
                ctx.schedule(Duration::from_millis(1), 0);
            }
        }
    }

    /// Forwards everything from port 0 to port 1.
    struct Hub;
    impl Node for Hub {
        fn on_packet(&mut self, ctx: &mut dyn Fabric, _p: PortId, f: Frame) {
            ctx.send(PortId(1), f);
        }
    }

    /// Collects distinct bytes until it has `want` of them.
    struct Sink {
        got: std::collections::BTreeSet<u8>,
        want: usize,
    }
    impl Node for Sink {
        fn on_packet(&mut self, _ctx: &mut dyn Fabric, _p: PortId, f: Frame) {
            if let Some(&b) = f.first() {
                self.got.insert(b);
            }
        }
    }

    #[test]
    fn three_stage_relay_completes_over_loopback_threads() {
        let specs = vec![
            NodeSpec::plain(Box::new(|| Box::new(Source { next: 0, count: 5 }))),
            NodeSpec::plain(Box::new(|| Box::new(Hub))),
            NodeSpec {
                build: Box::new(|| {
                    Box::new(Sink { got: std::collections::BTreeSet::new(), want: 5 })
                }),
                shim: FaultShim::none(),
                done: Some(Box::new(|n: &dyn Node| {
                    let s = (n as &dyn std::any::Any).downcast_ref::<Sink>().unwrap();
                    s.got.len() >= s.want
                })),
                finish: Box::new(|n| {
                    let s = (n as Box<dyn std::any::Any>).downcast::<Sink>().unwrap();
                    Box::new(s.got.iter().copied().collect::<Vec<u8>>())
                }),
            },
        ];
        // source(p0)—(p0)hub(p1)—(p0)sink
        let out = run_cluster(
            specs,
            &[(0, 1), (1, 2)],
            std::time::Duration::from_secs(20),
        );
        assert_eq!(out[2].exit, ExitReason::Done);
        let bytes = out[2].result.downcast_ref::<Vec<u8>>().unwrap();
        assert_eq!(bytes, &[0, 1, 2, 3, 4]);
        assert!(out[1].stats.frames_in >= 5);
    }
}
