//! A hashed timer wheel for the real-time backend.
//!
//! [`Fabric::schedule`](crate::Fabric::schedule) under a driver cannot use
//! the simulator's global event heap — there is no global anything; each
//! process owns its timers. A classic hashed wheel gives O(1) insertion
//! and cheap "what's due?" scans at driver-loop granularity: the horizon
//! is split into `slots` buckets of `granularity` nanoseconds each, a
//! timer lands in the bucket of its due instant, and timers beyond one
//! full rotation wait in an overflow list that is rechecked as the wheel
//! turns. Sub-granularity precision is preserved because expiry compares
//! the timer's exact due time against `now`, never the bucket boundary.
//!
//! Within one expiry batch, timers fire ordered by `(due, insertion
//! sequence)` — the same deterministic tie-break discipline the simulator
//! uses, so a node cannot observe two backends firing same-instant timers
//! in different relative orders.

use crate::time::{Duration, Time};

/// One pending timer.
#[derive(Debug, Clone, Copy)]
struct Pending {
    due: Time,
    seq: u64,
    token: u64,
}

/// A fixed-horizon hashed timer wheel (see module docs).
#[derive(Debug)]
pub struct TimerWheel {
    granularity_ns: u64,
    slots: Vec<Vec<Pending>>,
    /// Every timer below this instant has already been expired.
    cursor_time: Time,
    /// Timers due beyond one rotation from `cursor_time`.
    overflow: Vec<Pending>,
    next_seq: u64,
    len: usize,
}

impl TimerWheel {
    /// A wheel with `slots` buckets of `granularity` each. The horizon
    /// (`slots × granularity`) should comfortably cover the common timer
    /// range — e.g. 256 × 64 µs ≈ 16 ms for NACK timeouts of a few ms.
    pub fn new(granularity: Duration, slots: usize) -> TimerWheel {
        assert!(granularity.as_nanos() > 0, "granularity must be positive");
        assert!(slots > 0, "wheel needs at least one slot");
        TimerWheel {
            granularity_ns: granularity.as_nanos(),
            slots: (0..slots).map(|_| Vec::new()).collect(),
            cursor_time: Time::ZERO,
            overflow: Vec::new(),
            next_seq: 0,
            len: 0,
        }
    }

    /// A wheel sized for driver loops: 256 slots of 64 µs (≈16 ms horizon).
    pub fn for_driver() -> TimerWheel {
        TimerWheel::new(Duration::from_micros(64), 256)
    }

    /// Number of pending timers.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no timers are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn slot_of(&self, due: Time) -> usize {
        (due.as_nanos() / self.granularity_ns) as usize % self.slots.len()
    }

    fn horizon_ns(&self) -> u64 {
        self.granularity_ns * self.slots.len() as u64
    }

    /// Arms a timer for `due`; `token` comes back from
    /// [`expire`](Self::expire). A `due` in the past fires on the next
    /// expiry scan.
    pub fn schedule(&mut self, due: Time, token: u64) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let p = Pending { due, seq, token };
        let base = self.cursor_time.as_nanos();
        if due.as_nanos() >= base + self.horizon_ns() {
            self.overflow.push(p);
        } else {
            // A due instant already behind the cursor would land in a slot
            // the scan has passed; park it in the cursor's slot so the next
            // expiry finds it immediately.
            let slot = self.slot_of(due.max(self.cursor_time));
            self.slots[slot].push(p);
        }
        self.len += 1;
    }

    /// Removes and returns every timer with `due <= now`, ordered by
    /// `(due, schedule order)`. Also migrates overflow timers that the
    /// advancing cursor has brought within the horizon.
    pub fn expire(&mut self, now: Time) -> Vec<u64> {
        if now < self.cursor_time {
            return Vec::new(); // clock glitch: nothing can be due
        }
        let mut due: Vec<Pending> = Vec::new();
        // Walk every bucket the cursor passes over, inclusive of now's.
        let g = self.granularity_ns;
        let from_tick = self.cursor_time.as_nanos() / g;
        let to_tick = now.as_nanos() / g;
        let n_slots = self.slots.len() as u64;
        let ticks = (to_tick - from_tick + 1).min(n_slots);
        for t in 0..ticks {
            let idx = ((from_tick + t) % n_slots) as usize;
            self.slots[idx].retain(|p| {
                if p.due <= now {
                    due.push(*p);
                    false
                } else {
                    true
                }
            });
        }
        // Overflow: rarely populated, scan it whole.
        self.overflow.retain(|p| {
            if p.due <= now {
                due.push(*p);
                false
            } else {
                true
            }
        });
        // Re-home overflow timers now inside the horizon.
        let horizon_end = now.as_nanos().saturating_add(self.horizon_ns());
        let mut rehome: Vec<Pending> = Vec::new();
        self.overflow.retain(|p| {
            if p.due.as_nanos() < horizon_end {
                rehome.push(*p);
                false
            } else {
                true
            }
        });
        for p in rehome {
            let slot = self.slot_of(p.due);
            self.slots[slot].push(p);
        }
        self.cursor_time = now;
        due.sort_by_key(|p| (p.due, p.seq));
        self.len -= due.len();
        due.into_iter().map(|p| p.token).collect()
    }

    /// The earliest pending due instant, if any (drives the driver's
    /// sleep). O(slots + overflow).
    pub fn next_due(&self) -> Option<Time> {
        self.slots
            .iter()
            .flatten()
            .chain(self.overflow.iter())
            .map(|p| p.due)
            .min()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_in_due_order_with_insertion_tiebreak() {
        let mut w = TimerWheel::new(Duration::from_micros(10), 8);
        w.schedule(Time(25_000), 2);
        w.schedule(Time(5_000), 1);
        w.schedule(Time(25_000), 3); // same instant as token 2, armed later
        assert_eq!(w.len(), 3);
        assert_eq!(w.expire(Time(4_999)), Vec::<u64>::new());
        assert_eq!(w.expire(Time(5_000)), vec![1]);
        assert_eq!(w.expire(Time(30_000)), vec![2, 3]);
        assert!(w.is_empty());
    }

    #[test]
    fn sub_granularity_precision_is_kept() {
        // Two timers in the same bucket must not fire together.
        let mut w = TimerWheel::new(Duration::from_micros(10), 8);
        w.schedule(Time(1_000), 1);
        w.schedule(Time(9_000), 2);
        assert_eq!(w.expire(Time(1_000)), vec![1]);
        assert_eq!(w.expire(Time(8_999)), Vec::<u64>::new());
        assert_eq!(w.expire(Time(9_000)), vec![2]);
    }

    #[test]
    fn overflow_beyond_one_rotation_still_fires() {
        // Horizon is 80 µs; schedule 1 ms out.
        let mut w = TimerWheel::new(Duration::from_micros(10), 8);
        w.schedule(Time(1_000_000), 9);
        assert_eq!(w.next_due(), Some(Time(1_000_000)));
        // Crank the wheel forward in small steps: nothing fires early.
        for step in 1..10 {
            assert!(w.expire(Time(step * 80_000)).is_empty());
        }
        assert_eq!(w.expire(Time(1_000_000)), vec![9]);
        assert_eq!(w.next_due(), None);
    }

    #[test]
    fn past_due_timers_fire_immediately_on_next_scan() {
        let mut w = TimerWheel::for_driver();
        assert!(w.expire(Time(500_000)).is_empty());
        w.schedule(Time(100), 7); // already in the past
        assert_eq!(w.expire(Time(500_001)), vec![7]);
    }

    #[test]
    fn wrap_around_reuses_buckets_without_cross_rotation_firing() {
        let mut w = TimerWheel::new(Duration::from_micros(10), 4);
        // Two timers that hash to the same bucket, one rotation apart.
        w.schedule(Time(15_000), 1);
        w.schedule(Time(55_000), 2); // 15 µs + 40 µs (one rotation)
        assert_eq!(w.expire(Time(15_000)), vec![1]);
        assert_eq!(w.expire(Time(54_999)), Vec::<u64>::new());
        assert_eq!(w.expire(Time(55_000)), vec![2]);
    }
}
