//! Simulated time — now the fabric's [`Time`](daiet_fabric::Time)/
//! [`Duration`](daiet_fabric::Duration) under the simulator's historical
//! names. One integer-nanosecond type serves both the virtual clock here
//! and the wall clock of `daiet-fabric`'s UDP backend, so protocol code
//! written against `SimTime` runs unchanged on either.

pub use daiet_fabric::time::{Duration as SimDuration, Time as SimTime};
