//! Topology plans: pure graph descriptions of clusters that can be wired
//! into a [`Simulator`] once the caller has instantiated
//! the node objects (hosts and switches live in higher-level crates, so the
//! plan cannot construct them itself).
//!
//! Port numbers in a plan match the numbers the simulator will assign,
//! because both sides allocate ports sequentially in link-insertion order;
//! [`TopologyPlan::wire`] asserts this agreement. The plan also offers
//! deterministic BFS routing used both for plain L2 forwarding tables and
//! for the DAIET controller's aggregation trees.

use crate::link::LinkSpec;
use crate::node::{NodeId, PortId};
use crate::sim::Simulator;
use std::collections::VecDeque;

/// What kind of device occupies a plan slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Role {
    /// An end host (server).
    Host,
    /// A network switch.
    Switch,
}

/// One attached neighbor: (my port, peer plan-index, peer's port).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Adjacency {
    /// Port on this node.
    pub port: PortId,
    /// Neighbor's plan index.
    pub peer: usize,
    /// Port on the neighbor.
    pub peer_port: PortId,
}

/// A cluster description: node roles plus links.
#[derive(Debug, Clone, Default)]
pub struct TopologyPlan {
    roles: Vec<Role>,
    links: Vec<(usize, usize, LinkSpec)>,
    adj: Vec<Vec<Adjacency>>,
}

impl TopologyPlan {
    /// An empty plan.
    pub fn new() -> TopologyPlan {
        TopologyPlan::default()
    }

    /// Adds a host slot, returning its plan index.
    pub fn add_host(&mut self) -> usize {
        self.roles.push(Role::Host);
        self.adj.push(Vec::new());
        self.roles.len() - 1
    }

    /// Adds a switch slot, returning its plan index.
    pub fn add_switch(&mut self) -> usize {
        self.roles.push(Role::Switch);
        self.adj.push(Vec::new());
        self.roles.len() - 1
    }

    /// Links two slots. Port numbers are assigned sequentially per node,
    /// mirroring [`Simulator::connect`].
    pub fn link(&mut self, a: usize, b: usize, spec: LinkSpec) {
        assert!(a < self.roles.len() && b < self.roles.len());
        assert_ne!(a, b, "self-links are not supported");
        let pa = PortId(self.adj[a].len());
        let pb = PortId(self.adj[b].len());
        self.adj[a].push(Adjacency { port: pa, peer: b, peer_port: pb });
        self.adj[b].push(Adjacency { port: pb, peer: a, peer_port: pa });
        self.links.push((a, b, spec));
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.roles.len()
    }

    /// True when the plan has no slots.
    pub fn is_empty(&self) -> bool {
        self.roles.is_empty()
    }

    /// Role of slot `i`.
    pub fn role(&self, i: usize) -> Role {
        self.roles[i]
    }

    /// All host slots, in index order.
    pub fn hosts(&self) -> Vec<usize> {
        (0..self.len()).filter(|&i| self.roles[i] == Role::Host).collect()
    }

    /// All switch slots, in index order.
    pub fn switches(&self) -> Vec<usize> {
        (0..self.len()).filter(|&i| self.roles[i] == Role::Switch).collect()
    }

    /// Neighbors of slot `i` in port order.
    pub fn neighbors(&self, i: usize) -> &[Adjacency] {
        &self.adj[i]
    }

    /// The links in insertion order.
    pub fn links(&self) -> &[(usize, usize, LinkSpec)] {
        &self.links
    }

    /// BFS tree of next hops toward `dst`: `next[i]` is the adjacency to
    /// take from node `i`, `None` at `dst` itself or for unreachable
    /// nodes. Neighbor order (= port order) breaks ties, so routing is
    /// deterministic.
    pub fn next_hops_toward(&self, dst: usize) -> Vec<Option<Adjacency>> {
        self.next_hops_toward_avoiding(dst, &[])
    }

    /// [`next_hops_toward`](Self::next_hops_toward), but routing *around*
    /// the nodes in `dead`: no next hop ever enters a dead node, and dead
    /// nodes (and nodes cut off by them) get `None`. The same
    /// deterministic BFS with the same neighbor-order tie-breaking, so on
    /// a fabric with path redundancy (≥ 2 spines) the controller can
    /// re-plan live around a failed switch and every survivor still
    /// agrees on the routes. Panics if `dst` itself is dead — there is no
    /// plan to compute around a dead destination.
    pub fn next_hops_toward_avoiding(
        &self,
        dst: usize,
        dead: &[usize],
    ) -> Vec<Option<Adjacency>> {
        assert!(!dead.contains(&dst), "cannot route toward a dead node {dst}");
        let mut next: Vec<Option<Adjacency>> = vec![None; self.len()];
        let mut visited = vec![false; self.len()];
        for &d in dead {
            visited[d] = true; // never expanded, never assigned a hop
        }
        let mut q = VecDeque::new();
        visited[dst] = true;
        q.push_back(dst);
        while let Some(n) = q.pop_front() {
            for adj in &self.adj[n] {
                if !visited[adj.peer] {
                    visited[adj.peer] = true;
                    // From adj.peer, the next hop toward dst is back to n.
                    next[adj.peer] = Some(Adjacency {
                        port: adj.peer_port,
                        peer: n,
                        peer_port: adj.port,
                    });
                    q.push_back(adj.peer);
                }
            }
        }
        next
    }

    /// The full node path `from → … → to` (inclusive), or `None` if
    /// unreachable.
    pub fn path(&self, from: usize, to: usize) -> Option<Vec<usize>> {
        if from == to {
            return Some(vec![from]);
        }
        let next = self.next_hops_toward(to);
        let mut path = vec![from];
        let mut cur = from;
        while cur != to {
            let hop = next[cur]?;
            cur = hop.peer;
            path.push(cur);
            if path.len() > self.len() {
                return None; // defensive: cannot happen with a BFS tree
            }
        }
        Some(path)
    }

    /// Wires this plan into `sim`. `ids[i]` must be the simulator node for
    /// plan slot `i`; the caller creates those in plan order. Panics if the
    /// port numbers the simulator assigns disagree with the plan (which
    /// would mean the caller connected something else first).
    pub fn wire(&self, sim: &mut Simulator, ids: &[NodeId]) {
        assert_eq!(ids.len(), self.len(), "one NodeId per plan slot");
        let mut seen: Vec<usize> = vec![0; self.len()];
        for &(a, b, spec) in &self.links {
            let (pa, pb) = sim.connect(ids[a], ids[b], spec);
            // Both sides must receive the same port number the plan
            // recorded; this fails if the caller connected anything to the
            // simulator outside the plan.
            assert_eq!(pa, PortId(seen[a]), "port drift on plan slot {a}");
            assert_eq!(pb, PortId(seen[b]), "port drift on plan slot {b}");
            seen[a] += 1;
            seen[b] += 1;
        }
    }

    /// Partitions the plan for sharded execution
    /// ([`Simulator::with_partitions`]): switches are dealt round-robin
    /// across partitions and every host follows the first switch it
    /// attaches to, so a rack (hosts + their leaf/ToR switch) stays
    /// together and only inter-switch links cross partition boundaries.
    /// Plans with fewer switches than partitions fall back to round-robin
    /// over hosts. `parts <= 1` yields [`crate::PartitionMap::single`].
    pub fn partition_map(&self, parts: usize) -> crate::PartitionMap {
        if parts <= 1 {
            return crate::PartitionMap::single();
        }
        let switches = self.switches();
        let mut assign = vec![0u32; self.len()];
        if switches.len() >= parts {
            for (i, &sw) in switches.iter().enumerate() {
                assign[sw] = (i % parts) as u32;
            }
            for i in 0..self.len() {
                if self.roles[i] == Role::Host {
                    // Follow the first attached switch (port order), so a
                    // host lands with its rack.
                    let home = self.adj[i]
                        .iter()
                        .find(|a| self.roles[a.peer] == Role::Switch)
                        .map(|a| assign[a.peer]);
                    assign[i] = home.unwrap_or(0);
                }
            }
        } else {
            // Degenerate plans (e.g. a single star switch): spread hosts
            // instead, accepting host–switch links on the boundary.
            for (j, &h) in self.hosts().iter().enumerate() {
                assign[h] = (j % parts) as u32;
            }
            for (i, &sw) in switches.iter().enumerate() {
                assign[sw] = (i % parts) as u32;
            }
        }
        crate::PartitionMap::new(parts, assign)
    }

    // ---- Built-in cluster shapes -------------------------------------

    /// A star: `n_hosts` hosts all attached to one switch — the paper's
    /// testbed shape (24 mappers + 12 reducers + master behind one bmv2
    /// switch). Hosts are slots `0..n_hosts`, the switch is slot
    /// `n_hosts`.
    pub fn star(n_hosts: usize, spec: LinkSpec) -> TopologyPlan {
        let mut plan = TopologyPlan::new();
        for _ in 0..n_hosts {
            plan.add_host();
        }
        let sw = plan.add_switch();
        for h in 0..n_hosts {
            plan.link(h, sw, spec);
        }
        plan
    }

    /// A two-tier leaf-spine fabric: `n_leaves` leaf switches each with
    /// `hosts_per_leaf` hosts, fully meshed to `n_spines` spine switches.
    /// Hosts come first (grouped by leaf), then leaves, then spines.
    pub fn leaf_spine(
        hosts_per_leaf: usize,
        n_leaves: usize,
        n_spines: usize,
        spec: LinkSpec,
    ) -> TopologyPlan {
        let mut plan = TopologyPlan::new();
        let mut hosts = Vec::new();
        for _ in 0..n_leaves * hosts_per_leaf {
            hosts.push(plan.add_host());
        }
        let leaves: Vec<usize> = (0..n_leaves).map(|_| plan.add_switch()).collect();
        let spines: Vec<usize> = (0..n_spines).map(|_| plan.add_switch()).collect();
        for (l, &leaf) in leaves.iter().enumerate() {
            for h in 0..hosts_per_leaf {
                plan.link(hosts[l * hosts_per_leaf + h], leaf, spec);
            }
        }
        for &leaf in &leaves {
            for &spine in &spines {
                plan.link(leaf, spine, spec);
            }
        }
        plan
    }

    /// A k-ary fat-tree (k even): `(k/2)^2` core switches, `k` pods of
    /// `k/2` aggregation and `k/2` edge switches, `k/2` hosts per edge
    /// switch — `k^3/4` hosts total. Hosts come first (grouped by pod,
    /// then edge), then edge switches, aggregation switches, and core
    /// switches.
    pub fn fat_tree(k: usize, spec: LinkSpec) -> TopologyPlan {
        assert!(k >= 2 && k.is_multiple_of(2), "fat-tree requires even k >= 2");
        let half = k / 2;
        let mut plan = TopologyPlan::new();

        let n_hosts = k * half * half;
        let hosts: Vec<usize> = (0..n_hosts).map(|_| plan.add_host()).collect();
        let edges: Vec<usize> = (0..k * half).map(|_| plan.add_switch()).collect();
        let aggs: Vec<usize> = (0..k * half).map(|_| plan.add_switch()).collect();
        let cores: Vec<usize> = (0..half * half).map(|_| plan.add_switch()).collect();

        for pod in 0..k {
            for e in 0..half {
                let edge = edges[pod * half + e];
                // Hosts under this edge switch.
                for h in 0..half {
                    plan.link(hosts[(pod * half + e) * half + h], edge, spec);
                }
                // Edge to every aggregation switch in the pod.
                for a in 0..half {
                    plan.link(edge, aggs[pod * half + a], spec);
                }
            }
            // Aggregation switch a connects to cores a*half .. a*half+half.
            for a in 0..half {
                let agg = aggs[pod * half + a];
                for c in 0..half {
                    plan.link(agg, cores[a * half + c], spec);
                }
            }
        }
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> LinkSpec {
        LinkSpec::fast()
    }

    #[test]
    fn star_shape() {
        let plan = TopologyPlan::star(4, spec());
        assert_eq!(plan.len(), 5);
        assert_eq!(plan.hosts(), vec![0, 1, 2, 3]);
        assert_eq!(plan.switches(), vec![4]);
        assert_eq!(plan.neighbors(4).len(), 4);
        assert_eq!(plan.neighbors(0).len(), 1);
        // Host 0 reaches host 3 through the switch.
        assert_eq!(plan.path(0, 3), Some(vec![0, 4, 3]));
    }

    #[test]
    fn leaf_spine_shape_and_paths() {
        let plan = TopologyPlan::leaf_spine(4, 3, 2, spec());
        assert_eq!(plan.hosts().len(), 12);
        assert_eq!(plan.switches().len(), 5);
        // Same-leaf hosts: two hops.
        assert_eq!(plan.path(0, 1).unwrap().len(), 3);
        // Cross-leaf hosts: host-leaf-spine-leaf-host.
        assert_eq!(plan.path(0, 11).unwrap().len(), 5);
        // Leaf degree: hosts_per_leaf + n_spines.
        let leaf = plan.switches()[0];
        assert_eq!(plan.neighbors(leaf).len(), 4 + 2);
    }

    #[test]
    fn fat_tree_counts() {
        let k = 4;
        let plan = TopologyPlan::fat_tree(k, spec());
        assert_eq!(plan.hosts().len(), k * k * k / 4); // 16
        assert_eq!(plan.switches().len(), 4 + 8 + 8); // 4 core, 8 agg, 8 edge
        // Every edge switch: k/2 hosts + k/2 aggs = k ports.
        for &sw in &plan.switches() {
            assert!(plan.neighbors(sw).len() <= k);
        }
        // Total links: hosts (16) + edge-agg (k pods * half * half = 16)
        // + agg-core (16).
        assert_eq!(plan.links().len(), 48);
    }

    #[test]
    fn fat_tree_all_pairs_reachable() {
        let plan = TopologyPlan::fat_tree(4, spec());
        let hosts = plan.hosts();
        for &a in &hosts {
            let next = plan.next_hops_toward(a);
            for &b in &hosts {
                if a != b {
                    assert!(next[b].is_some(), "{b} cannot reach {a}");
                    let p = plan.path(b, a).unwrap();
                    assert!(p.len() <= 7, "path too long: {p:?}");
                    assert_eq!(*p.first().unwrap(), b);
                    assert_eq!(*p.last().unwrap(), a);
                }
            }
        }
    }

    #[test]
    fn same_pod_paths_stay_local() {
        // In a k=4 fat-tree, hosts under the same edge switch are 2 hops
        // apart; same pod different edge is 4 hops (via aggregation).
        let plan = TopologyPlan::fat_tree(4, spec());
        assert_eq!(plan.path(0, 1).unwrap().len(), 3);
        assert_eq!(plan.path(0, 2).unwrap().len(), 5);
    }

    #[test]
    fn next_hops_form_tree_toward_destination() {
        let plan = TopologyPlan::leaf_spine(2, 2, 2, spec());
        let dst = 3;
        let next = plan.next_hops_toward(dst);
        assert!(next[dst].is_none());
        for i in 0..plan.len() {
            if i == dst {
                continue;
            }
            // Following next hops always terminates at dst.
            let mut cur = i;
            let mut steps = 0;
            while cur != dst {
                cur = next[cur].unwrap().peer;
                steps += 1;
                assert!(steps <= plan.len());
            }
        }
    }

    #[test]
    fn unreachable_nodes_have_no_path() {
        let mut plan = TopologyPlan::new();
        let a = plan.add_host();
        let b = plan.add_host();
        assert_eq!(plan.path(a, b), None);
        assert_eq!(plan.path(a, a), Some(vec![a]));
    }

    /// Routing around a dead spine: every host still reaches every other
    /// host, no route traverses the dead node, and killing the *only*
    /// path (a leaf) cuts its hosts off rather than routing through the
    /// corpse.
    #[test]
    fn avoiding_routes_skirt_dead_nodes() {
        // leaf_spine(4, 3, 2): hosts 0–11, leaves 12–14, spines 15–16.
        let plan = TopologyPlan::leaf_spine(4, 3, 2, spec());
        let dead_spine = 15;
        let next = plan.next_hops_toward_avoiding(0, &[dead_spine]);
        for i in 0..plan.len() {
            if i == 0 || i == dead_spine {
                continue;
            }
            let mut cur = i;
            let mut steps = 0;
            while cur != 0 {
                let hop = next[cur].unwrap_or_else(|| panic!("{i} cut off"));
                assert_ne!(hop.peer, dead_spine, "route from {i} enters the dead spine");
                cur = hop.peer;
                steps += 1;
                assert!(steps <= plan.len());
            }
        }
        assert!(next[dead_spine].is_none(), "dead nodes get no route");
        // Killing host 4's only leaf (12 serves hosts 0–3, 13 serves 4–7)
        // cuts hosts 4–7 off from host 0.
        let next = plan.next_hops_toward_avoiding(0, &[13]);
        for (h, hop) in next.iter().enumerate().take(8).skip(4) {
            assert!(hop.is_none(), "host {h} should be cut off");
        }
        assert!(next[8].is_some(), "other racks still reach the destination");
    }

    #[test]
    fn partition_map_keeps_racks_together() {
        // Leaf-spine with 3 leaves: at 3 partitions each leaf (and its
        // hosts) gets its own partition; spines are dealt round-robin.
        let plan = TopologyPlan::leaf_spine(2, 3, 2, spec());
        let map = plan.partition_map(3);
        assert_eq!(map.parts(), 3);
        let leaves = plan.switches();
        for (i, &leaf) in leaves.iter().take(3).enumerate() {
            assert_eq!(map.part_of(leaf), (i % 3) as u32);
            for adj in plan.neighbors(leaf) {
                if plan.role(adj.peer) == Role::Host {
                    assert_eq!(map.part_of(adj.peer), map.part_of(leaf), "host left its rack");
                }
            }
        }
        // Star (1 switch, 4 hosts) at 2 partitions: host round-robin
        // fallback still covers both partitions.
        let star = TopologyPlan::star(4, spec());
        let map = star.partition_map(2);
        let used: std::collections::HashSet<u32> =
            (0..star.len()).map(|i| map.part_of(i)).collect();
        assert_eq!(used.len(), 2);
        // parts <= 1 collapses to the single-partition map.
        assert_eq!(star.partition_map(1).parts(), 1);
    }

    #[test]
    fn wire_matches_simulator_ports() {
        use crate::frame::Frame;
        use crate::node::{Fabric, Node, PortId};

        struct Dummy;
        impl Node for Dummy {
            fn on_packet(&mut self, _: &mut dyn Fabric, _: PortId, _: Frame) {}
        }

        let plan = TopologyPlan::leaf_spine(2, 2, 1, spec());
        let mut sim = Simulator::new(0);
        let ids: Vec<NodeId> = (0..plan.len()).map(|_| sim.add_node(Box::new(Dummy))).collect();
        plan.wire(&mut sim, &ids);
        // Spot-check: the peer across host 0's port 0 is its leaf switch.
        let leaf = plan.neighbors(0)[0].peer;
        assert_eq!(sim.peer(ids[0], PortId(0)), Some((ids[leaf], PortId(0))));
        assert_eq!(sim.link_count(), plan.links().len());
    }
}
