//! The simulator: owns nodes, links, event queues and the clock, and runs
//! the event loop to completion — on one thread, or sharded across worker
//! threads by a [`PartitionMap`].
//!
//! # Partitioned execution
//!
//! [`Simulator::with_partitions`] splits the topology into partitions
//! (typically one per switch/rack — see
//! [`TopologyPlan::partition_map`](crate::TopologyPlan::partition_map)).
//! Each partition owns its own event heap, [`FramePool`], stats table and
//! node set, and runs on its own worker thread during `run_until`.
//!
//! Synchronization is conservative lookahead (classic
//! Chandy–Misra–Bryant-style windows): let `L` be the minimum propagation
//! latency over links that cross a partition boundary. A frame transmitted
//! by partition `q` at time `t` cannot arrive in another partition before
//! `t + L`, so every partition may safely execute all events strictly below
//! `T_min + L`, where `T_min` is the minimum next-event time over **all**
//! partitions — including its own. (The bound must be global: a
//! partition's own transmissions can return to it through a relay
//! partition, so "min over the *others*" is unsound — an idle-looking
//! relay would let its neighbours run arbitrarily far ahead of frames
//! still to be forwarded.) Workers run barrier-to-barrier: ingest
//! cross-partition deliveries, publish their next event time, agree on the
//! window, process it, deposit outgoing deliveries, repeat.
//!
//! Only plain bytes cross threads: pooled `Rc` frames stay strictly
//! partition-local, and a cross-partition delivery is serialized into a
//! `RemoteEvent` and re-pooled on the receiving side. Determinism across
//! partition counts rests on the explicit `(time, source, per-source seq)`
//! event key (see the `event` module) and on per-direction fault streams
//! (see the `link` module): partitioned runs are bit-identical to
//! single-threaded ones, which `tests/partition_properties.rs` pins.

use crate::event::{Event, EventKind, EventQueue, RemoteEvent};
use crate::frame::{Frame, FramePool};
use crate::link::{stream_seed, LinkSpec, PortTable};
use crate::node::{Context, Node, NodeId, NodeScript, PortId};
use crate::stats::{LinkStats, NodeStats, StatsSnapshot, StatsTable};
use crate::time::SimTime;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::any::Any;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};

/// Stream tag for per-node `Context::rng` streams (see
/// [`stream_seed`]).
const STREAM_NODE_RNG: u64 = 2;

/// Assigns every node to a partition. Build one by hand with
/// [`PartitionMap::new`], or derive one from a topology with
/// [`TopologyPlan::partition_map`](crate::TopologyPlan::partition_map).
#[derive(Debug, Clone)]
pub struct PartitionMap {
    parts: u32,
    assign: Vec<u32>,
}

impl PartitionMap {
    /// Everything in one partition — the single-threaded simulator.
    pub fn single() -> PartitionMap {
        PartitionMap { parts: 1, assign: Vec::new() }
    }

    /// `assign[node] = partition`; nodes beyond the assignment default to
    /// partition 0. Panics if an assignment references a partition ≥
    /// `parts`.
    pub fn new(parts: usize, assign: Vec<u32>) -> PartitionMap {
        assert!(parts >= 1, "at least one partition required");
        assert!(
            assign.iter().all(|&p| (p as usize) < parts),
            "assignment references a partition out of range"
        );
        PartitionMap { parts: parts as u32, assign }
    }

    /// Number of partitions.
    pub fn parts(&self) -> usize {
        self.parts as usize
    }

    /// The partition owning `node`.
    pub fn part_of(&self, node: usize) -> u32 {
        self.assign.get(node).copied().unwrap_or(0)
    }
}

/// One shard of the simulation: the nodes it owns, their events, frames,
/// counters and random streams. Everything `Rc`-backed stays inside.
struct Partition {
    /// Global-indexed; `Some` only for nodes this partition owns.
    nodes: Vec<Option<Box<dyn Node>>>,
    queue: EventQueue,
    /// Full mirror of the wiring (identical indices/seeds in every
    /// partition); only directions transmitted by owned nodes ever
    /// advance their state.
    ports: PortTable,
    stats: StatsTable,
    pool: FramePool,
    /// Per-node deterministic streams (global-indexed; only owned nodes'
    /// streams advance).
    node_rngs: Vec<SmallRng>,
    now: SimTime,
    events_processed: u64,
    /// Cross-partition deliveries staged per target partition, drained
    /// into the shared mailboxes at each synchronization.
    outboxes: Vec<Vec<RemoteEvent>>,
    /// Scripted kill/revive schedules, global-indexed; set only in the
    /// partition owning the node (the only place its events are handled).
    node_scripts: Vec<Option<NodeScript>>,
}

impl Partition {
    fn dispatch<F>(&mut self, me: u32, part_of: &[u32], node_id: NodeId, f: F)
    where
        F: FnOnce(&mut dyn Node, &mut Context<'_>),
    {
        // Temporarily take the node out of its slot so it can borrow both
        // itself and the world.
        let mut node = match self.nodes.get_mut(node_id.0).and_then(Option::take) {
            Some(n) => n,
            None => return, // node removed or not owned here: drop the event
        };
        {
            let mut ctx = Context {
                node: node_id,
                now: self.now,
                queue: &mut self.queue,
                ports: &mut self.ports,
                stats: &mut self.stats,
                rng: &mut self.node_rngs[node_id.0],
                pool: &self.pool,
                part_of,
                my_part: me,
                outboxes: &mut self.outboxes,
            };
            f(node.as_mut(), &mut ctx);
        }
        self.nodes[node_id.0] = Some(node);
    }

    /// Fires `on_start` for every owned node, in node-id order.
    fn start_nodes(&mut self, me: u32, part_of: &[u32]) {
        for i in 0..self.nodes.len() {
            self.dispatch(me, part_of, NodeId(i), |node, ctx| node.on_start(ctx));
        }
    }

    /// True when `node` is scripted down at `t`. A pure function of
    /// `(node, t)`, so the drop decision is identical under any
    /// partitioning and any same-tick event ordering.
    fn is_down(&self, node: NodeId, t: SimTime) -> bool {
        self.node_scripts
            .get(node.0)
            .and_then(Option::as_ref)
            .is_some_and(|s| s.is_down_at(t))
    }

    fn handle(&mut self, me: u32, part_of: &[u32], ev: Event) {
        match ev.kind {
            EventKind::Deliver { node, port, frame } => {
                if self.is_down(node, ev.time) {
                    // Dead NIC: the frame dies on arrival, uncounted as
                    // received. (Timers die silently below; only frames
                    // are worth a counter.)
                    self.stats.node_dead_drop(node);
                    return;
                }
                self.stats.node_received(node, frame.len());
                self.dispatch(me, part_of, node, |n, ctx| n.on_packet(ctx, port, frame));
            }
            EventKind::Timer { node, token } => {
                if self.is_down(node, ev.time) {
                    return;
                }
                self.dispatch(me, part_of, node, |n, ctx| n.on_timer(ctx, token));
            }
            EventKind::TxDone { link, dir, bytes } => {
                self.ports.tx_done(link, dir, bytes);
            }
            EventKind::NodeFail { node } => {
                // No Context: a dead node cannot send or schedule.
                if let Some(n) = self.nodes.get_mut(node.0).and_then(Option::as_mut) {
                    n.on_fail();
                }
            }
            EventKind::NodeRevive { node } => {
                self.dispatch(me, part_of, node, |n, ctx| n.on_revive(ctx));
            }
        }
    }

    /// Processes every local event with `time < horizon` (exclusive).
    /// Events sharing one instant are drained as a batch. The per-event
    /// count check is a local backstop; the authoritative global
    /// `max_events` check sums all partitions at each barrier.
    fn process_window(&mut self, me: u32, part_of: &[u32], horizon: u64, max_events: u64) {
        while let Some(t) = self.queue.peek_time() {
            if t.0 >= horizon {
                break;
            }
            debug_assert!(t >= self.now, "time went backwards");
            self.now = t;
            while let Some(ev) = self.queue.pop_at(t) {
                self.events_processed += 1;
                assert!(
                    self.events_processed <= max_events,
                    "simulation exceeded {max_events} events — runaway?"
                );
                self.handle(me, part_of, ev);
            }
        }
    }

    /// Merges deliveries from other partitions into the local heap,
    /// re-homing the bytes in this partition's pool. The carried
    /// `(src, seq)` keys place each event exactly where a single-threaded
    /// run would have.
    fn ingest(&mut self, remotes: Vec<RemoteEvent>) {
        for r in remotes {
            // The lookahead window guarantees arrival ≥ t_min + L > now;
            // a violation means the synchronization protocol is broken,
            // and clamping it forward would silently corrupt timing.
            assert!(
                r.time >= self.now,
                "cross-partition frame arrived in the receiver's past \
                 ({:?} < {:?}) — lookahead window too wide",
                r.time,
                self.now
            );
            let frame = self.pool.copy_from_slice(&r.bytes);
            self.queue.push_keyed(
                r.time,
                r.src,
                r.seq,
                EventKind::Deliver { node: r.node, port: r.port, frame },
            );
        }
    }
}

/// A reusable barrier that can be poisoned: a panicking worker marks it,
/// and every current and future waiter returns `false` instead of
/// blocking forever on a thread that will never arrive.
struct PoisonBarrier {
    n: usize,
    state: Mutex<BarrierState>,
    cv: Condvar,
}

struct BarrierState {
    arrived: usize,
    generation: u64,
    poisoned: bool,
}

impl PoisonBarrier {
    fn new(n: usize) -> PoisonBarrier {
        PoisonBarrier {
            n,
            state: Mutex::new(BarrierState { arrived: 0, generation: 0, poisoned: false }),
            cv: Condvar::new(),
        }
    }

    /// Blocks until all `n` workers arrive; returns `false` if the
    /// barrier was poisoned instead.
    fn wait(&self) -> bool {
        let mut g = self.state.lock().unwrap();
        if g.poisoned {
            return false;
        }
        let gen = g.generation;
        g.arrived += 1;
        if g.arrived == self.n {
            g.arrived = 0;
            g.generation += 1;
            self.cv.notify_all();
            return true;
        }
        while g.generation == gen && !g.poisoned {
            g = self.cv.wait(g).unwrap();
        }
        if g.generation == gen {
            g.arrived -= 1; // poisoned before release: withdraw arrival
            return false;
        }
        true
    }

    fn poison(&self) {
        let mut g = self.state.lock().unwrap();
        g.poisoned = true;
        self.cv.notify_all();
    }
}

/// Cross-thread synchronization state for one `run_until` call.
struct SyncState {
    barrier: PoisonBarrier,
    /// Each partition's next pending event time (`u64::MAX` when idle),
    /// republished at every barrier.
    next_time: Vec<AtomicU64>,
    /// Each partition's cumulative event count, for the global
    /// `max_events` check.
    processed: Vec<AtomicU64>,
    /// Per-partition inbound mailboxes of cross-partition deliveries.
    mailboxes: Vec<Mutex<Vec<RemoteEvent>>>,
}

impl SyncState {
    fn new(k: usize) -> SyncState {
        SyncState {
            barrier: PoisonBarrier::new(k),
            next_time: (0..k).map(|_| AtomicU64::new(0)).collect(),
            processed: (0..k).map(|_| AtomicU64::new(0)).collect(),
            mailboxes: (0..k).map(|_| Mutex::new(Vec::new())).collect(),
        }
    }
}

/// Moves one partition's `&mut` into its worker thread. Safety: each
/// pointer is handed to exactly one thread, the partitions are distinct
/// elements of one `Vec`, and the main thread does not touch them while
/// the scope runs — so the `Rc`-backed internals never cross threads.
struct PartCell(*mut Partition);
#[allow(unsafe_code)]
// lint:allow(part-unsafe-send): each PartCell pointer is moved into exactly
// one scoped worker thread; partitions are distinct Vec elements and the
// main thread is parked at the scope join while workers run.
unsafe impl Send for PartCell {}

fn flush_outboxes(part: &mut Partition, sync: &SyncState) {
    for (q, out) in part.outboxes.iter_mut().enumerate() {
        if !out.is_empty() {
            sync.mailboxes[q].lock().unwrap().append(out);
        }
    }
}

/// The per-partition worker loop: barrier-synchronized conservative
/// lookahead windows (module docs). Every worker computes the identical
/// exit/window decision from the identical published snapshot, so exits
/// are unanimous and no worker is left at a barrier.
#[allow(clippy::too_many_arguments)]
fn run_worker(
    part: &mut Partition,
    me: usize,
    sync: &SyncState,
    part_of: &[u32],
    deadline: SimTime,
    lookahead_ns: u64,
    max_events: u64,
    do_start: bool,
) {
    if do_start {
        part.start_nodes(me as u32, part_of);
        flush_outboxes(part, sync);
    }
    loop {
        // Barrier A: all deposits from the previous window are in the
        // mailboxes; ingest ours and publish our horizon inputs.
        if !sync.barrier.wait() {
            return;
        }
        let incoming = std::mem::take(&mut *sync.mailboxes[me].lock().unwrap());
        part.ingest(incoming);
        let next = part.queue.peek_time().map_or(u64::MAX, |t| t.0);
        sync.next_time[me].store(next, Ordering::SeqCst);
        sync.processed[me].store(part.events_processed, Ordering::SeqCst);

        // Barrier B: all inputs published; everyone computes the same
        // global decision.
        if !sync.barrier.wait() {
            return;
        }
        let k = sync.next_time.len();
        let mut t_min = u64::MAX;
        let mut total: u64 = 0;
        for q in 0..k {
            let t = sync.next_time[q].load(Ordering::SeqCst);
            total = total.saturating_add(sync.processed[q].load(Ordering::SeqCst));
            t_min = t_min.min(t);
        }
        // The runaway valve sums events across partitions at the barrier
        // — a per-partition check would let k partitions run to k times
        // the budget.
        assert!(
            total <= max_events,
            "simulation exceeded {max_events} events across {k} partitions — runaway?"
        );
        if t_min == u64::MAX || t_min > deadline.0 {
            return; // drained, or nothing left inside the deadline
        }
        // Conservative window: every frame generated anywhere from here on
        // is generated at ≥ t_min and arrives at ≥ t_min + L (L = minimum
        // cross-partition latency). The bound must use the *global* min —
        // not the min over other partitions — because our own sends can
        // come back to us through a relay partition (A→B→A takes 2L, but
        // B's forward is generated at ≥ t_min + L and could target any
        // partition, including one whose own queue looked idle).
        let horizon = t_min
            .saturating_add(lookahead_ns)
            .min(deadline.0.saturating_add(1));
        part.process_window(me as u32, part_of, horizon, max_events);
        flush_outboxes(part, sync);
    }
}

/// A discrete-event network simulator.
///
/// Typical lifecycle: construct with a seed, [`add_node`](Self::add_node)
/// devices, [`connect`](Self::connect) them, [`run`](Self::run), then read
/// results back out of the nodes with [`node_ref`](Self::node_ref) and out
/// of [`node_stats`](Self::node_stats)/[`link_stats`](Self::link_stats).
///
/// ```
/// use daiet_netsim::{Fabric, Frame, LinkSpec, Node, PortId, SimTime, Simulator};
///
/// /// Counts every frame it receives.
/// #[derive(Default)]
/// struct Sink(usize);
/// impl Node for Sink {
///     fn on_packet(&mut self, _ctx: &mut dyn Fabric, _port: PortId, _frame: Frame) {
///         self.0 += 1;
///     }
/// }
///
/// let mut sim = Simulator::new(42);
/// let sink = sim.add_node(Box::new(Sink::default()));
/// // Frames can be injected without links (unit-test style)…
/// sim.inject(SimTime(10), sink, PortId(0), Frame::from_slice(b"hello"));
/// sim.inject(SimTime(20), sink, PortId(0), Frame::from_slice(b"world"));
/// let end = sim.run();
/// assert_eq!(end, SimTime(20));
/// assert_eq!(sim.node_ref::<Sink>(sink).unwrap().0, 2);
/// assert_eq!(sim.node_stats(sink).frames_in, 2);
/// ```
///
/// [`with_partitions`](Self::with_partitions) shards the same simulation
/// across worker threads with bit-identical results (module docs).
pub struct Simulator {
    seed: u64,
    map: PartitionMap,
    parts: Vec<Partition>,
    /// node id → owning partition, for every node added so far.
    part_of: Vec<u32>,
    now: SimTime,
    started: bool,
    /// Safety valve against runaway simulations; `run` panics past this
    /// (summed across partitions).
    pub max_events: u64,
}

impl Simulator {
    /// Creates an empty single-threaded simulator; all randomness derives
    /// from `seed`.
    pub fn new(seed: u64) -> Simulator {
        Simulator::with_partitions(seed, PartitionMap::single())
    }

    /// Creates an empty simulator sharded by `map`: each partition gets
    /// its own event heap, frame pool, stats table and (during runs)
    /// worker thread. Results are bit-identical to [`Simulator::new`] with
    /// the same seed — partitioning is an execution strategy, not a model
    /// change.
    pub fn with_partitions(seed: u64, map: PartitionMap) -> Simulator {
        let k = map.parts();
        let parts = (0..k)
            .map(|_| Partition {
                nodes: Vec::new(),
                queue: EventQueue::new(),
                ports: PortTable::with_seed(seed),
                stats: StatsTable::default(),
                pool: FramePool::new(),
                node_rngs: Vec::new(),
                now: SimTime::ZERO,
                events_processed: 0,
                outboxes: (0..k).map(|_| Vec::new()).collect(),
                node_scripts: Vec::new(),
            })
            .collect();
        Simulator {
            seed,
            map,
            parts,
            part_of: Vec::new(),
            now: SimTime::ZERO,
            started: false,
            max_events: 2_000_000_000,
        }
    }

    /// Number of partitions (1 for [`Simulator::new`]).
    pub fn partition_count(&self) -> usize {
        self.parts.len()
    }

    /// Registers a node, returning its id. Ids are dense and start at 0.
    pub fn add_node(&mut self, node: Box<dyn Node>) -> NodeId {
        let id = NodeId(self.part_of.len());
        let owner = self.map.part_of(id.0);
        let rng_seed = stream_seed(self.seed, [STREAM_NODE_RNG, id.0 as u64, 0, 0]);
        for part in &mut self.parts {
            part.nodes.push(None);
            part.node_rngs.push(SmallRng::seed_from_u64(rng_seed));
        }
        self.parts[owner as usize].nodes[id.0] = Some(node);
        self.part_of.push(owner);
        id
    }

    /// Connects two nodes with a link, assigning the next free port on
    /// each side; returns `(port on a, port on b)`. Every partition
    /// mirrors the wiring (identical link indices and fault streams);
    /// only the partition owning a direction's transmitter ever uses it.
    pub fn connect(&mut self, a: NodeId, b: NodeId, spec: LinkSpec) -> (PortId, PortId) {
        assert!(a.0 < self.part_of.len() && b.0 < self.part_of.len(), "connect before add_node");
        assert_ne!(a, b, "self-links are not supported");
        let mut result = None;
        for part in &mut self.parts {
            let r = part.ports.connect(a, b, spec);
            debug_assert!(result.is_none() || result == Some(r), "partition wiring diverged");
            result = Some(r);
        }
        result.expect("at least one partition")
    }

    /// The peer `(node, port)` across the link attached at `(node, port)`.
    pub fn peer(&self, node: NodeId, port: PortId) -> Option<(NodeId, PortId)> {
        self.parts[0].ports.peer(node, port)
    }

    /// Current simulated time (the furthest any partition has reached;
    /// all partitions agree at run boundaries).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The frame pool of partition 0. Single-partition callers (the
    /// common case) use this to build pooled frames outside node
    /// callbacks; partitioned harnesses must use
    /// [`pool_for`](Self::pool_for) so preloaded frames live in the pool
    /// of the partition that will transmit them.
    pub fn pool(&self) -> &FramePool {
        &self.parts[0].pool
    }

    /// The frame pool of the partition owning `node` — frames preloaded
    /// into a node from outside callbacks must come from here, because
    /// pooled buffers are `Rc`-backed and strictly partition-local.
    pub fn pool_for(&self, node: NodeId) -> &FramePool {
        let owner = self.part_of.get(node.0).copied().unwrap_or(0);
        &self.parts[owner as usize].pool
    }

    /// The frame pool of partition `part`.
    pub fn partition_pool(&self, part: u32) -> &FramePool {
        &self.parts[part as usize].pool
    }

    /// Replaces the frame pool — pass [`FramePool::disabled`] to force
    /// every frame onto the global allocator (used by the determinism
    /// cross-check tests). Single-partition simulators only; partitioned
    /// ones must use [`set_frame_pool_for`](Self::set_frame_pool_for) per
    /// partition (one pool must never be shared across worker threads).
    pub fn set_frame_pool(&mut self, pool: FramePool) {
        assert_eq!(self.parts.len(), 1, "use set_frame_pool_for on a partitioned simulator");
        self.parts[0].pool = pool;
    }

    /// Replaces the frame pool of one partition.
    pub fn set_frame_pool_for(&mut self, part: usize, pool: FramePool) {
        self.parts[part].pool = pool;
    }

    /// Number of events processed so far, summed over partitions.
    pub fn events_processed(&self) -> u64 {
        self.parts.iter().map(|p| p.events_processed).sum()
    }

    /// Counters for `node`.
    pub fn node_stats(&self, node: NodeId) -> NodeStats {
        let mut total = NodeStats::default();
        for p in &self.parts {
            let s = p.stats.node(node);
            total.frames_in += s.frames_in;
            total.bytes_in += s.bytes_in;
            total.frames_out += s.frames_out;
            total.bytes_out += s.bytes_out;
            total.dead_drops += s.dead_drops;
        }
        total
    }

    /// Counters for link `idx` (links are numbered in connect order).
    pub fn link_stats(&self, idx: usize) -> LinkStats {
        let mut total = LinkStats::default();
        for p in &self.parts {
            let s = p.stats.link(idx);
            for d in 0..2 {
                let a = &mut total.dirs[d];
                let b = &s.dirs[d];
                a.tx_frames += b.tx_frames;
                a.tx_bytes += b.tx_bytes;
                a.drops_overflow += b.drops_overflow;
                a.drops_fault += b.drops_fault;
                a.corrupted += b.corrupted;
                a.duplicated += b.duplicated;
                a.reordered += b.reordered;
                a.ecn_marked += b.ecn_marked;
            }
        }
        total
    }

    /// Installs a deterministic per-frame fault script on one direction of
    /// link `idx` (`dir` 0 = the a→b direction of [`Simulator::connect`]).
    /// Each admitted frame consumes one decision; after the script runs
    /// out, the link reverts to its probabilistic
    /// [`FaultProfile`](crate::FaultProfile). The script lands in the
    /// partition owning the transmitting endpoint — the only place it can
    /// be consumed.
    pub fn script_link(&mut self, idx: usize, dir: usize, script: crate::LinkScript) {
        assert!(idx < self.link_count(), "script_link on unknown link {idx}");
        assert!(dir < 2, "link direction must be 0 or 1");
        let tx = self.parts[0].ports.transmitter(idx, dir);
        let owner = self.part_of[tx.0] as usize;
        self.parts[owner].ports.set_script(idx, dir, script);
    }

    /// Installs a scripted kill/revive schedule on `node` — the
    /// node-level sibling of [`script_link`](Self::script_link). At each
    /// scripted kill the node's [`Node::on_fail`] runs (volatile state is
    /// torn down); while down, every frame and timer addressed to the node
    /// is discarded (counted in [`NodeStats::dead_drops`]); at each revive
    /// [`Node::on_revive`] runs and traffic flows again. The transition
    /// events are keyed to the node's own source counter, so runs are
    /// bit-identical under any partitioning. Replaces any prior script;
    /// call before the first `run_until`.
    pub fn script_node(&mut self, node: NodeId, script: NodeScript) {
        assert!(node.0 < self.part_of.len(), "script_node before add_node");
        let owner = self.part_of[node.0] as usize;
        let part = &mut self.parts[owner];
        for (t, is_kill) in script.transitions() {
            let kind = if is_kill {
                EventKind::NodeFail { node }
            } else {
                EventKind::NodeRevive { node }
            };
            part.queue.push(t, node, kind);
        }
        if part.node_scripts.len() <= node.0 {
            part.node_scripts.resize_with(node.0 + 1, || None);
        }
        part.node_scripts[node.0] = Some(script);
    }

    /// Number of links created.
    pub fn link_count(&self) -> usize {
        self.parts[0].ports.link_count()
    }

    /// Borrows a node downcast to its concrete type.
    pub fn node_ref<T: Any>(&self, id: NodeId) -> Option<&T> {
        let owner = *self.part_of.get(id.0)? as usize;
        let node = self.parts[owner].nodes.get(id.0)?.as_deref()?;
        (node as &dyn Any).downcast_ref::<T>()
    }

    /// Mutably borrows a node downcast to its concrete type.
    pub fn node_mut<T: Any>(&mut self, id: NodeId) -> Option<&mut T> {
        let owner = *self.part_of.get(id.0)? as usize;
        let node = self.parts[owner].nodes.get_mut(id.0)?.as_deref_mut()?;
        (node as &mut dyn Any).downcast_mut::<T>()
    }

    /// Injects a frame delivery from outside the topology (useful in unit
    /// tests that exercise a single node without links). The event is
    /// attributed to the receiving node's own source counter, so the
    /// resulting ordering key is the same under any partitioning.
    pub fn inject(&mut self, at: SimTime, node: NodeId, port: PortId, frame: Frame) {
        let owner = self.part_of.get(node.0).copied().unwrap_or(0) as usize;
        let frame = if self.parts.len() > 1 {
            // Rc-backed frames are partition-local; re-home the bytes in
            // the owning partition's pool.
            self.parts[owner].pool.copy_from_slice(&frame)
        } else {
            frame
        };
        self.parts[owner].queue.push(at, node, EventKind::Deliver { node, port, frame });
    }

    /// Arms a timer on `node` from outside the topology — the external
    /// counterpart of [`Context::schedule`]. This is how a round-driven
    /// harness (e.g. `daiet::worker::IterativeRunner`) restarts a node
    /// whose internal timer chain ran dry at a round barrier: mutate the
    /// node via [`node_mut`](Self::node_mut), then schedule a wake-up.
    /// `at` must not lie in the simulator's past.
    pub fn schedule_timer(&mut self, at: SimTime, node: NodeId, token: u64) {
        assert!(at >= self.now, "timer scheduled in the past");
        let owner = self.part_of.get(node.0).copied().unwrap_or(0) as usize;
        self.parts[owner].queue.push(at, node, EventKind::Timer { node, token });
    }

    /// A copy of every per-node and per-link counter at this instant,
    /// merged across partitions (whose tables are disjoint — each counter
    /// is only ever written by its owner, so the merge is an element-wise
    /// sum and equals the single-threaded table exactly). Subtract two
    /// with [`crate::stats::StatsSnapshot::delta`] to read one round's
    /// traffic out of a long-running simulation; the snapshot remembers
    /// its partition count and `delta` refuses to mix different ones.
    pub fn snapshot(&self) -> StatsSnapshot {
        let mut snap = StatsSnapshot {
            nodes: vec![NodeStats::default(); self.part_of.len()],
            links: vec![LinkStats::default(); self.link_count()],
            partitions: self.parts.len(),
        };
        for p in &self.parts {
            p.stats.accumulate_into(&mut snap);
        }
        snap
    }

    /// Runs until the event queue drains; returns the final time.
    pub fn run(&mut self) -> SimTime {
        self.run_until(SimTime(u64::MAX))
    }

    /// Runs until every queue drains or the next event lies beyond
    /// `deadline`; returns the time reached.
    pub fn run_until(&mut self, deadline: SimTime) -> SimTime {
        if self.parts.len() == 1 {
            self.run_until_single(deadline)
        } else {
            self.run_until_parallel(deadline)
        }
    }

    /// The single-partition fast path: the classic in-thread event loop,
    /// no barriers, no byte copies.
    fn run_until_single(&mut self, deadline: SimTime) -> SimTime {
        let part = &mut self.parts[0];
        let part_of = self.part_of.as_slice();
        if !self.started {
            self.started = true;
            part.start_nodes(0, part_of);
        }
        let max_events = self.max_events;
        part.process_window(0, part_of, deadline.0.saturating_add(1), max_events);
        self.now = self.now.max(part.now);
        self.now
    }

    /// The parallel path: one worker thread per partition, synchronized
    /// with conservative-lookahead windows (module docs).
    fn run_until_parallel(&mut self, deadline: SimTime) -> SimTime {
        let lookahead_ns = match self.parts[0].ports.min_cross_latency(&self.part_of) {
            Some(d) => {
                assert!(
                    d.as_nanos() > 0,
                    "cross-partition links must have positive latency (zero lookahead cannot make progress)"
                );
                d.as_nanos()
            }
            // No link crosses a partition: every partition is independent
            // and may run straight to the deadline.
            None => u64::MAX,
        };
        let do_start = !self.started;
        self.started = true;
        let max_events = self.max_events;
        let sync = SyncState::new(self.parts.len());
        let part_of = self.part_of.as_slice();
        let parts = &mut self.parts;
        let panic_payload = std::thread::scope(|s| {
            let handles: Vec<_> = parts
                .iter_mut()
                .enumerate()
                .map(|(me, part)| {
                    let cell = PartCell(part);
                    let sync = &sync;
                    s.spawn(move || {
                        // Capture the whole `PartCell` (not just its field)
                        // so the closure is `Send`.
                        let cell = cell;
                        #[allow(unsafe_code)]
                        // Safety: see `PartCell` — exclusive handoff of one
                        // partition to exactly one thread for the scope.
                        let part = unsafe { &mut *cell.0 };
                        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                            run_worker(
                                part, me, sync, part_of, deadline, lookahead_ns, max_events,
                                do_start,
                            );
                        }));
                        if let Err(payload) = result {
                            // Unblock peers before propagating, or they
                            // wait forever for our barrier arrival.
                            sync.barrier.poison();
                            std::panic::resume_unwind(payload);
                        }
                    })
                })
                .collect();
            let mut first_panic = None;
            for h in handles {
                if let Err(payload) = h.join() {
                    first_panic.get_or_insert(payload);
                }
            }
            first_panic
        });
        if let Some(payload) = panic_payload {
            // Re-raise with the original payload so `should_panic`
            // expectations and error messages survive partitioning.
            std::panic::resume_unwind(payload);
        }
        self.now = self.parts.iter().map(|p| p.now).max().unwrap_or(self.now).max(self.now);
        self.now
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::Fabric;
    use crate::time::SimDuration;

    /// Sends `count` frames to port 0 on start, spaced by a timer.
    struct Blaster {
        count: usize,
        sent: usize,
        frame_len: usize,
    }

    impl Blaster {
        fn new(count: usize, frame_len: usize) -> Blaster {
            Blaster { count, sent: 0, frame_len }
        }
    }

    impl Node for Blaster {
        fn on_packet(&mut self, _ctx: &mut dyn Fabric, _port: PortId, _frame: Frame) {}
        fn on_start(&mut self, ctx: &mut dyn Fabric) {
            ctx.schedule(SimDuration::from_nanos(1), 0);
        }
        fn on_timer(&mut self, ctx: &mut dyn Fabric, _token: u64) {
            if self.sent < self.count {
                let mut buf = ctx.pool().buffer();
                buf.resize(self.frame_len, 0);
                let frame = ctx.pool().frame(buf);
                ctx.send(PortId(0), frame);
                self.sent += 1;
                ctx.schedule(SimDuration::from_micros(1), 0);
            }
        }
    }

    /// Records arrival times and first payload bytes.
    #[derive(Default)]
    struct Sink {
        arrivals: Vec<SimTime>,
    }

    impl Node for Sink {
        fn on_packet(&mut self, ctx: &mut dyn Fabric, _port: PortId, _frame: Frame) {
            self.arrivals.push(ctx.now());
        }
    }

    #[test]
    fn frames_flow_end_to_end() {
        let mut sim = Simulator::new(42);
        let src = sim.add_node(Box::new(Blaster::new(5, 500)));
        let dst = sim.add_node(Box::new(Sink::default()));
        sim.connect(src, dst, LinkSpec::fast());
        sim.run();
        let sink = sim.node_ref::<Sink>(dst).unwrap();
        assert_eq!(sink.arrivals.len(), 5);
        // Arrival times strictly increase.
        assert!(sink.arrivals.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(sim.node_stats(dst).frames_in, 5);
        assert_eq!(sim.node_stats(src).frames_out, 5);
        assert_eq!(sim.node_stats(src).bytes_out, 2500);
    }

    #[test]
    fn identical_seeds_reproduce_runs() {
        let run = |seed| {
            let mut sim = Simulator::new(seed);
            let src = sim.add_node(Box::new(Blaster::new(50, 700)));
            let dst = sim.add_node(Box::new(Sink::default()));
            sim.connect(
                src,
                dst,
                LinkSpec::fast().with_faults(crate::FaultProfile::loss(0.3)),
            );
            sim.run();
            sim.node_ref::<Sink>(dst).unwrap().arrivals.clone()
        };
        assert_eq!(run(1), run(1));
        assert_ne!(run(1), run(2), "different seeds should diverge under loss");
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let mut sim = Simulator::new(0);
        let src = sim.add_node(Box::new(Blaster::new(100, 100)));
        let dst = sim.add_node(Box::new(Sink::default()));
        sim.connect(src, dst, LinkSpec::fast());
        let reached = sim.run_until(SimTime(10_000)); // 10 us
        assert!(reached <= SimTime(10_000));
        let partial = sim.node_ref::<Sink>(dst).unwrap().arrivals.len();
        assert!(partial < 100, "deadline should cut the run short");
        sim.run();
        assert_eq!(sim.node_ref::<Sink>(dst).unwrap().arrivals.len(), 100);
    }

    #[test]
    fn inject_delivers_without_links() {
        let mut sim = Simulator::new(0);
        let dst = sim.add_node(Box::new(Sink::default()));
        sim.inject(SimTime(500), dst, PortId(0), Frame::from_slice(b"hi"));
        sim.run();
        assert_eq!(sim.node_ref::<Sink>(dst).unwrap().arrivals, vec![SimTime(500)]);
    }

    #[test]
    fn downcast_to_wrong_type_is_none() {
        let mut sim = Simulator::new(0);
        let dst = sim.add_node(Box::new(Sink::default()));
        assert!(sim.node_ref::<Blaster>(dst).is_none());
        assert!(sim.node_mut::<Sink>(dst).is_some());
    }

    #[test]
    #[should_panic(expected = "self-links")]
    fn self_link_panics() {
        let mut sim = Simulator::new(0);
        let n = sim.add_node(Box::new(Sink::default()));
        sim.connect(n, n, LinkSpec::fast());
    }

    /// The tie-break regression at the simulator level: two nodes whose
    /// timers are armed at the same instant in *different call orders*
    /// fire in node-id order either way, so their same-tick transmissions
    /// toward a shared sink arrive identically. (Insertion-order
    /// tie-breaking made the firing order follow the `schedule_timer`
    /// call order instead.)
    #[test]
    fn same_tick_firing_order_ignores_scheduling_order() {
        /// Sends one tagged frame when its timer fires.
        struct Tagged(u8);
        impl Node for Tagged {
            fn on_packet(&mut self, _ctx: &mut dyn Fabric, _port: PortId, _frame: Frame) {}
            fn on_timer(&mut self, ctx: &mut dyn Fabric, _token: u64) {
                ctx.send(PortId(0), Frame::from(vec![self.0; 64]));
            }
        }
        /// Records the first byte of each arrival.
        #[derive(Default)]
        struct TagSink(Vec<u8>);
        impl Node for TagSink {
            fn on_packet(&mut self, _ctx: &mut dyn Fabric, _port: PortId, frame: Frame) {
                self.0.push(frame[0]);
            }
        }
        let run = |swap: bool| {
            let mut sim = Simulator::new(3);
            let a = sim.add_node(Box::new(Tagged(b'a')));
            let b = sim.add_node(Box::new(Tagged(b'b')));
            let sink = sim.add_node(Box::new(TagSink::default()));
            sim.connect(a, sink, LinkSpec::fast());
            sim.connect(b, sink, LinkSpec::fast());
            let t = SimTime(1_000);
            if swap {
                sim.schedule_timer(t, b, 0);
                sim.schedule_timer(t, a, 0);
            } else {
                sim.schedule_timer(t, a, 0);
                sim.schedule_timer(t, b, 0);
            }
            sim.run();
            sim.node_ref::<TagSink>(sink).unwrap().0.clone()
        };
        let forward = run(false);
        let swapped = run(true);
        assert_eq!(forward, vec![b'a', b'b']);
        assert_eq!(forward, swapped, "delivery order depended on scheduling order");
    }

    /// Two flows with lossy links, run single-threaded and split across
    /// two partitions (both links crossing the boundary): arrivals,
    /// counters and event totals must be bit-identical.
    #[test]
    fn partitioned_run_is_bit_identical_to_single() {
        let run = |parts: usize, assign: Vec<u32>| {
            let mut sim = Simulator::with_partitions(9, PartitionMap::new(parts, assign));
            let lossy = LinkSpec::fast().with_faults(crate::FaultProfile::loss(0.2));
            let src0 = sim.add_node(Box::new(Blaster::new(30, 400)));
            let dst0 = sim.add_node(Box::new(Sink::default()));
            let src1 = sim.add_node(Box::new(Blaster::new(20, 200)));
            let dst1 = sim.add_node(Box::new(Sink::default()));
            sim.connect(src0, dst0, lossy);
            sim.connect(src1, dst1, lossy);
            sim.run();
            let snap = sim.snapshot();
            (
                sim.node_ref::<Sink>(dst0).unwrap().arrivals.clone(),
                sim.node_ref::<Sink>(dst1).unwrap().arrivals.clone(),
                snap.nodes,
                snap.links,
                sim.events_processed(),
                sim.now(),
            )
        };
        let single = run(1, vec![0, 0, 0, 0]);
        // Both links cross the boundary: src0→dst0 spans 0→1, src1→dst1
        // spans 1→0.
        let dual = run(2, vec![0, 1, 1, 0]);
        assert!(!single.0.is_empty() && single.0.len() < 30, "loss should be partial");
        assert_eq!(single, dual);
    }

    /// Counts arrivals and the fail/revive hook calls.
    #[derive(Default)]
    struct MortalSink {
        arrivals: Vec<SimTime>,
        failed: usize,
        revived: usize,
    }

    impl Node for MortalSink {
        fn on_packet(&mut self, ctx: &mut dyn Fabric, _port: PortId, _frame: Frame) {
            self.arrivals.push(ctx.now());
        }
        fn on_fail(&mut self) {
            self.failed += 1;
        }
        fn on_revive(&mut self, _ctx: &mut dyn Fabric) {
            self.revived += 1;
        }
    }

    /// A scripted node death drops every frame addressed to the node
    /// during `[kill, revive)`, fires the fail/revive hooks exactly once
    /// each, and produces bit-identical results under partitioning.
    #[test]
    fn scripted_node_death_drops_frames_then_revives() {
        let run = |parts: usize, assign: Vec<u32>| {
            let mut sim = Simulator::with_partitions(11, PartitionMap::new(parts, assign));
            // Blaster sends at t = 1, 1001, 2001, … ns; each 100-byte
            // frame arrives 1080 ns after its send (80 ns serialization +
            // 1 µs propagation): arrivals at 1081 + k·1000.
            let src = sim.add_node(Box::new(Blaster::new(10, 100)));
            let dst = sim.add_node(Box::new(MortalSink::default()));
            sim.connect(src, dst, LinkSpec::fast());
            sim.script_node(
                dst,
                crate::NodeScript::down_between(SimTime(3_000), SimTime(6_000)),
            );
            sim.run();
            let sink = sim.node_ref::<MortalSink>(dst).unwrap();
            (sink.arrivals.clone(), sink.failed, sink.revived, sim.node_stats(dst))
        };
        let (arrivals, failed, revived, stats) = run(1, vec![0, 0]);
        // Arrivals at 3081, 4081, 5081 fall inside the down window.
        assert_eq!(arrivals.len(), 7);
        assert!(arrivals.iter().all(|t| t.0 < 3_000 || t.0 >= 6_000));
        assert_eq!((failed, revived), (1, 1));
        assert_eq!(stats.dead_drops, 3);
        assert_eq!(stats.frames_in, 7);
        // Bit-identical when the link crosses a partition boundary.
        let dual = run(2, vec![0, 1]);
        assert_eq!(dual, (arrivals, failed, revived, stats));
    }

    /// Down intervals are half-open: an injected frame at exactly the
    /// kill instant dies; one at exactly the revive instant lives.
    #[test]
    fn node_down_window_boundaries_are_kill_inclusive_revive_exclusive() {
        let mut sim = Simulator::new(0);
        let dst = sim.add_node(Box::new(MortalSink::default()));
        sim.script_node(dst, crate::NodeScript::down_between(SimTime(100), SimTime(200)));
        for t in [99, 100, 199, 200] {
            sim.inject(SimTime(t), dst, PortId(0), Frame::from_slice(b"x"));
        }
        sim.run();
        let sink = sim.node_ref::<MortalSink>(dst).unwrap();
        assert_eq!(sink.arrivals, vec![SimTime(99), SimTime(200)]);
        assert_eq!(sim.node_stats(dst).dead_drops, 2);
    }

    /// A permanent kill (no revive) silences the node for good, and
    /// pending timers die with it.
    #[test]
    fn permanent_kill_silences_timers_too() {
        /// Re-arms its own timer forever; counts firings.
        struct Ticker(usize);
        impl Node for Ticker {
            fn on_packet(&mut self, _ctx: &mut dyn Fabric, _port: PortId, _frame: Frame) {}
            fn on_start(&mut self, ctx: &mut dyn Fabric) {
                ctx.schedule(SimDuration::from_nanos(10), 0);
            }
            fn on_timer(&mut self, ctx: &mut dyn Fabric, _token: u64) {
                self.0 += 1;
                ctx.schedule(SimDuration::from_nanos(10), 0);
            }
        }
        let mut sim = Simulator::new(0);
        let t = sim.add_node(Box::new(Ticker(0)));
        sim.script_node(t, crate::NodeScript::kill_at(SimTime(55)));
        sim.run(); // would never drain without the kill
        // Fires at 10, 20, 30, 40, 50; the tick armed for 60 dies.
        assert_eq!(sim.node_ref::<Ticker>(t).unwrap().0, 5);
    }

    /// The runaway valve fires on the *global* event count: two
    /// partitions may each stay under the budget while their sum exceeds
    /// it.
    #[test]
    #[should_panic(expected = "events across 2 partitions")]
    fn max_events_sums_across_partitions() {
        let mut sim = Simulator::with_partitions(1, PartitionMap::new(2, vec![0, 0, 1, 1]));
        let src0 = sim.add_node(Box::new(Blaster::new(60, 64)));
        let dst0 = sim.add_node(Box::new(Sink::default()));
        let src1 = sim.add_node(Box::new(Blaster::new(60, 64)));
        let dst1 = sim.add_node(Box::new(Sink::default()));
        sim.connect(src0, dst0, LinkSpec::fast());
        sim.connect(src1, dst1, LinkSpec::fast());
        // Each flow costs ~121 events — under the budget per partition,
        // so only the summed check at the barrier can catch the total
        // (~242) blowing through it.
        sim.max_events = 150;
        sim.run();
    }
}
