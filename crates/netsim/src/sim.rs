//! The simulator: owns nodes, links, the event queue and the clock, and
//! runs the event loop to completion.

use crate::event::{EventKind, EventQueue};
use crate::frame::{Frame, FramePool};
use crate::link::{LinkSpec, PortTable};
use crate::node::{Context, Node, NodeId, PortId};
use crate::stats::{LinkStats, NodeStats, StatsTable};
use crate::time::SimTime;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::any::Any;

/// A discrete-event network simulator.
///
/// Typical lifecycle: construct with a seed, [`add_node`](Self::add_node)
/// devices, [`connect`](Self::connect) them, [`run`](Self::run), then read
/// results back out of the nodes with [`node_ref`](Self::node_ref) and out
/// of [`node_stats`](Self::node_stats)/[`link_stats`](Self::link_stats).
///
/// ```
/// use daiet_netsim::{Context, Frame, LinkSpec, Node, PortId, SimTime, Simulator};
///
/// /// Counts every frame it receives.
/// #[derive(Default)]
/// struct Sink(usize);
/// impl Node for Sink {
///     fn on_packet(&mut self, _ctx: &mut Context<'_>, _port: PortId, _frame: Frame) {
///         self.0 += 1;
///     }
/// }
///
/// let mut sim = Simulator::new(42);
/// let sink = sim.add_node(Box::new(Sink::default()));
/// // Frames can be injected without links (unit-test style)…
/// sim.inject(SimTime(10), sink, PortId(0), Frame::from_slice(b"hello"));
/// sim.inject(SimTime(20), sink, PortId(0), Frame::from_slice(b"world"));
/// let end = sim.run();
/// assert_eq!(end, SimTime(20));
/// assert_eq!(sim.node_ref::<Sink>(sink).unwrap().0, 2);
/// assert_eq!(sim.node_stats(sink).frames_in, 2);
/// ```
pub struct Simulator {
    nodes: Vec<Option<Box<dyn Node>>>,
    queue: EventQueue,
    ports: PortTable,
    stats: StatsTable,
    rng: SmallRng,
    pool: FramePool,
    now: SimTime,
    started: bool,
    events_processed: u64,
    /// Safety valve against runaway simulations; `run` panics past this.
    pub max_events: u64,
}

impl Simulator {
    /// Creates an empty simulator; all randomness derives from `seed`.
    pub fn new(seed: u64) -> Simulator {
        Simulator {
            nodes: Vec::new(),
            queue: EventQueue::new(),
            ports: PortTable::default(),
            stats: StatsTable::default(),
            rng: SmallRng::seed_from_u64(seed),
            pool: FramePool::new(),
            now: SimTime::ZERO,
            started: false,
            events_processed: 0,
            max_events: 2_000_000_000,
        }
    }

    /// Registers a node, returning its id. Ids are dense and start at 0.
    pub fn add_node(&mut self, node: Box<dyn Node>) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.nodes.push(Some(node));
        id
    }

    /// Connects two nodes with a link, assigning the next free port on
    /// each side; returns `(port on a, port on b)`.
    pub fn connect(&mut self, a: NodeId, b: NodeId, spec: LinkSpec) -> (PortId, PortId) {
        assert!(a.0 < self.nodes.len() && b.0 < self.nodes.len(), "connect before add_node");
        assert_ne!(a, b, "self-links are not supported");
        self.ports.connect(a, b, spec)
    }

    /// The peer `(node, port)` across the link attached at `(node, port)`.
    pub fn peer(&self, node: NodeId, port: PortId) -> Option<(NodeId, PortId)> {
        self.ports.peer(node, port)
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The simulation's frame pool. Clone the handle to build pooled
    /// frames outside node callbacks (e.g. preloading sender queues).
    pub fn pool(&self) -> &FramePool {
        &self.pool
    }

    /// Replaces the frame pool — pass [`FramePool::disabled`] to force
    /// every frame onto the global allocator (used by the determinism
    /// cross-check tests).
    pub fn set_frame_pool(&mut self, pool: FramePool) {
        self.pool = pool;
    }

    /// Number of events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Counters for `node`.
    pub fn node_stats(&self, node: NodeId) -> NodeStats {
        self.stats.node(node)
    }

    /// Counters for link `idx` (links are numbered in connect order).
    pub fn link_stats(&self, idx: usize) -> LinkStats {
        self.stats.link(idx)
    }

    /// Installs a deterministic per-frame fault script on one direction of
    /// link `idx` (`dir` 0 = the a→b direction of [`Simulator::connect`]).
    /// Each admitted frame consumes one decision; after the script runs
    /// out, the link reverts to its probabilistic
    /// [`FaultProfile`](crate::FaultProfile).
    pub fn script_link(&mut self, idx: usize, dir: usize, script: crate::LinkScript) {
        assert!(idx < self.ports.link_count(), "script_link on unknown link {idx}");
        assert!(dir < 2, "link direction must be 0 or 1");
        self.ports.set_script(idx, dir, script);
    }

    /// Number of links created.
    pub fn link_count(&self) -> usize {
        self.ports.link_count()
    }

    /// Borrows a node downcast to its concrete type.
    pub fn node_ref<T: Any>(&self, id: NodeId) -> Option<&T> {
        let node = self.nodes.get(id.0)?.as_deref()?;
        (node as &dyn Any).downcast_ref::<T>()
    }

    /// Mutably borrows a node downcast to its concrete type.
    pub fn node_mut<T: Any>(&mut self, id: NodeId) -> Option<&mut T> {
        let node = self.nodes.get_mut(id.0)?.as_deref_mut()?;
        (node as &mut dyn Any).downcast_mut::<T>()
    }

    /// Injects a frame delivery from outside the topology (useful in unit
    /// tests that exercise a single node without links).
    pub fn inject(&mut self, at: SimTime, node: NodeId, port: PortId, frame: Frame) {
        self.queue.push(at, EventKind::Deliver { node, port, frame });
    }

    /// Arms a timer on `node` from outside the topology — the external
    /// counterpart of [`Context::schedule`]. This is how a round-driven
    /// harness (e.g. `daiet::worker::IterativeRunner`) restarts a node
    /// whose internal timer chain ran dry at a round barrier: mutate the
    /// node via [`node_mut`](Self::node_mut), then schedule a wake-up.
    /// `at` must not lie in the simulator's past.
    pub fn schedule_timer(&mut self, at: SimTime, node: NodeId, token: u64) {
        assert!(at >= self.now, "timer scheduled in the past");
        self.queue.push(at, EventKind::Timer { node, token });
    }

    /// A copy of every per-node and per-link counter at this instant —
    /// subtract two with [`crate::stats::StatsSnapshot::delta`] to read
    /// one round's traffic out of a long-running simulation (counters
    /// themselves are cumulative for the simulator's whole life).
    pub fn snapshot(&self) -> crate::stats::StatsSnapshot {
        self.stats.snapshot(self.nodes.len(), self.ports.link_count())
    }

    fn dispatch<F>(&mut self, node_id: NodeId, f: F)
    where
        F: FnOnce(&mut dyn Node, &mut Context<'_>),
    {
        // Temporarily take the node out of its slot so it can borrow both
        // itself and the world.
        let mut node = match self.nodes.get_mut(node_id.0).and_then(Option::take) {
            Some(n) => n,
            None => return, // node removed or unknown: drop the event
        };
        {
            let mut ctx = Context {
                node: node_id,
                now: self.now,
                queue: &mut self.queue,
                ports: &mut self.ports,
                stats: &mut self.stats,
                rng: &mut self.rng,
                pool: &self.pool,
            };
            f(node.as_mut(), &mut ctx);
        }
        self.nodes[node_id.0] = Some(node);
    }

    fn start_nodes(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        for i in 0..self.nodes.len() {
            self.dispatch(NodeId(i), |node, ctx| node.on_start(ctx));
        }
    }

    /// Runs until the event queue drains; returns the final time.
    pub fn run(&mut self) -> SimTime {
        self.run_until(SimTime(u64::MAX))
    }

    /// Runs until the queue drains or the next event lies beyond
    /// `deadline`; returns the time reached.
    ///
    /// Events sharing one instant are drained as a batch: the deadline is
    /// checked once per instant, and zero-delay events scheduled while the
    /// batch runs join it through the queue's same-tick fast path.
    pub fn run_until(&mut self, deadline: SimTime) -> SimTime {
        self.start_nodes();
        while let Some(t) = self.queue.peek_time() {
            if t > deadline {
                break;
            }
            debug_assert!(t >= self.now, "time went backwards");
            self.now = t;
            while let Some(ev) = self.queue.pop_at(t) {
                self.events_processed += 1;
                assert!(
                    self.events_processed <= self.max_events,
                    "simulation exceeded {} events — runaway?",
                    self.max_events
                );
                match ev.kind {
                    EventKind::Deliver { node, port, frame } => {
                        self.stats.node_received(node, frame.len());
                        self.dispatch(node, |n, ctx| n.on_packet(ctx, port, frame));
                    }
                    EventKind::Timer { node, token } => {
                        self.dispatch(node, |n, ctx| n.on_timer(ctx, token));
                    }
                    EventKind::TxDone { link, dir, bytes } => {
                        self.ports.tx_done(link, dir, bytes);
                    }
                }
            }
        }
        self.now
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    /// Sends `count` frames to port 0 on start, spaced by a timer.
    struct Blaster {
        count: usize,
        sent: usize,
        frame_len: usize,
    }

    impl Node for Blaster {
        fn on_packet(&mut self, _ctx: &mut Context<'_>, _port: PortId, _frame: Frame) {}
        fn on_start(&mut self, ctx: &mut Context<'_>) {
            ctx.schedule(SimDuration::from_nanos(1), 0);
        }
        fn on_timer(&mut self, ctx: &mut Context<'_>, _token: u64) {
            if self.sent < self.count {
                let mut buf = ctx.pool().buffer();
                buf.resize(self.frame_len, 0);
                let frame = ctx.pool().frame(buf);
                ctx.send(PortId(0), frame);
                self.sent += 1;
                ctx.schedule(SimDuration::from_micros(1), 0);
            }
        }
    }

    /// Records arrival times.
    #[derive(Default)]
    struct Sink {
        arrivals: Vec<SimTime>,
    }

    impl Node for Sink {
        fn on_packet(&mut self, ctx: &mut Context<'_>, _port: PortId, _frame: Frame) {
            self.arrivals.push(ctx.now());
        }
    }

    #[test]
    fn frames_flow_end_to_end() {
        let mut sim = Simulator::new(42);
        let src = sim.add_node(Box::new(Blaster { count: 5, sent: 0, frame_len: 500 }));
        let dst = sim.add_node(Box::new(Sink::default()));
        sim.connect(src, dst, LinkSpec::fast());
        sim.run();
        let sink = sim.node_ref::<Sink>(dst).unwrap();
        assert_eq!(sink.arrivals.len(), 5);
        // Arrival times strictly increase.
        assert!(sink.arrivals.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(sim.node_stats(dst).frames_in, 5);
        assert_eq!(sim.node_stats(src).frames_out, 5);
        assert_eq!(sim.node_stats(src).bytes_out, 2500);
    }

    #[test]
    fn identical_seeds_reproduce_runs() {
        let run = |seed| {
            let mut sim = Simulator::new(seed);
            let src = sim.add_node(Box::new(Blaster { count: 50, sent: 0, frame_len: 700 }));
            let dst = sim.add_node(Box::new(Sink::default()));
            sim.connect(
                src,
                dst,
                LinkSpec::fast().with_faults(crate::FaultProfile::loss(0.3)),
            );
            sim.run();
            sim.node_ref::<Sink>(dst).unwrap().arrivals.clone()
        };
        assert_eq!(run(1), run(1));
        assert_ne!(run(1), run(2), "different seeds should diverge under loss");
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let mut sim = Simulator::new(0);
        let src = sim.add_node(Box::new(Blaster { count: 100, sent: 0, frame_len: 100 }));
        let dst = sim.add_node(Box::new(Sink::default()));
        sim.connect(src, dst, LinkSpec::fast());
        let reached = sim.run_until(SimTime(10_000)); // 10 us
        assert!(reached <= SimTime(10_000));
        let partial = sim.node_ref::<Sink>(dst).unwrap().arrivals.len();
        assert!(partial < 100, "deadline should cut the run short");
        sim.run();
        assert_eq!(sim.node_ref::<Sink>(dst).unwrap().arrivals.len(), 100);
    }

    #[test]
    fn inject_delivers_without_links() {
        let mut sim = Simulator::new(0);
        let dst = sim.add_node(Box::new(Sink::default()));
        sim.inject(SimTime(500), dst, PortId(0), Frame::from_slice(b"hi"));
        sim.run();
        assert_eq!(sim.node_ref::<Sink>(dst).unwrap().arrivals, vec![SimTime(500)]);
    }

    #[test]
    fn downcast_to_wrong_type_is_none() {
        let mut sim = Simulator::new(0);
        let dst = sim.add_node(Box::new(Sink::default()));
        assert!(sim.node_ref::<Blaster>(dst).is_none());
        assert!(sim.node_mut::<Sink>(dst).is_some());
    }

    #[test]
    #[should_panic(expected = "self-links")]
    fn self_link_panics() {
        let mut sim = Simulator::new(0);
        let n = sim.add_node(Box::new(Sink::default()));
        sim.connect(n, n, LinkSpec::fast());
    }
}
