//! The event queue: an index-based binary heap ordered by the explicit
//! deterministic key `(time, source node, per-source sequence)`.
//!
//! # The ordering key
//!
//! Same-tick ordering used to lean on a *global* insertion sequence —
//! whichever event happened to be pushed first fired first. That is
//! well-defined only while a single event loop performs every push: the
//! moment the simulator is partitioned across worker threads there is no
//! global push order, and "insertion order" becomes a race. The key is
//! therefore explicit and partition-independent:
//!
//! 1. **time** — the firing instant;
//! 2. **source node id** — the node whose callback scheduled the event
//!    (the transmitter for `Deliver`/`TxDone`, the owner for `Timer`);
//! 3. **per-source sequence** — a counter private to that source,
//!    incremented on every event it schedules.
//!
//! Each node's callbacks execute in the same order under any
//! partitioning (a partition executes the restriction of the key-sorted
//! global order), so each node assigns the same sequence numbers to the
//! same events — the key is reproducible no matter how the topology is
//! sharded, which is what makes partitioned runs bit-identical to
//! single-threaded ones (`tests/partition_properties.rs` pins this).
//!
//! Causality makes the key safe to execute in sorted order: an event
//! pushed from inside node `s`'s callback at time `t` carries source `s`
//! and a fresh (strictly larger) sequence number, so its key is strictly
//! greater than the key currently executing — the sorted order can never
//! be violated retroactively.
//!
//! # Layout
//!
//! Event payloads ([`EventKind`]) live in a slab (`Vec<Option<EventKind>>`
//! with a free list) and never move after insertion; the heap itself holds
//! only 24-byte `(time, src, seq, slot)` entries, so every sift-up/down
//! moves a small POD instead of a payload carrying a [`Frame`]. Slab slots
//! are recycled, so a steady-state simulation stops allocating entirely.

use crate::frame::Frame;
use crate::node::{NodeId, PortId};
use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// What happens when an event fires.
#[derive(Debug, Clone)]
pub enum EventKind {
    /// A frame finishes propagation and is delivered to a node's port.
    Deliver {
        /// Receiving node.
        node: NodeId,
        /// Ingress port on that node.
        port: PortId,
        /// The frame (shared, pooled — see [`crate::FramePool`]).
        frame: Frame,
    },
    /// A node timer fires.
    Timer {
        /// The owning node.
        node: NodeId,
        /// Opaque token the node passed to `schedule`.
        token: u64,
    },
    /// A link transmitter finishes serializing a frame (frees queue space).
    TxDone {
        /// Index into the simulator's link table.
        link: usize,
        /// Direction within the link (0 = a→b, 1 = b→a).
        dir: usize,
        /// Size of the frame leaving the queue.
        bytes: usize,
    },
    /// A scripted node failure fires: the node's volatile state is torn
    /// down ([`crate::Node::on_fail`]) and deliveries/timers addressed to
    /// it are dropped until it revives (see
    /// [`crate::Simulator::script_node`]).
    NodeFail {
        /// The failing node.
        node: NodeId,
    },
    /// A scripted node revival fires: the node comes back cold
    /// ([`crate::Node::on_revive`]) and receives traffic again.
    NodeRevive {
        /// The reviving node.
        node: NodeId,
    },
}

/// A scheduled event, as returned by [`EventQueue::pop`].
#[derive(Debug, Clone)]
pub struct Event {
    /// Firing time.
    pub time: SimTime,
    /// The node whose callback scheduled this event.
    pub src: NodeId,
    /// Per-source sequence; third component of the ordering key.
    pub seq: u64,
    /// Payload.
    pub kind: EventKind,
}

/// A frame delivery crossing a partition boundary: only plain bytes cross
/// threads (pooled `Rc` frames stay partition-local — see the `frame`
/// module docs). Carries the full ordering key assigned by the sending
/// partition so the receiving partition's heap merges it exactly where a
/// single-threaded run would have placed it.
#[derive(Debug)]
pub(crate) struct RemoteEvent {
    /// Arrival time at the receiving node.
    pub time: SimTime,
    /// The transmitting node (ordering-key source).
    pub src: NodeId,
    /// The sequence the source's partition allocated for this delivery.
    pub seq: u64,
    /// Receiving node.
    pub node: NodeId,
    /// Ingress port on the receiving node.
    pub port: PortId,
    /// The frame's wire bytes, copied out of the source partition's pool.
    pub bytes: Vec<u8>,
}

/// A heap entry: ordering key plus the slab slot of its payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct HeapEntry {
    time: SimTime,
    seq: u64,
    src: u32,
    slot: u32,
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the smallest key pops first.
        (other.time, other.src, other.seq).cmp(&(self.time, self.src, self.seq))
    }
}

/// A deterministic priority queue of events, ordered by
/// `(time, source node, per-source seq)` — see the module docs for why
/// this key (and not insertion order) is the tie-breaking rule.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<HeapEntry>,
    /// Payload slab; `heap` indexes into it.
    slots: Vec<Option<EventKind>>,
    /// Recycled slab indices.
    free: Vec<u32>,
    /// The instant of the most recently popped event — the queue's notion
    /// of "now"; pushes at or before it are clamped to it.
    now: SimTime,
    /// Per-source sequence counters, indexed by source node id.
    next_seq: Vec<u64>,
}

impl EventQueue {
    /// An empty queue.
    pub fn new() -> EventQueue {
        EventQueue::default()
    }

    fn store(&mut self, kind: EventKind) -> u32 {
        match self.free.pop() {
            Some(slot) => {
                self.slots[slot as usize] = Some(kind);
                slot
            }
            None => {
                self.slots.push(Some(kind));
                (self.slots.len() - 1) as u32
            }
        }
    }

    /// Allocates the next sequence number for `src` — the counter every
    /// event scheduled by `src` consumes, whether it lands in this heap or
    /// (as a [`RemoteEvent`]) in another partition's. Keeping remote
    /// deliveries on the *same* counter is what makes the key identical to
    /// the one a single-threaded run would have assigned.
    pub(crate) fn alloc_seq(&mut self, src: NodeId) -> u64 {
        if src.0 >= self.next_seq.len() {
            self.next_seq.resize(src.0 + 1, 0);
        }
        let seq = self.next_seq[src.0];
        self.next_seq[src.0] = seq + 1;
        seq
    }

    /// Schedules `kind` at absolute time `time`, sourced by `src` (the
    /// node whose callback is doing the scheduling). A `time` at or before
    /// the current instant fires at the current instant; its place among
    /// other events of that instant follows the `(source, seq)` key, not
    /// push order.
    pub fn push(&mut self, time: SimTime, src: NodeId, kind: EventKind) {
        let seq = self.alloc_seq(src);
        self.push_keyed(time, src, seq, kind);
    }

    /// Schedules `kind` under an externally allocated key — used when a
    /// remote partition already assigned the `(src, seq)` pair.
    pub(crate) fn push_keyed(&mut self, time: SimTime, src: NodeId, seq: u64, kind: EventKind) {
        let time = time.max(self.now);
        let slot = self.store(kind);
        self.heap.push(HeapEntry { time, seq, src: src.0 as u32, slot });
    }

    fn take(&mut self, slot: u32) -> EventKind {
        let kind = self.slots[slot as usize].take().expect("slot occupied");
        self.free.push(slot);
        kind
    }

    /// Pops the earliest event, if any, in strict
    /// `(time, source, seq)` order.
    pub fn pop(&mut self) -> Option<Event> {
        let entry = self.heap.pop()?;
        debug_assert!(entry.time >= self.now, "time went backwards");
        self.now = entry.time;
        let kind = self.take(entry.slot);
        Some(Event {
            time: entry.time,
            src: NodeId(entry.src as usize),
            seq: entry.seq,
            kind,
        })
    }

    /// Pops the next event only if it fires exactly at `time` (the batch
    /// primitive the simulator's inner per-instant loop uses).
    pub fn pop_at(&mut self, time: SimTime) -> Option<Event> {
        if self.heap.peek().map(|e| e.time) == Some(time) {
            self.pop()
        } else {
            None
        }
    }

    /// Time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timer(node: usize, token: u64) -> EventKind {
        EventKind::Timer { node: NodeId(node), token }
    }

    fn token_of(ev: &Event) -> u64 {
        match ev.kind {
            EventKind::Timer { token, .. } => token,
            _ => unreachable!(),
        }
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime(30), NodeId(0), timer(0, 3));
        q.push(SimTime(10), NodeId(0), timer(0, 1));
        q.push(SimTime(20), NodeId(0), timer(0, 2));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|e| token_of(&e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_by_source_then_per_source_seq() {
        let mut q = EventQueue::new();
        // Interleaved pushes from three sources at one instant: the pop
        // order must follow (src, per-src seq), not push order.
        q.push(SimTime(42), NodeId(2), timer(2, 20));
        q.push(SimTime(42), NodeId(0), timer(0, 0));
        q.push(SimTime(42), NodeId(1), timer(1, 10));
        q.push(SimTime(42), NodeId(0), timer(0, 1));
        q.push(SimTime(42), NodeId(2), timer(2, 21));
        q.push(SimTime(42), NodeId(1), timer(1, 11));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|e| token_of(&e)).collect();
        assert_eq!(order, vec![0, 1, 10, 11, 20, 21]);
    }

    /// The partitioning regression: two queues receiving the same events
    /// in *different push orders* (as different partition interleavings
    /// would produce) pop identically — the key is the push-order-free
    /// tie-break. Per-source relative order is preserved (a source's
    /// events are pushed in its own callback order under any scheduling).
    #[test]
    fn insertion_order_does_not_change_pop_order() {
        // Per-source streams: src3 → [a, b]; src1 → [c, d]; src0 → [e, f];
        // src2 → [g]. Any interleaving that keeps each source's own order
        // (as every partition scheduling does) must pop identically.
        let events: Vec<(usize, u64)> =
            vec![(3, 0), (1, 0), (1, 1), (0, 0), (2, 0), (3, 1), (0, 1)];
        let pop_all = |order: &[usize]| {
            let mut q = EventQueue::new();
            for &i in order {
                let (src, token) = events[i];
                q.push(SimTime(7), NodeId(src), timer(src, token));
            }
            std::iter::from_fn(move || q.pop())
                .map(|e| (e.src.0, token_of(&e)))
                .collect::<Vec<_>>()
        };
        // Two different interleavings of the same per-source streams.
        let a = pop_all(&[0, 1, 2, 3, 4, 5, 6]);
        let b = pop_all(&[1, 0, 3, 4, 2, 5, 6]);
        assert_eq!(a, b, "pop order depended on push order");
        assert_eq!(a, vec![(0, 0), (0, 1), (1, 0), (1, 1), (2, 0), (3, 0), (3, 1)]);
    }

    #[test]
    fn peek_time_tracks_minimum() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.push(SimTime(50), NodeId(0), timer(0, 0));
        q.push(SimTime(5), NodeId(0), timer(0, 1));
        assert_eq!(q.peek_time(), Some(SimTime(5)));
        assert_eq!(q.len(), 2);
        assert!(!q.is_empty());
    }

    #[test]
    fn past_pushes_clamp_to_the_current_instant() {
        let mut q = EventQueue::new();
        q.push(SimTime(10), NodeId(0), timer(0, 0));
        assert_eq!(token_of(&q.pop().unwrap()), 0); // now = 10
        q.push(SimTime(3), NodeId(0), timer(0, 1)); // in the past: fires now
        let ev = q.pop().unwrap();
        assert_eq!(ev.time, SimTime(10));
        assert_eq!(token_of(&ev), 1);
    }

    #[test]
    fn same_tick_pushes_merge_by_key_not_arrival() {
        let mut q = EventQueue::new();
        q.push(SimTime(10), NodeId(5), timer(5, 50));
        q.push(SimTime(10), NodeId(1), timer(1, 10));
        assert_eq!(token_of(&q.pop().unwrap()), 10); // now = 10, src 1 first
        // A same-tick push from a source *below* the pending one fires
        // before it — key order, not FIFO.
        q.push(SimTime(10), NodeId(2), timer(2, 20));
        assert_eq!(token_of(&q.pop().unwrap()), 20);
        assert_eq!(token_of(&q.pop().unwrap()), 50);
        assert!(q.pop().is_none());
    }

    #[test]
    fn pop_at_only_pops_matching_instant() {
        let mut q = EventQueue::new();
        q.push(SimTime(10), NodeId(0), timer(0, 0));
        q.push(SimTime(20), NodeId(0), timer(0, 1));
        assert!(q.pop_at(SimTime(5)).is_none());
        assert_eq!(token_of(&q.pop_at(SimTime(10)).unwrap()), 0);
        assert!(q.pop_at(SimTime(10)).is_none());
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn keyed_pushes_merge_exactly_where_local_ones_would() {
        let mut q = EventQueue::new();
        q.push(SimTime(10), NodeId(1), timer(1, 10)); // local: (10, 1, 0)
        q.push(SimTime(10), NodeId(3), timer(3, 30)); // local: (10, 3, 0)
        // A remote partition assigned (10, 2, 0) to this delivery.
        q.push_keyed(SimTime(10), NodeId(2), 0, timer(2, 20));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|e| token_of(&e)).collect();
        assert_eq!(order, vec![10, 20, 30]);
    }

    #[test]
    fn slab_slots_are_recycled() {
        let mut q = EventQueue::new();
        for round in 0..10 {
            for t in 0..100u64 {
                q.push(SimTime(round * 1000 + t + 1), NodeId(0), timer(0, t));
            }
            while q.pop().is_some() {}
        }
        assert!(q.slots.len() <= 100, "slab grew past peak occupancy: {}", q.slots.len());
    }
}
