//! The event queue: an index-based binary heap ordered by `(time,
//! sequence)` so that simultaneous events fire in insertion order, keeping
//! runs deterministic.
//!
//! # Layout
//!
//! Event payloads ([`EventKind`]) live in a slab (`Vec<Option<EventKind>>`
//! with a free list) and never move after insertion; the heap itself holds
//! only 24-byte `(time, seq, slot)` entries, so every sift-up/down moves a
//! small POD instead of a payload carrying a [`Frame`]. Slab slots are
//! recycled, so a steady-state simulation stops allocating entirely.
//!
//! # Same-tick batching
//!
//! Events scheduled *for the current instant* (zero-delay timers,
//! cut-through deliveries) bypass the heap and land in a FIFO ready
//! queue: `O(1)` push/pop instead of two `O(log n)` heap operations.
//! This is safe for determinism because every heap entry at the current
//! instant was necessarily pushed *earlier* (while `now` was still in the
//! future for it) and therefore carries a smaller sequence number than
//! any ready-queue entry; [`EventQueue::pop`] drains same-time heap
//! entries first, then the FIFO, which is exactly global `(time, seq)`
//! order. [`crate::Simulator::run_until`] additionally drains all events
//! of one instant in an inner batch, checking its deadline once per
//! instant rather than once per event.

use crate::frame::Frame;
use crate::node::{NodeId, PortId};
use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

/// What happens when an event fires.
#[derive(Debug, Clone)]
pub enum EventKind {
    /// A frame finishes propagation and is delivered to a node's port.
    Deliver {
        /// Receiving node.
        node: NodeId,
        /// Ingress port on that node.
        port: PortId,
        /// The frame (shared, pooled — see [`crate::FramePool`]).
        frame: Frame,
    },
    /// A node timer fires.
    Timer {
        /// The owning node.
        node: NodeId,
        /// Opaque token the node passed to `schedule`.
        token: u64,
    },
    /// A link transmitter finishes serializing a frame (frees queue space).
    TxDone {
        /// Index into the simulator's link table.
        link: usize,
        /// Direction within the link (0 = a→b, 1 = b→a).
        dir: usize,
        /// Size of the frame leaving the queue.
        bytes: usize,
    },
}

/// A scheduled event, as returned by [`EventQueue::pop`].
#[derive(Debug, Clone)]
pub struct Event {
    /// Firing time.
    pub time: SimTime,
    /// Global insertion sequence; breaks ties at equal `time`.
    pub seq: u64,
    /// Payload.
    pub kind: EventKind,
}

/// A heap entry: ordering key plus the slab slot of its payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct HeapEntry {
    time: SimTime,
    seq: u64,
    slot: u32,
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event pops first.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// A deterministic priority queue of events.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<HeapEntry>,
    /// Payload slab; `heap` and `ready` index into it.
    slots: Vec<Option<EventKind>>,
    /// Recycled slab indices.
    free: Vec<u32>,
    /// Same-tick FIFO: events pushed for the current instant.
    ready: VecDeque<(u64, u32)>,
    /// The instant of the most recently popped event — the queue's notion
    /// of "now", used to route same-tick pushes to `ready`.
    now: SimTime,
    next_seq: u64,
}

impl EventQueue {
    /// An empty queue.
    pub fn new() -> EventQueue {
        EventQueue::default()
    }

    fn store(&mut self, kind: EventKind) -> u32 {
        match self.free.pop() {
            Some(slot) => {
                self.slots[slot as usize] = Some(kind);
                slot
            }
            None => {
                self.slots.push(Some(kind));
                (self.slots.len() - 1) as u32
            }
        }
    }

    /// Schedules `kind` at absolute time `time`. A `time` at or before the
    /// current instant fires at the current instant, after everything
    /// already scheduled for it.
    pub fn push(&mut self, time: SimTime, kind: EventKind) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let slot = self.store(kind);
        if time <= self.now {
            self.ready.push_back((seq, slot));
        } else {
            self.heap.push(HeapEntry { time, seq, slot });
        }
    }

    fn take(&mut self, slot: u32) -> EventKind {
        let kind = self.slots[slot as usize].take().expect("slot occupied");
        self.free.push(slot);
        kind
    }

    /// Pops the earliest event, if any, in strict `(time, seq)` order.
    pub fn pop(&mut self) -> Option<Event> {
        // Heap entries at the current instant predate (seq-wise) anything
        // in the ready FIFO, so they go first.
        if let Some(&entry) = self.heap.peek() {
            if entry.time <= self.now || self.ready.is_empty() {
                self.heap.pop();
                debug_assert!(entry.time >= self.now, "time went backwards");
                self.now = entry.time;
                let kind = self.take(entry.slot);
                return Some(Event { time: entry.time, seq: entry.seq, kind });
            }
        }
        if let Some((seq, slot)) = self.ready.pop_front() {
            let kind = self.take(slot);
            return Some(Event { time: self.now, seq, kind });
        }
        None
    }

    /// Pops the next event only if it fires exactly at `time` (the batch
    /// primitive the simulator's inner per-instant loop uses).
    pub fn pop_at(&mut self, time: SimTime) -> Option<Event> {
        if self.peek_time() == Some(time) {
            self.pop()
        } else {
            None
        }
    }

    /// Time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        match (self.ready.is_empty(), self.heap.peek()) {
            (false, Some(entry)) => Some(entry.time.min(self.now)),
            (false, None) => Some(self.now),
            (true, Some(entry)) => Some(entry.time),
            (true, None) => None,
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len() + self.ready.len()
    }

    /// True when nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty() && self.ready.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timer(node: usize, token: u64) -> EventKind {
        EventKind::Timer { node: NodeId(node), token }
    }

    fn token_of(ev: Event) -> u64 {
        match ev.kind {
            EventKind::Timer { token, .. } => token,
            _ => unreachable!(),
        }
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime(30), timer(0, 3));
        q.push(SimTime(10), timer(0, 1));
        q.push(SimTime(20), timer(0, 2));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop()).map(token_of).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        for token in 0..100 {
            q.push(SimTime(42), timer(0, token));
        }
        let order: Vec<u64> = std::iter::from_fn(|| q.pop()).map(token_of).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_time_tracks_minimum() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.push(SimTime(50), timer(0, 0));
        q.push(SimTime(5), timer(0, 1));
        assert_eq!(q.peek_time(), Some(SimTime(5)));
        assert_eq!(q.len(), 2);
        assert!(!q.is_empty());
    }

    #[test]
    fn same_tick_pushes_fire_after_pending_heap_entries() {
        let mut q = EventQueue::new();
        q.push(SimTime(10), timer(0, 0));
        q.push(SimTime(10), timer(0, 1));
        // Pop the first event of t=10; the queue's "now" becomes 10.
        assert_eq!(token_of(q.pop().unwrap()), 0);
        // A zero-delay push lands in the ready FIFO…
        q.push(SimTime(10), timer(0, 2));
        // …but the remaining heap entry at t=10 has the smaller seq and
        // must fire first.
        assert_eq!(q.peek_time(), Some(SimTime(10)));
        assert_eq!(token_of(q.pop().unwrap()), 1);
        assert_eq!(token_of(q.pop().unwrap()), 2);
        assert!(q.pop().is_none());
    }

    #[test]
    fn ready_queue_preserves_fifo_and_interleaves_with_future() {
        let mut q = EventQueue::new();
        q.push(SimTime(5), timer(0, 0));
        assert_eq!(token_of(q.pop().unwrap()), 0); // now = 5
        q.push(SimTime(5), timer(0, 1));
        q.push(SimTime(7), timer(0, 2));
        q.push(SimTime(5), timer(0, 3));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop()).map(token_of).collect();
        assert_eq!(order, vec![1, 3, 2]);
    }

    #[test]
    fn pop_at_only_pops_matching_instant() {
        let mut q = EventQueue::new();
        q.push(SimTime(10), timer(0, 0));
        q.push(SimTime(20), timer(0, 1));
        assert!(q.pop_at(SimTime(5)).is_none());
        assert_eq!(token_of(q.pop_at(SimTime(10)).unwrap()), 0);
        assert!(q.pop_at(SimTime(10)).is_none());
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn slab_slots_are_recycled() {
        let mut q = EventQueue::new();
        for round in 0..10 {
            for t in 0..100u64 {
                q.push(SimTime(round * 1000 + t + 1), timer(0, t));
            }
            while q.pop().is_some() {}
        }
        assert!(q.slots.len() <= 100, "slab grew past peak occupancy: {}", q.slots.len());
    }
}
