//! The event queue: a binary heap ordered by `(time, sequence)` so that
//! simultaneous events fire in insertion order, keeping runs deterministic.

use crate::node::{NodeId, PortId};
use crate::time::SimTime;
use bytes::Bytes;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// What happens when an event fires.
#[derive(Debug, Clone)]
pub enum EventKind {
    /// A frame finishes propagation and is delivered to a node's port.
    Deliver {
        /// Receiving node.
        node: NodeId,
        /// Ingress port on that node.
        port: PortId,
        /// The frame bytes.
        frame: Bytes,
    },
    /// A node timer fires.
    Timer {
        /// The owning node.
        node: NodeId,
        /// Opaque token the node passed to `schedule`.
        token: u64,
    },
    /// A link transmitter finishes serializing a frame (frees queue space).
    TxDone {
        /// Index into the simulator's link table.
        link: usize,
        /// Direction within the link (0 = a→b, 1 = b→a).
        dir: usize,
        /// Size of the frame leaving the queue.
        bytes: usize,
    },
}

/// A scheduled event.
#[derive(Debug, Clone)]
pub struct Event {
    /// Firing time.
    pub time: SimTime,
    /// Global insertion sequence; breaks ties at equal `time`.
    pub seq: u64,
    /// Payload.
    pub kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Event {}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event pops first.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// A deterministic priority queue of events.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Event>,
    next_seq: u64,
}

impl EventQueue {
    /// An empty queue.
    pub fn new() -> EventQueue {
        EventQueue::default()
    }

    /// Schedules `kind` at absolute time `time`.
    pub fn push(&mut self, time: SimTime, kind: EventKind) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Event { time, seq, kind });
    }

    /// Pops the earliest event, if any.
    pub fn pop(&mut self) -> Option<Event> {
        self.heap.pop()
    }

    /// Time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timer(node: usize, token: u64) -> EventKind {
        EventKind::Timer { node: NodeId(node), token }
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime(30), timer(0, 3));
        q.push(SimTime(10), timer(0, 1));
        q.push(SimTime(20), timer(0, 2));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|e| match e.kind {
                EventKind::Timer { token, .. } => token,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        for token in 0..100 {
            q.push(SimTime(42), timer(0, token));
        }
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|e| match e.kind {
                EventKind::Timer { token, .. } => token,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_time_tracks_minimum() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.push(SimTime(50), timer(0, 0));
        q.push(SimTime(5), timer(0, 1));
        assert_eq!(q.peek_time(), Some(SimTime(5)));
        assert_eq!(q.len(), 2);
        assert!(!q.is_empty());
    }
}
