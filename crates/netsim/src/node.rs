//! The simulator's side of the fabric boundary: [`Node`] and the id
//! types are re-exported from `daiet-fabric` (handlers are written
//! against `&mut dyn Fabric` and never name a backend), while
//! [`Context`] — the simulator's [`Fabric`] implementation — and
//! [`NodeScript`] live here.

use crate::event::{EventKind, RemoteEvent};
use crate::frame::{Frame, FramePool};
use crate::link::{NetCtx, PortTable};
use crate::stats::StatsTable;
use crate::time::{SimDuration, SimTime};
use rand::rngs::SmallRng;

pub use daiet_fabric::{Fabric, Node, NodeId, PortId};

/// A scripted kill/revive schedule for one node — the node-level sibling
/// of [`crate::LinkScript`]. While a node is down, the simulator drops
/// every frame and timer addressed to it (frames already in flight on a
/// wire still propagate, but die at the dead NIC) and the node's
/// [`Node::on_fail`]/[`Node::on_revive`] hooks fire at the scripted
/// instants. Down intervals are half-open `[kill, revive)`: an event at
/// exactly the kill instant is dropped, one at the revive instant is
/// delivered. Attach with [`crate::Simulator::script_node`].
#[derive(Debug, Clone, Default)]
pub struct NodeScript {
    /// Sorted, disjoint `(kill, revive)` intervals; `None` = never revives.
    downs: Vec<(crate::time::SimTime, Option<crate::time::SimTime>)>,
}

impl NodeScript {
    /// Kills the node at `at`, permanently.
    pub fn kill_at(at: crate::time::SimTime) -> NodeScript {
        NodeScript { downs: vec![(at, None)] }
    }

    /// Kills the node at `kill` and revives it at `revive`.
    pub fn down_between(kill: crate::time::SimTime, revive: crate::time::SimTime) -> NodeScript {
        assert!(kill < revive, "revive must come after kill");
        NodeScript { downs: vec![(kill, Some(revive))] }
    }

    /// Appends another down interval; must start after every prior
    /// interval ended (intervals are disjoint and ordered).
    pub fn and_down_between(
        mut self,
        kill: crate::time::SimTime,
        revive: crate::time::SimTime,
    ) -> NodeScript {
        assert!(kill < revive, "revive must come after kill");
        if let Some(&(_, last_revive)) = self.downs.last() {
            let end = last_revive.expect("cannot add intervals after a permanent kill");
            assert!(kill >= end, "down intervals must be disjoint and ordered");
        }
        self.downs.push((kill, Some(revive)));
        self
    }

    /// True when the node is down at `t` (kill inclusive, revive
    /// exclusive).
    pub fn is_down_at(&self, t: crate::time::SimTime) -> bool {
        self.downs
            .iter()
            .any(|&(kill, revive)| t >= kill && revive.is_none_or(|r| t < r))
    }

    /// Every scripted transition as `(time, is_kill)`, in order.
    pub(crate) fn transitions(&self) -> Vec<(crate::time::SimTime, bool)> {
        let mut out = Vec::new();
        for &(kill, revive) in &self.downs {
            out.push((kill, true));
            if let Some(r) = revive {
                out.push((r, false));
            }
        }
        out
    }
}

/// The world as visible from inside a node callback.
///
/// Splitting this out of the simulator (which also owns the nodes) is what
/// lets a node mutate itself while scheduling work: the simulator
/// temporarily removes the node from its slot during dispatch.
pub struct Context<'a> {
    pub(crate) node: NodeId,
    pub(crate) now: SimTime,
    pub(crate) queue: &'a mut crate::event::EventQueue,
    pub(crate) ports: &'a mut PortTable,
    pub(crate) stats: &'a mut StatsTable,
    pub(crate) rng: &'a mut SmallRng,
    pub(crate) pool: &'a FramePool,
    /// node id → owning partition (empty in single-partition runs).
    pub(crate) part_of: &'a [u32],
    /// The partition executing this callback.
    pub(crate) my_part: u32,
    /// Per-target-partition outboxes for cross-partition deliveries.
    pub(crate) outboxes: &'a mut Vec<Vec<RemoteEvent>>,
}

impl Context<'_> {
    /// The id of the node being called.
    pub fn node_id(&self) -> NodeId {
        self.node
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Transmits `frame` out of `port`. The frame enters the link's egress
    /// queue; it may be dropped there (queue overflow or injected fault) —
    /// exactly like handing a frame to real NIC hardware, no feedback.
    ///
    /// Sending on an unconnected port is a programming error and panics:
    /// the topology is static, so a bad port can never be data-dependent.
    pub fn send(&mut self, port: PortId, frame: Frame) {
        self.stats.node_sent(self.node, frame.len());
        let mut net = NetCtx {
            queue: &mut *self.queue,
            stats: &mut *self.stats,
            pool: self.pool,
            part_of: self.part_of,
            my_part: self.my_part,
            outboxes: &mut *self.outboxes,
        };
        self.ports.transmit(self.node, port, frame, self.now, &mut net);
    }

    /// The simulation's [`FramePool`]: build outgoing frames from
    /// [`FramePool::buffer`]s so their storage recycles instead of
    /// churning the allocator.
    pub fn pool(&self) -> &FramePool {
        self.pool
    }

    /// Arms a one-shot timer `delay` from now; `token` is returned to
    /// [`Node::on_timer`].
    pub fn schedule(&mut self, delay: SimDuration, token: u64) {
        self.queue.push(
            self.now + delay,
            self.node,
            EventKind::Timer { node: self.node, token },
        );
    }

    /// Number of ports connected to this node.
    pub fn port_count(&self) -> usize {
        self.ports.port_count(self.node)
    }

    /// This node's private deterministic random stream, derived from the
    /// simulation seed and the node id. Streams are per-node (never
    /// shared) so one node's draws cannot shift another's — a requirement
    /// for partitioned runs to match single-threaded ones bit-for-bit.
    ///
    /// Deliberately *not* part of [`Fabric`]: randomness is a simulation
    /// concern (fault scripts, synthetic workloads), not a protocol one,
    /// and keeping it here is what guarantees protocol nodes stay
    /// backend-portable.
    pub fn rng(&mut self) -> &mut SmallRng {
        self.rng
    }
}

/// The simulator's dispatch context *is* a fabric: node handlers written
/// against `&mut dyn Fabric` run under the discrete-event engine with no
/// adapter. Each method delegates to the inherent one above.
impl Fabric for Context<'_> {
    fn now(&self) -> SimTime {
        Context::now(self)
    }

    fn send(&mut self, port: PortId, frame: Frame) {
        Context::send(self, port, frame);
    }

    fn schedule(&mut self, delay: SimDuration, token: u64) {
        Context::schedule(self, delay, token);
    }

    fn pool(&self) -> &FramePool {
        Context::pool(self)
    }

    fn port_count(&self) -> usize {
        Context::port_count(self)
    }
}
