//! # daiet-netsim — deterministic discrete-event network simulator
//!
//! The substrate on which the DAIET reproduction runs: hosts and switches
//! are [`Node`]s exchanging Ethernet frames over [`link`]s with bandwidth,
//! propagation delay, bounded drop-tail queues and optional fault injection
//! (loss, corruption, duplication). A binary-heap event queue with
//! deterministic tie-breaking makes every run reproducible from a seed.
//!
//! Execution is single-threaded by default. For large topologies the
//! simulator can be sharded by a [`PartitionMap`]: each partition owns its
//! own event heap, frame pool and stats table on its own worker thread,
//! synchronized with conservative-lookahead windows, and produces
//! bit-identical results to the single-threaded run (see the [`sim`]
//! module docs). Async runtimes are still avoided — the workload is
//! CPU-bound simulation, so plain loops plus barrier-synchronized workers
//! beat a task scheduler.
//!
//! Frames are pooled: the [`FramePool`] recycles every buffer that
//! crosses the event loop, so the steady-state hot path performs no heap
//! allocation (see the [`frame`] module and `ARCHITECTURE.md`).
//!
//! Nodes are written against the backend-agnostic `daiet-fabric` traits
//! ([`Node`] callbacks take `&mut dyn Fabric`), so the same
//! implementations also run on that crate's real-time UDP backend; this
//! simulator is the virtual-time [`Fabric`] implementation.
//!
//! ```
//! use daiet_netsim::{Simulator, Node, Fabric, Frame, PortId, LinkSpec};
//!
//! struct Echo;
//! impl Node for Echo {
//!     fn on_packet(&mut self, ctx: &mut dyn Fabric, port: PortId, frame: Frame) {
//!         ctx.send(port, frame); // bounce it straight back (no copy)
//!     }
//! }
//!
//! struct Counter(usize);
//! impl Node for Counter {
//!     fn on_packet(&mut self, _ctx: &mut dyn Fabric, _port: PortId, _frame: Frame) {
//!         self.0 += 1;
//!     }
//!     fn on_start(&mut self, ctx: &mut dyn Fabric) {
//!         // Outgoing frames are built in pooled buffers.
//!         let mut buf = ctx.pool().buffer();
//!         buf.resize(64, 0);
//!         let frame = ctx.pool().frame(buf);
//!         ctx.send(PortId(0), frame);
//!     }
//! }
//!
//! let mut sim = Simulator::new(1);
//! let echo = sim.add_node(Box::new(Echo));
//! let counter = sim.add_node(Box::new(Counter(0)));
//! sim.connect(echo, counter, LinkSpec::fast());
//! sim.run();
//! assert_eq!(sim.node_ref::<Counter>(counter).unwrap().0, 1);
//! ```

// `deny` rather than `forbid`: the partitioned engine needs exactly one
// audited exception (handing each partition's `&mut` to its worker thread;
// see `PartCell` in `sim.rs`), which carries its own `#[allow]`.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod event;
pub mod frame;
pub mod link;
pub mod node;
pub mod sim;
pub mod stats;
pub mod time;
pub mod topology;

pub use frame::{Frame, FramePool, PoolStats};
pub use link::{FaultDecision, FaultProfile, LinkScript, LinkSpec};
pub use node::{Context, Fabric, Node, NodeId, NodeScript, PortId};
pub use sim::{PartitionMap, Simulator};
pub use stats::{LinkStats, NodeStats, StatsSnapshot};
pub use time::{SimDuration, SimTime};
pub use topology::{Role, TopologyPlan};

/// The partition count requested via the `DAIET_PARTITIONS` environment
/// variable (default 1). Workload runners read this so the ordinary test
/// suite doubles as a partitioned-execution matrix in CI: the same tests
/// must produce the same results at any setting.
pub fn env_partitions() -> usize {
    std::env::var("DAIET_PARTITIONS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .map_or(1, |n| n.max(1))
}
