//! # daiet-netsim — deterministic discrete-event network simulator
//!
//! The substrate on which the DAIET reproduction runs: hosts and switches
//! are [`Node`]s exchanging Ethernet frames over [`link`]s with bandwidth,
//! propagation delay, bounded drop-tail queues and optional fault injection
//! (loss, corruption, duplication). A binary-heap event queue with
//! deterministic tie-breaking makes every run reproducible from a seed.
//!
//! The design deliberately avoids threads and async runtimes: the workload
//! is CPU-bound simulation, so a single-threaded event loop is both faster
//! and reproducible (the session guides make the same argument for choosing
//! plain loops over Tokio for compute-bound work).
//!
//! Frames are pooled: the [`FramePool`] recycles every buffer that
//! crosses the event loop, so the steady-state hot path performs no heap
//! allocation (see the [`frame`] module and `ARCHITECTURE.md`).
//!
//! ```
//! use daiet_netsim::{Simulator, Node, Context, Frame, PortId, LinkSpec};
//!
//! struct Echo;
//! impl Node for Echo {
//!     fn on_packet(&mut self, ctx: &mut Context<'_>, port: PortId, frame: Frame) {
//!         ctx.send(port, frame); // bounce it straight back (no copy)
//!     }
//! }
//!
//! struct Counter(usize);
//! impl Node for Counter {
//!     fn on_packet(&mut self, _ctx: &mut Context<'_>, _port: PortId, _frame: Frame) {
//!         self.0 += 1;
//!     }
//!     fn on_start(&mut self, ctx: &mut Context<'_>) {
//!         // Outgoing frames are built in pooled buffers.
//!         let mut buf = ctx.pool().buffer();
//!         buf.resize(64, 0);
//!         let frame = ctx.pool().frame(buf);
//!         ctx.send(PortId(0), frame);
//!     }
//! }
//!
//! let mut sim = Simulator::new(1);
//! let echo = sim.add_node(Box::new(Echo));
//! let counter = sim.add_node(Box::new(Counter(0)));
//! sim.connect(echo, counter, LinkSpec::fast());
//! sim.run();
//! assert_eq!(sim.node_ref::<Counter>(counter).unwrap().0, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod event;
pub mod frame;
pub mod link;
pub mod node;
pub mod sim;
pub mod stats;
pub mod time;
pub mod topology;

pub use frame::{Frame, FramePool, PoolStats};
pub use link::{FaultDecision, FaultProfile, LinkScript, LinkSpec};
pub use node::{Context, Node, NodeId, PortId};
pub use sim::Simulator;
pub use stats::{LinkStats, NodeStats, StatsSnapshot};
pub use time::{SimDuration, SimTime};
pub use topology::{Role, TopologyPlan};
