//! Pooled frames — re-exported from `daiet-fabric`, where they moved so
//! the real-time UDP backend and the simulator share one buffer economy.
//! See `daiet_fabric::frame` for the ownership model; the partitioned
//! engine's rule (a `Frame` never crosses a thread: serialize to bytes,
//! re-pool on ingest) is the same rule the socket edge applies.

pub use daiet_fabric::frame::{Frame, FramePool, PoolStats};
