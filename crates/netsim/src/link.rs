//! Links: full-duplex point-to-point connections with bandwidth,
//! propagation delay, bounded drop-tail egress queues, and fault injection.
//!
//! Each direction of a link is an independent transmitter: a frame handed
//! to a busy transmitter waits in the egress queue (bounded in bytes); when
//! the queue is full the frame is dropped, as a real switch port would.
//!
//! # Per-direction fault streams
//!
//! Fault injection draws from a `SmallRng` owned by the link *direction*,
//! seeded from `(simulation seed, from-node, to-node, occurrence)` — never
//! from a simulator-wide generator. A shared RNG makes every fault decision
//! depend on the global interleaving of draws: adding one unrelated flow
//! (or moving a flow to another partition) shifts which frames get dropped
//! everywhere. Per-direction streams make each direction's fault sequence a
//! pure function of the simulation seed and the direction's identity, so
//! fault outcomes are invariant to unrelated event reordering, to the order
//! links were registered, and to how the topology is partitioned across
//! worker threads. (`occurrence` counts parallel links between the same
//! endpoint pair, so even duplicated links get independent streams.)

use crate::event::{EventKind, EventQueue, RemoteEvent};
use crate::frame::{Frame, FramePool};
use crate::node::{NodeId, PortId};
use crate::stats::StatsTable;
use crate::time::{SimDuration, SimTime};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Static parameters of a link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkSpec {
    /// Line rate in bits per second.
    pub bandwidth_bps: u64,
    /// One-way propagation delay.
    pub latency: SimDuration,
    /// Egress queue capacity per direction, in bytes (excluding the frame
    /// currently being serialized).
    pub queue_bytes: usize,
    /// ECN marking threshold per direction, in queued bytes; 0 disables
    /// marking. When a frame is admitted to an egress queue already
    /// holding more than this many bytes, its IPv4 ECN field is set to CE
    /// (Congestion Experienced) and the header checksum is fixed up —
    /// the RED/ECN-style signal a real switch emits on buildup, letting
    /// senders back off before the drop-tail limit bites.
    pub ecn_threshold_bytes: usize,
    /// Fault injection profile.
    pub faults: FaultProfile,
}

impl LinkSpec {
    /// 10 Gbps, 1 µs, 512 KiB queue — a typical data-center access link.
    pub fn fast() -> LinkSpec {
        LinkSpec {
            bandwidth_bps: 10_000_000_000,
            latency: SimDuration::from_micros(1),
            queue_bytes: 512 * 1024,
            ecn_threshold_bytes: 0,
            faults: FaultProfile::NONE,
        }
    }

    /// 1 Gbps, 5 µs, 256 KiB queue.
    pub fn gigabit() -> LinkSpec {
        LinkSpec {
            bandwidth_bps: 1_000_000_000,
            latency: SimDuration::from_micros(5),
            queue_bytes: 256 * 1024,
            ecn_threshold_bytes: 0,
            faults: FaultProfile::NONE,
        }
    }

    /// Replaces the fault profile.
    pub fn with_faults(mut self, faults: FaultProfile) -> LinkSpec {
        self.faults = faults;
        self
    }

    /// Replaces the queue capacity.
    pub fn with_queue_bytes(mut self, bytes: usize) -> LinkSpec {
        self.queue_bytes = bytes;
        self
    }

    /// Enables ECN: frames admitted to an egress queue holding more than
    /// `bytes` are CE-marked (see [`LinkSpec::ecn_threshold_bytes`]).
    pub fn with_ecn_threshold(mut self, bytes: usize) -> LinkSpec {
        self.ecn_threshold_bytes = bytes;
        self
    }
}

/// Sets the ECN field of an IPv4 frame to CE (0b11) and repairs the
/// header checksum in place; returns `false` (untouched) for anything
/// that is not a standard 20-byte-header IPv4 frame. Self-contained
/// (netsim does not depend on the wire crate): Ethernet header is 14
/// bytes, the DSCP/ECN byte sits at offset 15, the header checksum at
/// 24..26, and the stack only ever emits IHL=5 headers (version byte
/// 0x45), so a full RFC 1071 recompute over the fixed 20 bytes is cheap
/// and exact.
fn ecn_mark_ce(frame: &mut [u8]) -> bool {
    if frame.len() < 34 || frame[12] != 0x08 || frame[13] != 0x00 || frame[14] != 0x45 {
        return false;
    }
    frame[15] |= 0b11;
    frame[24] = 0;
    frame[25] = 0;
    let mut sum = 0u32;
    for i in (14..34).step_by(2) {
        sum += u32::from(u16::from_be_bytes([frame[i], frame[i + 1]]));
    }
    while sum >> 16 != 0 {
        sum = (sum & 0xFFFF) + (sum >> 16);
    }
    let ck = !(sum as u16);
    frame[24..26].copy_from_slice(&ck.to_be_bytes());
    true
}

/// Per-frame fault probabilities (applied independently, in the order
/// drop → duplicate → corrupt → reorder).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FaultProfile {
    /// Probability a frame is silently dropped.
    pub drop: f64,
    /// Probability one random byte of the frame is flipped (checksums at
    /// the receiver will catch it — which is the point).
    pub corrupt: f64,
    /// Probability the frame is delivered twice.
    pub duplicate: f64,
    /// Probability the frame is held back by
    /// [`reorder_ns`](FaultProfile::reorder_ns) extra nanoseconds, letting frames
    /// transmitted after it overtake it — the simulator's model of
    /// multipath/queueing reordering.
    pub reorder: f64,
    /// Extra delay applied to reordered frames, in nanoseconds. Choose it
    /// larger than a few frame serialization times so reordering actually
    /// happens.
    pub reorder_ns: u64,
}

impl FaultProfile {
    /// No injected faults.
    pub const NONE: FaultProfile = FaultProfile {
        drop: 0.0,
        corrupt: 0.0,
        duplicate: 0.0,
        reorder: 0.0,
        reorder_ns: 0,
    };

    /// A loss-only profile.
    pub fn loss(p: f64) -> FaultProfile {
        FaultProfile { drop: p, ..Self::NONE }
    }

    /// The full adversary short of corruption: independent loss,
    /// duplication and reordering (by `reorder_ns` nanoseconds) at the
    /// given per-frame probabilities — the profile the reliability
    /// acceptance tests inject on every link.
    pub fn chaos(drop: f64, duplicate: f64, reorder: f64, reorder_ns: u64) -> FaultProfile {
        FaultProfile { drop, duplicate, reorder, reorder_ns, ..Self::NONE }
    }

    /// True when all probabilities are zero.
    pub fn is_none(&self) -> bool {
        self.drop == 0.0 && self.corrupt == 0.0 && self.duplicate == 0.0 && self.reorder == 0.0
    }
}

/// One scripted per-frame decision of a [`LinkScript`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultDecision {
    /// Deliver normally.
    Deliver,
    /// Drop the frame.
    Drop,
    /// Deliver the frame twice.
    Duplicate,
    /// Flip one random bit (receiver checksums will catch it).
    Corrupt,
    /// Deliver, but this many nanoseconds late (reordering).
    Delay(u64),
}

/// A deterministic, per-frame fault script for one link direction — the
/// "adversarial link" harness. Like the per-direction [`FaultProfile`]
/// streams, a script pins the fate of the *k*-th frame on the link:
/// decision `k` applies to the `k`-th frame admitted to the egress queue,
/// and once the script is exhausted the link falls back to its
/// [`FaultProfile`]. Attach with
/// [`Simulator::script_link`](crate::Simulator::script_link).
#[derive(Debug, Clone, Default)]
pub struct LinkScript {
    decisions: std::collections::VecDeque<FaultDecision>,
}

impl LinkScript {
    /// A script replaying `decisions` in order.
    pub fn new(decisions: impl IntoIterator<Item = FaultDecision>) -> LinkScript {
        LinkScript { decisions: decisions.into_iter().collect() }
    }

    /// A script that leaves the first `n` frames untouched and then
    /// applies `decision` to the next one — the precision tool for
    /// regression tests ("drop exactly the third flush frame").
    pub fn nth_frame(n: usize, decision: FaultDecision) -> LinkScript {
        let mut decisions: std::collections::VecDeque<FaultDecision> =
            std::iter::repeat_n(FaultDecision::Deliver, n).collect();
        decisions.push_back(decision);
        LinkScript { decisions }
    }

    /// A deterministic adversarial script: `n` per-frame decisions drawn
    /// from a dedicated RNG seeded with `seed` under `profile`'s
    /// probabilities. The same `(seed, n, profile)` always yields the
    /// same decision sequence, independent of every other link and of the
    /// traffic pattern — which makes failures replayable.
    pub fn adversarial(seed: u64, n: usize, profile: FaultProfile) -> LinkScript {
        let mut rng = SmallRng::seed_from_u64(seed);
        let decisions = (0..n)
            .map(|_| {
                // Independent draws in a fixed order so each probability
                // is honored marginally; first match wins.
                let d: f64 = rng.random();
                let u: f64 = rng.random();
                let r: f64 = rng.random();
                let c: f64 = rng.random();
                if d < profile.drop {
                    FaultDecision::Drop
                } else if u < profile.duplicate {
                    FaultDecision::Duplicate
                } else if r < profile.reorder {
                    FaultDecision::Delay(profile.reorder_ns)
                } else if c < profile.corrupt {
                    FaultDecision::Corrupt
                } else {
                    FaultDecision::Deliver
                }
            })
            .collect();
        LinkScript { decisions }
    }

    /// Decisions not yet consumed.
    pub fn remaining(&self) -> usize {
        self.decisions.len()
    }

    fn pop(&mut self) -> Option<FaultDecision> {
        self.decisions.pop_front()
    }
}

/// Derives a child seed for an independent named random stream. The words
/// identify the stream (a tag plus e.g. endpoint node ids); mixing is
/// splitmix64-flavored so nearby keys land far apart.
pub(crate) fn stream_seed(base: u64, words: [u64; 4]) -> u64 {
    let mut h = base ^ 0x9E37_79B9_7F4A_7C15;
    for w in words {
        h ^= w.wrapping_add(0xBF58_476D_1CE4_E5B9).wrapping_mul(0x94D0_49BB_1331_11EB);
        h = (h ^ (h >> 27)).wrapping_mul(0x2545_F491_4F6C_DD1D);
        h ^= h >> 31;
    }
    h
}

/// Stream tag for link fault RNGs (see [`stream_seed`]).
const STREAM_LINK_FAULTS: u64 = 1;

/// Runtime state of one direction of a link.
#[derive(Debug)]
struct Direction {
    /// When the transmitter becomes idle.
    busy_until: SimTime,
    /// Bytes waiting in the egress queue (not yet on the wire).
    queued_bytes: usize,
    /// Receiving endpoint.
    to_node: NodeId,
    to_port: PortId,
    /// This direction's private fault stream — seeded from the simulation
    /// seed and the direction's identity, never shared (module docs).
    rng: SmallRng,
}

/// A link instance inside the simulator.
#[derive(Debug)]
pub(crate) struct Link {
    spec: LinkSpec,
    dirs: [Direction; 2],
    /// Optional per-direction fault scripts (consume one decision per
    /// admitted frame, then fall back to `spec.faults`).
    scripts: [Option<LinkScript>; 2],
}

/// Everything `transmit` needs besides the link state itself: the event
/// queue and stats of the executing partition, plus the partition routing
/// table for deliveries that cross a partition boundary.
pub(crate) struct NetCtx<'a> {
    pub queue: &'a mut EventQueue,
    pub stats: &'a mut StatsTable,
    pub pool: &'a FramePool,
    /// node id → owning partition. May be shorter than the node space in
    /// single-partition contexts; missing entries read as `my_part`.
    pub part_of: &'a [u32],
    /// The partition executing this transmit.
    pub my_part: u32,
    /// Per-target-partition outboxes for deliveries that leave this
    /// partition (drained into mailboxes at the next synchronization).
    pub outboxes: &'a mut [Vec<RemoteEvent>],
}

impl NetCtx<'_> {
    /// Schedules a frame delivery, routing by the receiver's partition: a
    /// local receiver goes straight onto the heap; a remote one becomes a
    /// byte-copied [`RemoteEvent`] carrying the same `(src, seq)` key the
    /// local push would have consumed, so the receiving partition's heap
    /// merges it exactly where a single-threaded run would have.
    fn deliver(&mut self, time: SimTime, src: NodeId, node: NodeId, port: PortId, frame: Frame) {
        let target = self.part_of.get(node.0).copied().unwrap_or(self.my_part);
        if target == self.my_part {
            self.queue.push(time, src, EventKind::Deliver { node, port, frame });
        } else {
            let seq = self.queue.alloc_seq(src);
            self.outboxes[target as usize].push(RemoteEvent {
                time,
                src,
                seq,
                node,
                port,
                bytes: frame.to_vec(),
            });
        }
    }
}

/// Maps `(node, port)` to its link and direction, and owns all links.
///
/// Node ids are dense (assigned 0.. by the simulator), so the lookup
/// tables are plain vectors indexed by node — `transmit` runs on every
/// frame and must not pay for hashing.
#[derive(Debug)]
pub struct PortTable {
    links: Vec<Link>,
    /// `endpoints[node][port]` → (link index, direction index)
    endpoints: Vec<Vec<(u32, u32)>>,
    /// Simulation seed the per-direction fault streams derive from.
    seed: u64,
}

impl Default for PortTable {
    fn default() -> PortTable {
        PortTable::with_seed(0)
    }
}

impl PortTable {
    /// An empty table whose link fault streams derive from `seed`.
    pub(crate) fn with_seed(seed: u64) -> PortTable {
        PortTable { links: Vec::new(), endpoints: Vec::new(), seed }
    }

    /// Connects `a` and `b` with a fresh port on each; returns the port
    /// ids assigned on either side.
    pub(crate) fn connect(
        &mut self,
        a: NodeId,
        b: NodeId,
        spec: LinkSpec,
    ) -> (PortId, PortId) {
        let max = a.0.max(b.0);
        if self.endpoints.len() <= max {
            self.endpoints.resize_with(max + 1, Vec::new);
        }
        let idx = self.links.len();
        // Register endpoint a before computing b's port so a (disallowed
        // upstream, but defended here) self-loop still gets two distinct
        // ports.
        let pa = PortId(self.endpoints[a.0].len());
        self.endpoints[a.0].push((idx as u32, 0));
        let pb = PortId(self.endpoints[b.0].len());
        self.endpoints[b.0].push((idx as u32, 1));
        // Fault streams are keyed by the endpoints, not the link index, so
        // they are invariant to registration order; `occurrence` keeps
        // parallel links between the same pair on distinct streams.
        let occurrence = self
            .links
            .iter()
            .filter(|l| {
                let (x, y) = (l.dirs[1].to_node, l.dirs[0].to_node);
                (x == a && y == b) || (x == b && y == a)
            })
            .count() as u64;
        let dir_rng = |from: NodeId, to: NodeId| {
            SmallRng::seed_from_u64(stream_seed(
                self.seed,
                [STREAM_LINK_FAULTS, from.0 as u64, to.0 as u64, occurrence],
            ))
        };
        self.links.push(Link {
            spec,
            dirs: [
                Direction {
                    busy_until: SimTime::ZERO,
                    queued_bytes: 0,
                    to_node: b,
                    to_port: pb,
                    rng: dir_rng(a, b),
                },
                Direction {
                    busy_until: SimTime::ZERO,
                    queued_bytes: 0,
                    to_node: a,
                    to_port: pa,
                    rng: dir_rng(b, a),
                },
            ],
            scripts: [None, None],
        });
        (pa, pb)
    }

    /// Installs a fault script on one direction of link `idx` (0 = a→b in
    /// connect order), replacing any prior script.
    pub(crate) fn set_script(&mut self, idx: usize, dir: usize, script: LinkScript) {
        self.links[idx].scripts[dir] = Some(script);
    }

    /// The node that transmits on direction `dir` of link `idx`.
    pub(crate) fn transmitter(&self, idx: usize, dir: usize) -> NodeId {
        // dirs[d].to_node is the receiver of direction d; the transmitter
        // is the other endpoint.
        self.links[idx].dirs[1 - dir].to_node
    }

    /// The smallest propagation latency among links whose endpoints live
    /// in different partitions — the conservative lookahead bound for
    /// parallel execution. `None` when no link crosses a partition.
    pub(crate) fn min_cross_latency(&self, part_of: &[u32]) -> Option<SimDuration> {
        self.links
            .iter()
            .filter(|l| {
                let a = l.dirs[1].to_node.0;
                let b = l.dirs[0].to_node.0;
                let pa = part_of.get(a).copied().unwrap_or(0);
                let pb = part_of.get(b).copied().unwrap_or(0);
                pa != pb
            })
            .map(|l| l.spec.latency)
            .min()
    }

    /// Ports attached to `node`.
    pub(crate) fn port_count(&self, node: NodeId) -> usize {
        self.endpoints.get(node.0).map_or(0, Vec::len)
    }

    fn endpoint(&self, node: NodeId, port: PortId) -> Option<(usize, usize)> {
        let &(idx, dir) = self.endpoints.get(node.0)?.get(port.0)?;
        Some((idx as usize, dir as usize))
    }

    /// The `(peer node, peer port)` at the far end of `(node, port)`.
    pub(crate) fn peer(&self, node: NodeId, port: PortId) -> Option<(NodeId, PortId)> {
        let (idx, dir) = self.endpoint(node, port)?;
        let d = &self.links[idx].dirs[dir];
        Some((d.to_node, d.to_port))
    }

    /// Number of links.
    pub(crate) fn link_count(&self) -> usize {
        self.links.len()
    }

    /// Hands a frame to the egress queue of `(node, port)`.
    pub(crate) fn transmit(
        &mut self,
        node: NodeId,
        port: PortId,
        frame: Frame,
        now: SimTime,
        net: &mut NetCtx<'_>,
    ) {
        let (idx, dir_idx) = self
            .endpoint(node, port)
            .unwrap_or_else(|| panic!("node {node:?} sent on unconnected port {port:?}"));
        let link = &mut self.links[idx];
        let spec = link.spec;
        let dir = &mut link.dirs[dir_idx];
        let len = frame.len();

        // Drop-tail queue admission. A frame only occupies queue space
        // while it waits for the transmitter; the frame being serialized
        // is not counted, matching switch output-port models.
        let start = if dir.busy_until > now { dir.busy_until } else { now };
        if start > now && dir.queued_bytes + len > spec.queue_bytes {
            net.stats.link_drop_overflow(idx, dir_idx, len);
            return;
        }

        // A scripted decision (consumed per admitted frame) overrides the
        // probabilistic profile entirely; an exhausted script falls back.
        let scripted = link.scripts[dir_idx].as_mut().and_then(LinkScript::pop);
        let (do_drop, do_corrupt, do_duplicate, extra_delay) = match scripted {
            Some(FaultDecision::Deliver) => (false, false, false, 0),
            Some(FaultDecision::Drop) => (true, false, false, 0),
            Some(FaultDecision::Duplicate) => (false, false, true, 0),
            Some(FaultDecision::Corrupt) => (false, true, false, 0),
            Some(FaultDecision::Delay(ns)) => (false, false, false, ns),
            None => {
                // Probabilistic faults draw from the direction's private
                // stream: decision k is a function of (seed, direction,
                // k), independent of all other traffic.
                let f = spec.faults;
                let rng = &mut dir.rng;
                let drop = f.drop > 0.0 && rng.random::<f64>() < f.drop;
                let corrupt = !drop && f.corrupt > 0.0 && rng.random::<f64>() < f.corrupt;
                let dup = !drop && f.duplicate > 0.0 && rng.random::<f64>() < f.duplicate;
                let delay = if !drop && f.reorder > 0.0 && rng.random::<f64>() < f.reorder {
                    f.reorder_ns
                } else {
                    0
                };
                (drop, corrupt, dup, delay)
            }
        };

        // Fault injection: drop.
        if do_drop {
            net.stats.link_drop_fault(idx, dir_idx, len);
            return;
        }

        // ECN admission check: like the drop-tail check above, a pure
        // function of transmitter state, so marking is deterministic
        // under any partitioning.
        let do_mark = spec.ecn_threshold_bytes > 0
            && start > now
            && dir.queued_bytes + len > spec.ecn_threshold_bytes;

        // Serialization: the transmitter processes frames FIFO. Queue
        // space is released when serialization starts (the TxDone event).
        let tx_time = SimDuration::for_bytes(len, spec.bandwidth_bps);
        if start > now {
            dir.queued_bytes += len;
            net.queue.push(start, node, EventKind::TxDone { link: idx, dir: dir_idx, bytes: len });
        }
        let departure = start + tx_time;
        dir.busy_until = departure;

        // CE marking happens before corruption so an injected bit flip
        // can never be "repaired" by the marking checksum fix-up.
        let mut deliver_frame = frame;
        if do_mark {
            if deliver_frame.try_mut().is_none() {
                deliver_frame = net.pool.copy_from_slice(&deliver_frame);
            }
            // lint:allow(panic-hotpath): the branch above just replaced any shared frame
            // with a fresh pool copy, so exclusive access is guaranteed here.
            let owned = deliver_frame.try_mut().expect("fresh pool copy is unshared");
            if ecn_mark_ce(owned) {
                net.stats.link_ecn_mark(idx, dir_idx);
            }
        }

        // Corruption: flip one bit; receiver-side checksums detect it.
        // A frame still shared with its sender is copied through the pool
        // first; an exclusively owned one is flipped in place.
        if do_corrupt {
            if deliver_frame.try_mut().is_none() {
                deliver_frame = net.pool.copy_from_slice(&deliver_frame);
            }
            let rng = &mut dir.rng;
            // lint:allow(panic-hotpath): the branch above just replaced any shared frame
            // with a fresh pool copy, so exclusive access is guaranteed here.
            let owned = deliver_frame.try_mut().expect("fresh pool copy is unshared");
            if !owned.is_empty() {
                let pos = rng.random_range(0..owned.len());
                owned[pos] ^= 1 << rng.random_range(0..8u8);
            }
            net.stats.link_corrupt(idx, dir_idx);
        }

        // Reordering: hold the frame back past its natural arrival so
        // later transmissions overtake it.
        let mut arrival = departure + spec.latency;
        if extra_delay > 0 {
            arrival += SimDuration::from_nanos(extra_delay);
            net.stats.link_reorder(idx, dir_idx);
        }
        net.stats.link_tx(idx, dir_idx, len);

        // Duplication: deliver a second copy one nanosecond later (the
        // copy shares the buffer — one refcount bump, no allocation).
        if do_duplicate {
            net.stats.link_duplicate(idx, dir_idx);
        }
        let dup_frame = do_duplicate.then(|| deliver_frame.clone());
        let (to_node, to_port) = (dir.to_node, dir.to_port);
        net.deliver(arrival, node, to_node, to_port, deliver_frame);
        if let Some(frame) = dup_frame {
            net.deliver(arrival + SimDuration::from_nanos(1), node, to_node, to_port, frame);
        }
    }

    /// Called when a `TxDone` event fires: frees queue space.
    pub(crate) fn tx_done(&mut self, link: usize, dir: usize, bytes: usize) {
        let d = &mut self.links[link].dirs[dir];
        d.queued_bytes = d.queued_bytes.saturating_sub(bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Single-partition harness bundling the pieces `transmit` needs.
    struct Fixture {
        ports: PortTable,
        queue: EventQueue,
        stats: StatsTable,
        pool: FramePool,
        outboxes: Vec<Vec<RemoteEvent>>,
    }

    fn fixture() -> Fixture {
        Fixture {
            ports: PortTable::with_seed(7),
            queue: EventQueue::new(),
            stats: StatsTable::default(),
            pool: FramePool::new(),
            outboxes: vec![Vec::new()],
        }
    }

    impl Fixture {
        fn tx(&mut self, node: NodeId, port: PortId, frame: Frame, now: SimTime) {
            let mut net = NetCtx {
                queue: &mut self.queue,
                stats: &mut self.stats,
                pool: &self.pool,
                part_of: &[],
                my_part: 0,
                outboxes: &mut self.outboxes,
            };
            self.ports.transmit(node, port, frame, now, &mut net);
        }
    }

    #[test]
    fn connect_assigns_sequential_ports() {
        let mut fx = fixture();
        let (a0, b0) = fx.ports.connect(NodeId(0), NodeId(1), LinkSpec::fast());
        let (a1, c0) = fx.ports.connect(NodeId(0), NodeId(2), LinkSpec::fast());
        assert_eq!(a0, PortId(0));
        assert_eq!(a1, PortId(1));
        assert_eq!(b0, PortId(0));
        assert_eq!(c0, PortId(0));
        assert_eq!(fx.ports.port_count(NodeId(0)), 2);
        assert_eq!(fx.ports.peer(NodeId(0), PortId(1)), Some((NodeId(2), PortId(0))));
        assert_eq!(fx.ports.link_count(), 2);
        assert_eq!(fx.ports.transmitter(0, 0), NodeId(0));
        assert_eq!(fx.ports.transmitter(0, 1), NodeId(1));
    }

    #[test]
    fn transmission_serializes_back_to_back_frames() {
        let mut fx = fixture();
        let spec = LinkSpec {
            bandwidth_bps: 8_000_000_000, // 1 byte per ns
            latency: SimDuration::from_nanos(100),
            queue_bytes: 1 << 20,
            ecn_threshold_bytes: 0,
            faults: FaultProfile::NONE,
        };
        fx.ports.connect(NodeId(0), NodeId(1), spec);
        let frame = Frame::from(vec![0u8; 1000]);
        fx.tx(NodeId(0), PortId(0), frame.clone(), SimTime::ZERO);
        fx.tx(NodeId(0), PortId(0), frame, SimTime::ZERO);

        // Collect delivery times.
        let mut deliveries = vec![];
        while let Some(ev) = fx.queue.pop() {
            if let EventKind::Deliver { .. } = ev.kind {
                deliveries.push(ev.time);
            }
        }
        // First: 1000 ns tx + 100 ns prop; second: serialized after the first.
        assert_eq!(deliveries, vec![SimTime(1_100), SimTime(2_100)]);
    }

    #[test]
    fn queue_overflow_drops() {
        let mut fx = fixture();
        let spec = LinkSpec {
            bandwidth_bps: 8_000, // 1 byte per ms: transmitter stays busy
            latency: SimDuration::ZERO,
            queue_bytes: 1500,
            ecn_threshold_bytes: 0,
            faults: FaultProfile::NONE,
        };
        fx.ports.connect(NodeId(0), NodeId(1), spec);
        let frame = Frame::from(vec![0u8; 1000]);
        // First frame starts serializing (not queued); the second occupies
        // 1000 of 1500 queue bytes; the third does not fit.
        for _ in 0..3 {
            fx.tx(NodeId(0), PortId(0), frame.clone(), SimTime::ZERO);
        }
        let link_stats = fx.stats.link(0);
        assert_eq!(link_stats.dirs[0].drops_overflow, 1);
        assert_eq!(link_stats.dirs[0].tx_frames, 2);
    }

    #[test]
    fn tx_done_frees_queue_space() {
        let mut fx = fixture();
        let spec = LinkSpec {
            bandwidth_bps: 8_000_000,
            latency: SimDuration::ZERO,
            queue_bytes: 1000,
            ecn_threshold_bytes: 0,
            faults: FaultProfile::NONE,
        };
        fx.ports.connect(NodeId(0), NodeId(1), spec);
        let frame = Frame::from(vec![0u8; 800]);
        let t0 = SimTime::ZERO;
        fx.tx(NodeId(0), PortId(0), frame.clone(), t0);
        fx.tx(NodeId(0), PortId(0), frame.clone(), t0);
        // Queue holds 800 bytes; a third 800-byte frame would overflow now...
        fx.tx(NodeId(0), PortId(0), frame.clone(), t0);
        assert_eq!(fx.stats.link(0).dirs[0].drops_overflow, 1);
        // ...but after the first TxDone the space is reclaimed.
        fx.ports.tx_done(0, 0, 800);
        let later = SimTime(1);
        fx.tx(NodeId(0), PortId(0), frame, later);
        assert_eq!(fx.stats.link(0).dirs[0].drops_overflow, 1); // no new drop
    }

    #[test]
    fn loss_fault_drops_statistically() {
        let mut fx = fixture();
        let spec = LinkSpec::fast().with_faults(FaultProfile::loss(0.5));
        fx.ports.connect(NodeId(0), NodeId(1), spec);
        let frame = Frame::from(vec![0u8; 64]);
        for i in 0..1000 {
            fx.tx(NodeId(0), PortId(0), frame.clone(), SimTime(i * 1_000_000));
        }
        let dropped = fx.stats.link(0).dirs[0].drops_fault;
        assert!((300..700).contains(&dropped), "dropped {dropped} of 1000 at p=0.5");
    }

    /// Fate of frame k on a direction ignores all other traffic: a second
    /// flow hammering an unrelated link between draws must not shift which
    /// frames the first link drops. (With the old simulator-wide RNG the
    /// interleaved draws made the two runs diverge.)
    #[test]
    fn fault_outcomes_ignore_unrelated_traffic() {
        let survivors = |interfere: bool| {
            let mut fx = fixture();
            let lossy = LinkSpec::fast().with_faults(FaultProfile::loss(0.5));
            fx.ports.connect(NodeId(0), NodeId(1), lossy);
            fx.ports.connect(NodeId(2), NodeId(3), lossy);
            for i in 0..200u64 {
                fx.tx(NodeId(0), PortId(0), Frame::from(vec![i as u8; 8]), SimTime(i * 1_000_000));
                if interfere {
                    // Unrelated traffic drawing from what used to be the
                    // same generator.
                    fx.tx(NodeId(2), PortId(0), Frame::from_slice(b"noise"), SimTime(i * 1_000_000));
                    fx.tx(NodeId(2), PortId(0), Frame::from_slice(b"noise"), SimTime(i * 1_000_000));
                }
            }
            let mut ids = vec![];
            while let Some(ev) = fx.queue.pop() {
                if let EventKind::Deliver { node, frame, .. } = ev.kind {
                    if node == NodeId(1) {
                        ids.push(frame[0]);
                    }
                }
            }
            ids
        };
        let clean = survivors(false);
        let noisy = survivors(true);
        assert!(!clean.is_empty() && clean.len() < 200, "loss should be partial");
        assert_eq!(clean, noisy, "unrelated traffic changed fault outcomes");
    }

    /// Fault streams are keyed by the link's endpoints, not its
    /// registration index: connecting the same links in a different order
    /// leaves every per-frame fate unchanged.
    #[test]
    fn fault_streams_ignore_link_registration_order(){
        let survivors = |flipped: bool| {
            let mut fx = fixture();
            let lossy = LinkSpec::fast().with_faults(FaultProfile::loss(0.5));
            if flipped {
                fx.ports.connect(NodeId(2), NodeId(3), lossy);
                fx.ports.connect(NodeId(0), NodeId(1), lossy);
            } else {
                fx.ports.connect(NodeId(0), NodeId(1), lossy);
                fx.ports.connect(NodeId(2), NodeId(3), lossy);
            }
            for i in 0..200u64 {
                fx.tx(NodeId(0), PortId(0), Frame::from(vec![i as u8; 8]), SimTime(i * 1_000_000));
            }
            let mut ids = vec![];
            while let Some(ev) = fx.queue.pop() {
                if let EventKind::Deliver { node, frame, .. } = ev.kind {
                    if node == NodeId(1) {
                        ids.push(frame[0]);
                    }
                }
            }
            ids
        };
        let a = survivors(false);
        let b = survivors(true);
        assert!(!a.is_empty() && a.len() < 200, "loss should be partial");
        assert_eq!(a, b, "link registration order changed fault outcomes");
    }

    #[test]
    fn corruption_changes_exactly_one_bit() {
        let mut fx = fixture();
        let spec = LinkSpec::fast().with_faults(FaultProfile { corrupt: 1.0, ..FaultProfile::NONE });
        fx.ports.connect(NodeId(0), NodeId(1), spec);
        let original = vec![0xAAu8; 128];
        fx.tx(NodeId(0), PortId(0), Frame::from(original.clone()), SimTime::ZERO);
        let delivered = loop {
            match fx.queue.pop().expect("delivery scheduled").kind {
                EventKind::Deliver { frame, .. } => break frame,
                _ => continue,
            }
        };
        let diff_bits: u32 = original
            .iter()
            .zip(delivered.iter())
            .map(|(a, b)| (a ^ b).count_ones())
            .sum();
        assert_eq!(diff_bits, 1);
        assert_eq!(fx.stats.link(0).dirs[0].corrupted, 1);
    }

    #[test]
    fn duplication_delivers_twice() {
        let mut fx = fixture();
        let spec = LinkSpec::fast().with_faults(FaultProfile { duplicate: 1.0, ..FaultProfile::NONE });
        fx.ports.connect(NodeId(0), NodeId(1), spec);
        fx.tx(NodeId(0), PortId(0), Frame::from_slice(b"abc"), SimTime::ZERO);
        let deliveries = std::iter::from_fn(|| fx.queue.pop())
            .filter(|e| matches!(e.kind, EventKind::Deliver { .. }))
            .count();
        assert_eq!(deliveries, 2);
    }

    #[test]
    fn reorder_fault_delays_delivery() {
        let mut fx = fixture();
        let spec = LinkSpec::fast()
            .with_faults(FaultProfile { reorder: 1.0, reorder_ns: 5_000, ..FaultProfile::NONE });
        fx.ports.connect(NodeId(0), NodeId(1), spec);
        fx.tx(NodeId(0), PortId(0), Frame::from_slice(b"abc"), SimTime::ZERO);
        let arrival = loop {
            match fx.queue.pop().expect("delivery scheduled").kind {
                EventKind::Deliver { .. } => break fx.queue.peek_time(),
                _ => continue,
            }
        };
        let _ = arrival;
        assert_eq!(fx.stats.link(0).dirs[0].reordered, 1);
    }

    /// A delivery whose receiver lives in another partition leaves as
    /// serialized bytes in that partition's outbox, consuming the same
    /// per-source sequence a local push would have.
    #[test]
    fn cross_partition_delivery_lands_in_the_outbox() {
        let mut fx = fixture();
        fx.outboxes = vec![Vec::new(), Vec::new()];
        fx.ports.connect(NodeId(0), NodeId(1), LinkSpec::fast());
        let part_of = [0u32, 1u32];
        let mut net = NetCtx {
            queue: &mut fx.queue,
            stats: &mut fx.stats,
            pool: &fx.pool,
            part_of: &part_of,
            my_part: 0,
            outboxes: &mut fx.outboxes,
        };
        fx.ports.transmit(NodeId(0), PortId(0), Frame::from_slice(b"beam"), SimTime::ZERO, &mut net);
        assert!(fx.queue.is_empty(), "remote delivery must not enter the local heap");
        assert_eq!(fx.outboxes[1].len(), 1);
        let ev = &fx.outboxes[1][0];
        assert_eq!(ev.node, NodeId(1));
        assert_eq!(ev.src, NodeId(0));
        assert_eq!(ev.bytes, b"beam");
        // The sequence was allocated from node 0's counter: the next local
        // push from node 0 continues after it.
        assert_eq!(ev.seq, 0);
        assert_eq!(fx.queue.alloc_seq(NodeId(0)), 1);
    }

    #[test]
    fn scripted_decisions_apply_per_frame_then_fall_back() {
        let mut fx = fixture();
        // Clean profile; the script is the only fault source.
        fx.ports.connect(NodeId(0), NodeId(1), LinkSpec::fast());
        fx.ports.set_script(
            0,
            0,
            LinkScript::new([
                FaultDecision::Deliver,
                FaultDecision::Drop,
                FaultDecision::Duplicate,
                FaultDecision::Delay(10_000),
            ]),
        );
        let frame = Frame::from_slice(b"frame");
        for i in 0..6 {
            fx.tx(NodeId(0), PortId(0), frame.clone(), SimTime(i * 1_000_000));
        }
        let deliveries = std::iter::from_fn(|| fx.queue.pop())
            .filter(|e| matches!(e.kind, EventKind::Deliver { .. }))
            .count();
        // Frame 0 delivered, 1 dropped, 2 duplicated (×2), 3 delayed,
        // 4 and 5 past the script → delivered cleanly: 6 deliveries.
        assert_eq!(deliveries, 6);
        let d = fx.stats.link(0).dirs[0];
        assert_eq!(d.drops_fault, 1);
        assert_eq!(d.duplicated, 1);
        assert_eq!(d.reordered, 1);
    }

    #[test]
    fn nth_frame_script_targets_exactly_one_frame() {
        let script = LinkScript::nth_frame(3, FaultDecision::Drop);
        assert_eq!(script.remaining(), 4);
        let decisions: Vec<FaultDecision> =
            (0..4).map(|_| script.clone().pop().unwrap()).collect();
        assert_eq!(decisions[0], FaultDecision::Deliver);
        let mut script = script;
        for _ in 0..3 {
            assert_eq!(script.pop(), Some(FaultDecision::Deliver));
        }
        assert_eq!(script.pop(), Some(FaultDecision::Drop));
        assert_eq!(script.pop(), None);
    }

    #[test]
    fn adversarial_script_is_deterministic_in_its_seed() {
        let profile = FaultProfile::chaos(0.2, 0.2, 0.2, 1_000);
        let a = LinkScript::adversarial(7, 500, profile);
        let b = LinkScript::adversarial(7, 500, profile);
        let c = LinkScript::adversarial(8, 500, profile);
        assert_eq!(a.decisions, b.decisions);
        assert_ne!(a.decisions, c.decisions, "different seeds should diverge");
        // Marginal rates are roughly honored.
        let drops = a.decisions.iter().filter(|d| **d == FaultDecision::Drop).count();
        assert!((50..150).contains(&drops), "drops {drops} of 500 at p=0.2");
    }

    #[test]
    fn min_cross_latency_sees_only_boundary_links() {
        let mut fx = fixture();
        fx.ports.connect(NodeId(0), NodeId(1), LinkSpec::fast()); // 1 µs
        fx.ports.connect(NodeId(1), NodeId(2), LinkSpec::gigabit()); // 5 µs
        // Everything in one partition: no cross links.
        assert_eq!(fx.ports.min_cross_latency(&[0, 0, 0]), None);
        // Split after node 1: only the 5 µs link crosses.
        assert_eq!(
            fx.ports.min_cross_latency(&[0, 0, 1]),
            Some(SimDuration::from_micros(5))
        );
        // Split both: the 1 µs link wins.
        assert_eq!(
            fx.ports.min_cross_latency(&[0, 1, 1]),
            Some(SimDuration::from_micros(1))
        );
    }

    #[test]
    #[should_panic(expected = "unconnected port")]
    fn sending_on_unconnected_port_panics() {
        let mut fx = fixture();
        fx.tx(NodeId(0), PortId(0), Frame::new(), SimTime::ZERO);
    }

    /// A minimal valid IPv4-over-Ethernet frame (IHL=5, correct header
    /// checksum) whose IP total length is `20 + payload_len`.
    fn ipv4_frame(payload_len: usize) -> Frame {
        let mut b = vec![0u8; 14 + 20 + payload_len];
        b[12] = 0x08; // ethertype IPv4
        b[14] = 0x45; // version 4, IHL 5
        b[16..18].copy_from_slice(&((20 + payload_len) as u16).to_be_bytes());
        b[22] = 64; // TTL
        b[23] = 17; // UDP
        let ck = !fold_header(&b);
        b[24..26].copy_from_slice(&ck.to_be_bytes());
        Frame::from(b)
    }

    /// RFC 1071 fold over the 20 IPv4 header bytes.
    fn fold_header(frame: &[u8]) -> u16 {
        let mut sum = 0u32;
        for i in (14..34).step_by(2) {
            sum += u32::from(u16::from_be_bytes([frame[i], frame[i + 1]]));
        }
        while sum >> 16 != 0 {
            sum = (sum & 0xFFFF) + (sum >> 16);
        }
        sum as u16
    }

    #[test]
    fn ecn_marks_on_queue_buildup_and_repairs_the_checksum() {
        let mut fx = fixture();
        let spec = LinkSpec {
            bandwidth_bps: 8_000, // 1 byte per ms: transmitter saturates
            latency: SimDuration::ZERO,
            queue_bytes: 1 << 20,
            ecn_threshold_bytes: 100,
            faults: FaultProfile::NONE,
        };
        fx.ports.connect(NodeId(0), NodeId(1), spec);
        for _ in 0..4 {
            fx.tx(NodeId(0), PortId(0), ipv4_frame(66), SimTime::ZERO); // 100 wire bytes
        }
        // Frame 0 serializes immediately (no queue); frame 1 queues exactly
        // 100 bytes (not > threshold); frames 2 and 3 exceed it.
        assert_eq!(fx.stats.link(0).dirs[0].ecn_marked, 2);
        let frames: Vec<Frame> = std::iter::from_fn(|| fx.queue.pop())
            .filter_map(|e| match e.kind {
                EventKind::Deliver { frame, .. } => Some(frame),
                _ => None,
            })
            .collect();
        assert_eq!(frames.len(), 4);
        for (i, f) in frames.iter().enumerate() {
            let marked = f[15] & 0b11 == 0b11;
            assert_eq!(marked, i >= 2, "frame {i} marking");
            // The header checksum must verify whether marked or not.
            assert_eq!(fold_header(f), 0xFFFF, "frame {i} checksum broken");
        }
    }

    #[test]
    fn ecn_ignores_non_ipv4_frames() {
        let mut fx = fixture();
        let spec = LinkSpec {
            bandwidth_bps: 8_000,
            latency: SimDuration::ZERO,
            queue_bytes: 1 << 20,
            ecn_threshold_bytes: 10,
            faults: FaultProfile::NONE,
        };
        fx.ports.connect(NodeId(0), NodeId(1), spec);
        let raw = Frame::from(vec![0xEEu8; 64]); // no IPv4 ethertype
        for _ in 0..4 {
            fx.tx(NodeId(0), PortId(0), raw.clone(), SimTime::ZERO);
        }
        assert_eq!(fx.stats.link(0).dirs[0].ecn_marked, 0);
        let delivered: Vec<Frame> = std::iter::from_fn(|| fx.queue.pop())
            .filter_map(|e| match e.kind {
                EventKind::Deliver { frame, .. } => Some(frame),
                _ => None,
            })
            .collect();
        assert!(delivered.iter().all(|f| f[..] == raw[..]), "bytes must be untouched");
    }
}
