//! Links: full-duplex point-to-point connections with bandwidth,
//! propagation delay, bounded drop-tail egress queues, and fault injection.
//!
//! Each direction of a link is an independent transmitter: a frame handed
//! to a busy transmitter waits in the egress queue (bounded in bytes); when
//! the queue is full the frame is dropped, as a real switch port would.
//! Fault injection follows the smoltcp example programs: independent
//! per-frame drop/corrupt/duplicate probabilities drawn from the seeded
//! simulation RNG.

use crate::event::{EventKind, EventQueue};
use crate::frame::{Frame, FramePool};
use crate::node::{NodeId, PortId};
use crate::stats::StatsTable;
use crate::time::{SimDuration, SimTime};
use rand::rngs::SmallRng;
use rand::Rng;

/// Static parameters of a link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkSpec {
    /// Line rate in bits per second.
    pub bandwidth_bps: u64,
    /// One-way propagation delay.
    pub latency: SimDuration,
    /// Egress queue capacity per direction, in bytes (excluding the frame
    /// currently being serialized).
    pub queue_bytes: usize,
    /// Fault injection profile.
    pub faults: FaultProfile,
}

impl LinkSpec {
    /// 10 Gbps, 1 µs, 512 KiB queue — a typical data-center access link.
    pub fn fast() -> LinkSpec {
        LinkSpec {
            bandwidth_bps: 10_000_000_000,
            latency: SimDuration::from_micros(1),
            queue_bytes: 512 * 1024,
            faults: FaultProfile::NONE,
        }
    }

    /// 1 Gbps, 5 µs, 256 KiB queue.
    pub fn gigabit() -> LinkSpec {
        LinkSpec {
            bandwidth_bps: 1_000_000_000,
            latency: SimDuration::from_micros(5),
            queue_bytes: 256 * 1024,
            faults: FaultProfile::NONE,
        }
    }

    /// Replaces the fault profile.
    pub fn with_faults(mut self, faults: FaultProfile) -> LinkSpec {
        self.faults = faults;
        self
    }

    /// Replaces the queue capacity.
    pub fn with_queue_bytes(mut self, bytes: usize) -> LinkSpec {
        self.queue_bytes = bytes;
        self
    }
}

/// Per-frame fault probabilities (applied independently, in the order
/// drop → duplicate → corrupt → reorder).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FaultProfile {
    /// Probability a frame is silently dropped.
    pub drop: f64,
    /// Probability one random byte of the frame is flipped (checksums at
    /// the receiver will catch it — which is the point).
    pub corrupt: f64,
    /// Probability the frame is delivered twice.
    pub duplicate: f64,
    /// Probability the frame is held back by
    /// [`reorder_ns`](FaultProfile::reorder_ns) extra nanoseconds, letting frames
    /// transmitted after it overtake it — the simulator's model of
    /// multipath/queueing reordering.
    pub reorder: f64,
    /// Extra delay applied to reordered frames, in nanoseconds. Choose it
    /// larger than a few frame serialization times so reordering actually
    /// happens.
    pub reorder_ns: u64,
}

impl FaultProfile {
    /// No injected faults.
    pub const NONE: FaultProfile = FaultProfile {
        drop: 0.0,
        corrupt: 0.0,
        duplicate: 0.0,
        reorder: 0.0,
        reorder_ns: 0,
    };

    /// A loss-only profile.
    pub fn loss(p: f64) -> FaultProfile {
        FaultProfile { drop: p, ..Self::NONE }
    }

    /// The full adversary short of corruption: independent loss,
    /// duplication and reordering (by `reorder_ns` nanoseconds) at the
    /// given per-frame probabilities — the profile the reliability
    /// acceptance tests inject on every link.
    pub fn chaos(drop: f64, duplicate: f64, reorder: f64, reorder_ns: u64) -> FaultProfile {
        FaultProfile { drop, duplicate, reorder, reorder_ns, ..Self::NONE }
    }

    /// True when all probabilities are zero.
    pub fn is_none(&self) -> bool {
        self.drop == 0.0 && self.corrupt == 0.0 && self.duplicate == 0.0 && self.reorder == 0.0
    }
}

/// One scripted per-frame decision of a [`LinkScript`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultDecision {
    /// Deliver normally.
    Deliver,
    /// Drop the frame.
    Drop,
    /// Deliver the frame twice.
    Duplicate,
    /// Flip one random bit (receiver checksums will catch it).
    Corrupt,
    /// Deliver, but this many nanoseconds late (reordering).
    Delay(u64),
}

/// A deterministic, per-frame fault script for one link direction — the
/// "adversarial link" harness. Unlike [`FaultProfile`] (probabilities
/// drawn from the shared simulation RNG, so decisions shift whenever any
/// other traffic changes), a script pins the fate of the *k*-th frame on
/// the link: decision `k` applies to the `k`-th frame admitted to the
/// egress queue, and once the script is exhausted the link falls back to
/// its [`FaultProfile`]. Attach with
/// [`Simulator::script_link`](crate::Simulator::script_link).
#[derive(Debug, Clone, Default)]
pub struct LinkScript {
    decisions: std::collections::VecDeque<FaultDecision>,
}

impl LinkScript {
    /// A script replaying `decisions` in order.
    pub fn new(decisions: impl IntoIterator<Item = FaultDecision>) -> LinkScript {
        LinkScript { decisions: decisions.into_iter().collect() }
    }

    /// A script that leaves the first `n` frames untouched and then
    /// applies `decision` to the next one — the precision tool for
    /// regression tests ("drop exactly the third flush frame").
    pub fn nth_frame(n: usize, decision: FaultDecision) -> LinkScript {
        let mut decisions: std::collections::VecDeque<FaultDecision> =
            std::iter::repeat_n(FaultDecision::Deliver, n).collect();
        decisions.push_back(decision);
        LinkScript { decisions }
    }

    /// A deterministic adversarial script: `n` per-frame decisions drawn
    /// from a dedicated RNG seeded with `seed` under `profile`'s
    /// probabilities. The same `(seed, n, profile)` always yields the
    /// same decision sequence, independent of every other link and of the
    /// traffic pattern — which makes failures replayable.
    pub fn adversarial(seed: u64, n: usize, profile: FaultProfile) -> LinkScript {
        use rand::SeedableRng;
        let mut rng = SmallRng::seed_from_u64(seed);
        let decisions = (0..n)
            .map(|_| {
                // Independent draws in a fixed order so each probability
                // is honored marginally; first match wins.
                let d: f64 = rng.random();
                let u: f64 = rng.random();
                let r: f64 = rng.random();
                let c: f64 = rng.random();
                if d < profile.drop {
                    FaultDecision::Drop
                } else if u < profile.duplicate {
                    FaultDecision::Duplicate
                } else if r < profile.reorder {
                    FaultDecision::Delay(profile.reorder_ns)
                } else if c < profile.corrupt {
                    FaultDecision::Corrupt
                } else {
                    FaultDecision::Deliver
                }
            })
            .collect();
        LinkScript { decisions }
    }

    /// Decisions not yet consumed.
    pub fn remaining(&self) -> usize {
        self.decisions.len()
    }

    fn pop(&mut self) -> Option<FaultDecision> {
        self.decisions.pop_front()
    }
}

/// Runtime state of one direction of a link.
#[derive(Debug)]
struct Direction {
    /// When the transmitter becomes idle.
    busy_until: SimTime,
    /// Bytes waiting in the egress queue (not yet on the wire).
    queued_bytes: usize,
    /// Receiving endpoint.
    to_node: NodeId,
    to_port: PortId,
}

/// A link instance inside the simulator.
#[derive(Debug)]
pub(crate) struct Link {
    spec: LinkSpec,
    dirs: [Direction; 2],
    /// Optional per-direction fault scripts (consume one decision per
    /// admitted frame, then fall back to `spec.faults`).
    scripts: [Option<LinkScript>; 2],
}

/// Maps `(node, port)` to its link and direction, and owns all links.
///
/// Node ids are dense (assigned 0.. by the simulator), so the lookup
/// tables are plain vectors indexed by node — `transmit` runs on every
/// frame and must not pay for hashing.
#[derive(Debug, Default)]
pub struct PortTable {
    links: Vec<Link>,
    /// `endpoints[node][port]` → (link index, direction index)
    endpoints: Vec<Vec<(u32, u32)>>,
}

impl PortTable {
    /// Connects `a` and `b` with a fresh port on each; returns the port
    /// ids assigned on either side.
    pub(crate) fn connect(
        &mut self,
        a: NodeId,
        b: NodeId,
        spec: LinkSpec,
    ) -> (PortId, PortId) {
        let max = a.0.max(b.0);
        if self.endpoints.len() <= max {
            self.endpoints.resize_with(max + 1, Vec::new);
        }
        let idx = self.links.len();
        // Register endpoint a before computing b's port so a (disallowed
        // upstream, but defended here) self-loop still gets two distinct
        // ports.
        let pa = PortId(self.endpoints[a.0].len());
        self.endpoints[a.0].push((idx as u32, 0));
        let pb = PortId(self.endpoints[b.0].len());
        self.endpoints[b.0].push((idx as u32, 1));
        self.links.push(Link {
            spec,
            dirs: [
                Direction {
                    busy_until: SimTime::ZERO,
                    queued_bytes: 0,
                    to_node: b,
                    to_port: pb,
                },
                Direction {
                    busy_until: SimTime::ZERO,
                    queued_bytes: 0,
                    to_node: a,
                    to_port: pa,
                },
            ],
            scripts: [None, None],
        });
        (pa, pb)
    }

    /// Installs a fault script on one direction of link `idx` (0 = a→b in
    /// connect order), replacing any prior script.
    pub(crate) fn set_script(&mut self, idx: usize, dir: usize, script: LinkScript) {
        self.links[idx].scripts[dir] = Some(script);
    }

    /// Ports attached to `node`.
    pub(crate) fn port_count(&self, node: NodeId) -> usize {
        self.endpoints.get(node.0).map_or(0, Vec::len)
    }

    fn endpoint(&self, node: NodeId, port: PortId) -> Option<(usize, usize)> {
        let &(idx, dir) = self.endpoints.get(node.0)?.get(port.0)?;
        Some((idx as usize, dir as usize))
    }

    /// The `(peer node, peer port)` at the far end of `(node, port)`.
    pub(crate) fn peer(&self, node: NodeId, port: PortId) -> Option<(NodeId, PortId)> {
        let (idx, dir) = self.endpoint(node, port)?;
        let d = &self.links[idx].dirs[dir];
        Some((d.to_node, d.to_port))
    }

    /// Number of links.
    pub(crate) fn link_count(&self) -> usize {
        self.links.len()
    }

    /// Hands a frame to the egress queue of `(node, port)`.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn transmit(
        &mut self,
        node: NodeId,
        port: PortId,
        frame: Frame,
        now: SimTime,
        queue: &mut EventQueue,
        rng: &mut SmallRng,
        stats: &mut StatsTable,
        pool: &FramePool,
    ) {
        let (idx, dir_idx) = self
            .endpoint(node, port)
            .unwrap_or_else(|| panic!("node {node:?} sent on unconnected port {port:?}"));
        let link = &mut self.links[idx];
        let spec = link.spec;
        let dir = &mut link.dirs[dir_idx];
        let len = frame.len();

        // Drop-tail queue admission. A frame only occupies queue space
        // while it waits for the transmitter; the frame being serialized
        // is not counted, matching switch output-port models.
        let start = if dir.busy_until > now { dir.busy_until } else { now };
        if start > now && dir.queued_bytes + len > spec.queue_bytes {
            stats.link_drop_overflow(idx, dir_idx, len);
            return;
        }

        // A scripted decision (consumed per admitted frame) overrides the
        // probabilistic profile entirely; an exhausted script falls back.
        let scripted = link.scripts[dir_idx].as_mut().and_then(LinkScript::pop);
        let (do_drop, do_corrupt, do_duplicate, extra_delay) = match scripted {
            Some(FaultDecision::Deliver) => (false, false, false, 0),
            Some(FaultDecision::Drop) => (true, false, false, 0),
            Some(FaultDecision::Duplicate) => (false, false, true, 0),
            Some(FaultDecision::Corrupt) => (false, true, false, 0),
            Some(FaultDecision::Delay(ns)) => (false, false, false, ns),
            None => {
                let f = spec.faults;
                let drop = f.drop > 0.0 && rng.random::<f64>() < f.drop;
                let corrupt = !drop && f.corrupt > 0.0 && rng.random::<f64>() < f.corrupt;
                let dup = !drop && f.duplicate > 0.0 && rng.random::<f64>() < f.duplicate;
                let delay = if !drop && f.reorder > 0.0 && rng.random::<f64>() < f.reorder {
                    f.reorder_ns
                } else {
                    0
                };
                (drop, corrupt, dup, delay)
            }
        };

        // Fault injection: drop.
        if do_drop {
            stats.link_drop_fault(idx, dir_idx, len);
            return;
        }

        // Serialization: the transmitter processes frames FIFO. Queue
        // space is released when serialization starts (the TxDone event).
        let tx_time = SimDuration::for_bytes(len, spec.bandwidth_bps);
        if start > now {
            dir.queued_bytes += len;
            queue.push(start, EventKind::TxDone { link: idx, dir: dir_idx, bytes: len });
        }
        let departure = start + tx_time;
        dir.busy_until = departure;

        // Corruption: flip one byte; receiver-side checksums detect it.
        // A frame still shared with its sender is copied through the pool
        // first; an exclusively owned one is flipped in place.
        let mut deliver_frame = frame;
        if do_corrupt {
            if deliver_frame.try_mut().is_none() {
                deliver_frame = pool.copy_from_slice(&deliver_frame);
            }
            let owned = deliver_frame.try_mut().expect("fresh pool copy is unshared");
            if !owned.is_empty() {
                let pos = rng.random_range(0..owned.len());
                owned[pos] ^= 1 << rng.random_range(0..8u8);
            }
            stats.link_corrupt(idx, dir_idx);
        }

        // Reordering: hold the frame back past its natural arrival so
        // later transmissions overtake it.
        let mut arrival = departure + spec.latency;
        if extra_delay > 0 {
            arrival += SimDuration::from_nanos(extra_delay);
            stats.link_reorder(idx, dir_idx);
        }
        stats.link_tx(idx, dir_idx, len);

        // Duplication: deliver a second copy one nanosecond later (the
        // copy shares the buffer — one refcount bump, no allocation).
        let duplicate = do_duplicate;
        if duplicate {
            stats.link_duplicate(idx, dir_idx);
        }
        let dup_frame = duplicate.then(|| deliver_frame.clone());
        queue.push(
            arrival,
            EventKind::Deliver { node: dir.to_node, port: dir.to_port, frame: deliver_frame },
        );
        if let Some(frame) = dup_frame {
            queue.push(
                arrival + SimDuration::from_nanos(1),
                EventKind::Deliver { node: dir.to_node, port: dir.to_port, frame },
            );
        }
    }

    /// Called when a `TxDone` event fires: frees queue space.
    pub(crate) fn tx_done(&mut self, link: usize, dir: usize, bytes: usize) {
        let d = &mut self.links[link].dirs[dir];
        d.queued_bytes = d.queued_bytes.saturating_sub(bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn fixture() -> (PortTable, EventQueue, SmallRng, StatsTable, FramePool) {
        (
            PortTable::default(),
            EventQueue::new(),
            SmallRng::seed_from_u64(7),
            StatsTable::default(),
            FramePool::new(),
        )
    }

    #[test]
    fn connect_assigns_sequential_ports() {
        let (mut ports, ..) = fixture();
        let (a0, b0) = ports.connect(NodeId(0), NodeId(1), LinkSpec::fast());
        let (a1, c0) = ports.connect(NodeId(0), NodeId(2), LinkSpec::fast());
        assert_eq!(a0, PortId(0));
        assert_eq!(a1, PortId(1));
        assert_eq!(b0, PortId(0));
        assert_eq!(c0, PortId(0));
        assert_eq!(ports.port_count(NodeId(0)), 2);
        assert_eq!(ports.peer(NodeId(0), PortId(1)), Some((NodeId(2), PortId(0))));
        assert_eq!(ports.link_count(), 2);
    }

    #[test]
    fn transmission_serializes_back_to_back_frames() {
        let (mut ports, mut queue, mut rng, mut stats, pool) = fixture();
        let spec = LinkSpec {
            bandwidth_bps: 8_000_000_000, // 1 byte per ns
            latency: SimDuration::from_nanos(100),
            queue_bytes: 1 << 20,
            faults: FaultProfile::NONE,
        };
        ports.connect(NodeId(0), NodeId(1), spec);
        let frame = Frame::from(vec![0u8; 1000]);
        ports.transmit(NodeId(0), PortId(0), frame.clone(), SimTime::ZERO, &mut queue, &mut rng, &mut stats, &pool);
        ports.transmit(NodeId(0), PortId(0), frame, SimTime::ZERO, &mut queue, &mut rng, &mut stats, &pool);

        // Collect delivery times.
        let mut deliveries = vec![];
        while let Some(ev) = queue.pop() {
            if let EventKind::Deliver { .. } = ev.kind {
                deliveries.push(ev.time);
            }
        }
        // First: 1000 ns tx + 100 ns prop; second: serialized after the first.
        assert_eq!(deliveries, vec![SimTime(1_100), SimTime(2_100)]);
    }

    #[test]
    fn queue_overflow_drops() {
        let (mut ports, mut queue, mut rng, mut stats, pool) = fixture();
        let spec = LinkSpec {
            bandwidth_bps: 8_000, // 1 byte per ms: transmitter stays busy
            latency: SimDuration::ZERO,
            queue_bytes: 1500,
            faults: FaultProfile::NONE,
        };
        ports.connect(NodeId(0), NodeId(1), spec);
        let frame = Frame::from(vec![0u8; 1000]);
        // First frame starts serializing (not queued); the second occupies
        // 1000 of 1500 queue bytes; the third does not fit.
        for _ in 0..3 {
            ports.transmit(NodeId(0), PortId(0), frame.clone(), SimTime::ZERO, &mut queue, &mut rng, &mut stats, &pool);
        }
        let link_stats = stats.link(0);
        assert_eq!(link_stats.dirs[0].drops_overflow, 1);
        assert_eq!(link_stats.dirs[0].tx_frames, 2);
    }

    #[test]
    fn tx_done_frees_queue_space() {
        let (mut ports, mut queue, mut rng, mut stats, pool) = fixture();
        let spec = LinkSpec {
            bandwidth_bps: 8_000_000,
            latency: SimDuration::ZERO,
            queue_bytes: 1000,
            faults: FaultProfile::NONE,
        };
        ports.connect(NodeId(0), NodeId(1), spec);
        let frame = Frame::from(vec![0u8; 800]);
        let t0 = SimTime::ZERO;
        ports.transmit(NodeId(0), PortId(0), frame.clone(), t0, &mut queue, &mut rng, &mut stats, &pool);
        ports.transmit(NodeId(0), PortId(0), frame.clone(), t0, &mut queue, &mut rng, &mut stats, &pool);
        // Queue holds 800 bytes; a third 800-byte frame would overflow now...
        ports.transmit(NodeId(0), PortId(0), frame.clone(), t0, &mut queue, &mut rng, &mut stats, &pool);
        assert_eq!(stats.link(0).dirs[0].drops_overflow, 1);
        // ...but after the first TxDone the space is reclaimed.
        ports.tx_done(0, 0, 800);
        let later = SimTime(1);
        ports.transmit(NodeId(0), PortId(0), frame, later, &mut queue, &mut rng, &mut stats, &pool);
        assert_eq!(stats.link(0).dirs[0].drops_overflow, 1); // no new drop
    }

    #[test]
    fn loss_fault_drops_statistically() {
        let (mut ports, mut queue, mut rng, mut stats, pool) = fixture();
        let spec = LinkSpec::fast().with_faults(FaultProfile::loss(0.5));
        ports.connect(NodeId(0), NodeId(1), spec);
        let frame = Frame::from(vec![0u8; 64]);
        for i in 0..1000 {
            ports.transmit(NodeId(0), PortId(0), frame.clone(), SimTime(i * 1_000_000), &mut queue, &mut rng, &mut stats, &pool);
        }
        let dropped = stats.link(0).dirs[0].drops_fault;
        assert!((300..700).contains(&dropped), "dropped {dropped} of 1000 at p=0.5");
    }

    #[test]
    fn corruption_changes_exactly_one_bit() {
        let (mut ports, mut queue, mut rng, mut stats, pool) = fixture();
        let spec = LinkSpec::fast().with_faults(FaultProfile { corrupt: 1.0, ..FaultProfile::NONE });
        ports.connect(NodeId(0), NodeId(1), spec);
        let original = vec![0xAAu8; 128];
        ports.transmit(NodeId(0), PortId(0), Frame::from(original.clone()), SimTime::ZERO, &mut queue, &mut rng, &mut stats, &pool);
        let delivered = loop {
            match queue.pop().expect("delivery scheduled").kind {
                EventKind::Deliver { frame, .. } => break frame,
                _ => continue,
            }
        };
        let diff_bits: u32 = original
            .iter()
            .zip(delivered.iter())
            .map(|(a, b)| (a ^ b).count_ones())
            .sum();
        assert_eq!(diff_bits, 1);
        assert_eq!(stats.link(0).dirs[0].corrupted, 1);
    }

    #[test]
    fn duplication_delivers_twice() {
        let (mut ports, mut queue, mut rng, mut stats, pool) = fixture();
        let spec = LinkSpec::fast().with_faults(FaultProfile { duplicate: 1.0, ..FaultProfile::NONE });
        ports.connect(NodeId(0), NodeId(1), spec);
        ports.transmit(NodeId(0), PortId(0), Frame::from_slice(b"abc"), SimTime::ZERO, &mut queue, &mut rng, &mut stats, &pool);
        let deliveries = std::iter::from_fn(|| queue.pop())
            .filter(|e| matches!(e.kind, EventKind::Deliver { .. }))
            .count();
        assert_eq!(deliveries, 2);
    }

    #[test]
    fn reorder_fault_delays_delivery() {
        let (mut ports, mut queue, mut rng, mut stats, pool) = fixture();
        let spec = LinkSpec::fast()
            .with_faults(FaultProfile { reorder: 1.0, reorder_ns: 5_000, ..FaultProfile::NONE });
        ports.connect(NodeId(0), NodeId(1), spec);
        ports.transmit(NodeId(0), PortId(0), Frame::from_slice(b"abc"), SimTime::ZERO, &mut queue, &mut rng, &mut stats, &pool);
        let arrival = loop {
            match queue.pop().expect("delivery scheduled").kind {
                EventKind::Deliver { .. } => break queue.peek_time(),
                _ => continue,
            }
        };
        let _ = arrival;
        assert_eq!(stats.link(0).dirs[0].reordered, 1);
    }

    #[test]
    fn scripted_decisions_apply_per_frame_then_fall_back() {
        let (mut ports, mut queue, mut rng, mut stats, pool) = fixture();
        // Clean profile; the script is the only fault source.
        ports.connect(NodeId(0), NodeId(1), LinkSpec::fast());
        ports.set_script(
            0,
            0,
            LinkScript::new([
                FaultDecision::Deliver,
                FaultDecision::Drop,
                FaultDecision::Duplicate,
                FaultDecision::Delay(10_000),
            ]),
        );
        let frame = Frame::from_slice(b"frame");
        for i in 0..6 {
            ports.transmit(NodeId(0), PortId(0), frame.clone(), SimTime(i * 1_000_000), &mut queue, &mut rng, &mut stats, &pool);
        }
        let deliveries = std::iter::from_fn(|| queue.pop())
            .filter(|e| matches!(e.kind, EventKind::Deliver { .. }))
            .count();
        // Frame 0 delivered, 1 dropped, 2 duplicated (×2), 3 delayed,
        // 4 and 5 past the script → delivered cleanly: 6 deliveries.
        assert_eq!(deliveries, 6);
        let d = stats.link(0).dirs[0];
        assert_eq!(d.drops_fault, 1);
        assert_eq!(d.duplicated, 1);
        assert_eq!(d.reordered, 1);
    }

    #[test]
    fn nth_frame_script_targets_exactly_one_frame() {
        let script = LinkScript::nth_frame(3, FaultDecision::Drop);
        assert_eq!(script.remaining(), 4);
        let decisions: Vec<FaultDecision> =
            (0..4).map(|_| script.clone().pop().unwrap()).collect();
        assert_eq!(decisions[0], FaultDecision::Deliver);
        let mut script = script;
        for _ in 0..3 {
            assert_eq!(script.pop(), Some(FaultDecision::Deliver));
        }
        assert_eq!(script.pop(), Some(FaultDecision::Drop));
        assert_eq!(script.pop(), None);
    }

    #[test]
    fn adversarial_script_is_deterministic_in_its_seed() {
        let profile = FaultProfile::chaos(0.2, 0.2, 0.2, 1_000);
        let a = LinkScript::adversarial(7, 500, profile);
        let b = LinkScript::adversarial(7, 500, profile);
        let c = LinkScript::adversarial(8, 500, profile);
        assert_eq!(a.decisions, b.decisions);
        assert_ne!(a.decisions, c.decisions, "different seeds should diverge");
        // Marginal rates are roughly honored.
        let drops = a.decisions.iter().filter(|d| **d == FaultDecision::Drop).count();
        assert!((50..150).contains(&drops), "drops {drops} of 500 at p=0.2");
    }

    #[test]
    #[should_panic(expected = "unconnected port")]
    fn sending_on_unconnected_port_panics() {
        let (mut ports, mut queue, mut rng, mut stats, pool) = fixture();
        ports.transmit(NodeId(0), PortId(0), Frame::new(), SimTime::ZERO, &mut queue, &mut rng, &mut stats, &pool);
    }
}
