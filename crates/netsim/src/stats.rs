//! Counters collected by the simulator: per-node frame/byte counts and
//! per-link transmission/drop/fault statistics. The Figure-3 harness reads
//! reducer NIC counts from here rather than trusting application logic.

use crate::node::NodeId;

/// Per-direction link counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DirStats {
    /// Frames put on the wire.
    pub tx_frames: u64,
    /// Bytes put on the wire.
    pub tx_bytes: u64,
    /// Frames dropped because the egress queue was full.
    pub drops_overflow: u64,
    /// Frames dropped by fault injection.
    pub drops_fault: u64,
    /// Frames corrupted by fault injection.
    pub corrupted: u64,
    /// Frames duplicated by fault injection.
    pub duplicated: u64,
    /// Frames delayed past their natural arrival (reordered) by fault
    /// injection.
    pub reordered: u64,
    /// Frames CE-marked by ECN on queue buildup (see
    /// [`LinkSpec::with_ecn_threshold`](crate::LinkSpec::with_ecn_threshold)).
    pub ecn_marked: u64,
}

/// Both directions of one link (0 = a→b, 1 = b→a in connect order).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkStats {
    /// Direction statistics.
    pub dirs: [DirStats; 2],
}

/// Per-node counters, maintained by the simulator at delivery/send time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NodeStats {
    /// Frames delivered to the node.
    pub frames_in: u64,
    /// Bytes delivered to the node.
    pub bytes_in: u64,
    /// Frames the node transmitted.
    pub frames_out: u64,
    /// Bytes the node transmitted.
    pub bytes_out: u64,
    /// Frames that arrived while the node was scripted down (see
    /// [`crate::NodeScript`]) and were discarded at the dead NIC.
    pub dead_drops: u64,
}

impl NodeStats {
    /// Frames observed at the NIC in either direction — the quantity a
    /// packet capture on the host would report (used for the Figure-3
    /// packet-count panels).
    pub fn frames_observed(&self) -> u64 {
        self.frames_in + self.frames_out
    }
}

// Loud monotonic-counter subtraction — now shared fabric-wide (the UDP
// backend's drivers keep the same kind of counters); re-exported here so
// every per-round delta in the workspace keeps one subtraction policy.
pub use daiet_fabric::counter_delta;

macro_rules! delta_fields {
    ($later:expr, $earlier:expr, $($field:ident),+) => {
        Self { $($field: counter_delta($later.$field, $earlier.$field, stringify!($field)),)+ }
    };
}

impl DirStats {
    /// Counter growth since `earlier` (field-wise `later − earlier`).
    pub fn delta(&self, earlier: &DirStats) -> DirStats {
        delta_fields!(
            self, earlier, tx_frames, tx_bytes, drops_overflow, drops_fault, corrupted,
            duplicated, reordered, ecn_marked
        )
    }
}

impl LinkStats {
    /// Counter growth since `earlier`.
    pub fn delta(&self, earlier: &LinkStats) -> LinkStats {
        LinkStats {
            dirs: [self.dirs[0].delta(&earlier.dirs[0]), self.dirs[1].delta(&earlier.dirs[1])],
        }
    }
}

impl NodeStats {
    /// Counter growth since `earlier`.
    pub fn delta(&self, earlier: &NodeStats) -> NodeStats {
        delta_fields!(self, earlier, frames_in, bytes_in, frames_out, bytes_out, dead_drops)
    }
}

/// Every node and link counter at one instant, as captured by
/// [`crate::Simulator::snapshot`]. Counters are cumulative for the
/// simulator's life; an iterative harness snapshots at each round barrier
/// and reads the round's own traffic with [`delta`](Self::delta), so
/// per-round numbers never silently report the whole run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Per-node counters, indexed by node id.
    pub nodes: Vec<NodeStats>,
    /// Per-link counters, indexed in connect order.
    pub links: Vec<LinkStats>,
    /// Number of partitions whose tables were merged into this snapshot
    /// (1 for a single-threaded simulator). Deltas across snapshots from
    /// differently-partitioned runs are meaningless — each partition
    /// contributes its own counter history — so [`delta`](Self::delta)
    /// refuses to mix them.
    pub partitions: usize,
}

impl StatsSnapshot {
    /// The counter growth between `earlier` and this snapshot,
    /// field-for-field. Panics if any counter shrank (snapshots from
    /// different runs, or arguments swapped) — see [`NodeStats::delta`] —
    /// or if the snapshots were merged from different partition counts.
    /// `earlier` may be shorter (nodes/links added since): missing
    /// entries read as zero.
    pub fn delta(&self, earlier: &StatsSnapshot) -> StatsSnapshot {
        assert_eq!(
            self.partitions, earlier.partitions,
            "snapshot partition counts differ ({} vs {}): deltas across \
             differently-partitioned runs are meaningless",
            self.partitions, earlier.partitions
        );
        let zero_n = NodeStats::default();
        let zero_l = LinkStats::default();
        StatsSnapshot {
            partitions: self.partitions,
            nodes: self
                .nodes
                .iter()
                .enumerate()
                .map(|(i, n)| n.delta(earlier.nodes.get(i).unwrap_or(&zero_n)))
                .collect(),
            links: self
                .links
                .iter()
                .enumerate()
                .map(|(i, l)| l.delta(earlier.links.get(i).unwrap_or(&zero_l)))
                .collect(),
        }
    }

    /// Frames dropped by fault injection, summed over every link and
    /// direction.
    pub fn fault_drops(&self) -> u64 {
        self.links.iter().flat_map(|l| l.dirs).map(|d| d.drops_fault).sum()
    }

    /// Frames dropped to egress-queue overflow, summed over every link
    /// and direction.
    pub fn overflow_drops(&self) -> u64 {
        self.links.iter().flat_map(|l| l.dirs).map(|d| d.drops_overflow).sum()
    }

    /// Frames CE-marked by ECN, summed over every link and direction.
    pub fn ecn_marks(&self) -> u64 {
        self.links.iter().flat_map(|l| l.dirs).map(|d| d.ecn_marked).sum()
    }

    /// Frames discarded at dead (scripted-down) nodes, summed over every
    /// node.
    pub fn dead_drops(&self) -> u64 {
        self.nodes.iter().map(|n| n.dead_drops).sum()
    }

    /// Sums the per-node counters over `ids` — per-job traffic
    /// attribution on a shared fabric. The multi-tenant scheduler calls
    /// this on a delta snapshot (admission → departure) restricted to the
    /// host slots a job leased, so each tenant's frame/byte bill counts
    /// only its own NICs even while neighbors stream through the same
    /// switches. Ids beyond the snapshot read as zero (a node that never
    /// moved a frame).
    pub fn nodes_total(&self, ids: &[NodeId]) -> NodeStats {
        let mut total = NodeStats::default();
        for id in ids {
            if let Some(n) = self.nodes.get(id.0) {
                total.frames_in += n.frames_in;
                total.bytes_in += n.bytes_in;
                total.frames_out += n.frames_out;
                total.bytes_out += n.bytes_out;
                total.dead_drops += n.dead_drops;
            }
        }
        total
    }
}

/// All statistics for one simulation.
#[derive(Debug, Default)]
pub struct StatsTable {
    links: Vec<LinkStats>,
    nodes: Vec<NodeStats>,
}

impl StatsTable {
    fn link_mut(&mut self, idx: usize) -> &mut LinkStats {
        if idx >= self.links.len() {
            self.links.resize(idx + 1, LinkStats::default());
        }
        &mut self.links[idx]
    }

    fn node_mut(&mut self, id: NodeId) -> &mut NodeStats {
        if id.0 >= self.nodes.len() {
            self.nodes.resize(id.0 + 1, NodeStats::default());
        }
        &mut self.nodes[id.0]
    }

    /// Counters for link `idx` (zeros if never touched).
    pub fn link(&self, idx: usize) -> LinkStats {
        self.links.get(idx).copied().unwrap_or_default()
    }

    /// Counters for `node` (zeros if never touched).
    pub fn node(&self, node: NodeId) -> NodeStats {
        self.nodes.get(node.0).copied().unwrap_or_default()
    }

    pub(crate) fn link_tx(&mut self, idx: usize, dir: usize, bytes: usize) {
        let s = &mut self.link_mut(idx).dirs[dir];
        s.tx_frames += 1;
        s.tx_bytes += bytes as u64;
    }

    pub(crate) fn link_drop_overflow(&mut self, idx: usize, dir: usize, _bytes: usize) {
        self.link_mut(idx).dirs[dir].drops_overflow += 1;
    }

    pub(crate) fn link_drop_fault(&mut self, idx: usize, dir: usize, _bytes: usize) {
        self.link_mut(idx).dirs[dir].drops_fault += 1;
    }

    pub(crate) fn link_corrupt(&mut self, idx: usize, dir: usize) {
        self.link_mut(idx).dirs[dir].corrupted += 1;
    }

    pub(crate) fn link_duplicate(&mut self, idx: usize, dir: usize) {
        self.link_mut(idx).dirs[dir].duplicated += 1;
    }

    pub(crate) fn link_reorder(&mut self, idx: usize, dir: usize) {
        self.link_mut(idx).dirs[dir].reordered += 1;
    }

    pub(crate) fn link_ecn_mark(&mut self, idx: usize, dir: usize) {
        self.link_mut(idx).dirs[dir].ecn_marked += 1;
    }

    pub(crate) fn node_dead_drop(&mut self, node: NodeId) {
        self.node_mut(node).dead_drops += 1;
    }

    pub(crate) fn node_sent(&mut self, node: NodeId, bytes: usize) {
        let s = self.node_mut(node);
        s.frames_out += 1;
        s.bytes_out += bytes as u64;
    }

    pub(crate) fn node_received(&mut self, node: NodeId, bytes: usize) {
        let s = self.node_mut(node);
        s.frames_in += 1;
        s.bytes_in += bytes as u64;
    }

    /// Copies the current counters out, padded with zeros to `n_nodes` /
    /// `n_links` (the tables grow lazily, so an untouched tail may not
    /// exist yet). The simulator facade merges partition tables with
    /// [`StatsTable::accumulate_into`] instead; this stays as a direct
    /// single-table snapshot for the unit tests below.
    #[cfg(test)]
    fn snapshot(&self, n_nodes: usize, n_links: usize) -> StatsSnapshot {
        let mut nodes = self.nodes.clone();
        nodes.resize(nodes.len().max(n_nodes), NodeStats::default());
        let mut links = self.links.clone();
        links.resize(links.len().max(n_links), LinkStats::default());
        StatsSnapshot { nodes, links, partitions: 1 }
    }

    /// Adds this table's counters element-wise into `snap` (which must
    /// already be sized). Partition tables are disjoint — each node and
    /// link direction is only ever written by its owning partition — so
    /// summing them reconstructs exactly the single table a
    /// single-threaded run would have produced.
    pub(crate) fn accumulate_into(&self, snap: &mut StatsSnapshot) {
        for (i, n) in self.nodes.iter().enumerate() {
            let s = &mut snap.nodes[i];
            s.frames_in += n.frames_in;
            s.bytes_in += n.bytes_in;
            s.frames_out += n.frames_out;
            s.bytes_out += n.bytes_out;
            s.dead_drops += n.dead_drops;
        }
        for (i, l) in self.links.iter().enumerate() {
            for d in 0..2 {
                let a = &mut snap.links[i].dirs[d];
                let b = &l.dirs[d];
                a.tx_frames += b.tx_frames;
                a.tx_bytes += b.tx_bytes;
                a.drops_overflow += b.drops_overflow;
                a.drops_fault += b.drops_fault;
                a.corrupted += b.corrupted;
                a.duplicated += b.duplicated;
                a.reordered += b.reordered;
                a.ecn_marked += b.ecn_marked;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_grow_on_demand() {
        let mut t = StatsTable::default();
        assert_eq!(t.node(NodeId(5)), NodeStats::default());
        t.node_sent(NodeId(5), 100);
        t.node_received(NodeId(5), 40);
        let s = t.node(NodeId(5));
        assert_eq!(s.frames_out, 1);
        assert_eq!(s.bytes_out, 100);
        assert_eq!(s.frames_in, 1);
        assert_eq!(s.bytes_in, 40);
        assert_eq!(s.frames_observed(), 2);
    }

    #[test]
    fn link_counters_accumulate() {
        let mut t = StatsTable::default();
        t.link_tx(2, 0, 1500);
        t.link_tx(2, 0, 1500);
        t.link_tx(2, 1, 64);
        t.link_drop_overflow(2, 0, 1500);
        t.link_drop_fault(2, 1, 64);
        t.link_corrupt(2, 0);
        t.link_duplicate(2, 1);
        let s = t.link(2);
        assert_eq!(s.dirs[0].tx_frames, 2);
        assert_eq!(s.dirs[0].tx_bytes, 3000);
        assert_eq!(s.dirs[0].drops_overflow, 1);
        assert_eq!(s.dirs[0].corrupted, 1);
        assert_eq!(s.dirs[1].tx_frames, 1);
        assert_eq!(s.dirs[1].drops_fault, 1);
        assert_eq!(s.dirs[1].duplicated, 1);
        // Untouched link reads as zeros.
        assert_eq!(t.link(0), LinkStats::default());
    }

    #[test]
    fn snapshot_deltas_isolate_one_rounds_counters() {
        let mut t = StatsTable::default();
        t.node_sent(NodeId(0), 100);
        t.link_tx(0, 0, 100);
        let before = t.snapshot(2, 1);
        // "Round 2": more traffic on the same counters.
        t.node_sent(NodeId(0), 50);
        t.node_received(NodeId(1), 50);
        t.link_tx(0, 0, 50);
        t.link_drop_fault(0, 1, 50);
        let after = t.snapshot(2, 1);
        let d = after.delta(&before);
        assert_eq!(d.nodes[0].frames_out, 1, "only the round's own frame");
        assert_eq!(d.nodes[0].bytes_out, 50);
        assert_eq!(d.nodes[1].frames_in, 1);
        assert_eq!(d.links[0].dirs[0].tx_frames, 1);
        assert_eq!(d.fault_drops(), 1);
        assert_eq!(d.overflow_drops(), 0);
    }

    #[test]
    fn snapshot_pads_untouched_tail_and_grown_tables() {
        let mut t = StatsTable::default();
        let before = t.snapshot(1, 0); // node 1 and the link don't exist yet
        t.node_sent(NodeId(1), 10);
        t.link_tx(0, 0, 10);
        let after = t.snapshot(2, 1);
        let d = after.delta(&before);
        assert_eq!(d.nodes[1].frames_out, 1, "entries born mid-window count from zero");
        assert_eq!(d.links[0].dirs[0].tx_frames, 1);
        // Padding: requesting more slots than ever touched reads zeros.
        assert_eq!(after.nodes[0], NodeStats::default());
    }

    /// Snapshots merged from different partition counts come from
    /// different runs by construction; subtracting them must fail loudly.
    #[test]
    #[should_panic(expected = "partition counts differ")]
    fn mismatched_partition_snapshots_refuse_to_subtract() {
        let t = StatsTable::default();
        let single = t.snapshot(1, 0);
        let merged = StatsSnapshot { partitions: 2, ..t.snapshot(1, 0) };
        let _ = merged.delta(&single);
    }

    /// Counters are monotonic; a shrinking "delta" means mismatched
    /// snapshots and must fail loudly, not saturate to zero.
    #[test]
    #[should_panic(expected = "went backwards")]
    fn swapped_snapshots_panic_instead_of_saturating() {
        let mut t = StatsTable::default();
        let before = t.snapshot(1, 0);
        t.node_sent(NodeId(0), 10);
        let after = t.snapshot(1, 0);
        let _ = before.delta(&after); // arguments swapped
    }
}
