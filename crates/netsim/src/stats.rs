//! Counters collected by the simulator: per-node frame/byte counts and
//! per-link transmission/drop/fault statistics. The Figure-3 harness reads
//! reducer NIC counts from here rather than trusting application logic.

use crate::node::NodeId;

/// Per-direction link counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DirStats {
    /// Frames put on the wire.
    pub tx_frames: u64,
    /// Bytes put on the wire.
    pub tx_bytes: u64,
    /// Frames dropped because the egress queue was full.
    pub drops_overflow: u64,
    /// Frames dropped by fault injection.
    pub drops_fault: u64,
    /// Frames corrupted by fault injection.
    pub corrupted: u64,
    /// Frames duplicated by fault injection.
    pub duplicated: u64,
    /// Frames delayed past their natural arrival (reordered) by fault
    /// injection.
    pub reordered: u64,
}

/// Both directions of one link (0 = a→b, 1 = b→a in connect order).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkStats {
    /// Direction statistics.
    pub dirs: [DirStats; 2],
}

/// Per-node counters, maintained by the simulator at delivery/send time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NodeStats {
    /// Frames delivered to the node.
    pub frames_in: u64,
    /// Bytes delivered to the node.
    pub bytes_in: u64,
    /// Frames the node transmitted.
    pub frames_out: u64,
    /// Bytes the node transmitted.
    pub bytes_out: u64,
}

impl NodeStats {
    /// Frames observed at the NIC in either direction — the quantity a
    /// packet capture on the host would report (used for the Figure-3
    /// packet-count panels).
    pub fn frames_observed(&self) -> u64 {
        self.frames_in + self.frames_out
    }
}

/// All statistics for one simulation.
#[derive(Debug, Default)]
pub struct StatsTable {
    links: Vec<LinkStats>,
    nodes: Vec<NodeStats>,
}

impl StatsTable {
    fn link_mut(&mut self, idx: usize) -> &mut LinkStats {
        if idx >= self.links.len() {
            self.links.resize(idx + 1, LinkStats::default());
        }
        &mut self.links[idx]
    }

    fn node_mut(&mut self, id: NodeId) -> &mut NodeStats {
        if id.0 >= self.nodes.len() {
            self.nodes.resize(id.0 + 1, NodeStats::default());
        }
        &mut self.nodes[id.0]
    }

    /// Counters for link `idx` (zeros if never touched).
    pub fn link(&self, idx: usize) -> LinkStats {
        self.links.get(idx).copied().unwrap_or_default()
    }

    /// Counters for `node` (zeros if never touched).
    pub fn node(&self, node: NodeId) -> NodeStats {
        self.nodes.get(node.0).copied().unwrap_or_default()
    }

    pub(crate) fn link_tx(&mut self, idx: usize, dir: usize, bytes: usize) {
        let s = &mut self.link_mut(idx).dirs[dir];
        s.tx_frames += 1;
        s.tx_bytes += bytes as u64;
    }

    pub(crate) fn link_drop_overflow(&mut self, idx: usize, dir: usize, _bytes: usize) {
        self.link_mut(idx).dirs[dir].drops_overflow += 1;
    }

    pub(crate) fn link_drop_fault(&mut self, idx: usize, dir: usize, _bytes: usize) {
        self.link_mut(idx).dirs[dir].drops_fault += 1;
    }

    pub(crate) fn link_corrupt(&mut self, idx: usize, dir: usize) {
        self.link_mut(idx).dirs[dir].corrupted += 1;
    }

    pub(crate) fn link_duplicate(&mut self, idx: usize, dir: usize) {
        self.link_mut(idx).dirs[dir].duplicated += 1;
    }

    pub(crate) fn link_reorder(&mut self, idx: usize, dir: usize) {
        self.link_mut(idx).dirs[dir].reordered += 1;
    }

    pub(crate) fn node_sent(&mut self, node: NodeId, bytes: usize) {
        let s = self.node_mut(node);
        s.frames_out += 1;
        s.bytes_out += bytes as u64;
    }

    pub(crate) fn node_received(&mut self, node: NodeId, bytes: usize) {
        let s = self.node_mut(node);
        s.frames_in += 1;
        s.bytes_in += bytes as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_grow_on_demand() {
        let mut t = StatsTable::default();
        assert_eq!(t.node(NodeId(5)), NodeStats::default());
        t.node_sent(NodeId(5), 100);
        t.node_received(NodeId(5), 40);
        let s = t.node(NodeId(5));
        assert_eq!(s.frames_out, 1);
        assert_eq!(s.bytes_out, 100);
        assert_eq!(s.frames_in, 1);
        assert_eq!(s.bytes_in, 40);
        assert_eq!(s.frames_observed(), 2);
    }

    #[test]
    fn link_counters_accumulate() {
        let mut t = StatsTable::default();
        t.link_tx(2, 0, 1500);
        t.link_tx(2, 0, 1500);
        t.link_tx(2, 1, 64);
        t.link_drop_overflow(2, 0, 1500);
        t.link_drop_fault(2, 1, 64);
        t.link_corrupt(2, 0);
        t.link_duplicate(2, 1);
        let s = t.link(2);
        assert_eq!(s.dirs[0].tx_frames, 2);
        assert_eq!(s.dirs[0].tx_bytes, 3000);
        assert_eq!(s.dirs[0].drops_overflow, 1);
        assert_eq!(s.dirs[0].corrupted, 1);
        assert_eq!(s.dirs[1].tx_frames, 1);
        assert_eq!(s.dirs[1].drops_fault, 1);
        assert_eq!(s.dirs[1].duplicated, 1);
        // Untouched link reads as zeros.
        assert_eq!(t.link(0), LinkStats::default());
    }
}
