//! # daiet-transport — end-host transports over the simulator
//!
//! The Figure-3 evaluation compares DAIET against "the original TCP-based
//! data exchange". This crate provides that baseline: a simplified but
//! standards-shaped TCP ([`tcp`]) with three-way handshake, MSS
//! segmentation, a sliding window, cumulative + delayed ACKs,
//! out-of-order reassembly, RTO retransmission with exponential backoff
//! and FIN teardown — enough that byte counts, segment counts and loss
//! behaviour look like a real kernel's bulk transfer, which is what the
//! packet/byte-reduction metrics measure.
//!
//! [`udp`] adds a thin datagram convenience layer used by examples.
//!
//! Design notes (per the session guides): protocol logic is a pure state
//! machine ([`tcp::TcpStack`]) driven by explicit `on_frame`/`on_tick`
//! calls and polled for output frames — no hidden time, no threads — with
//! thin [`daiet_netsim::Node`] adapters ([`tcp::BulkSenderNode`],
//! [`tcp::SinkReceiverNode`]) on top.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod tcp;
pub mod udp;

pub use tcp::{BulkSenderNode, SinkReceiverNode, SocketEvent, TcpConfig, TcpStack};
