//! A thin UDP convenience layer: fire-and-forget datagrams between hosts
//! identified by their numeric ids (the DAIET protocol itself builds its
//! frames directly; this helper serves examples and tests).

use daiet_netsim::Frame;
use daiet_wire::stack::{build_udp, Endpoints, Parsed, Transport};

/// Builds a ready-to-send UDP frame between two host ids.
pub fn datagram(src_host: u32, dst_host: u32, src_port: u16, dst_port: u16, payload: &[u8]) -> Frame {
    Frame::from(build_udp(
        &Endpoints::from_ids(src_host, dst_host),
        src_port,
        dst_port,
        payload,
    ))
}

/// Extracts `(src_port, dst_port, payload)` from a frame if it is a plain
/// UDP datagram addressed to anyone (checksum verified).
pub fn open(frame: &[u8]) -> Option<(u16, u16, Vec<u8>)> {
    match Parsed::dissect(frame).ok()?.transport {
        Transport::Udp { udp, payload } => Some((udp.src_port, udp.dst_port, payload.to_vec())),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let f = datagram(3, 4, 1000, 2000, b"ping");
        let (sp, dp, payload) = open(&f).unwrap();
        assert_eq!((sp, dp), (1000, 2000));
        assert_eq!(payload, b"ping");
    }

    #[test]
    fn non_udp_is_none() {
        assert_eq!(open(&[0u8; 64]), None);
    }

    #[test]
    fn corrupted_datagram_is_none() {
        let f = datagram(3, 4, 1, 2, b"data");
        let mut v = f.to_vec();
        let n = v.len() - 1;
        v[n] ^= 1;
        assert_eq!(open(&v), None);
    }
}
