//! A simplified TCP: enough protocol to make the Figure-3 baseline's
//! packet and byte counts faithful.
//!
//! Supported: three-way handshake, MSS segmentation, fixed-size sliding
//! window, cumulative ACKs with delayed ACK (every second segment or a
//! timer), out-of-order reassembly, go-back-N retransmission on RTO with
//! exponential backoff, FIN teardown. Unsupported (documented, like
//! smoltcp's feature list): congestion control beyond the fixed window,
//! SACK, window scaling, timestamps, RST handling beyond teardown,
//! simultaneous open.

use daiet_netsim::{Fabric, Frame, FramePool, Node, PortId, SimDuration, SimTime};
use daiet_wire::stack::{build_tcp_into, Endpoints, Parsed, Transport};
use daiet_wire::tcpseg::{Flags, Repr};
use daiet_wire::fnv::FnvHashMap;
use std::collections::{BTreeMap, VecDeque};

/// Transport parameters.
#[derive(Debug, Clone, Copy)]
pub struct TcpConfig {
    /// Maximum segment size (payload bytes per data segment). 1448 models
    /// a 1500-byte MTU minus IP/TCP headers and a timestamp option's
    /// worth of slack.
    pub mss: usize,
    /// Sliding window (bytes in flight).
    pub window: usize,
    /// Initial retransmission timeout.
    pub rto: SimDuration,
    /// Delayed-ACK timer.
    pub ack_delay: SimDuration,
    /// Enables ECN (RFC 3168): outgoing frames carry ECT(0), CE marks are
    /// echoed back as ECE, and the sender halves its congestion window
    /// once per RTT in response (with additive increase back up to
    /// `window`). Off by default so fixed-window runs stay bit-identical.
    pub ecn: bool,
}

impl Default for TcpConfig {
    fn default() -> Self {
        TcpConfig {
            mss: 1448,
            window: 64 * 1024,
            rto: SimDuration::from_millis(1),
            ack_delay: SimDuration::from_micros(200),
            ecn: false,
        }
    }
}

impl TcpConfig {
    /// The default configuration with ECN marking/response enabled.
    pub fn with_ecn(mut self) -> TcpConfig {
        self.ecn = true;
        self
    }
}

/// Identifies a connection within one stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ConnKey {
    /// Local port.
    pub local_port: u16,
    /// Remote host id.
    pub remote_host: u32,
    /// Remote port.
    pub remote_port: u16,
}

/// Events surfaced to the application.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SocketEvent {
    /// Active open completed.
    Connected(ConnKey),
    /// Passive open completed.
    Accepted(ConnKey),
    /// New bytes are readable.
    Readable(ConnKey),
    /// The peer finished sending (FIN received and all data delivered).
    PeerFin(ConnKey),
    /// The connection is fully closed.
    Closed(ConnKey),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    SynSent,
    SynReceived,
    Established,
    /// We sent FIN, awaiting its ACK.
    FinWait,
    /// Peer sent FIN; we may still send.
    CloseWait,
    /// Both FINs exchanged; ours awaits ACK.
    LastAck,
    Closed,
}

#[derive(Debug)]
struct Connection {
    state: State,
    /// Oldest unacknowledged sequence number.
    snd_una: u32,
    /// Next sequence number to send.
    snd_nxt: u32,
    /// Bytes accepted from the app, not yet acknowledged; front byte has
    /// sequence number `buf_base`.
    send_buf: VecDeque<u8>,
    buf_base: u32,
    /// App called close: emit FIN once the buffer drains.
    fin_queued: bool,
    fin_sent: bool,
    /// Next expected receive sequence number.
    rcv_nxt: u32,
    /// Out-of-order segments keyed by sequence number.
    ooo: BTreeMap<u32, Vec<u8>>,
    /// In-order bytes awaiting the application.
    recv_buf: VecDeque<u8>,
    peer_fin_at: Option<u32>,
    peer_fin_delivered: bool,
    /// Retransmission state.
    rto_current: SimDuration,
    rto_deadline: Option<SimTime>,
    /// Delayed-ACK state.
    ack_deadline: Option<SimTime>,
    segs_since_ack: u32,
    /// Congestion window in bytes (ECN only). `usize::MAX` is the
    /// "never reduced" sentinel; the effective send window is always
    /// `min(cwnd, cfg.window)`, so the sentinel means "fixed window".
    cwnd: usize,
    /// End of the last reduction's flight: ECE is ignored until
    /// `snd_una` passes this, giving one halving per window of data
    /// (RFC 3168 §6.1.2's once-per-RTT rule).
    recover: u32,
    /// Receiver saw CE and must echo ECE until the sender's CWR arrives.
    ce_pending: bool,
    /// Sender reduced and must advertise CWR on its next data segment.
    cwr_pending: bool,
    /// Statistics.
    retransmit_segments: u64,
    timeouts: u64,
}

impl Connection {
    fn new(state: State) -> Connection {
        Connection {
            state,
            snd_una: 0,
            snd_nxt: 0,
            send_buf: VecDeque::new(),
            buf_base: 1, // first data byte follows the SYN
            fin_queued: false,
            fin_sent: false,
            rcv_nxt: 0,
            ooo: BTreeMap::new(),
            recv_buf: VecDeque::new(),
            peer_fin_at: None,
            peer_fin_delivered: false,
            rto_current: SimDuration::ZERO,
            rto_deadline: None,
            ack_deadline: None,
            segs_since_ack: 0,
            cwnd: usize::MAX,
            recover: 0,
            ce_pending: false,
            cwr_pending: false,
            retransmit_segments: 0,
            timeouts: 0,
        }
    }

    fn bytes_in_flight(&self) -> usize {
        self.snd_nxt.wrapping_sub(self.snd_una) as usize
    }

    /// Payload bytes not yet sent (buffered beyond snd_nxt).
    fn unsent_bytes(&self) -> usize {
        let sent_from_buf = self.snd_nxt.wrapping_sub(self.buf_base) as usize;
        self.send_buf.len().saturating_sub(sent_from_buf.min(self.send_buf.len()))
    }
}

/// Aggregate statistics across a stack.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TcpStats {
    /// Data segments transmitted (including retransmissions).
    pub data_segments_out: u64,
    /// Pure ACK/control segments transmitted.
    pub control_segments_out: u64,
    /// Segments received and accepted.
    pub segments_in: u64,
    /// Retransmitted segments.
    pub retransmits: u64,
    /// RTO expirations.
    pub timeouts: u64,
    /// Application payload bytes delivered in order.
    pub bytes_delivered: u64,
    /// Frames received with the CE codepoint set (ECN only).
    pub ecn_ce_received: u64,
    /// Congestion-window halvings in response to ECE (ECN only).
    pub cwnd_reductions: u64,
}

/// The TCP state machine for one host: multiple connections, listeners,
/// deterministic timers.
#[derive(Debug)]
pub struct TcpStack {
    host: u32,
    cfg: TcpConfig,
    conns: FnvHashMap<ConnKey, Connection>,
    listeners: Vec<u16>,
    events: VecDeque<SocketEvent>,
    /// Frames ready to transmit.
    out: VecDeque<Frame>,
    stats: TcpStats,
    next_ephemeral: u16,
    /// Buffer pool for outgoing frames (each stack recycles its own).
    pool: FramePool,
    /// Reused payload staging buffer for segment transmission.
    seg_buf: Vec<u8>,
}

impl TcpStack {
    /// A stack for the host with id `host` (addresses derive from it).
    pub fn new(host: u32, cfg: TcpConfig) -> TcpStack {
        TcpStack {
            host,
            cfg,
            conns: FnvHashMap::default(),
            listeners: Vec::new(),
            events: VecDeque::new(),
            out: VecDeque::new(),
            stats: TcpStats::default(),
            next_ephemeral: 40_000,
            pool: FramePool::new(),
            seg_buf: Vec::new(),
        }
    }

    /// Statistics so far.
    pub fn stats(&self) -> TcpStats {
        self.stats
    }

    /// Replaces the stack's frame pool. The node adapters call this with
    /// the simulator's pool at start-up so a pool-disabled simulation
    /// (the pooled-vs-unpooled determinism cross-check) covers TCP
    /// frames too.
    pub fn set_pool(&mut self, pool: FramePool) {
        self.pool = pool;
    }

    /// Starts listening on `port`.
    pub fn listen(&mut self, port: u16) {
        if !self.listeners.contains(&port) {
            self.listeners.push(port);
        }
    }

    /// Opens a connection to `remote_host:remote_port`; returns its key.
    pub fn connect(&mut self, now: SimTime, remote_host: u32, remote_port: u16) -> ConnKey {
        let local_port = self.next_ephemeral;
        self.next_ephemeral = self.next_ephemeral.wrapping_add(1).max(40_000);
        let key = ConnKey { local_port, remote_host, remote_port };
        let mut conn = Connection::new(State::SynSent);
        conn.rto_current = self.cfg.rto;
        self.emit(&key, &mut conn, Flags::SYN, 0, 0, &[]);
        conn.snd_nxt = 1;
        conn.rto_deadline = Some(now + self.cfg.rto);
        self.conns.insert(key, conn);
        key
    }

    /// Queues application data on an established connection.
    pub fn send(&mut self, key: ConnKey, data: &[u8]) {
        let conn = self.conns.get_mut(&key).expect("send on unknown connection");
        assert!(
            matches!(conn.state, State::Established | State::CloseWait | State::SynSent | State::SynReceived),
            "send after close"
        );
        conn.send_buf.extend(data);
    }

    /// Half-closes: a FIN follows the last queued byte.
    pub fn close(&mut self, key: ConnKey) {
        if let Some(conn) = self.conns.get_mut(&key) {
            conn.fin_queued = true;
        }
    }

    /// Reads up to `max` in-order bytes.
    pub fn recv(&mut self, key: ConnKey, max: usize) -> Vec<u8> {
        let Some(conn) = self.conns.get_mut(&key) else { return Vec::new() };
        let n = max.min(conn.recv_buf.len());
        conn.recv_buf.drain(..n).collect()
    }

    /// Readable bytes pending on `key`.
    pub fn readable(&self, key: ConnKey) -> usize {
        self.conns.get(&key).map_or(0, |c| c.recv_buf.len())
    }

    /// Pops the next application event.
    pub fn poll_event(&mut self) -> Option<SocketEvent> {
        self.events.pop_front()
    }

    /// Drains frames ready for the wire.
    pub fn poll_transmit(&mut self) -> Vec<Frame> {
        self.out.drain(..).collect()
    }

    /// The earliest timer deadline across connections, if any.
    pub fn next_deadline(&self) -> Option<SimTime> {
        self.conns
            .values()
            .flat_map(|c| [c.rto_deadline, c.ack_deadline])
            .flatten()
            .min()
    }

    /// True when every connection is fully closed and nothing is pending.
    pub fn is_idle(&self) -> bool {
        self.out.is_empty()
            && self.conns.values().all(|c| c.state == State::Closed)
    }

    fn emit(&mut self, key: &ConnKey, conn: &mut Connection, flags: Flags, seq: u32, ack: u32, payload: &[u8]) {
        let mut flags = flags;
        if self.cfg.ecn {
            // Echo congestion back to the sender until its CWR arrives;
            // advertise our own reduction on the next data segment.
            if conn.ce_pending && flags.contains(Flags::ACK) {
                flags |= Flags::ECE;
            }
            if conn.cwr_pending && !payload.is_empty() {
                flags |= Flags::CWR;
                conn.cwr_pending = false;
            }
        }
        let repr = Repr {
            src_port: key.local_port,
            dst_port: key.remote_port,
            seq,
            ack,
            flags,
            window: self.cfg.window.min(u16::MAX as usize) as u16,
            payload_len: payload.len(),
        };
        let ep = Endpoints::from_ids(self.host, key.remote_host);
        let mut buf = self.pool.buffer();
        build_tcp_into(&mut buf, &ep, &repr, payload);
        if self.cfg.ecn {
            // Declare the transport ECN-capable so queues mark instead of
            // dropping. The TCP checksum does not cover this byte; only
            // the IP header checksum needs refreshing.
            let mut ip = daiet_wire::ipv4::Packet::new_unchecked(&mut buf[14..]);
            ip.set_ecn(daiet_wire::ipv4::ECN_ECT0);
            ip.fill_checksum();
        }
        self.out.push_back(self.pool.frame(buf));
        if payload.is_empty() {
            self.stats.control_segments_out += 1;
        } else {
            self.stats.data_segments_out += 1;
        }
        conn.segs_since_ack = 0; // every segment carries the latest ack
    }

    /// Advances the send side of one connection: transmit while window
    /// and buffer allow, then the FIN.
    fn pump_connection(&mut self, key: ConnKey, now: SimTime) {
        let Some(mut conn) = self.conns.remove(&key) else { return };
        // The effective send window: the fixed window, further clamped by
        // the congestion window once ECN has ever reduced it.
        let wnd = self.cfg.window.min(conn.cwnd);
        if matches!(conn.state, State::Established | State::CloseWait | State::FinWait | State::LastAck) {
            // Data segments. The payload is staged in a reusable scratch
            // buffer (`VecDeque` storage may wrap, so a contiguous copy is
            // needed for checksumming either way).
            while conn.unsent_bytes() > 0 && conn.bytes_in_flight() < wnd {
                let offset = conn.snd_nxt.wrapping_sub(conn.buf_base) as usize;
                let len = conn
                    .unsent_bytes()
                    .min(self.cfg.mss)
                    .min(wnd - conn.bytes_in_flight());
                let mut payload = std::mem::take(&mut self.seg_buf);
                payload.clear();
                payload.extend(conn.send_buf.iter().skip(offset).take(len));
                let seq = conn.snd_nxt;
                let ack = conn.rcv_nxt;
                self.emit(&key, &mut conn, Flags::ACK | Flags::PSH, seq, ack, &payload);
                self.seg_buf = payload;
                conn.snd_nxt = conn.snd_nxt.wrapping_add(len as u32);
                if conn.rto_deadline.is_none() {
                    conn.rto_deadline = Some(now + conn.rto_current);
                }
            }
            // FIN once the buffer is drained.
            if conn.fin_queued
                && !conn.fin_sent
                && conn.unsent_bytes() == 0
                && conn.bytes_in_flight() < wnd
            {
                let seq = conn.snd_nxt;
                let ack = conn.rcv_nxt;
                self.emit(&key, &mut conn, Flags::FIN | Flags::ACK, seq, ack, &[]);
                conn.snd_nxt = conn.snd_nxt.wrapping_add(1);
                conn.fin_sent = true;
                conn.state = match conn.state {
                    State::CloseWait => State::LastAck,
                    _ => State::FinWait,
                };
                if conn.rto_deadline.is_none() {
                    conn.rto_deadline = Some(now + conn.rto_current);
                }
            }
        }
        self.conns.insert(key, conn);
    }

    /// Feeds one received frame (already checksum-verified by dissection).
    /// Returns `true` if the frame was TCP for this host.
    pub fn on_frame(&mut self, now: SimTime, frame: &[u8]) -> bool {
        let Ok(parsed) = Parsed::dissect(frame) else { return false };
        let Transport::Tcp { tcp, payload } = parsed.transport else { return false };
        // Congestion Experienced, set by a queue along the path. Dissection
        // already established Ethernet/IPv4 framing, so the ECN codepoint
        // sits at a fixed offset.
        let ce_marked = self.cfg.ecn && frame[15] & 0b11 == daiet_wire::ipv4::ECN_CE;
        // Identify the connection.
        let remote_host = {
            // Host ids encode into the low bytes of 10.x.y.z addresses.
            let b = parsed.ip.src_addr.0;
            u32::from_be_bytes([0, b[1], b[2], b[3]])
        };
        let key = ConnKey {
            local_port: tcp.dst_port,
            remote_host,
            remote_port: tcp.src_port,
        };
        self.stats.segments_in += 1;

        if !self.conns.contains_key(&key) {
            // Passive open?
            if tcp.flags.contains(Flags::SYN) && !tcp.flags.contains(Flags::ACK) {
                if self.listeners.contains(&tcp.dst_port) {
                    let mut conn = Connection::new(State::SynReceived);
                    conn.rto_current = self.cfg.rto;
                    conn.rcv_nxt = tcp.seq.wrapping_add(1);
                    let ack = conn.rcv_nxt;
                    self.emit(&key, &mut conn, Flags::SYN | Flags::ACK, 0, ack, &[]);
                    conn.snd_nxt = 1;
                    conn.rto_deadline = Some(now + self.cfg.rto);
                    self.conns.insert(key, conn);
                }
                return true;
            }
            return true; // stray segment for a dead connection
        }

        let mut conn = self.conns.remove(&key).expect("checked above");
        let mut need_ack = false;
        let mut advanced = false;

        if self.cfg.ecn {
            // A CWR from the peer closes the current echo episode; a CE
            // mark (possibly on the very same frame) opens a new one.
            if tcp.flags.contains(Flags::CWR) {
                conn.ce_pending = false;
            }
            if ce_marked {
                conn.ce_pending = true;
                self.stats.ecn_ce_received += 1;
            }
        }

        // SYN-ACK completes an active open.
        if conn.state == State::SynSent && tcp.flags.contains(Flags::SYN | Flags::ACK) {
            conn.rcv_nxt = tcp.seq.wrapping_add(1);
            conn.snd_una = tcp.ack;
            conn.state = State::Established;
            conn.rto_deadline = None;
            let (seq, ack) = (conn.snd_nxt, conn.rcv_nxt);
            self.emit(&key, &mut conn, Flags::ACK, seq, ack, &[]);
            self.events.push_back(SocketEvent::Connected(key));
            self.conns.insert(key, conn);
            self.pump_connection(key, now);
            return true;
        }

        // ACK processing (cumulative).
        if tcp.flags.contains(Flags::ACK) {
            if conn.state == State::SynReceived && tcp.ack >= 1 {
                conn.state = State::Established;
                conn.snd_una = conn.snd_una.max(1);
                conn.rto_deadline = None;
                self.events.push_back(SocketEvent::Accepted(key));
            }
            if tcp.ack.wrapping_sub(conn.snd_una) as i32 > 0 && tcp.ack <= conn.snd_nxt {
                // Drop acknowledged bytes from the buffer.
                let acked_data_end = tcp.ack.min(conn.buf_base.wrapping_add(conn.send_buf.len() as u32));
                if acked_data_end.wrapping_sub(conn.buf_base) as i32 > 0 {
                    let n = acked_data_end.wrapping_sub(conn.buf_base) as usize;
                    conn.send_buf.drain(..n.min(conn.send_buf.len()));
                    conn.buf_base = acked_data_end;
                }
                conn.snd_una = tcp.ack;
                if self.cfg.ecn
                    && conn.cwnd != usize::MAX
                    && conn.cwnd < self.cfg.window
                    && !tcp.flags.contains(Flags::ECE)
                {
                    // Additive increase: ~one MSS per window of new ACKs,
                    // capped at the configured fixed window.
                    let inc = (self.cfg.mss * self.cfg.mss / conn.cwnd.max(1)).max(1);
                    conn.cwnd = (conn.cwnd + inc).min(self.cfg.window);
                }
                conn.rto_current = self.cfg.rto; // fresh progress resets backoff
                conn.rto_deadline = if conn.bytes_in_flight() > 0 {
                    Some(now + conn.rto_current)
                } else {
                    None
                };
                // FIN acknowledged?
                if conn.fin_sent && conn.snd_una == conn.snd_nxt {
                    match conn.state {
                        State::FinWait
                            // Wait for the peer's FIN (or it already came).
                            if conn.peer_fin_delivered => {
                                conn.state = State::Closed;
                                self.events.push_back(SocketEvent::Closed(key));
                            }
                        State::LastAck => {
                            conn.state = State::Closed;
                            self.events.push_back(SocketEvent::Closed(key));
                        }
                        _ => {}
                    }
                }
            }
            // ECN-Echo: halve the congestion window, at most once per
            // window of data (further ECEs are ignored until `snd_una`
            // passes the reduction point).
            if self.cfg.ecn
                && tcp.flags.contains(Flags::ECE)
                && conn.snd_una.wrapping_sub(conn.recover) as i32 >= 0
            {
                let cur = conn.cwnd.min(self.cfg.window);
                conn.cwnd = (cur / 2).max(self.cfg.mss);
                conn.recover = conn.snd_nxt;
                conn.cwr_pending = true;
                self.stats.cwnd_reductions += 1;
            }
        }

        // In-order / out-of-order payload.
        if !payload.is_empty() {
            let seg_seq = tcp.seq;
            if seg_seq == conn.rcv_nxt {
                conn.recv_buf.extend(payload.iter().copied());
                conn.rcv_nxt = conn.rcv_nxt.wrapping_add(payload.len() as u32);
                self.stats.bytes_delivered += payload.len() as u64;
                advanced = true;
                // Drain any contiguous out-of-order segments.
                while let Some((&s, _)) = conn.ooo.first_key_value() {
                    if s != conn.rcv_nxt {
                        if s.wrapping_sub(conn.rcv_nxt) as i32 <= 0 {
                            conn.ooo.pop_first(); // stale overlap
                            continue;
                        }
                        break;
                    }
                    let (_, data) = conn.ooo.pop_first().expect("checked");
                    conn.rcv_nxt = conn.rcv_nxt.wrapping_add(data.len() as u32);
                    self.stats.bytes_delivered += data.len() as u64;
                    conn.recv_buf.extend(data);
                }
            } else if seg_seq.wrapping_sub(conn.rcv_nxt) as i32 > 0 {
                // Out-of-order: copy out of the frame (rare path).
                conn.ooo.entry(seg_seq).or_insert_with(|| payload.to_vec());
                need_ack = true; // duplicate ACK hints the gap
            } else {
                need_ack = true; // old segment: re-ACK
            }
            conn.segs_since_ack += 1;
        }

        // Peer FIN.
        if tcp.flags.contains(Flags::FIN) {
            let fin_seq = tcp.seq.wrapping_add(payload_len_of(&tcp));
            if conn.peer_fin_at.is_none() {
                conn.peer_fin_at = Some(fin_seq);
            }
        }
        if let Some(fin_seq) = conn.peer_fin_at {
            if !conn.peer_fin_delivered && conn.rcv_nxt == fin_seq {
                conn.rcv_nxt = conn.rcv_nxt.wrapping_add(1);
                conn.peer_fin_delivered = true;
                need_ack = true;
                self.events.push_back(SocketEvent::PeerFin(key));
                match conn.state {
                    State::Established => conn.state = State::CloseWait,
                    State::FinWait if conn.fin_sent && conn.snd_una == conn.snd_nxt => {
                        conn.state = State::Closed;
                        self.events.push_back(SocketEvent::Closed(key));
                    }
                    _ => {}
                }
            }
        }

        if advanced {
            self.events.push_back(SocketEvent::Readable(key));
        }

        // ACK policy: immediate on every 2nd segment, gaps, FIN; else
        // delayed.
        if need_ack || conn.segs_since_ack >= 2 {
            let (seq, ack) = (conn.snd_nxt, conn.rcv_nxt);
            self.emit(&key, &mut conn, Flags::ACK, seq, ack, &[]);
            conn.ack_deadline = None;
        } else if advanced && conn.ack_deadline.is_none() {
            conn.ack_deadline = Some(now + self.cfg.ack_delay);
        }

        self.conns.insert(key, conn);
        self.pump_connection(key, now);
        true
    }

    /// Fires expired timers: RTO retransmission and delayed ACKs.
    pub fn on_tick(&mut self, now: SimTime) {
        let keys: Vec<ConnKey> = self.conns.keys().copied().collect();
        for key in keys {
            let mut conn = self.conns.remove(&key).expect("key from map");
            if let Some(dl) = conn.ack_deadline {
                if dl <= now {
                    conn.ack_deadline = None;
                    let (seq, ack) = (conn.snd_nxt, conn.rcv_nxt);
                    self.emit(&key, &mut conn, Flags::ACK, seq, ack, &[]);
                }
            }
            if let Some(dl) = conn.rto_deadline {
                if dl <= now {
                    conn.timeouts += 1;
                    self.stats.timeouts += 1;
                    conn.rto_current = conn.rto_current.saturating_mul(2);
                    conn.rto_deadline = Some(now + conn.rto_current);
                    match conn.state {
                        State::SynSent => {
                            self.stats.retransmits += 1;
                            let ack = 0;
                            self.emit(&key, &mut conn, Flags::SYN, 0, ack, &[]);
                        }
                        State::SynReceived => {
                            self.stats.retransmits += 1;
                            let ack = conn.rcv_nxt;
                            self.emit(&key, &mut conn, Flags::SYN | Flags::ACK, 0, ack, &[]);
                        }
                        State::Closed => {
                            conn.rto_deadline = None;
                        }
                        _ => {
                            // Go-back-N: rewind and let the pump resend.
                            conn.retransmit_segments += 1;
                            self.stats.retransmits += 1;
                            conn.snd_nxt = conn.snd_una.max(conn.buf_base);
                            if conn.fin_sent {
                                conn.fin_sent = false; // FIN will be resent after data
                            }
                        }
                    }
                }
            }
            self.conns.insert(key, conn);
            self.pump_connection(key, now);
        }
    }
}

/// Payload length from a parsed repr (helper: the repr carries it).
fn payload_len_of(tcp: &Repr) -> u32 {
    tcp.payload_len as u32
}

// ---------------------------------------------------------------------
// Node adapters
// ---------------------------------------------------------------------

const TICK_TOKEN: u64 = u64::MAX;

/// A host that connects and streams a byte blob, then closes — one
/// connection per `(peer, payload)` entry (the mapper side of the TCP
/// shuffle baseline).
pub struct BulkSenderNode {
    stack: TcpStack,
    jobs: Vec<(u32, u16, Vec<u8>)>,
    started: bool,
}

impl BulkSenderNode {
    /// A sender on host `host` delivering each `(peer, port, bytes)` job.
    pub fn new(host: u32, cfg: TcpConfig, jobs: Vec<(u32, u16, Vec<u8>)>) -> BulkSenderNode {
        BulkSenderNode { stack: TcpStack::new(host, cfg), jobs, started: false }
    }

    /// The underlying stack (statistics).
    pub fn stack(&self) -> &TcpStack {
        &self.stack
    }

    fn flush(&mut self, ctx: &mut dyn Fabric) {
        for frame in self.stack.poll_transmit() {
            ctx.send(PortId(0), frame);
        }
        while self.stack.poll_event().is_some() {}
        if let Some(deadline) = self.stack.next_deadline() {
            let now = ctx.now();
            let delay = if deadline > now { deadline - now } else { SimDuration::from_nanos(1) };
            ctx.schedule(delay, TICK_TOKEN);
        }
    }
}

impl Node for BulkSenderNode {
    fn on_start(&mut self, ctx: &mut dyn Fabric) {
        if !self.started {
            self.started = true;
            self.stack.set_pool(ctx.pool().clone());
            for (peer, port, data) in std::mem::take(&mut self.jobs) {
                let key = self.stack.connect(ctx.now(), peer, port);
                self.stack.send(key, &data);
                self.stack.close(key);
            }
            self.flush(ctx);
        }
    }

    fn on_packet(&mut self, ctx: &mut dyn Fabric, _port: PortId, frame: Frame) {
        self.stack.on_frame(ctx.now(), &frame);
        self.flush(ctx);
    }

    fn on_timer(&mut self, ctx: &mut dyn Fabric, _token: u64) {
        self.stack.on_tick(ctx.now());
        self.flush(ctx);
    }

    fn name(&self) -> String {
        "tcp-bulk-sender".into()
    }
}

/// A host that accepts connections on a port and accumulates everything
/// received, per peer (the reducer side of the TCP shuffle baseline).
pub struct SinkReceiverNode {
    stack: TcpStack,
    /// Bytes received per connection, completed when the peer FINs.
    pub received: FnvHashMap<ConnKey, Vec<u8>>,
    /// Connections whose peer has finished sending.
    pub finished: Vec<ConnKey>,
    /// Time the last expected stream finished, if tracked.
    pub last_fin_at: Option<SimTime>,
}

impl SinkReceiverNode {
    /// A receiver on host `host` listening on `port`.
    pub fn new(host: u32, cfg: TcpConfig, port: u16) -> SinkReceiverNode {
        let mut stack = TcpStack::new(host, cfg);
        stack.listen(port);
        SinkReceiverNode {
            stack,
            received: FnvHashMap::default(),
            finished: Vec::new(),
            last_fin_at: None,
        }
    }

    /// The underlying stack (statistics).
    pub fn stack(&self) -> &TcpStack {
        &self.stack
    }

    fn drain(&mut self, ctx: &mut dyn Fabric) {
        while let Some(ev) = self.stack.poll_event() {
            match ev {
                SocketEvent::Readable(key) => {
                    let data = self.stack.recv(key, usize::MAX);
                    self.received.entry(key).or_default().extend(data);
                }
                SocketEvent::PeerFin(key) => {
                    let data = self.stack.recv(key, usize::MAX);
                    self.received.entry(key).or_default().extend(data);
                    self.finished.push(key);
                    self.last_fin_at = Some(ctx.now());
                    self.stack.close(key); // close our side too
                }
                _ => {}
            }
        }
        for frame in self.stack.poll_transmit() {
            ctx.send(PortId(0), frame);
        }
        if let Some(deadline) = self.stack.next_deadline() {
            let now = ctx.now();
            let delay = if deadline > now { deadline - now } else { SimDuration::from_nanos(1) };
            ctx.schedule(delay, TICK_TOKEN);
        }
    }
}

impl Node for SinkReceiverNode {
    fn on_start(&mut self, ctx: &mut dyn Fabric) {
        self.stack.set_pool(ctx.pool().clone());
    }

    fn on_packet(&mut self, ctx: &mut dyn Fabric, _port: PortId, frame: Frame) {
        self.stack.on_frame(ctx.now(), &frame);
        self.drain(ctx);
    }

    fn on_timer(&mut self, ctx: &mut dyn Fabric, _token: u64) {
        self.stack.on_tick(ctx.now());
        self.drain(ctx);
    }

    fn name(&self) -> String {
        "tcp-sink".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use daiet_netsim::{FaultProfile, LinkSpec, Simulator};

    fn run_transfer(
        bytes: usize,
        spec: LinkSpec,
        seed: u64,
    ) -> (Vec<u8>, TcpStats, TcpStats, daiet_netsim::NodeStats) {
        run_transfer_cfg(bytes, spec, seed, TcpConfig::default())
    }

    fn run_transfer_cfg(
        bytes: usize,
        spec: LinkSpec,
        seed: u64,
        cfg: TcpConfig,
    ) -> (Vec<u8>, TcpStats, TcpStats, daiet_netsim::NodeStats) {
        let data: Vec<u8> = (0..bytes).map(|i| (i % 251) as u8).collect();
        let mut sim = Simulator::new(seed);
        let sender = sim.add_node(Box::new(BulkSenderNode::new(
            1,
            cfg,
            vec![(2, 9000, data.clone())],
        )));
        let receiver = sim.add_node(Box::new(SinkReceiverNode::new(2, cfg, 9000)));
        sim.connect(sender, receiver, spec);
        sim.run_until(daiet_netsim::SimTime(SimDuration::from_secs(30).as_nanos()));
        let rx_stats = sim.node_stats(receiver);
        let r = sim.node_ref::<SinkReceiverNode>(receiver).unwrap();
        let got = r.received.values().next().cloned().unwrap_or_default();
        let (s_stats, r_stats) = (
            sim.node_ref::<BulkSenderNode>(sender).unwrap().stack().stats(),
            r.stack().stats(),
        );
        (got, s_stats, r_stats, rx_stats)
    }

    #[test]
    fn clean_link_transfers_byte_exact() {
        let (got, s, _r, _) = run_transfer(100_000, LinkSpec::fast(), 1);
        assert_eq!(got.len(), 100_000);
        assert!(got.iter().enumerate().all(|(i, &b)| b == (i % 251) as u8));
        assert_eq!(s.retransmits, 0);
        // Segment count ≈ ceil(100000/1448) = 70 data segments.
        assert_eq!(s.data_segments_out, 70);
    }

    #[test]
    fn delayed_acks_halve_ack_count() {
        let (_, _s, r, _) = run_transfer(100_000, LinkSpec::fast(), 2);
        // 70 data segments → about 35 immediate ACKs (every 2nd), plus
        // handshake/FIN control and stragglers. Well under 70.
        assert!(r.control_segments_out < 45, "ACKs: {}", r.control_segments_out);
        assert!(r.control_segments_out >= 35);
    }

    #[test]
    fn lossy_link_still_transfers_byte_exact() {
        let spec = LinkSpec::fast().with_faults(FaultProfile::loss(0.05));
        let (got, s, _r, _) = run_transfer(50_000, spec, 3);
        assert_eq!(got.len(), 50_000);
        assert!(got.iter().enumerate().all(|(i, &b)| b == (i % 251) as u8));
        assert!(s.retransmits > 0, "5% loss must trigger retransmission");
    }

    #[test]
    fn corrupting_link_still_transfers_byte_exact() {
        let spec = LinkSpec::fast().with_faults(FaultProfile { corrupt: 0.05, ..FaultProfile::NONE });
        let (got, _s, _r, _) = run_transfer(30_000, spec, 4);
        assert_eq!(got.len(), 30_000);
        assert!(got.iter().enumerate().all(|(i, &b)| b == (i % 251) as u8));
    }

    #[test]
    fn duplicating_link_still_transfers_byte_exact() {
        let spec = LinkSpec::fast().with_faults(FaultProfile { duplicate: 0.2, ..FaultProfile::NONE });
        let (got, _s, _r, _) = run_transfer(30_000, spec, 5);
        assert_eq!(got.len(), 30_000);
        assert!(got.iter().enumerate().all(|(i, &b)| b == (i % 251) as u8));
    }

    #[test]
    fn ecn_sender_backs_off_under_queue_buildup() {
        // A gigabit bottleneck with a 16 KiB marking threshold: the fixed
        // 64 KiB window bursts well past it, so data frames get CE-marked,
        // the receiver echoes ECE, and the sender halves its cwnd — all
        // without a single drop (the 256 KiB drop-tail never fills).
        let spec = LinkSpec::gigabit().with_ecn_threshold(16 * 1024);
        let (got, s, r, _) = run_transfer_cfg(200_000, spec, 11, TcpConfig::default().with_ecn());
        assert_eq!(got.len(), 200_000);
        assert!(got.iter().enumerate().all(|(i, &b)| b == (i % 251) as u8));
        assert!(r.ecn_ce_received > 0, "queue buildup must CE-mark data frames");
        assert!(s.cwnd_reductions > 0, "ECE must halve the congestion window");
        assert_eq!(s.retransmits, 0, "ECN backs off before drop-tail bites");
    }

    #[test]
    fn ecn_disabled_ignores_ce_marks() {
        // Same bottleneck, ECN off: CE marks land on the wire but the
        // stack neither counts nor reacts to them, and the transfer is
        // still byte-exact (marking repairs the IPv4 checksum).
        let spec = LinkSpec::gigabit().with_ecn_threshold(16 * 1024);
        let (got, s, r, _) = run_transfer_cfg(200_000, spec, 12, TcpConfig::default());
        assert_eq!(got.len(), 200_000);
        assert!(got.iter().enumerate().all(|(i, &b)| b == (i % 251) as u8));
        assert_eq!(s.cwnd_reductions, 0);
        assert_eq!(r.ecn_ce_received, 0);
    }

    #[test]
    fn many_senders_one_receiver() {
        let mut sim = Simulator::new(7);
        let mut senders = Vec::new();
        let receiver = sim.add_node(Box::new(SinkReceiverNode::new(0, TcpConfig::default(), 7777)));

        // A tiny star: everyone connected through a hub that floods; we
        // emulate a switch with direct links instead — each sender has its
        // own link to the receiver? SinkReceiver only has port 0. Use a
        // simple L2 switch from the dataplane crate... to keep this crate
        // decoupled, chain: sender -> receiver via dedicated receiver
        // ports is not possible (single port). So: single sender per test
        // is covered above; here run three transfers sequentially through
        // three distinct receivers.
        for i in 1..=3u32 {
            let data = vec![i as u8; 10_000];
            let rx = sim.add_node(Box::new(SinkReceiverNode::new(100 + i, TcpConfig::default(), 7777)));
            let tx = sim.add_node(Box::new(BulkSenderNode::new(
                i,
                TcpConfig::default(),
                vec![(100 + i, 7777, data)],
            )));
            sim.connect(tx, rx, LinkSpec::fast());
            senders.push((tx, rx, i));
        }
        let _ = receiver;
        sim.run_until(daiet_netsim::SimTime(SimDuration::from_secs(10).as_nanos()));
        for (_tx, rx, i) in senders {
            let r = sim.node_ref::<SinkReceiverNode>(rx).unwrap();
            let got = r.received.values().next().cloned().unwrap_or_default();
            assert_eq!(got, vec![i as u8; 10_000]);
            assert_eq!(r.finished.len(), 1);
        }
    }

    #[test]
    fn small_message_counts_control_overhead() {
        let (got, s, r, rx_nic) = run_transfer(100, LinkSpec::fast(), 8);
        assert_eq!(got.len(), 100);
        // 1 data segment; handshake = SYN + ACK from sender; FIN.
        assert_eq!(s.data_segments_out, 1);
        assert!(s.control_segments_out >= 3); // SYN, ACK-of-SYNACK, FIN(+acks)
        assert!(r.control_segments_out >= 2); // SYN-ACK, ACKs/FIN
        // NIC-level frames observed at receiver = in + out.
        assert!(rx_nic.frames_observed() >= 7);
    }

    #[test]
    fn stack_reports_idle_after_full_close() {
        let mut sim = Simulator::new(9);
        let sender = sim.add_node(Box::new(BulkSenderNode::new(
            1,
            TcpConfig::default(),
            vec![(2, 9000, vec![7u8; 5000])],
        )));
        let receiver = sim.add_node(Box::new(SinkReceiverNode::new(2, TcpConfig::default(), 9000)));
        sim.connect(sender, receiver, LinkSpec::fast());
        sim.run_until(daiet_netsim::SimTime(SimDuration::from_secs(5).as_nanos()));
        let s = sim.node_ref::<BulkSenderNode>(sender).unwrap();
        assert!(s.stack().is_idle(), "sender not idle after close");
    }
}
