//! The programmable parser with a bounded parse depth.
//!
//! A line-rate parser walks a state machine over the first
//! [`crate::Resources::max_parse_bytes`] bytes of a packet; anything deeper is
//! opaque payload it can neither match on nor rewrite. For DAIET this is
//! the binding constraint on entries per packet: a DATA packet whose
//! declared entry list extends beyond the parse budget is flagged
//! [`ParsedPacket::daiet_truncated`] and must travel unaggregated.

use daiet_fabric::Frame;
use daiet_wire::daiet::Pair;
use daiet_wire::{daiet, ethernet, ipv4, tcpseg, udp, Error as WireError};

/// Parser configuration.
#[derive(Debug, Clone, Copy)]
pub struct ParserConfig {
    /// Bytes of each packet the parser may inspect.
    pub max_parse_bytes: usize,
    /// Verify IPv4 header and UDP checksums. Checksum engines on real
    /// ASICs run beside the parser over the full packet, so this is not
    /// subject to the parse-depth budget.
    pub verify_checksums: bool,
}

impl Default for ParserConfig {
    fn default() -> Self {
        ParserConfig { max_parse_bytes: 256, verify_checksums: true }
    }
}

/// Why a packet failed to parse.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParseError {
    /// A checksum failed (frame damaged in flight).
    Checksum,
    /// A header was malformed or truncated.
    Malformed,
    /// The frame is not IPv4-over-Ethernet (this pipeline forwards only
    /// IPv4; others would add parser states).
    Unsupported,
}

impl From<WireError> for ParseError {
    fn from(e: WireError) -> Self {
        match e {
            WireError::Checksum => ParseError::Checksum,
            WireError::Truncated | WireError::Malformed => ParseError::Malformed,
            WireError::Unsupported => ParseError::Unsupported,
        }
    }
}

/// Headers extracted from one packet, up to the parse budget.
///
/// Parsing allocates nothing: the DAIET preamble is a `Copy`
/// [`daiet::Header`], and entries are decoded on demand from the original
/// frame bytes by [`ParsedPacket::daiet_pairs`].
#[derive(Debug, Clone)]
pub struct ParsedPacket {
    /// The original, unmodified frame (needed to forward without
    /// re-serialization).
    pub frame: Frame,
    /// Link-layer header.
    pub eth: ethernet::Repr,
    /// Network-layer header, if IPv4.
    pub ip: Option<ipv4::Repr>,
    /// UDP header, if present.
    pub udp: Option<udp::Repr>,
    /// TCP header, if present.
    pub tcp: Option<tcpseg::Repr>,
    /// DAIET preamble, if the packet is DAIET traffic and the preamble
    /// fits in the parse budget. Entries are reachable through
    /// [`ParsedPacket::daiet_pairs`] only as far as the budget allows;
    /// see [`ParsedPacket::daiet_truncated`].
    pub daiet: Option<daiet::Header>,
    /// Number of entries the packet declares (0 unless `daiet` is set).
    pub daiet_entries: usize,
    /// Byte offset of the DAIET payload within `frame` (0 unless `daiet`
    /// is set).
    daiet_off: usize,
    /// True when the DAIET packet declares more entries than the parser
    /// could reach — the switch must treat it as opaque.
    pub daiet_truncated: bool,
    /// Bytes actually consumed by the parser.
    pub parsed_bytes: usize,
}

impl ParsedPacket {
    /// The DAIET tree id, if this is parseable DAIET traffic.
    pub fn daiet_tree(&self) -> Option<u16> {
        self.daiet.as_ref().map(|d| d.tree_id)
    }

    /// Iterates the DAIET key-value entries, decoding them straight from
    /// the frame bytes (no allocation). Empty unless [`Self::daiet`] is
    /// set.
    pub fn daiet_pairs(&self) -> impl Iterator<Item = Pair> + '_ {
        // Decode through the wire crate's packet view so the entry
        // layout has a single source of truth.
        let packet = daiet::Packet::new_unchecked(&self.frame[self.daiet_off..]);
        (0..self.daiet_entries)
            // lint:allow(panic-hotpath): i < daiet_entries, and daiet_entries was
            // validated against the buffer length when this view was parsed.
            .map(move |i| packet.entry(i).expect("entry count checked at parse time"))
    }

    /// Materializes the DAIET packet as an owned [`daiet::Repr`]
    /// (allocates; test and diagnostic convenience — hot paths use
    /// [`Self::daiet`] + [`Self::daiet_pairs`]).
    pub fn daiet_repr(&self) -> Option<daiet::Repr> {
        let hdr = self.daiet?;
        Some(daiet::Repr {
            packet_type: hdr.packet_type,
            tree_id: hdr.tree_id,
            flags: hdr.flags,
            seq: hdr.seq,
            entries: self.daiet_pairs().collect(),
        })
    }
}

/// Parses `frame` under `cfg`. This is the switch ingress parser: errors
/// mean the packet is dropped and counted, exactly like a malformed packet
/// hitting a real pipeline. The frame is moved, not copied — the returned
/// [`ParsedPacket`] shares its buffer.
pub fn parse(frame: Frame, cfg: &ParserConfig) -> Result<ParsedPacket, ParseError> {
    let eth_frame = ethernet::Frame::new_checked(frame.as_ref())?;
    let eth = ethernet::Repr::parse(&eth_frame)?;
    let mut consumed = ethernet::HEADER_LEN;

    if eth.ethertype != ethernet::EtherType::Ipv4 {
        return Err(ParseError::Unsupported);
    }

    let ip_packet = ipv4::Packet::new_checked(eth_frame.payload())?;
    if cfg.verify_checksums && !ip_packet.verify_checksum() {
        return Err(ParseError::Checksum);
    }
    let ip = ipv4::Repr {
        src_addr: ip_packet.src_addr(),
        dst_addr: ip_packet.dst_addr(),
        protocol: ip_packet.protocol(),
        payload_len: ip_packet.total_len() as usize - ipv4::HEADER_LEN,
        ttl: ip_packet.ttl(),
    };
    consumed += ipv4::HEADER_LEN;

    let mut parsed = ParsedPacket {
        eth,
        ip: Some(ip),
        udp: None,
        tcp: None,
        daiet: None,
        daiet_entries: 0,
        daiet_off: 0,
        daiet_truncated: false,
        parsed_bytes: consumed,
        frame,
    };

    // Transport headers must lie inside the IP packet's declared length —
    // trailing link-layer padding (or crafted tails) beyond `total_len`
    // is not parseable payload.
    let ip_end = consumed + ip.payload_len;
    match ip.protocol {
        ipv4::Protocol::Udp => {
            let dgram = udp::Datagram::new_checked(&parsed.frame[consumed..ip_end])?;
            if cfg.verify_checksums && !dgram.verify_checksum(ip.src_addr, ip.dst_addr) {
                return Err(ParseError::Checksum);
            }
            let udp_repr = udp::Repr::parse(&dgram, None)?;
            consumed += udp::HEADER_LEN;
            parsed.udp = Some(udp_repr);

            if udp_repr.dst_port == udp::DAIET_PORT {
                let payload = dgram.payload();
                let budget = cfg.max_parse_bytes.saturating_sub(consumed);
                if budget < daiet::HEADER_LEN {
                    // Cannot even see the preamble: opaque.
                    parsed.daiet_truncated = true;
                } else {
                    let packet = daiet::Packet::new_checked(payload)?;
                    let declared = packet.num_entries() as usize;
                    let visible = (budget - daiet::HEADER_LEN) / daiet::ENTRY_LEN;
                    if declared > visible {
                        parsed.daiet_truncated = true;
                        consumed += daiet::HEADER_LEN + visible * daiet::ENTRY_LEN;
                    } else {
                        parsed.daiet = Some(daiet::Header::parse(&packet));
                        parsed.daiet_entries = declared;
                        parsed.daiet_off = consumed;
                        consumed += daiet::HEADER_LEN + declared * daiet::ENTRY_LEN;
                    }
                }
            }
        }
        ipv4::Protocol::Tcp => {
            let seg = tcpseg::Segment::new_checked(&parsed.frame[consumed..ip_end])?;
            // TCP checksum is verified at hosts; switches forward on the
            // 5-tuple without touching the payload.
            let tcp_repr = tcpseg::Repr::parse(&seg, None)?;
            consumed += tcpseg::HEADER_LEN;
            parsed.tcp = Some(tcp_repr);
        }
        ipv4::Protocol::Unknown(_) => {}
    }

    parsed.parsed_bytes = consumed.min(cfg.max_parse_bytes);
    Ok(parsed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use daiet_wire::daiet::{Key, Pair};
    use daiet_wire::stack::{build_daiet, build_tcp, build_udp, Endpoints};

    fn ep() -> Endpoints {
        Endpoints::from_ids(1, 2)
    }

    fn pairs(n: usize) -> Vec<Pair> {
        (0..n)
            .map(|i| Pair::new(Key::from_str_key(&format!("k{i}")).unwrap(), i as u32))
            .collect()
    }

    #[test]
    fn parses_daiet_within_budget() {
        let repr = daiet::Repr::data(5, pairs(10));
        let frame = Frame::from(build_daiet(&ep(), 100, &repr));
        let parsed = parse(frame, &ParserConfig::default()).unwrap();
        assert_eq!(parsed.daiet_entries, 10);
        assert_eq!(parsed.daiet_pairs().count(), 10);
        assert!(!parsed.daiet_truncated);
        assert_eq!(parsed.daiet_tree(), Some(5));
        // 14 + 20 + 8 + 10 + 200 = 252 bytes consumed.
        assert_eq!(parsed.parsed_bytes, 252);
    }

    #[test]
    fn oversized_entry_list_is_truncated() {
        // 12 entries push the frame to 292 bytes — beyond a 256 B budget.
        let repr = daiet::Repr::data(5, pairs(12));
        let frame = Frame::from(build_daiet(&ep(), 100, &repr));
        let parsed = parse(frame, &ParserConfig::default()).unwrap();
        assert!(parsed.daiet_truncated);
        assert!(parsed.daiet.is_none());
        // A deeper parser accepts the same packet.
        let deep = ParserConfig { max_parse_bytes: 512, ..Default::default() };
        let frame = Frame::from(build_daiet(&ep(), 100, &daiet::Repr::data(5, pairs(12))));
        let parsed = parse(frame, &deep).unwrap();
        assert!(!parsed.daiet_truncated);
        assert_eq!(parsed.daiet_entries, 12);
        assert_eq!(parsed.daiet_repr().unwrap().entries.len(), 12);
    }

    #[test]
    fn non_daiet_udp_is_plain_udp() {
        let frame = Frame::from(build_udp(&ep(), 5000, 6000, b"hello"));
        let parsed = parse(frame, &ParserConfig::default()).unwrap();
        assert!(parsed.udp.is_some());
        assert!(parsed.daiet.is_none());
        assert!(!parsed.daiet_truncated);
    }

    #[test]
    fn tcp_headers_are_extracted() {
        let repr = tcpseg::Repr {
            src_port: 1234,
            dst_port: 80,
            seq: 1,
            ack: 2,
            flags: tcpseg::Flags::ACK,
            window: 8192,
            payload_len: 3,
        };
        let frame = Frame::from(build_tcp(&ep(), &repr, b"abc"));
        let parsed = parse(frame, &ParserConfig::default()).unwrap();
        assert_eq!(parsed.tcp.unwrap().dst_port, 80);
        assert_eq!(parsed.parsed_bytes, 14 + 20 + 20);
    }

    #[test]
    fn corrupt_ipv4_header_is_checksum_error() {
        let mut bytes = build_udp(&ep(), 1, 2, b"x");
        bytes[22] ^= 0xff; // inside the IPv4 header
        assert_eq!(
            parse(Frame::from(bytes), &ParserConfig::default()).unwrap_err(),
            ParseError::Checksum
        );
    }

    #[test]
    fn corrupt_udp_payload_is_checksum_error() {
        let repr = daiet::Repr::data(1, pairs(2));
        let mut bytes = build_daiet(&ep(), 1, &repr);
        let last = bytes.len() - 1;
        bytes[last] ^= 0x10;
        let frame = Frame::from(bytes);
        assert_eq!(
            parse(frame.clone(), &ParserConfig::default()).unwrap_err(),
            ParseError::Checksum
        );
        // With verification off, the damage goes unnoticed (what a switch
        // without checksum engines would do).
        let lax = ParserConfig { verify_checksums: false, ..Default::default() };
        assert!(parse(frame, &lax).is_ok());
    }

    #[test]
    fn transport_beyond_ip_total_len_is_rejected() {
        // A frame whose UDP length field claims bytes past the IP
        // packet's declared total_len: the datagram must be bounded by
        // the IP payload, not by the physical frame tail.
        let mut bytes = build_udp(&ep(), 1000, 2000, b"xy");
        // Append a trailing tail and enlarge the UDP length field to
        // swallow it, zeroing the UDP checksum (0 = "not computed").
        bytes.extend_from_slice(&[0xAA; 64]);
        let udp_off = 14 + 20;
        let claimed = (8 + 2 + 64u16).to_be_bytes();
        bytes[udp_off + 4..udp_off + 6].copy_from_slice(&claimed);
        bytes[udp_off + 6] = 0;
        bytes[udp_off + 7] = 0;
        let lax = ParserConfig { verify_checksums: false, ..Default::default() };
        assert_eq!(
            parse(Frame::from(bytes), &lax).unwrap_err(),
            ParseError::Malformed
        );
    }

    #[test]
    fn runt_frame_is_malformed() {
        let frame = Frame::from_slice(&[0u8; 10]);
        assert_eq!(
            parse(frame, &ParserConfig::default()).unwrap_err(),
            ParseError::Malformed
        );
    }

    #[test]
    fn non_ipv4_is_unsupported() {
        let mut bytes = build_udp(&ep(), 1, 2, b"x");
        bytes[12] = 0x86;
        bytes[13] = 0xDD; // IPv6 ethertype
        assert_eq!(
            parse(Frame::from(bytes), &ParserConfig::default()).unwrap_err(),
            ParseError::Unsupported
        );
    }
}
