//! # daiet-dataplane — a software model of an RMT-style programmable switch
//!
//! The paper (§2, "Judicious network computing") grounds DAIET in the
//! architectural constraints of reconfigurable match-action ASICs
//! (RMT/Tofino):
//!
//! * **Limited memory** — lookups hit SRAM/TCAM measured in tens of MB;
//! * **Limited action set** — simple arithmetic, data manipulation, hashes;
//! * **Few operations per packet** — tens of nanoseconds per packet, no
//!   loops; bounded parse depth (≈200–300 B per packet).
//!
//! This crate models exactly those constraints in software so that systems
//! built on top (the DAIET aggregation logic in the `daiet` crate) are
//! forced into the same design space as a real P4 program:
//!
//! * [`resources`] — per-switch budgets (stages, SRAM, parse depth, per-
//!   packet operations) with byte-accurate allocation accounting;
//! * [`register`] — stateful register arrays charged against SRAM;
//! * [`parser`] — a bounded-depth parser producing [`parser::ParsedPacket`];
//!   headers beyond the budget stay opaque (a DAIET packet with more
//!   entries than the parser can reach is marked *truncated* and must be
//!   forwarded unaggregated — this is why the paper caps packets at 10
//!   pairs);
//! * [`table`] — exact/LPM/ternary match-action tables populated by flow
//!   rules, as a controller would install them;
//! * [`pipeline`] — the staged match-action pipeline plus the [`pipeline::SwitchExtern`]
//!   hook through which bounded stateful programs (like DAIET's Algorithm 1)
//!   attach;
//! * [`switch`] — a [`daiet_fabric::Node`] wrapping a pipeline, with packet
//!   and operation statistics.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod parser;
pub mod pipeline;
pub mod register;
pub mod resources;
pub mod switch;
pub mod table;

pub use parser::{ParsedPacket, ParserConfig};
pub use pipeline::{ActionSpec, ExternId, ExternOutput, PacketCtx, Pipeline, SwitchExtern};
pub use register::RegisterArray;
pub use resources::{ResourceError, Resources, SramTracker};
pub use switch::{Switch, SwitchStats};
pub use table::{Field, KeySpec, MatchValue, Table, TableEntry, TableKind};
