//! Switch resource budgets and allocation accounting.
//!
//! A register array or table cannot simply be "created" on a real switch —
//! it occupies SRAM in a specific pipeline stage, and the chip has a fixed
//! number of stages each with a fixed SRAM slice. [`Resources`] captures
//! those budgets; [`SramTracker`] hands out allocations and refuses ones
//! that do not fit, so an over-provisioned DAIET configuration fails at
//! deployment time exactly as `p4c` would reject it at compile time.

use core::fmt;

/// Static capacity of one switch ASIC.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Resources {
    /// Match-action stages in the ingress pipeline.
    pub stages: usize,
    /// SRAM bytes available to each stage.
    pub sram_per_stage: usize,
    /// Bytes of each packet visible to the parser; headers beyond this
    /// depth cannot be inspected or rewritten (the paper: "current P4
    /// hardware switches are expected to parse only around 200-300 B").
    pub max_parse_bytes: usize,
    /// Primitive operations (ALU actions, register accesses, hash
    /// invocations) the pipeline may spend on one packet traversal. This
    /// models the "few operations per packet" constraint; pair-processing
    /// loops must be unrolled within it.
    pub ops_per_packet: usize,
    /// Maximum times one packet may be recirculated.
    pub max_recirculations: u32,
}

impl Resources {
    /// A Tofino-class profile: 12 stages × 1.25 MB ≈ 15 MB of SRAM,
    /// 256-byte parse budget.
    pub fn tofino_like() -> Resources {
        Resources {
            stages: 12,
            sram_per_stage: 1_310_720, // 1.25 MiB
            max_parse_bytes: 256,
            ops_per_packet: 512,
            max_recirculations: 4,
        }
    }

    /// A deliberately small profile for exercising rejection paths in
    /// tests: 4 stages × 64 KiB.
    pub fn tiny() -> Resources {
        Resources {
            stages: 4,
            sram_per_stage: 65_536,
            max_parse_bytes: 128,
            ops_per_packet: 64,
            max_recirculations: 1,
        }
    }

    /// Total SRAM across all stages.
    pub fn total_sram(&self) -> usize {
        self.stages * self.sram_per_stage
    }
}

impl Default for Resources {
    fn default() -> Self {
        Resources::tofino_like()
    }
}

/// Why an allocation was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResourceError {
    /// The requested stage does not exist.
    NoSuchStage {
        /// Requested stage index.
        stage: usize,
        /// Number of stages on the chip.
        stages: usize,
    },
    /// The stage's SRAM slice cannot hold the request.
    SramExhausted {
        /// Requested stage index.
        stage: usize,
        /// Bytes requested.
        requested: usize,
        /// Bytes still free in that stage.
        available: usize,
    },
}

impl fmt::Display for ResourceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResourceError::NoSuchStage { stage, stages } => {
                write!(f, "stage {stage} out of range (chip has {stages})")
            }
            ResourceError::SramExhausted { stage, requested, available } => write!(
                f,
                "stage {stage}: requested {requested} B of SRAM, {available} B free"
            ),
        }
    }
}

impl std::error::Error for ResourceError {}

/// One recorded allocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Allocation {
    /// What the allocation is for (register/table name).
    pub name: String,
    /// Stage it lives in.
    pub stage: usize,
    /// Bytes of SRAM consumed.
    pub bytes: usize,
}

/// Tracks SRAM allocations against a [`Resources`] budget.
#[derive(Debug, Clone)]
pub struct SramTracker {
    resources: Resources,
    used: Vec<usize>,
    allocations: Vec<Allocation>,
}

impl SramTracker {
    /// A tracker with everything free.
    pub fn new(resources: Resources) -> SramTracker {
        SramTracker {
            used: vec![0; resources.stages],
            allocations: Vec::new(),
            resources,
        }
    }

    /// The budget being tracked.
    pub fn resources(&self) -> &Resources {
        &self.resources
    }

    /// Attempts to reserve `bytes` in `stage` under `name`.
    pub fn allocate(&mut self, name: &str, stage: usize, bytes: usize) -> Result<(), ResourceError> {
        if stage >= self.resources.stages {
            return Err(ResourceError::NoSuchStage { stage, stages: self.resources.stages });
        }
        let available = self.resources.sram_per_stage - self.used[stage];
        if bytes > available {
            return Err(ResourceError::SramExhausted { stage, requested: bytes, available });
        }
        self.used[stage] += bytes;
        self.allocations.push(Allocation { name: name.to_string(), stage, bytes });
        Ok(())
    }

    /// Reserves `bytes` in the first stage at or after `from_stage` with
    /// room, returning the stage chosen. This mirrors how a compiler
    /// places tables: sequential dependencies advance stages, independent
    /// tables pack together.
    pub fn allocate_first_fit(
        &mut self,
        name: &str,
        from_stage: usize,
        bytes: usize,
    ) -> Result<usize, ResourceError> {
        for stage in from_stage..self.resources.stages {
            if self.resources.sram_per_stage - self.used[stage] >= bytes {
                self.allocate(name, stage, bytes)?;
                return Ok(stage);
            }
        }
        Err(ResourceError::SramExhausted {
            stage: from_stage,
            requested: bytes,
            available: self
                .used
                .iter()
                .skip(from_stage)
                .map(|u| self.resources.sram_per_stage - u)
                .max()
                .unwrap_or(0),
        })
    }

    /// Releases every allocation recorded under `name`, returning the
    /// bytes freed (0 when nothing by that name was allocated — freeing
    /// is idempotent). The surviving allocations keep their order and
    /// stages, so releasing a departed (or half-admitted) job's
    /// reservations restores the tracker to exactly the state it had
    /// before they were made: identical `allocations()`, identical
    /// per-stage `used`, and identical stage choices for every future
    /// [`allocate_first_fit`](Self::allocate_first_fit). That exactness
    /// is what the multi-tenant controller's all-or-nothing admission
    /// and teardown lean on.
    pub fn free(&mut self, name: &str) -> usize {
        let used = &mut self.used;
        let mut freed = 0;
        self.allocations.retain(|a| {
            if a.name == name {
                used[a.stage] -= a.bytes;
                freed += a.bytes;
                false
            } else {
                true
            }
        });
        freed
    }

    /// Bytes used in `stage`.
    pub fn used_in_stage(&self, stage: usize) -> usize {
        self.used.get(stage).copied().unwrap_or(0)
    }

    /// Total bytes allocated across stages.
    pub fn total_used(&self) -> usize {
        self.used.iter().sum()
    }

    /// Every allocation made, in order.
    pub fn allocations(&self) -> &[Allocation] {
        &self.allocations
    }

    /// A human-readable utilization report (used by the `resources`
    /// figure binary to reproduce the paper's ≈10 MB SRAM estimate).
    pub fn report(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "SRAM: {}/{} bytes ({:.1}%) across {} stages",
            self.total_used(),
            self.resources.total_sram(),
            100.0 * self.total_used() as f64 / self.resources.total_sram() as f64,
            self.resources.stages,
        );
        for alloc in &self.allocations {
            let _ = writeln!(
                out,
                "  stage {:2}  {:>10} B  {}",
                alloc.stage, alloc.bytes, alloc.name
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocation_within_budget_succeeds() {
        let mut t = SramTracker::new(Resources::tiny());
        t.allocate("keys", 0, 32_768).unwrap();
        t.allocate("values", 0, 16_384).unwrap();
        assert_eq!(t.used_in_stage(0), 49_152);
        assert_eq!(t.total_used(), 49_152);
        assert_eq!(t.allocations().len(), 2);
    }

    #[test]
    fn exhausted_stage_is_refused_with_details() {
        let mut t = SramTracker::new(Resources::tiny());
        t.allocate("big", 1, 60_000).unwrap();
        let err = t.allocate("more", 1, 10_000).unwrap_err();
        assert_eq!(
            err,
            ResourceError::SramExhausted { stage: 1, requested: 10_000, available: 5_536 }
        );
        // The failed allocation must not change accounting.
        assert_eq!(t.used_in_stage(1), 60_000);
        assert_eq!(t.allocations().len(), 1);
    }

    #[test]
    fn bad_stage_is_refused() {
        let mut t = SramTracker::new(Resources::tiny());
        let err = t.allocate("x", 9, 1).unwrap_err();
        assert_eq!(err, ResourceError::NoSuchStage { stage: 9, stages: 4 });
    }

    #[test]
    fn first_fit_walks_stages() {
        let mut t = SramTracker::new(Resources::tiny());
        t.allocate("fill0", 0, 65_536).unwrap();
        t.allocate("fill1", 1, 60_000).unwrap();
        // 10 000 B does not fit stage 0 (full) or stage 1 (5 536 free).
        let stage = t.allocate_first_fit("reg", 0, 10_000).unwrap();
        assert_eq!(stage, 2);
        // A small request lands in the first stage with room: stage 1.
        assert_eq!(t.allocate_first_fit("small", 0, 1_000).unwrap(), 1);
        // Nothing fits anywhere once all stages are full.
        for s in 1..4 {
            let free = 65_536 - t.used_in_stage(s);
            t.allocate("fill", s, free).unwrap();
        }
        assert!(t.allocate_first_fit("no", 0, 1).is_err());
    }

    #[test]
    fn free_restores_accounting_exactly() {
        let mut t = SramTracker::new(Resources::tiny());
        t.allocate("keep", 0, 1_000).unwrap();
        let before_allocs = t.allocations().to_vec();
        let before_used: Vec<usize> = (0..4).map(|s| t.used_in_stage(s)).collect();
        // A "job" allocates in two stages, then is rolled back by name.
        t.allocate_first_fit("daiet.tree[9]@4", 0, 64_000).unwrap();
        t.allocate_first_fit("daiet.rtx[9]@4", 0, 64_000).unwrap();
        assert_eq!(t.free("daiet.rtx[9]@4"), 64_000);
        assert_eq!(t.free("daiet.tree[9]@4"), 64_000);
        assert_eq!(t.allocations(), before_allocs.as_slice());
        let after_used: Vec<usize> = (0..4).map(|s| t.used_in_stage(s)).collect();
        assert_eq!(after_used, before_used);
        // Freeing an unknown name is an idempotent no-op.
        assert_eq!(t.free("daiet.tree[9]@4"), 0);
    }

    #[test]
    fn free_releases_every_same_named_allocation() {
        let mut t = SramTracker::new(Resources::tiny());
        t.allocate("dup", 0, 10).unwrap();
        t.allocate("dup", 1, 20).unwrap();
        t.allocate("other", 1, 5).unwrap();
        assert_eq!(t.free("dup"), 30);
        assert_eq!(t.total_used(), 5);
        assert_eq!(t.allocations().len(), 1);
        assert_eq!(t.allocations()[0].name, "other");
    }

    #[test]
    fn report_mentions_allocations() {
        let mut t = SramTracker::new(Resources::tofino_like());
        t.allocate("daiet.keys[0]", 0, 262_144).unwrap();
        let report = t.report();
        assert!(report.contains("daiet.keys[0]"));
        assert!(report.contains("262144"));
    }

    #[test]
    fn tofino_profile_totals() {
        let r = Resources::tofino_like();
        assert_eq!(r.total_sram(), 12 * 1_310_720); // ≈ 15 MiB
        assert!(r.max_parse_bytes >= 200 && r.max_parse_bytes <= 300);
    }

    #[test]
    fn error_display_is_informative() {
        let e = ResourceError::SramExhausted { stage: 3, requested: 10, available: 5 };
        assert!(e.to_string().contains("stage 3"));
        let e = ResourceError::NoSuchStage { stage: 8, stages: 4 };
        assert!(e.to_string().contains("out of range"));
    }
}
