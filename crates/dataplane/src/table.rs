//! Match-action tables and the fields they can match on.
//!
//! Tables are populated with *flow rules* by a controller ("the controller
//! defines the aggregation trees … pushing a set of flow rules", §4).
//! Three match kinds are modeled: exact (hash tables in SRAM), LPM and
//! ternary (TCAM). Each table declares a fixed capacity up front, which is
//! what its SRAM reservation is based on — inserting past capacity fails
//! like a full switch table would.

use crate::pipeline::{ActionSpec, PacketCtx};
use daiet_wire::fnv::FnvHashMap;

/// A packet field usable in a match key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Field {
    /// Ingress port (16-bit).
    InPort,
    /// Destination MAC (48-bit).
    EthDst,
    /// Source MAC (48-bit).
    EthSrc,
    /// EtherType (16-bit).
    EtherType,
    /// IPv4 source (32-bit). Absent on non-IP packets.
    IpSrc,
    /// IPv4 destination (32-bit).
    IpDst,
    /// IPv4 protocol (8-bit).
    IpProto,
    /// Transport source port (16-bit, UDP or TCP).
    L4Src,
    /// Transport destination port (16-bit, UDP or TCP).
    L4Dst,
    /// DAIET tree id (16-bit). Absent unless parsed DAIET traffic.
    DaietTreeId,
    /// DAIET packet type (8-bit).
    DaietType,
    /// A metadata slot (32-bit), written by earlier stages.
    Meta(u8),
}

impl Field {
    /// Width of the field in bytes within a match key.
    pub fn width(&self) -> usize {
        match self {
            Field::EthDst | Field::EthSrc => 6,
            Field::IpSrc | Field::IpDst | Field::Meta(_) => 4,
            Field::InPort | Field::EtherType | Field::L4Src | Field::L4Dst | Field::DaietTreeId => 2,
            Field::IpProto | Field::DaietType => 1,
        }
    }

    /// Extracts the field from a packet context into `out`. Returns false
    /// if the field is absent (header not parsed), which makes the whole
    /// key inapplicable — the table misses.
    fn extract(&self, pkt: &PacketCtx, out: &mut Vec<u8>) -> bool {
        match self {
            Field::InPort => out.extend_from_slice(&(pkt.in_port.0 as u16).to_be_bytes()),
            Field::EthDst => out.extend_from_slice(&pkt.parsed.eth.dst_addr.0),
            Field::EthSrc => out.extend_from_slice(&pkt.parsed.eth.src_addr.0),
            Field::EtherType => {
                out.extend_from_slice(&u16::from(pkt.parsed.eth.ethertype).to_be_bytes());
            }
            Field::IpSrc => match &pkt.parsed.ip {
                Some(ip) => out.extend_from_slice(&ip.src_addr.0),
                None => return false,
            },
            Field::IpDst => match &pkt.parsed.ip {
                Some(ip) => out.extend_from_slice(&ip.dst_addr.0),
                None => return false,
            },
            Field::IpProto => match &pkt.parsed.ip {
                Some(ip) => out.push(u8::from(ip.protocol)),
                None => return false,
            },
            Field::L4Src => {
                if let Some(udp) = &pkt.parsed.udp {
                    out.extend_from_slice(&udp.src_port.to_be_bytes());
                } else if let Some(tcp) = &pkt.parsed.tcp {
                    out.extend_from_slice(&tcp.src_port.to_be_bytes());
                } else {
                    return false;
                }
            }
            Field::L4Dst => {
                if let Some(udp) = &pkt.parsed.udp {
                    out.extend_from_slice(&udp.dst_port.to_be_bytes());
                } else if let Some(tcp) = &pkt.parsed.tcp {
                    out.extend_from_slice(&tcp.dst_port.to_be_bytes());
                } else {
                    return false;
                }
            }
            Field::DaietTreeId => match &pkt.parsed.daiet {
                Some(d) => out.extend_from_slice(&d.tree_id.to_be_bytes()),
                None => return false,
            },
            Field::DaietType => match &pkt.parsed.daiet {
                Some(d) => out.push(u8::from(d.packet_type)),
                None => return false,
            },
            Field::Meta(slot) => out.extend_from_slice(&pkt.meta(*slot).to_be_bytes()),
        }
        true
    }
}

/// An ordered list of fields forming a match key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeySpec(pub Vec<Field>);

impl KeySpec {
    /// Total key width in bytes.
    pub fn width(&self) -> usize {
        self.0.iter().map(Field::width).sum()
    }

    /// Builds the key for `pkt`; `None` when any field is absent.
    pub fn extract(&self, pkt: &PacketCtx) -> Option<Vec<u8>> {
        let mut key = Vec::with_capacity(self.width());
        self.extract_into(pkt, &mut key).then_some(key)
    }

    /// Builds the key for `pkt` into `key` (cleared first); returns
    /// `false` when any field is absent. The allocation-free form
    /// [`Table::lookup`] drives with a per-table scratch buffer.
    pub fn extract_into(&self, pkt: &PacketCtx, key: &mut Vec<u8>) -> bool {
        key.clear();
        for f in &self.0 {
            if !f.extract(pkt, key) {
                return false;
            }
        }
        true
    }
}

/// The matching discipline of a table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TableKind {
    /// Exact match (SRAM hash table).
    Exact,
    /// Longest-prefix match (for IP routing).
    Lpm,
    /// Ternary match with masks and priorities (TCAM).
    Ternary,
}

/// A rule's match side.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MatchValue {
    /// Full-key equality.
    Exact(Vec<u8>),
    /// Match the first `prefix_len` bits.
    Lpm {
        /// Key bytes (only the prefix bits are significant).
        prefix: Vec<u8>,
        /// Prefix length in bits.
        prefix_len: u16,
    },
    /// `key & mask == value & mask`; highest `priority` wins.
    Ternary {
        /// Value bytes.
        value: Vec<u8>,
        /// Mask bytes (1 = significant bit).
        mask: Vec<u8>,
        /// Priority; larger wins.
        priority: i32,
    },
}

/// A flow rule: match plus action.
#[derive(Debug, Clone, PartialEq)]
pub struct TableEntry {
    /// The match side.
    pub matcher: MatchValue,
    /// The action executed on a hit.
    pub action: ActionSpec,
}

/// Errors installing flow rules.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TableError {
    /// The table's declared capacity is exhausted.
    Full,
    /// The entry's match kind or width does not fit this table.
    KindMismatch,
}

impl core::fmt::Display for TableError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            TableError::Full => write!(f, "table full"),
            TableError::KindMismatch => write!(f, "entry does not match table kind/width"),
        }
    }
}

impl std::error::Error for TableError {}

/// A match-action table.
#[derive(Debug, Clone)]
pub struct Table {
    name: String,
    kind: TableKind,
    key: KeySpec,
    capacity: usize,
    exact: FnvHashMap<Vec<u8>, ActionSpec>,
    ordered: Vec<TableEntry>, // LPM (sorted by prefix_len desc) / ternary (by priority desc)
    default_action: ActionSpec,
    hits: u64,
    misses: u64,
    /// Reused key-extraction buffer (lookups allocate nothing).
    scratch: Vec<u8>,
}

impl Table {
    /// Creates a table. `capacity` bounds the number of entries and sizes
    /// the SRAM reservation ([`Table::sram_bytes`]).
    pub fn new(
        name: impl Into<String>,
        kind: TableKind,
        key: KeySpec,
        capacity: usize,
        default_action: ActionSpec,
    ) -> Table {
        Table {
            name: name.into(),
            kind,
            key,
            capacity,
            exact: FnvHashMap::default(),
            ordered: Vec::new(),
            default_action,
            hits: 0,
            misses: 0,
            scratch: Vec::new(),
        }
    }

    /// The table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The key specification.
    pub fn key_spec(&self) -> &KeySpec {
        &self.key
    }

    /// Installed entry count.
    pub fn len(&self) -> usize {
        self.exact.len() + self.ordered.len()
    }

    /// True when no rules are installed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// SRAM charged for this table: capacity × (key width + 8 bytes of
    /// action data), a conventional approximation of match-entry overhead.
    pub fn sram_bytes(&self) -> usize {
        self.capacity * (self.key.width() + 8)
    }

    /// Lookup statistics `(hits, misses)`.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Installs a flow rule.
    pub fn insert(&mut self, entry: TableEntry) -> Result<(), TableError> {
        if self.len() >= self.capacity {
            return Err(TableError::Full);
        }
        match (&self.kind, &entry.matcher) {
            (TableKind::Exact, MatchValue::Exact(k)) => {
                if k.len() != self.key.width() {
                    return Err(TableError::KindMismatch);
                }
                self.exact.insert(k.clone(), entry.action);
            }
            (TableKind::Lpm, MatchValue::Lpm { prefix, prefix_len }) => {
                if prefix.len() != self.key.width() || *prefix_len as usize > prefix.len() * 8 {
                    return Err(TableError::KindMismatch);
                }
                self.ordered.push(entry);
                self.ordered.sort_by_key(|e| match &e.matcher {
                    MatchValue::Lpm { prefix_len, .. } => core::cmp::Reverse(*prefix_len),
                    _ => core::cmp::Reverse(0),
                });
            }
            (TableKind::Ternary, MatchValue::Ternary { value, mask, .. }) => {
                if value.len() != self.key.width() || mask.len() != self.key.width() {
                    return Err(TableError::KindMismatch);
                }
                self.ordered.push(entry);
                self.ordered.sort_by_key(|e| match &e.matcher {
                    MatchValue::Ternary { priority, .. } => core::cmp::Reverse(*priority),
                    _ => core::cmp::Reverse(i32::MIN),
                });
            }
            _ => return Err(TableError::KindMismatch),
        }
        Ok(())
    }

    /// Removes all rules (controller reconfiguration between jobs).
    pub fn clear(&mut self) {
        self.exact.clear();
        self.ordered.clear();
    }

    /// Removes the exact-match rule for `key`, returning whether one was
    /// installed. Per-entry removal is what lets a multi-tenant
    /// controller retire one departing job's steering rules while its
    /// neighbors' rules keep matching (contrast [`clear`](Self::clear),
    /// the wholesale between-jobs form). Exact tables only; LPM/ternary
    /// rule sets are rebuilt wholesale.
    pub fn remove_exact(&mut self, key: &[u8]) -> bool {
        self.exact.remove(key).is_some()
    }

    /// Looks up `pkt`, returning the winning action (the default on miss
    /// or when the key is inapplicable).
    pub fn lookup(&mut self, pkt: &PacketCtx) -> ActionSpec {
        let mut key = std::mem::take(&mut self.scratch);
        if !self.key.extract_into(pkt, &mut key) {
            self.scratch = key;
            self.misses += 1;
            return self.default_action.clone();
        }
        let action = match self.kind {
            TableKind::Exact => self.exact.get(key.as_slice()).cloned(),
            TableKind::Lpm => self
                .ordered
                .iter()
                .find(|e| match &e.matcher {
                    MatchValue::Lpm { prefix, prefix_len } => prefix_matches(&key, prefix, *prefix_len),
                    _ => false,
                })
                .map(|e| e.action.clone()),
            TableKind::Ternary => self
                .ordered
                .iter()
                .find(|e| match &e.matcher {
                    MatchValue::Ternary { value, mask, .. } => ternary_matches(&key, value, mask),
                    _ => false,
                })
                .map(|e| e.action.clone()),
        };
        self.scratch = key;
        match action {
            Some(a) => {
                self.hits += 1;
                a
            }
            None => {
                self.misses += 1;
                self.default_action.clone()
            }
        }
    }
}

fn prefix_matches(key: &[u8], prefix: &[u8], prefix_len: u16) -> bool {
    let full = prefix_len as usize / 8;
    let rem = prefix_len as usize % 8;
    if key.len() < full || prefix.len() < full {
        return false;
    }
    if key[..full] != prefix[..full] {
        return false;
    }
    if rem == 0 {
        return true;
    }
    if key.len() <= full || prefix.len() <= full {
        return false;
    }
    let mask = 0xFFu8 << (8 - rem);
    key[full] & mask == prefix[full] & mask
}

fn ternary_matches(key: &[u8], value: &[u8], mask: &[u8]) -> bool {
    key.len() == value.len()
        && key
            .iter()
            .zip(value.iter().zip(mask.iter()))
            .all(|(k, (v, m))| k & m == v & m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse, ParserConfig};
    use crate::pipeline::PacketCtx;
    use daiet_fabric::Frame;
    use daiet_fabric::PortId;
    use daiet_wire::stack::{build_udp, Endpoints};

    fn pkt(src: u32, dst: u32, sport: u16, dport: u16) -> PacketCtx {
        let frame = Frame::from(build_udp(&Endpoints::from_ids(src, dst), sport, dport, b"x"));
        let parsed = parse(frame, &ParserConfig::default()).unwrap();
        PacketCtx::new(PortId(3), parsed)
    }

    fn mac_key(id: u32) -> Vec<u8> {
        daiet_wire::EthernetAddress::from_id(id).0.to_vec()
    }

    #[test]
    fn exact_match_hits_and_misses() {
        let mut t = Table::new(
            "l2",
            TableKind::Exact,
            KeySpec(vec![Field::EthDst]),
            16,
            ActionSpec::Drop,
        );
        t.insert(TableEntry {
            matcher: MatchValue::Exact(mac_key(2)),
            action: ActionSpec::Forward(PortId(7)),
        })
        .unwrap();

        let p = pkt(1, 2, 100, 200);
        assert_eq!(t.lookup(&p), ActionSpec::Forward(PortId(7)));
        let p = pkt(1, 3, 100, 200);
        assert_eq!(t.lookup(&p), ActionSpec::Drop);
        assert_eq!(t.stats(), (1, 1));
    }

    #[test]
    fn capacity_is_enforced() {
        let mut t = Table::new(
            "small",
            TableKind::Exact,
            KeySpec(vec![Field::IpProto]),
            1,
            ActionSpec::Drop,
        );
        t.insert(TableEntry {
            matcher: MatchValue::Exact(vec![17]),
            action: ActionSpec::NoOp,
        })
        .unwrap();
        let err = t
            .insert(TableEntry {
                matcher: MatchValue::Exact(vec![6]),
                action: ActionSpec::NoOp,
            })
            .unwrap_err();
        assert_eq!(err, TableError::Full);
    }

    #[test]
    fn key_width_is_checked() {
        let mut t = Table::new(
            "l2",
            TableKind::Exact,
            KeySpec(vec![Field::EthDst]),
            4,
            ActionSpec::Drop,
        );
        let err = t
            .insert(TableEntry {
                matcher: MatchValue::Exact(vec![1, 2]),
                action: ActionSpec::NoOp,
            })
            .unwrap_err();
        assert_eq!(err, TableError::KindMismatch);
    }

    #[test]
    fn lpm_prefers_longest_prefix() {
        let mut t = Table::new(
            "routes",
            TableKind::Lpm,
            KeySpec(vec![Field::IpDst]),
            8,
            ActionSpec::Drop,
        );
        // 10.0.0.0/8 -> port 1; 10.0.0.2/32 -> port 2.
        t.insert(TableEntry {
            matcher: MatchValue::Lpm { prefix: vec![10, 0, 0, 0], prefix_len: 8 },
            action: ActionSpec::Forward(PortId(1)),
        })
        .unwrap();
        t.insert(TableEntry {
            matcher: MatchValue::Lpm { prefix: vec![10, 0, 0, 2], prefix_len: 32 },
            action: ActionSpec::Forward(PortId(2)),
        })
        .unwrap();

        let p = pkt(1, 2, 1, 1); // dst ip 10.0.0.2
        assert_eq!(t.lookup(&p), ActionSpec::Forward(PortId(2)));
        let p = pkt(1, 9, 1, 1); // dst ip 10.0.0.9 -> /8 route
        assert_eq!(t.lookup(&p), ActionSpec::Forward(PortId(1)));
    }

    #[test]
    fn lpm_partial_byte_prefixes() {
        assert!(prefix_matches(&[0b1010_1010], &[0b1010_0000], 4));
        assert!(!prefix_matches(&[0b1010_1010], &[0b0101_0000], 4));
        assert!(prefix_matches(&[1, 2, 3], &[1, 2, 9], 16));
        assert!(prefix_matches(&[0xFF], &[0xFE], 7));
        assert!(!prefix_matches(&[0xFF], &[0xFE], 8));
    }

    #[test]
    fn ternary_respects_priority() {
        let mut t = Table::new(
            "acl",
            TableKind::Ternary,
            KeySpec(vec![Field::L4Dst]),
            8,
            ActionSpec::NoOp,
        );
        // Low priority: match anything, drop.
        t.insert(TableEntry {
            matcher: MatchValue::Ternary { value: vec![0, 0], mask: vec![0, 0], priority: 1 },
            action: ActionSpec::Drop,
        })
        .unwrap();
        // High priority: dst port 200 forwards.
        t.insert(TableEntry {
            matcher: MatchValue::Ternary {
                value: 200u16.to_be_bytes().to_vec(),
                mask: vec![0xff, 0xff],
                priority: 10,
            },
            action: ActionSpec::Forward(PortId(0)),
        })
        .unwrap();

        let p = pkt(1, 2, 9, 200);
        assert_eq!(t.lookup(&p), ActionSpec::Forward(PortId(0)));
        let p = pkt(1, 2, 9, 201);
        assert_eq!(t.lookup(&p), ActionSpec::Drop);
    }

    #[test]
    fn missing_field_uses_default() {
        // DaietTreeId is absent on plain UDP packets.
        let mut t = Table::new(
            "daiet",
            TableKind::Exact,
            KeySpec(vec![Field::DaietTreeId]),
            4,
            ActionSpec::Forward(PortId(9)),
        );
        let p = pkt(1, 2, 5, 6);
        assert_eq!(t.lookup(&p), ActionSpec::Forward(PortId(9)));
        assert_eq!(t.stats(), (0, 1));
    }

    #[test]
    fn sram_accounting_uses_capacity() {
        let t = Table::new(
            "l2",
            TableKind::Exact,
            KeySpec(vec![Field::EthDst]),
            1024,
            ActionSpec::Drop,
        );
        assert_eq!(t.sram_bytes(), 1024 * (6 + 8));
        assert!(t.is_empty());
    }

    #[test]
    fn clear_empties_table() {
        let mut t = Table::new(
            "l2",
            TableKind::Exact,
            KeySpec(vec![Field::IpProto]),
            4,
            ActionSpec::Drop,
        );
        t.insert(TableEntry { matcher: MatchValue::Exact(vec![17]), action: ActionSpec::NoOp })
            .unwrap();
        assert_eq!(t.len(), 1);
        t.clear();
        assert!(t.is_empty());
    }
}
