//! The switch device: parser + pipeline + externs behind a
//! [`daiet_fabric::Node`] interface, with per-switch statistics.

use crate::parser::{parse, ParseError, ParserConfig};
use crate::pipeline::{Egress, ExternId, PacketCtx, Pipeline, SwitchExtern};
use daiet_fabric::{Fabric, Frame, FramePool, Node, PortId, Time};

/// Counters a switch maintains about its own processing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SwitchStats {
    /// Packets handed to the parser.
    pub packets_in: u64,
    /// Packets the parser rejected (malformed).
    pub parse_errors: u64,
    /// Packets dropped for checksum failures.
    pub checksum_drops: u64,
    /// Packets dropped by pipeline decision (or lack of one).
    pub pipeline_drops: u64,
    /// Packets forwarded (including floods, counted once).
    pub forwarded: u64,
    /// Packets absorbed by externs.
    pub consumed: u64,
    /// Frames emitted by externs.
    pub extern_emissions: u64,
    /// Total recirculation passes.
    pub recirculations: u64,
    /// Packets that exceeded the per-packet operation budget (should be
    /// zero for any program that would fit real hardware).
    pub ops_violations: u64,
    /// Highest operation count observed on one packet.
    pub max_ops_seen: usize,
}

/// A programmable switch.
///
/// Build it, install tables and externs, wire it into a simulator. The
/// pipeline's forwarding decisions use simulator port numbers directly
/// (the controller knows the topology, so it installs rules in those
/// terms — exactly how an SDN controller addresses OpenFlow/P4Runtime
/// ports).
pub struct Switch {
    name: String,
    parser_cfg: ParserConfig,
    pipeline: Pipeline,
    externs: Vec<Box<dyn SwitchExtern>>,
    stats: SwitchStats,
    /// Ports attached (filled lazily from the context at packet time;
    /// needed to expand floods).
    port_count: usize,
    /// Reused output staging buffer for [`Node::on_packet`].
    scratch: Vec<(PortId, Frame)>,
    /// Whether extern `i`'s tick timer is currently armed (timer tokens
    /// are extern indices).
    tick_armed: Vec<bool>,
}

impl Switch {
    /// Creates a switch over the given pipeline.
    pub fn new(name: impl Into<String>, pipeline: Pipeline) -> Switch {
        let parser_cfg = ParserConfig {
            max_parse_bytes: pipeline.resources().max_parse_bytes,
            verify_checksums: true,
        };
        Switch {
            name: name.into(),
            parser_cfg,
            pipeline,
            externs: Vec::new(),
            stats: SwitchStats::default(),
            port_count: 0,
            scratch: Vec::new(),
            tick_armed: Vec::new(),
        }
    }

    /// Registers an extern, returning its id for `ActionSpec::Invoke`.
    pub fn register_extern(&mut self, ext: Box<dyn SwitchExtern>) -> ExternId {
        self.externs.push(ext);
        self.tick_armed.push(false);
        ExternId(self.externs.len() - 1)
    }

    /// Arms the tick timer of any extern that asks for one and is not
    /// already armed. Called after starts, packets and ticks — the timer
    /// therefore lapses exactly when the extern reports quiescence, so a
    /// finished simulation's event queue still drains.
    fn arm_ticks(&mut self, ctx: &mut dyn Fabric) {
        for (i, ext) in self.externs.iter().enumerate() {
            if !self.tick_armed[i] && ext.wants_tick() {
                if let Some(interval) = ext.tick_interval() {
                    self.tick_armed[i] = true;
                    ctx.schedule(interval, i as u64);
                }
            }
        }
    }

    /// The pipeline (controller-plane access for installing rules).
    pub fn pipeline_mut(&mut self) -> &mut Pipeline {
        &mut self.pipeline
    }

    /// Read-only pipeline access.
    pub fn pipeline(&self) -> &Pipeline {
        &self.pipeline
    }

    /// Borrows a registered extern downcast to its concrete type.
    pub fn extern_ref<T: 'static>(&self, id: ExternId) -> Option<&T> {
        let e = self.externs.get(id.0)?;
        (e.as_ref() as &dyn std::any::Any).downcast_ref::<T>()
    }

    /// Mutably borrows a registered extern downcast to its concrete type.
    pub fn extern_mut<T: 'static>(&mut self, id: ExternId) -> Option<&mut T> {
        let e = self.externs.get_mut(id.0)?;
        (e.as_mut() as &mut dyn std::any::Any).downcast_mut::<T>()
    }

    /// Processing statistics.
    pub fn stats(&self) -> SwitchStats {
        self.stats
    }

    /// Processes one frame, returning the frames to transmit as
    /// `(port, frame)` pairs. Convenience wrapper over
    /// [`Switch::process_into`] for unit tests and the quickstart example.
    pub fn process(
        &mut self,
        in_port: PortId,
        frame: Frame,
        port_count: usize,
        pool: &FramePool,
    ) -> Vec<(PortId, Frame)> {
        let mut outputs = Vec::new();
        self.process_into(in_port, frame, port_count, pool, Time::ZERO, &mut outputs);
        outputs
    }

    /// Processes one frame, appending the frames to transmit to `out` —
    /// the allocation-free core [`Node::on_packet`] drives with a reused
    /// staging buffer. `now` stamps the packet context for time-aware
    /// externs.
    pub fn process_into(
        &mut self,
        in_port: PortId,
        frame: Frame,
        port_count: usize,
        pool: &FramePool,
        now: Time,
        out: &mut Vec<(PortId, Frame)>,
    ) {
        self.stats.packets_in += 1;
        self.port_count = port_count.max(self.port_count);

        let parsed = match parse(frame, &self.parser_cfg) {
            Ok(p) => p,
            Err(ParseError::Checksum) => {
                self.stats.checksum_drops += 1;
                return;
            }
            Err(_) => {
                self.stats.parse_errors += 1;
                return;
            }
        };

        let mut pkt = PacketCtx::at(in_port, parsed, now);
        let max_recirc = self.pipeline.resources().max_recirculations;

        loop {
            let verdict = self.pipeline.execute(&mut pkt, &mut self.externs, pool);
            self.stats.extern_emissions += verdict.emissions.len() as u64;
            out.extend(verdict.emissions);

            if verdict.recirculate && pkt.recircs < max_recirc {
                pkt.recircs += 1;
                self.stats.recirculations += 1;
                pkt.egress = Egress::Unset;
                continue;
            }
            break;
        }

        let budget = self.pipeline.resources().ops_per_packet
            * (1 + pkt.recircs as usize);
        self.stats.max_ops_seen = self.stats.max_ops_seen.max(pkt.ops);
        if pkt.ops > budget {
            self.stats.ops_violations += 1;
        }

        match pkt.egress {
            Egress::Port(port) => {
                self.stats.forwarded += 1;
                out.push((port, pkt.parsed.frame));
            }
            Egress::Flood => {
                self.stats.forwarded += 1;
                for p in 0..self.port_count {
                    if PortId(p) != in_port {
                        out.push((PortId(p), pkt.parsed.frame.clone()));
                    }
                }
            }
            Egress::Consumed => self.stats.consumed += 1,
            Egress::Drop | Egress::Unset => self.stats.pipeline_drops += 1,
        }
    }
}

impl core::fmt::Debug for Switch {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Switch")
            .field("name", &self.name)
            .field("externs", &self.externs.len())
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl Node for Switch {
    fn on_packet(&mut self, ctx: &mut dyn Fabric, port: PortId, frame: Frame) {
        let port_count = ctx.port_count();
        let now = ctx.now();
        let mut out = std::mem::take(&mut self.scratch);
        self.process_into(port, frame, port_count, ctx.pool(), now, &mut out);
        for (out_port, out_frame) in out.drain(..) {
            ctx.send(out_port, out_frame);
        }
        self.scratch = out;
        // A packet may have created time-based work (a new flow to watch).
        self.arm_ticks(ctx);
    }

    fn on_start(&mut self, ctx: &mut dyn Fabric) {
        self.arm_ticks(ctx);
    }

    fn on_timer(&mut self, ctx: &mut dyn Fabric, token: u64) {
        let i = token as usize;
        let Some(ext) = self.externs.get_mut(i) else {
            return;
        };
        self.tick_armed[i] = false;
        let emissions = ext.on_tick(ctx.now(), ctx.pool());
        self.stats.extern_emissions += emissions.len() as u64;
        for (port, frame) in emissions {
            ctx.send(port, frame);
        }
        self.arm_ticks(ctx);
    }

    fn on_fail(&mut self) {
        // Power cycle: every extern's volatile state (registers, rings,
        // trackers) is lost. Match-action tables survive in this model —
        // the controller re-installs rules or re-plans around the node
        // either way, and table state without extern state still forwards
        // (unknown trees fall through to L2).
        for ext in &mut self.externs {
            ext.on_node_fail();
        }
        // The armed flags must be cleared by hand: the pending tick
        // timers are discarded by the simulator while the node is down,
        // so a stale `true` here would keep ticks from ever re-arming
        // after revival.
        for armed in &mut self.tick_armed {
            *armed = false;
        }
    }

    fn on_revive(&mut self, ctx: &mut dyn Fabric) {
        self.arm_ticks(ctx);
    }

    fn name(&self) -> String {
        self.name.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::ActionSpec;
    use crate::resources::Resources;
    use crate::table::{Field, KeySpec, MatchValue, Table, TableEntry, TableKind};
    use daiet_wire::stack::{build_udp, Endpoints};

    fn l2_switch(entries: &[(u32, usize)]) -> Switch {
        let mut pipeline = Pipeline::new(Resources::tofino_like());
        let h = pipeline
            .add_table(
                0,
                Table::new(
                    "l2",
                    TableKind::Exact,
                    KeySpec(vec![Field::EthDst]),
                    256,
                    ActionSpec::Flood,
                ),
            )
            .unwrap();
        for &(host, port) in entries {
            pipeline
                .table_mut(h)
                .insert(TableEntry {
                    matcher: MatchValue::Exact(daiet_wire::EthernetAddress::from_id(host).0.to_vec()),
                    action: ActionSpec::Forward(PortId(port)),
                })
                .unwrap();
        }
        Switch::new("sw0", pipeline)
    }

    fn frame(src: u32, dst: u32) -> Frame {
        Frame::from(build_udp(&Endpoints::from_ids(src, dst), 1, 2, b"test"))
    }

    #[test]
    fn known_destination_forwards_on_one_port() {
        let mut sw = l2_switch(&[(2, 1)]);
        let out = sw.process(PortId(0), frame(1, 2), 4, &FramePool::new());
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].0, PortId(1));
        assert_eq!(sw.stats().forwarded, 1);
    }

    #[test]
    fn unknown_destination_floods_all_but_ingress() {
        let mut sw = l2_switch(&[]);
        let out = sw.process(PortId(2), frame(1, 9), 4, &FramePool::new());
        let ports: Vec<usize> = out.iter().map(|(p, _)| p.0).collect();
        assert_eq!(ports, vec![0, 1, 3]);
    }

    #[test]
    fn corrupt_frame_is_dropped_and_counted() {
        let mut sw = l2_switch(&[(2, 1)]);
        let mut f = frame(1, 2).to_vec();
        let n = f.len() - 1;
        f[n] ^= 0xff;
        let out = sw.process(PortId(0), Frame::from(f), 4, &FramePool::new());
        assert!(out.is_empty());
        assert_eq!(sw.stats().checksum_drops, 1);
    }

    #[test]
    fn runt_frame_counts_parse_error() {
        let mut sw = l2_switch(&[]);
        let out = sw.process(PortId(0), Frame::from_slice(&[1, 2, 3]), 4, &FramePool::new());
        assert!(out.is_empty());
        assert_eq!(sw.stats().parse_errors, 1);
    }

    #[test]
    fn switch_works_inside_simulator() {
        use daiet_netsim::{LinkSpec, Simulator};

        // Echo hosts at plan ports; host 1 sends to host 2 through the switch.
        struct Sender {
            sent: bool,
        }
        impl Node for Sender {
            fn on_packet(&mut self, _: &mut dyn Fabric, _: PortId, _: Frame) {}
            fn on_start(&mut self, ctx: &mut dyn Fabric) {
                if !self.sent {
                    self.sent = true;
                    ctx.send(PortId(0), frame(1, 2));
                }
            }
        }
        #[derive(Default)]
        struct Receiver {
            got: usize,
        }
        impl Node for Receiver {
            fn on_packet(&mut self, _: &mut dyn Fabric, _: PortId, _: Frame) {
                self.got += 1;
            }
        }

        let mut sim = Simulator::new(3);
        let sender = sim.add_node(Box::new(Sender { sent: false }));
        let receiver = sim.add_node(Box::new(Receiver::default()));
        // Switch learns: host 2 lives on port 1.
        let sw = sim.add_node(Box::new(l2_switch(&[(2, 1)])));
        sim.connect(sender, sw, LinkSpec::fast()); // switch port 0
        sim.connect(sw, receiver, LinkSpec::fast()); // switch port 1
        sim.run();
        assert_eq!(sim.node_ref::<Receiver>(receiver).unwrap().got, 1);
        let stats = sim.node_ref::<Switch>(sw).unwrap().stats();
        assert_eq!(stats.packets_in, 1);
        assert_eq!(stats.forwarded, 1);
    }

    #[test]
    fn extern_ticks_run_until_quiescent() {
        use crate::pipeline::{ExternOutput, PacketCtx, SwitchExtern};
        use daiet_fabric::Duration;
        use daiet_netsim::{FramePool, LinkSpec, Simulator};

        /// Emits one probe frame per tick until it has emitted `budget`.
        struct Ticker {
            budget: u32,
            ticks: u32,
        }
        impl SwitchExtern for Ticker {
            fn invoke(&mut self, _: &mut PacketCtx, _: u32, _: &FramePool) -> ExternOutput {
                ExternOutput::default()
            }
            fn tick_interval(&self) -> Option<Duration> {
                Some(Duration::from_micros(10))
            }
            fn wants_tick(&self) -> bool {
                self.ticks < self.budget
            }
            fn on_tick(&mut self, _now: Time, pool: &FramePool) -> Vec<(PortId, Frame)> {
                self.ticks += 1;
                vec![(PortId(0), pool.copy_from_slice(b"tick"))]
            }
        }

        #[derive(Default)]
        struct Sink(usize);
        impl Node for Sink {
            fn on_packet(&mut self, _: &mut dyn Fabric, _: PortId, _: Frame) {
                self.0 += 1;
            }
        }

        let mut sw = Switch::new("ticker", Pipeline::new(Resources::tiny()));
        sw.register_extern(Box::new(Ticker { budget: 3, ticks: 0 }));
        let mut sim = Simulator::new(1);
        let sw_id = sim.add_node(Box::new(sw));
        let sink = sim.add_node(Box::new(Sink::default()));
        sim.connect(sw_id, sink, LinkSpec::fast());
        // The run terminates (the extern goes quiescent after 3 ticks) and
        // every tick's emission reached the sink.
        sim.run();
        assert_eq!(sim.node_ref::<Sink>(sink).unwrap().0, 3);
    }

    #[test]
    fn ops_budget_tracks_maximum() {
        let mut sw = l2_switch(&[(2, 1)]);
        sw.process(PortId(0), frame(1, 2), 4, &FramePool::new());
        assert!(sw.stats().max_ops_seen >= 2);
        assert_eq!(sw.stats().ops_violations, 0);
    }
}
