//! Stateful register arrays — the switch memory DAIET stores its key and
//! value arrays in ("For each tree, network devices store two arrays, one
//! for the keys and one for the values", §4).
//!
//! A register array is a fixed-length vector of fixed-width cells. Its
//! SRAM footprint is `cells × bytes_per_cell` (declared explicitly, since
//! hardware packing differs from Rust layout) and must be reserved from a
//! [`crate::SramTracker`] before use. Reads and writes are counted so the
//! per-packet operation budget can be enforced by the pipeline.

/// A fixed-size array of registers holding `T`.
#[derive(Debug, Clone)]
pub struct RegisterArray<T: Copy + Default> {
    name: String,
    cells: Vec<T>,
    bytes_per_cell: usize,
    reads: u64,
    writes: u64,
}

impl<T: Copy + Default> RegisterArray<T> {
    /// Creates an array of `len` zeroed cells. `bytes_per_cell` is the
    /// hardware width used for SRAM accounting.
    pub fn new(name: impl Into<String>, len: usize, bytes_per_cell: usize) -> Self {
        RegisterArray {
            name: name.into(),
            cells: vec![T::default(); len],
            bytes_per_cell,
            reads: 0,
            writes: 0,
        }
    }

    /// The array name (used in SRAM allocation records).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True when the array has no cells.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// SRAM footprint in bytes.
    pub fn sram_bytes(&self) -> usize {
        self.cells.len() * self.bytes_per_cell
    }

    /// Reads cell `idx`. Panics on out-of-range access: indices come from
    /// `hash % len`, so a violation is a program bug, not a data error.
    pub fn read(&mut self, idx: usize) -> T {
        self.reads += 1;
        self.cells[idx]
    }

    /// Writes cell `idx`.
    pub fn write(&mut self, idx: usize, value: T) {
        self.writes += 1;
        self.cells[idx] = value;
    }

    /// Atomic read-modify-write, the primitive RMT stages actually offer
    /// (one access per packet per stage); counted as a single operation.
    pub fn update(&mut self, idx: usize, f: impl FnOnce(T) -> T) -> T {
        self.writes += 1;
        let v = f(self.cells[idx]);
        self.cells[idx] = v;
        v
    }

    /// Resets every cell to the default value (controller-plane reset
    /// between jobs; not a data-plane operation, so not counted).
    pub fn clear(&mut self) {
        for c in &mut self.cells {
            *c = T::default();
        }
    }

    /// Total reads performed.
    pub fn read_count(&self) -> u64 {
        self.reads
    }

    /// Total writes (including updates) performed.
    pub fn write_count(&self) -> u64 {
        self.writes
    }

    /// Read-only view of all cells (control-plane inspection, not counted).
    pub fn snapshot(&self) -> &[T] {
        &self.cells
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_initialized_and_sized() {
        let r: RegisterArray<u32> = RegisterArray::new("vals", 1024, 4);
        assert_eq!(r.len(), 1024);
        assert!(!r.is_empty());
        assert_eq!(r.sram_bytes(), 4096);
        assert!(r.snapshot().iter().all(|&v| v == 0));
        assert_eq!(r.name(), "vals");
    }

    #[test]
    fn read_write_update_count_ops() {
        let mut r: RegisterArray<u32> = RegisterArray::new("vals", 8, 4);
        r.write(3, 10);
        assert_eq!(r.read(3), 10);
        let v = r.update(3, |x| x + 5);
        assert_eq!(v, 15);
        assert_eq!(r.read(3), 15);
        assert_eq!(r.read_count(), 2);
        assert_eq!(r.write_count(), 2);
    }

    #[test]
    fn clear_resets_without_counting() {
        let mut r: RegisterArray<u64> = RegisterArray::new("acc", 4, 8);
        r.write(0, 7);
        r.clear();
        assert!(r.snapshot().iter().all(|&v| v == 0));
        assert_eq!(r.write_count(), 1); // clear not counted
    }

    #[test]
    fn wide_cells_account_their_declared_width() {
        // A DAIET key register: 16-byte cells.
        let r: RegisterArray<[u8; 16]> = RegisterArray::new("keys", 16_384, 16);
        assert_eq!(r.sram_bytes(), 262_144);
    }

    #[test]
    #[should_panic]
    fn out_of_range_access_panics() {
        let mut r: RegisterArray<u32> = RegisterArray::new("vals", 4, 4);
        r.read(4);
    }
}
