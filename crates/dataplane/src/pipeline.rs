//! The staged match-action pipeline and the extern hook for bounded
//! stateful programs.
//!
//! A packet traverses the stages in order; in each stage every table is
//! applied once ("a table can be applied at most once per packet" is the
//! P4 constraint the paper calls out, which forces loop unrolling). Table
//! hits bind [`ActionSpec`]s; the only way to run stateful multi-step
//! logic (like DAIET's Algorithm 1) is through a registered
//! [`SwitchExtern`], which must declare the operation count it spent so the
//! per-packet budget can be audited.

use crate::parser::ParsedPacket;
use crate::resources::{ResourceError, Resources, SramTracker};
use crate::table::Table;
use daiet_fabric::{Duration, Frame, FramePool, PortId, Time};

/// Identifies a registered extern within one switch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ExternId(pub usize);

/// Number of 32-bit metadata slots carried with each packet.
pub const META_SLOTS: usize = 16;

/// Per-packet execution state threaded through the pipeline.
#[derive(Debug)]
pub struct PacketCtx {
    /// Ingress port.
    pub in_port: PortId,
    /// Parsed headers plus the original frame.
    pub parsed: ParsedPacket,
    meta: [u32; META_SLOTS],
    /// Where the (possibly consumed) packet is headed.
    pub egress: Egress,
    /// Operations spent so far on this packet.
    pub ops: usize,
    /// Times this packet has been recirculated.
    pub recircs: u32,
    /// Simulated arrival time ([`Time::ZERO`] outside a simulator run,
    /// e.g. in unit tests that drive the pipeline directly). Externs with
    /// time-based state (NACK timeouts) read this.
    pub now: Time,
}

/// Forwarding decision for the original packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Egress {
    /// No decision yet (ends as a drop, like a miss in a real pipeline).
    #[default]
    Unset,
    /// Send out one port.
    Port(PortId),
    /// Send out every port except the ingress.
    Flood,
    /// Drop explicitly.
    Drop,
    /// Absorbed by an extern (e.g. aggregated into switch state).
    Consumed,
}

impl PacketCtx {
    /// Wraps a parsed packet arriving on `in_port`.
    pub fn new(in_port: PortId, parsed: ParsedPacket) -> PacketCtx {
        PacketCtx {
            in_port,
            parsed,
            meta: [0; META_SLOTS],
            egress: Egress::Unset,
            ops: 0,
            recircs: 0,
            now: Time::ZERO,
        }
    }

    /// Like [`PacketCtx::new`], stamped with the simulated arrival time.
    pub fn at(in_port: PortId, parsed: ParsedPacket, now: Time) -> PacketCtx {
        PacketCtx { now, ..PacketCtx::new(in_port, parsed) }
    }

    /// Reads metadata slot `slot`.
    pub fn meta(&self, slot: u8) -> u32 {
        self.meta[slot as usize % META_SLOTS]
    }

    /// Writes metadata slot `slot`.
    pub fn set_meta(&mut self, slot: u8, value: u32) {
        self.meta[slot as usize % META_SLOTS] = value;
    }
}

/// An action bound to a flow rule.
#[derive(Debug, Clone, PartialEq)]
pub enum ActionSpec {
    /// Do nothing (continue to later stages).
    NoOp,
    /// Drop the packet.
    Drop,
    /// Forward out a port.
    Forward(PortId),
    /// Forward out all ports except the ingress.
    Flood,
    /// Write an immediate to a metadata slot.
    SetMeta {
        /// Destination slot.
        slot: u8,
        /// Immediate value.
        value: u32,
    },
    /// Invoke a registered extern with an argument.
    Invoke {
        /// Which extern.
        ext: ExternId,
        /// Opaque argument (DAIET passes the tree id).
        arg: u32,
    },
    /// Re-inject the packet at the top of the pipeline (bounded by
    /// [`Resources::max_recirculations`]).
    Recirculate,
}

/// Frames an extern wants to transmit, tagged with their egress port.
pub type ExternEmission = (PortId, Frame);

/// Result of one extern invocation.
#[derive(Debug, Default)]
pub struct ExternOutput {
    /// Frames to emit (already fully serialized).
    pub emit: Vec<ExternEmission>,
    /// True when the original packet was absorbed into switch state and
    /// must not be forwarded.
    pub consume: bool,
    /// Primitive operations the extern spent (register accesses, hashes,
    /// ALU ops) — charged to the packet's budget.
    pub ops: usize,
}

/// A bounded stateful program attached to the pipeline (the DAIET
/// aggregation engine implements this). The `Any` supertrait lets the
/// control plane recover the concrete type for inspection after a run.
pub trait SwitchExtern: std::any::Any {
    /// Handles a packet directed to this extern by an
    /// [`ActionSpec::Invoke`]. Frames the extern emits should be built in
    /// buffers taken from `pool` so their storage recycles.
    fn invoke(&mut self, pkt: &mut PacketCtx, arg: u32, pool: &FramePool) -> ExternOutput;

    /// How often [`SwitchExtern::on_tick`] should run, or `None` for a
    /// purely packet-driven extern (the default). A switch only arms the
    /// timer while [`SwitchExtern::wants_tick`] holds, so a quiescent
    /// extern costs no events.
    fn tick_interval(&self) -> Option<Duration> {
        None
    }

    /// True while the extern has pending time-based work (e.g. flows with
    /// outstanding NACK timeouts). The switch re-arms the tick timer after
    /// any packet or tick that leaves this true, and lets it lapse
    /// otherwise — which is what allows the event queue to drain.
    fn wants_tick(&self) -> bool {
        false
    }

    /// Runs one timer tick at simulated time `now`, returning frames to
    /// transmit (e.g. NACKs toward children whose flows timed out).
    fn on_tick(&mut self, _now: Time, _pool: &FramePool) -> Vec<ExternEmission> {
        Vec::new()
    }

    /// The switch hosting this extern lost power (a scripted node
    /// failure — see the simulator’s `NodeScript`): every piece of
    /// volatile state (registers, rings, trackers) must be dropped, as
    /// SRAM contents do not survive a power cycle. Default: stateless,
    /// nothing to drop.
    fn on_node_fail(&mut self) {}

    /// Diagnostic name.
    fn name(&self) -> String {
        "extern".into()
    }
}

/// One pipeline stage: an ordered list of tables applied sequentially.
#[derive(Debug, Default)]
pub struct Stage {
    tables: Vec<Table>,
}

/// Outcome of a full pipeline traversal.
#[derive(Debug)]
pub struct PipelineVerdict {
    /// Final forwarding decision for the original frame.
    pub egress: Egress,
    /// Extern emissions gathered along the way.
    pub emissions: Vec<ExternEmission>,
    /// Whether the packet requested recirculation.
    pub recirculate: bool,
    /// Operations spent during this traversal.
    pub ops: usize,
}

/// The match-action pipeline: stages, SRAM accounting, op budget.
pub struct Pipeline {
    stages: Vec<Stage>,
    tracker: SramTracker,
}

impl Pipeline {
    /// An empty pipeline over `resources`.
    pub fn new(resources: Resources) -> Pipeline {
        Pipeline {
            stages: (0..resources.stages).map(|_| Stage::default()).collect(),
            tracker: SramTracker::new(resources),
        }
    }

    /// The chip budget.
    pub fn resources(&self) -> &Resources {
        self.tracker.resources()
    }

    /// The SRAM tracker (externs reserve their register memory here).
    pub fn tracker_mut(&mut self) -> &mut SramTracker {
        &mut self.tracker
    }

    /// Read-only SRAM tracker access.
    pub fn tracker(&self) -> &SramTracker {
        &self.tracker
    }

    /// Installs `table` into `stage`, reserving its SRAM. Returns a handle
    /// `(stage, index)` for later rule updates via [`Pipeline::table_mut`].
    pub fn add_table(&mut self, stage: usize, table: Table) -> Result<(usize, usize), ResourceError> {
        self.tracker.allocate(table.name(), stage, table.sram_bytes())?;
        let s = &mut self.stages[stage];
        s.tables.push(table);
        Ok((stage, s.tables.len() - 1))
    }

    /// Mutable access to an installed table (flow-rule updates).
    pub fn table_mut(&mut self, handle: (usize, usize)) -> &mut Table {
        &mut self.stages[handle.0].tables[handle.1]
    }

    /// Iterates all tables (for statistics reporting).
    pub fn tables(&self) -> impl Iterator<Item = &Table> {
        self.stages.iter().flat_map(|s| s.tables.iter())
    }

    /// Runs one traversal (no recirculation handling — the switch loops on
    /// `verdict.recirculate` itself, charging each pass).
    pub fn execute(
        &mut self,
        pkt: &mut PacketCtx,
        externs: &mut [Box<dyn SwitchExtern>],
        pool: &FramePool,
    ) -> PipelineVerdict {
        let mut emissions = Vec::new();
        let mut recirculate = false;
        let mut ops = 0usize;

        'stages: for stage in &mut self.stages {
            for table in &mut stage.tables {
                ops += 1; // one lookup per table application
                let action = table.lookup(pkt);
                match action {
                    ActionSpec::NoOp => {}
                    ActionSpec::Drop => {
                        pkt.egress = Egress::Drop;
                        break 'stages;
                    }
                    ActionSpec::Forward(port) => {
                        ops += 1;
                        pkt.egress = Egress::Port(port);
                    }
                    ActionSpec::Flood => {
                        ops += 1;
                        pkt.egress = Egress::Flood;
                    }
                    ActionSpec::SetMeta { slot, value } => {
                        ops += 1;
                        pkt.set_meta(slot, value);
                    }
                    ActionSpec::Invoke { ext, arg } => {
                        let e = externs
                            .get_mut(ext.0)
                            .unwrap_or_else(|| panic!("extern {} not registered", ext.0));
                        let out = e.invoke(pkt, arg, pool);
                        ops += out.ops;
                        emissions.extend(out.emit);
                        if out.consume {
                            // The packet was absorbed into switch state;
                            // later stages must not resurrect it.
                            pkt.egress = Egress::Consumed;
                            break 'stages;
                        }
                    }
                    ActionSpec::Recirculate => {
                        ops += 1;
                        recirculate = true;
                    }
                }
            }
        }

        pkt.ops += ops;
        PipelineVerdict { egress: pkt.egress, emissions, recirculate, ops }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse, ParserConfig};
    use crate::table::{Field, KeySpec, MatchValue, TableEntry, TableKind};
    use daiet_wire::stack::{build_udp, Endpoints};

    fn udp_pkt(dst: u32, dport: u16) -> PacketCtx {
        let frame = Frame::from(build_udp(&Endpoints::from_ids(1, dst), 999, dport, b"pp"));
        PacketCtx::new(PortId(0), parse(frame, &ParserConfig::default()).unwrap())
    }

    fn l2_table(capacity: usize) -> Table {
        Table::new(
            "l2",
            TableKind::Exact,
            KeySpec(vec![Field::EthDst]),
            capacity,
            ActionSpec::Flood,
        )
    }

    struct CountingExtern {
        invocations: u32,
        consume: bool,
    }

    impl SwitchExtern for CountingExtern {
        fn invoke(&mut self, pkt: &mut PacketCtx, arg: u32, pool: &FramePool) -> ExternOutput {
            self.invocations += 1;
            pkt.set_meta(0, arg);
            ExternOutput {
                emit: vec![(PortId(5), pool.copy_from_slice(b"emitted"))],
                consume: self.consume,
                ops: 3,
            }
        }
    }

    #[test]
    fn forward_action_sets_egress() {
        let mut p = Pipeline::new(Resources::tiny());
        let h = p.add_table(0, l2_table(8)).unwrap();
        p.table_mut(h)
            .insert(TableEntry {
                matcher: MatchValue::Exact(daiet_wire::EthernetAddress::from_id(2).0.to_vec()),
                action: ActionSpec::Forward(PortId(4)),
            })
            .unwrap();
        let mut pkt = udp_pkt(2, 50);
        let v = p.execute(&mut pkt, &mut [], &FramePool::new());
        assert_eq!(v.egress, Egress::Port(PortId(4)));
        assert!(v.ops >= 2);
    }

    #[test]
    fn default_action_floods() {
        let mut p = Pipeline::new(Resources::tiny());
        p.add_table(0, l2_table(8)).unwrap();
        let mut pkt = udp_pkt(9, 50);
        let v = p.execute(&mut pkt, &mut [], &FramePool::new());
        assert_eq!(v.egress, Egress::Flood);
    }

    #[test]
    fn drop_short_circuits_later_stages() {
        let mut p = Pipeline::new(Resources::tiny());
        let h0 = p.add_table(0, Table::new(
            "acl",
            TableKind::Exact,
            KeySpec(vec![Field::L4Dst]),
            4,
            ActionSpec::NoOp,
        )).unwrap();
        p.table_mut(h0)
            .insert(TableEntry {
                matcher: MatchValue::Exact(666u16.to_be_bytes().to_vec()),
                action: ActionSpec::Drop,
            })
            .unwrap();
        let h1 = p.add_table(1, l2_table(8)).unwrap();
        let mut pkt = udp_pkt(2, 666);
        let v = p.execute(&mut pkt, &mut [], &FramePool::new());
        assert_eq!(v.egress, Egress::Drop);
        // The stage-1 table never ran.
        assert_eq!(p.table_mut(h1).stats(), (0, 0));
    }

    #[test]
    fn extern_invocation_emits_and_consumes() {
        let mut p = Pipeline::new(Resources::tiny());
        let h = p.add_table(0, Table::new(
            "steer",
            TableKind::Exact,
            KeySpec(vec![Field::L4Dst]),
            4,
            ActionSpec::NoOp,
        )).unwrap();
        p.table_mut(h)
            .insert(TableEntry {
                matcher: MatchValue::Exact(42u16.to_be_bytes().to_vec()),
                action: ActionSpec::Invoke { ext: ExternId(0), arg: 1234 },
            })
            .unwrap();
        let mut externs: Vec<Box<dyn SwitchExtern>> =
            vec![Box::new(CountingExtern { invocations: 0, consume: true })];
        let mut pkt = udp_pkt(2, 42);
        let v = p.execute(&mut pkt, &mut externs, &FramePool::new());
        assert_eq!(v.egress, Egress::Consumed);
        assert_eq!(v.emissions.len(), 1);
        assert_eq!(v.emissions[0].0, PortId(5));
        assert_eq!(pkt.meta(0), 1234);
        // 1 lookup + 3 extern ops (+1 lookup by... only one table) = 4.
        assert_eq!(v.ops, 4);
    }

    #[test]
    fn set_meta_threads_between_stages() {
        let mut p = Pipeline::new(Resources::tiny());
        let h0 = p.add_table(0, Table::new(
            "mark",
            TableKind::Exact,
            KeySpec(vec![Field::L4Dst]),
            4,
            ActionSpec::SetMeta { slot: 2, value: 77 },
        )).unwrap();
        let _ = h0;
        let h1 = p.add_table(1, Table::new(
            "use",
            TableKind::Exact,
            KeySpec(vec![Field::Meta(2)]),
            4,
            ActionSpec::Drop,
        )).unwrap();
        p.table_mut(h1)
            .insert(TableEntry {
                matcher: MatchValue::Exact(77u32.to_be_bytes().to_vec()),
                action: ActionSpec::Forward(PortId(1)),
            })
            .unwrap();
        let mut pkt = udp_pkt(2, 1);
        let v = p.execute(&mut pkt, &mut [], &FramePool::new());
        assert_eq!(v.egress, Egress::Port(PortId(1)));
    }

    #[test]
    fn recirculate_is_reported_not_looped() {
        let mut p = Pipeline::new(Resources::tiny());
        let h = p.add_table(0, Table::new(
            "recirc",
            TableKind::Exact,
            KeySpec(vec![Field::L4Dst]),
            4,
            ActionSpec::Recirculate,
        )).unwrap();
        let _ = h;
        let mut pkt = udp_pkt(2, 5);
        let v = p.execute(&mut pkt, &mut [], &FramePool::new());
        assert!(v.recirculate);
        assert_eq!(v.egress, Egress::Unset);
    }

    #[test]
    fn table_sram_is_charged() {
        let mut p = Pipeline::new(Resources::tiny());
        p.add_table(0, l2_table(1000)).unwrap();
        assert_eq!(p.tracker().used_in_stage(0), 1000 * 14);
        // A table too large for the remaining slice is refused.
        let err = p.add_table(0, l2_table(10_000)).unwrap_err();
        assert!(matches!(err, ResourceError::SramExhausted { .. }));
    }

    #[test]
    fn ops_accumulate_on_packet() {
        let mut p = Pipeline::new(Resources::tiny());
        p.add_table(0, l2_table(4)).unwrap();
        p.add_table(1, l2_table(4)).unwrap();
        let mut pkt = udp_pkt(2, 1);
        p.execute(&mut pkt, &mut [], &FramePool::new());
        // Two lookups, two flood decisions (default action each stage).
        assert_eq!(pkt.ops, 4);
    }

    #[test]
    #[should_panic(expected = "not registered")]
    fn missing_extern_panics() {
        let mut p = Pipeline::new(Resources::tiny());
        let h = p.add_table(0, Table::new(
            "bad",
            TableKind::Exact,
            KeySpec(vec![Field::L4Dst]),
            4,
            ActionSpec::Invoke { ext: ExternId(3), arg: 0 },
        )).unwrap();
        let _ = h;
        let mut pkt = udp_pkt(2, 5);
        p.execute(&mut pkt, &mut [], &FramePool::new());
    }
}
