//! Deploying a DAIET job onto the real-time UDP backend.
//!
//! The simulator runners ([`crate::iterative`], the workload crates)
//! build nodes and hand them to a `Simulator`; this module builds the
//! **same nodes** — [`PacedSenderNode`](crate::worker::PacedSenderNode)
//! mappers, userspace [`Switch`](daiet_dataplane::Switch)es,
//! [`ReducerHost`] reducers — and hands them to
//! [`daiet_fabric::run_cluster`], which drives each one from a
//! nonblocking UDP socket loop on its own thread. The kernel genuinely
//! routes every datagram over `127.0.0.1`, timers run on the wall clock,
//! and loss is injected at the socket edge ([`FaultShim`]), so NACK
//! recovery is exercised over a real lossy transport.
//!
//! Two constraints shape the API:
//!
//! * **Nodes are not `Send`** (frames are `Rc`-backed), so a spec
//!   carries `Send` *ingredients* (configs, plans, pair data) and each
//!   driver thread builds its own node. Switch threads re-run
//!   [`Controller::deploy`] locally — deployment is a pure function of
//!   the job, so every thread derives the identical plan.
//! * **Port numbering must match the controller's tables.** The plan
//!   assigns ports in link-insertion order and `run_cluster` does the
//!   same, so handing it `plan.links()` verbatim reproduces the exact
//!   port map the controller programmed into every switch.
//!
//! Timeouts are the one knob that changes meaning across backends: a
//! 50 µs NACK timeout is generous in simulated time but shorter than a
//! scheduler quantum on a real host. [`wall_clock_config`] rescales it
//! (see `docs/RELIABILITY.md`).

use crate::agg::AggFn;
use crate::config::DaietConfig;
use crate::controller::{AggregationMode, Controller, Deployment, JobPlacement};
use crate::worker::{multi_tree_sender, reducer_host, ReducerHost};
use daiet_fabric::{Duration, FaultShim, FramePool, Node, NodeSpec, Time};
use daiet_netsim::topology::TopologyPlan;
use daiet_wire::daiet::{Key, Pair};
use std::any::Any;

/// The wall-clock NACK timeout floor: 3 ms. Large against loopback RTTs
/// (microseconds) and driver-thread scheduling jitter (up to a
/// millisecond under load), small against the multi-second run deadline
/// — a premature NACK is only wasted replay, but dozens of them per
/// flow would exhaust the budget before real loss gets recovered.
pub const WALL_NACK_TIMEOUT_NS: u64 = 3_000_000;

/// Rescales a sim-scale configuration for the wall clock: the NACK
/// timeout is raised to at least [`WALL_NACK_TIMEOUT_NS`]. Everything
/// else (packetization, reliability switches, budgets) is
/// backend-neutral and passes through unchanged.
pub fn wall_clock_config(mut config: DaietConfig) -> DaietConfig {
    config.nack_timeout_ns = config.nack_timeout_ns.max(WALL_NACK_TIMEOUT_NS);
    config
}

/// What a finished loopback reducer reports back (the `Send` distillate
/// of a [`ReducerHost`] — see [`LoopbackJob::reducer_spec`]).
#[derive(Debug)]
pub struct ReducerReport {
    /// The aggregated pairs, sorted by key bytes.
    pub pairs: Vec<(Key, u32)>,
    /// Whether every expected END arrived.
    pub complete: bool,
    /// Whether every tracked flow is gapless (vacuously true without
    /// NACK recovery).
    pub recovery_satisfied: bool,
    /// NACK frames this reducer emitted.
    pub nacks_emitted: u64,
    /// Frames suppressed as duplicates.
    pub duplicates_suppressed: u64,
    /// Wall-clock driver time all input completed, if it did.
    pub completed_at: Option<Time>,
}

/// One DAIET job bound to the UDP loopback backend: the controller's
/// deployment plus everything a driver thread needs to rebuild its slot
///'s node. Construct with [`LoopbackJob::deploy`], then ask it for one
/// [`NodeSpec`] per plan slot and hand them to
/// [`daiet_fabric::run_cluster`] with [`LoopbackJob::links`].
pub struct LoopbackJob {
    controller: Controller,
    plan: TopologyPlan,
    placement: JobPlacement,
    resources: daiet_dataplane::Resources,
    mode: AggregationMode,
    deployment: Deployment,
}

impl LoopbackJob {
    /// Validates and deploys the job (on the calling thread — switch
    /// threads will re-derive the identical deployment locally).
    pub fn deploy(
        controller: Controller,
        plan: TopologyPlan,
        placement: JobPlacement,
        resources: daiet_dataplane::Resources,
        mode: AggregationMode,
    ) -> Result<LoopbackJob, String> {
        let (deployment, _switches) = controller
            .deploy(&plan, &placement, resources, mode)
            .map_err(|e| e.to_string())?;
        Ok(LoopbackJob { controller, plan, placement, resources, mode, deployment })
    }

    /// The deployment metadata (trees, endpoints, expected ENDs).
    pub fn deployment(&self) -> &Deployment {
        &self.deployment
    }

    /// The topology plan the job is deployed over.
    pub fn plan(&self) -> &TopologyPlan {
        &self.plan
    }

    /// The job placement (mapper and reducer plan slots).
    pub fn placement(&self) -> &JobPlacement {
        &self.placement
    }

    /// The link list for [`daiet_fabric::run_cluster`], in plan
    /// insertion order — the order that reproduces the controller's
    /// port numbering.
    pub fn links(&self) -> Vec<(usize, usize)> {
        self.plan.links().iter().map(|&(a, b, _)| (a, b)).collect()
    }

    /// The spec for switch `slot`: the driver thread re-runs the
    /// controller deployment and keeps its own slot's [`Switch`]
    /// (switches hold `Rc`-backed state and cannot cross threads).
    ///
    /// [`Switch`]: daiet_dataplane::Switch
    pub fn switch_spec(&self, slot: usize, shim: FaultShim) -> NodeSpec {
        let controller = self.controller.clone();
        let plan = self.plan.clone();
        let placement = self.placement.clone();
        let resources = self.resources;
        let mode = self.mode;
        NodeSpec {
            build: Box::new(move || {
                let (_dep, mut switches) = controller
                    .deploy(&plan, &placement, resources, mode)
                    .expect("deployment validated by LoopbackJob::deploy");
                Box::new(switches.remove(&slot).expect("slot holds a switch"))
            }),
            shim,
            done: None,
            finish: Box::new(|_| Box::new(())),
        }
    }

    /// The spec for mapper `m` (placement order) owing `shards[r]` to
    /// reducer `r`: a paced multi-tree sender, replay-armed when the
    /// config has NACK recovery. Open-ended — the run stops it once
    /// every reducer is satisfied.
    pub fn sender_spec(
        &self,
        m: usize,
        shards: Vec<Vec<Pair>>,
        pacing: Duration,
        redundancy: u32,
        shim: FaultShim,
    ) -> NodeSpec {
        assert_eq!(shards.len(), self.placement.reducers.len(), "one shard per reducer");
        let slot = self.placement.mappers[m];
        let config = self.controller.config;
        let parts: Vec<(u16, daiet_wire::stack::Endpoints, Vec<Pair>)> = shards
            .into_iter()
            .enumerate()
            .map(|(r, pairs)| {
                (self.deployment.tree_id(r), self.deployment.endpoints(slot, r), pairs)
            })
            .collect();
        NodeSpec {
            build: Box::new(move || {
                // Frames are preloaded from a thread-local pool; the
                // driver copies bytes at the socket edge, so the pool
                // never crosses the thread.
                let pool = FramePool::new();
                Box::new(multi_tree_sender(
                    &config,
                    m,
                    &parts,
                    redundancy,
                    pacing,
                    &pool,
                    "udp-mapper",
                ))
            }),
            shim,
            done: None,
            finish: Box::new(|_| Box::new(())),
        }
    }

    /// The spec for reducer `r` (placement order): the standard
    /// [`reducer_host`] endpoint, done once complete **and** gapless,
    /// finishing into a [`ReducerReport`].
    pub fn reducer_spec(&self, r: usize, shim: FaultShim) -> NodeSpec {
        let config = self.controller.config;
        let agg: AggFn = self.controller.agg_for(r);
        let dep = self.deployment.clone();
        let slot = self.placement.reducers[r];
        let mappers = self.placement.mappers.clone();
        NodeSpec {
            build: Box::new(move || {
                Box::new(reducer_host(&config, agg, &dep, r, slot, &mappers))
            }),
            shim,
            done: Some(Box::new(|n: &dyn Node| {
                let host = (n as &dyn Any)
                    .downcast_ref::<ReducerHost>()
                    .expect("reducer slots hold ReducerHosts");
                host.collector.is_complete() && host.recovery_satisfied()
            })),
            finish: Box::new(|n| {
                let host = (n as Box<dyn Any>)
                    .downcast::<ReducerHost>()
                    .expect("reducer slots hold ReducerHosts");
                Box::new(ReducerReport {
                    complete: host.collector.is_complete(),
                    recovery_satisfied: host.recovery_satisfied(),
                    nacks_emitted: host.nacks_emitted(),
                    duplicates_suppressed: host.duplicates_suppressed(),
                    completed_at: host.completed_at,
                    pairs: host.collector.into_sorted(),
                })
            }),
        }
    }

    /// The standard full-job spec list: every plan slot filled with its
    /// role's spec (mappers get `shards[m]`, all with transparent
    /// shims). Callers needing per-slot loss injection assemble the
    /// specs themselves from the per-role constructors.
    pub fn specs(
        &self,
        shards: Vec<Vec<Vec<Pair>>>,
        pacing: Duration,
        redundancy: u32,
    ) -> Vec<NodeSpec> {
        assert_eq!(shards.len(), self.placement.mappers.len(), "one shard list per mapper");
        let mut shards: Vec<Option<Vec<Vec<Pair>>>> = shards.into_iter().map(Some).collect();
        (0..self.plan.len())
            .map(|slot| {
                if let Some(m) = self.placement.mappers.iter().position(|&s| s == slot) {
                    self.sender_spec(
                        m,
                        shards[m].take().expect("each mapper slot is unique"),
                        pacing,
                        redundancy,
                        FaultShim::none(),
                    )
                } else if let Some(r) = self.placement.reducers.iter().position(|&s| s == slot)
                {
                    self.reducer_spec(r, FaultShim::none())
                } else if self.plan.switches().contains(&slot) {
                    self.switch_spec(slot, FaultShim::none())
                } else {
                    // An idle host: receives and drops (mirrors the
                    // simulator runners' inert NIC).
                    NodeSpec::plain(Box::new(|| Box::new(LoopbackIdleHost)))
                }
            })
            .collect()
    }
}

/// A host slot the placement leaves unused: receives and drops.
struct LoopbackIdleHost;

impl Node for LoopbackIdleHost {
    fn on_packet(
        &mut self,
        _ctx: &mut dyn daiet_fabric::Fabric,
        _port: daiet_fabric::PortId,
        _frame: daiet_fabric::Frame,
    ) {
    }

    fn name(&self) -> String {
        "idle-host".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_clock_config_raises_only_the_timeout() {
        let base = DaietConfig { nack_timeout_ns: 50_000, ..DaietConfig::default() };
        let wall = wall_clock_config(base);
        assert_eq!(wall.nack_timeout_ns, WALL_NACK_TIMEOUT_NS);
        assert_eq!(wall.pairs_per_packet, base.pairs_per_packet);
        // An already-generous timeout is left alone.
        let big = DaietConfig { nack_timeout_ns: 10_000_000, ..DaietConfig::default() };
        assert_eq!(wall_clock_config(big).nack_timeout_ns, 10_000_000);
    }

    /// The smallest end-to-end loopback job: two mappers, one reducer,
    /// one software switch, four OS threads, real UDP sockets. The
    /// switch aggregates in-network, so the reducer must see the summed
    /// pairs — byte-identical to what the simulator produces for the
    /// same job (asserted at scale in `tests/fabric_properties.rs`).
    #[test]
    fn two_mapper_wordcount_over_loopback_sockets() {
        let config = wall_clock_config(DaietConfig {
            register_cells: 256,
            reliability: true,
            nack_recovery: true,
            ..DaietConfig::default()
        })
        .with_rtx_sized_for_flush();
        let plan = TopologyPlan::star(3, daiet_netsim::LinkSpec::fast());
        let placement = JobPlacement { mappers: vec![0, 1], reducers: vec![2] };
        let job = LoopbackJob::deploy(
            Controller::new(config, AggFn::Sum),
            plan,
            placement,
            daiet_dataplane::Resources::tofino_like(),
            AggregationMode::InNetwork,
        )
        .unwrap();

        let key = |s: &str| Key::from_str_key(s).unwrap();
        let shards = vec![
            vec![vec![Pair::new(key("dog"), 2), Pair::new(key("cat"), 1)]],
            vec![vec![Pair::new(key("dog"), 5)]],
        ];
        let specs = job.specs(shards, Duration::from_micros(50), 1);
        let out = daiet_fabric::run_cluster(
            specs,
            &job.links(),
            std::time::Duration::from_secs(30),
        );
        let report = out[2].result.downcast_ref::<ReducerReport>().unwrap();
        assert!(report.complete, "reducer never completed: {report:?}");
        assert!(report.recovery_satisfied);
        assert_eq!(report.pairs, vec![(key("cat"), 1), (key("dog"), 7)]);
        // In-network aggregation: the reducer's input came from the
        // switch, already summed — exactly one flow's worth of frames.
        assert!(out[2].stats.frames_in >= 2);
    }
}
