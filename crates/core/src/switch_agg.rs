//! **Algorithm 1** — the per-packet aggregation logic a DAIET switch runs.
//!
//! For each tree the device stores two register arrays (keys and values)
//! "managed as a hash table with buckets of only one element", an *index
//! stack* recording which cells are in use ("this facilitates flushing the
//! results to the next node, avoiding a costly scan of the arrays"), a
//! one-packet *spillover bucket* absorbing hash collisions, and a
//! `remaining_children` counter armed by the controller. The paper's
//! pseudocode maps to [`DaietEngine`]'s internal `process_data` and
//! `process_end` methods, line for line:
//!
//! ```text
//! 1  header ← parseHeader(P)                      (dataplane parser)
//! 2  if header.type = DATA_PACKET then
//! 3      entries ← parsePayload(P, header.num_entries)
//! 4      foreach pair in entries do
//! 5          idx ← Hash(pair.key)                 (CRC-32 % cells)
//! 6          if keyRegister[idx] is empty then
//! 7              keyRegister[idx] ← pair.key
//! 8              valueRegister[idx] ← pair.value
//! 9              indexStack.push(idx)
//! 10         else if keyRegister[idx] = pair.key then
//! 11             updateValue(valueRegister[idx], pair.value)
//! 12         else
//! 13             store(spilloverBucket, pair)
//! 14             if spilloverBucket is full then
//! 15                 flushData(spilloverBucket)
//! 16 else if header.type = END_PACKET then
//! 17     remaining_children ← remaining_children − 1
//! 18     if remaining_children = 0 then
//! 19         flushData(keyRegister, valueRegister)
//! ```
//!
//! The engine is a [`SwitchExtern`], so every register access and hash is
//! charged against the switch's per-packet operation budget, and its SRAM
//! must be reserved through the dataplane's tracker before deployment.

use crate::agg::AggFn;
use crate::config::DaietConfig;
use crate::reliability::{NackRequest, NackTracker, RetransmitRing};
use daiet_dataplane::pipeline::{ExternOutput, PacketCtx, SwitchExtern};
use daiet_dataplane::register::RegisterArray;
use daiet_fabric::{Duration, Frame, FramePool, PortId, Time};
use daiet_wire::checksum::crc32;
use daiet_wire::daiet::{Header, Key, NackRange, PacketFlags, PacketType, Pair};
use daiet_wire::stack::{build_daiet_into, Endpoints};
use daiet_wire::fnv::FnvHashMap;
use daiet_wire::udp::DAIET_PORT;

/// One tree child as seen from a switch: the sender's simulator id (for
/// addressing NACKs) and the switch port leading down to it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChildSource {
    /// The child's plan-slot / simulator id.
    pub id: u32,
    /// This switch's port toward the child.
    pub port: PortId,
}

/// Static, controller-installed configuration of one tree on one switch.
#[derive(Debug, Clone)]
pub struct TreeStateConfig {
    /// Tree identifier.
    pub tree_id: u16,
    /// Egress port toward the parent node.
    pub out_port: PortId,
    /// Addressing for frames this switch originates (src = this switch,
    /// dst = the tree's reducer).
    pub endpoints: Endpoints,
    /// The aggregation function.
    pub agg: AggFn,
    /// Number of children (mappers or downstream switches) that will each
    /// send exactly one END.
    pub children: u32,
    /// The identities and ports of those children — the NACK roster (may
    /// stay empty when NACK recovery is off; its length must equal
    /// `children` when it is on, which the controller guarantees).
    pub children_sources: Vec<ChildSource>,
}

/// Per-tree runtime state (Algorithm 1's registers).
struct TreeState {
    cfg: TreeStateConfig,
    keys: RegisterArray<[u8; daiet_wire::daiet::KEY_LEN]>,
    values: RegisterArray<u32>,
    /// Occupancy bitmap — the paper's "cell is empty" check. A real P4
    /// implementation reserves one bit per cell beside the key register.
    occupied: Vec<u64>,
    /// Indices of used cells, for O(used) flushes.
    index_stack: Vec<u32>,
    /// Collision victims awaiting forwarding.
    spillover: Vec<Pair>,
    /// Reused staging buffer for register flushes (allocation-free after
    /// the first flush).
    flush_buf: Vec<Pair>,
    remaining_children: u32,
    /// Sequence counter for frames this switch originates.
    next_seq: u32,
    /// Recently emitted frames, replayable on NACK (empty ring when NACK
    /// recovery is off).
    rtx: RetransmitRing,
    /// All ENDs are in but a child flow still has gaps (reordered or
    /// NACK-replayed DATA in flight): the flush waits for the gate.
    flush_deferred: bool,
}

impl TreeState {
    fn new(cfg: TreeStateConfig, cells: usize, rtx_frames: usize) -> TreeState {
        TreeState {
            keys: RegisterArray::new(format!("daiet.keys[{}]", cfg.tree_id), cells, 16),
            values: RegisterArray::new(format!("daiet.values[{}]", cfg.tree_id), cells, 4),
            occupied: vec![0u64; cells.div_ceil(64)],
            index_stack: Vec::with_capacity(cells),
            spillover: Vec::new(),
            flush_buf: Vec::new(),
            remaining_children: cfg.children,
            next_seq: 0,
            rtx: RetransmitRing::new(rtx_frames),
            flush_deferred: false,
            cfg,
        }
    }

    #[inline]
    fn is_occupied(&self, idx: usize) -> bool {
        self.occupied[idx / 64] & (1 << (idx % 64)) != 0
    }

    #[inline]
    fn set_occupied(&mut self, idx: usize) {
        self.occupied[idx / 64] |= 1 << (idx % 64);
    }

    #[inline]
    fn clear_occupied(&mut self, idx: usize) {
        self.occupied[idx / 64] &= !(1 << (idx % 64));
    }
}

/// Counters the engine keeps (exposed to benches and tests).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// DATA packets aggregated (consumed).
    pub data_packets_in: u64,
    /// Pairs carried by those packets.
    pub pairs_in: u64,
    /// Pairs that found an empty cell (first occurrence of a key).
    pub pairs_inserted: u64,
    /// Pairs merged into an existing cell (traffic that disappears).
    pub pairs_aggregated: u64,
    /// Pairs diverted to the spillover bucket (hash collisions).
    pub collisions: u64,
    /// Spillover bucket flushes forced by a full bucket.
    pub spill_flushes: u64,
    /// END packets received.
    pub ends_in: u64,
    /// Full flushes performed (tree rounds completed).
    pub flushes: u64,
    /// Frames emitted toward the parent (DATA + END).
    pub frames_out: u64,
    /// Pairs emitted toward the parent.
    pub pairs_out: u64,
    /// DAIET packets for trees this switch is not configured for
    /// (forwarded unaggregated).
    pub unknown_tree: u64,
    /// ENDs received after the counter already reached zero (protocol
    /// violation by a child, or duplicated frame without the reliability
    /// extension).
    pub spurious_ends: u64,
    /// Flushes held back by the reorder gate (all ENDs in, but a child
    /// flow still had outstanding DATA).
    pub flushes_deferred: u64,
    /// NACK frames this switch consumed (from its parent direction).
    pub nacks_in: u64,
    /// NACK frames this switch originated (toward delinquent children).
    pub nacks_out: u64,
    /// Frames replayed from retransmit rings in response to NACKs.
    pub frames_replayed: u64,
}

/// The aggregation extern: all trees configured on one switch.
pub struct DaietEngine {
    config: DaietConfig,
    trees: FnvHashMap<u16, TreeState>,
    stats: EngineStats,
    /// Duplicate suppression (reliability extension; `None` when the
    /// prototype-faithful configuration is used).
    dedup: Option<crate::reliability::DedupWindow>,
    /// Per-child gap tracking for the NACK recovery extension (`None`
    /// when [`DaietConfig::nack_recovery`] is off).
    nack: Option<NackTracker>,
}

impl DaietEngine {
    /// An engine with no trees configured.
    pub fn new(config: DaietConfig) -> DaietEngine {
        // Switch-side dedup state is SRAM, so it is bounded by the
        // configured flow cap; the controller reserves
        // [`DaietConfig::sram_for_dedup`] alongside the register arrays.
        // With NACK recovery on, the gap tracker's reception bitmaps ARE
        // the duplicate filter (one flow lookup per packet, not two), so
        // the separate dedup window is not instantiated.
        let dedup = (config.reliability && !config.nack_recovery)
            .then(|| crate::reliability::DedupWindow::with_capacity(config.dedup_flows));
        // The gap tracker is switch SRAM too: bounded at the same flow
        // cap its reservation (`DaietConfig::sram_for_nack_tracker`) is
        // computed from, refusing packets from flows beyond it.
        let nack = config.nack_recovery.then(|| NackTracker::with_capacity(config.dedup_flows));
        DaietEngine {
            trees: FnvHashMap::default(),
            stats: EngineStats::default(),
            config,
            dedup,
            nack,
        }
    }

    /// Packets suppressed as duplicates (0 without the extension),
    /// whichever filter did the suppressing — the dedup window
    /// (reliability without recovery) or the gap tracker's bitmaps (with
    /// recovery).
    pub fn duplicates_suppressed(&self) -> u64 {
        self.dedup.as_ref().map_or(0, |d| d.duplicates)
            + self.nack.as_ref().map_or(0, |n| n.duplicates)
    }

    /// The duplicate-suppression table, when the reliability extension is
    /// enabled (flow cap, rejection/eviction counters).
    pub fn dedup_window(&self) -> Option<&crate::reliability::DedupWindow> {
        self.dedup.as_ref()
    }

    /// Installs (or replaces) a tree's state. SRAM for
    /// [`DaietConfig::sram_per_tree`] must have been reserved by the
    /// controller beforehand. Reinstallation evicts the tree's stale
    /// dedup *and* gap-tracker flows so neither cap is consumed by dead
    /// senders (and a replaced roster cannot hold the flush gate
    /// closed). With NACK recovery on, the tree's children are seeded
    /// into the gap tracker so even a fully-silenced child gets NACKed.
    pub fn install_tree(&mut self, cfg: TreeStateConfig) {
        if let Some(dedup) = self.dedup.as_mut() {
            dedup.clear_tree(cfg.tree_id);
        }
        if let Some(nack) = self.nack.as_mut() {
            // Reinstallation must forget the old roster: a replaced
            // child's unsatisfied flow would otherwise hold the flush
            // gate closed forever (and consume flow-cap slots).
            nack.clear_tree(cfg.tree_id);
            for child in &cfg.children_sources {
                nack.expect(cfg.tree_id, child.id);
            }
        }
        let cells = self.config.register_cells;
        let rtx = if self.config.nack_recovery { self.config.rtx_frames } else { 0 };
        self.trees.insert(cfg.tree_id, TreeState::new(cfg, cells, rtx));
    }

    /// Uninstalls a tree: drops its registers, retransmit ring, and any
    /// dedup/gap-tracker flows. Used when the controller re-plans a job
    /// around a dead switch and this device is no longer on the tree's
    /// path (stale state would otherwise consume SRAM and, with NACK
    /// recovery, chase children that no longer send this way).
    pub fn remove_tree(&mut self, tree_id: u16) {
        if let Some(dedup) = self.dedup.as_mut() {
            dedup.clear_tree(tree_id);
        }
        if let Some(nack) = self.nack.as_mut() {
            nack.clear_tree(tree_id);
        }
        self.trees.remove(&tree_id);
    }

    /// The NACK gap tracker, when recovery is enabled.
    pub fn nack_tracker(&self) -> Option<&NackTracker> {
        self.nack.as_ref()
    }

    /// Retransmit-ring counters of one tree: `(buffered, evicted,
    /// replayed, misses, retired)`.
    pub fn rtx_stats(&self, tree_id: u16) -> Option<(usize, u64, u64, u64, u64)> {
        self.trees
            .get(&tree_id)
            .map(|t| (t.rtx.len(), t.rtx.evicted, t.rtx.replayed, t.rtx.misses, t.rtx.retired))
    }

    /// Number of trees configured.
    pub fn tree_count(&self) -> usize {
        self.trees.len()
    }

    /// Engine counters.
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// The configured DAIET parameters.
    pub fn config(&self) -> &DaietConfig {
        &self.config
    }

    /// Remaining-children counter of a tree (diagnostics).
    pub fn remaining_children(&self, tree_id: u16) -> Option<u32> {
        self.trees.get(&tree_id).map(|t| t.remaining_children)
    }

    /// Pairs currently held in a tree's registers (diagnostics).
    pub fn pairs_held(&self, tree_id: u16) -> Option<usize> {
        self.trees.get(&tree_id).map(|t| t.index_stack.len())
    }

    /// Algorithm 1, lines 2–15. Returns emissions (spillover flushes) and
    /// the operation count. Entries are decoded lazily from the packet's
    /// frame bytes — the data path never materializes an entry list.
    fn process_data(
        &mut self,
        tree_id: u16,
        entries: impl Iterator<Item = Pair>,
        pool: &FramePool,
    ) -> (Vec<(PortId, Frame)>, usize) {
        let spill_cap = self.config.spillover_capacity();
        let pairs_per_packet = self.config.pairs_per_packet;
        let tree = self.trees.get_mut(&tree_id).expect("caller checked tree exists");
        let mut emissions = Vec::new();
        let mut ops = 1; // preamble inspection
        self.stats.data_packets_in += 1;

        for pair in entries {
            self.stats.pairs_in += 1;
            // Line 5: idx ← Hash(pair.key).
            let idx = (crc32(&pair.key.0) as usize) % tree.keys.len();
            ops += 1; // hash
            ops += 1; // occupancy + key register read
            if !tree.is_occupied(idx) {
                // Lines 6–9: claim the empty cell.
                tree.keys.write(idx, pair.key.0);
                tree.values.write(idx, pair.value);
                tree.set_occupied(idx);
                tree.index_stack.push(idx as u32);
                ops += 2;
                self.stats.pairs_inserted += 1;
            } else if tree.keys.read(idx) == pair.key.0 {
                // Lines 10–11: merge.
                let agg = tree.cfg.agg;
                tree.values.update(idx, |v| agg.apply(v, pair.value));
                ops += 1;
                self.stats.pairs_aggregated += 1;
            } else {
                // Lines 12–15: collision → spillover bucket.
                tree.spillover.push(pair);
                ops += 1;
                self.stats.collisions += 1;
                if tree.spillover.len() >= spill_cap {
                    let mut pairs = std::mem::take(&mut tree.spillover);
                    Self::emit_pairs(
                        tree,
                        &pairs,
                        pairs_per_packet,
                        PacketFlags::SPILLOVER | PacketFlags::FROM_SWITCH,
                        &mut self.stats,
                        pool,
                        &mut emissions,
                    );
                    pairs.clear();
                    tree.spillover = pairs; // keep the capacity
                    self.stats.spill_flushes += 1;
                    ops += 2;
                }
            }
        }
        // This DATA may have been the gap a deferred flush was waiting on
        // (the gate re-checks the whole tree's flow state).
        let deferred = tree.flush_deferred;
        if deferred && self.flush_gate_open(tree_id) {
            ops += self.flush_tree(tree_id, pool, &mut emissions);
        }
        (emissions, ops)
    }

    /// True when nothing blocks flushing `tree_id`: without NACK recovery
    /// the gate is always open (Algorithm 1's behavior); with it, every
    /// child flow must be gapless through its END, so reordered or
    /// replayed DATA cannot arrive *after* the flush and strand itself in
    /// the re-armed registers.
    fn flush_gate_open(&self, tree_id: u16) -> bool {
        self.nack.as_ref().is_none_or(|n| n.tree_satisfied(tree_id))
    }

    /// Algorithm 1, lines 16–19.
    fn process_end(&mut self, tree_id: u16, pool: &FramePool) -> (Vec<(PortId, Frame)>, usize) {
        let mut emissions = Vec::new();
        let mut ops = 2; // counter read-modify-write
        self.stats.ends_in += 1;

        let tree = self.trees.get_mut(&tree_id).expect("caller checked tree exists");
        if tree.remaining_children == 0 {
            let deferred = tree.flush_deferred;
            self.stats.spurious_ends += 1;
            // A late or NACK-recovered END from an earlier round lands
            // here (the current round's ENDs already zeroed the counter)
            // — but it may be exactly the frame that closed its flow's
            // last gap. Re-check a deferred flush like `process_data`
            // does, or the gate would hold a *satisfied* round's flush
            // closed forever: no further DATA ever arrives to retry it.
            if deferred && self.flush_gate_open(tree_id) {
                ops += self.flush_tree(tree_id, pool, &mut emissions);
            }
            return (emissions, ops);
        }
        tree.remaining_children -= 1;
        if tree.remaining_children > 0 {
            return (emissions, ops);
        }
        if !self.flush_gate_open(tree_id) {
            // All ENDs counted, but a child still owes DATA (reordering
            // or a pending NACK replay): hold the flush until the gap
            // closes — `process_data` fires it.
            self.trees.get_mut(&tree_id).expect("exists").flush_deferred = true;
            self.stats.flushes_deferred += 1;
            return (emissions, ops);
        }
        ops += self.flush_tree(tree_id, pool, &mut emissions);
        (emissions, ops)
    }

    /// Line 19 of Algorithm 1: flush spillover + registers + END toward
    /// the parent and re-arm the child counter. Returns the ops spent.
    fn flush_tree(
        &mut self,
        tree_id: u16,
        pool: &FramePool,
        emissions: &mut Vec<(PortId, Frame)>,
    ) -> usize {
        let pairs_per_packet = self.config.pairs_per_packet;
        let tree = self.trees.get_mut(&tree_id).expect("caller checked tree exists");
        let mut ops = 0;

        // "The non-aggregated values in the spillover
        // bucket are the first to be sent to the next node, so that they
        // are more likely to be aggregated if the next node is a network
        // device and has spare memory" (§4).
        if !tree.spillover.is_empty() {
            let mut pairs = std::mem::take(&mut tree.spillover);
            Self::emit_pairs(
                tree,
                &pairs,
                pairs_per_packet,
                PacketFlags::SPILLOVER | PacketFlags::FROM_SWITCH,
                &mut self.stats,
                pool,
                emissions,
            );
            pairs.clear();
            tree.spillover = pairs;
        }

        // Walk the index stack instead of scanning the arrays. The
        // staging buffer is per-tree and reused across rounds.
        let mut pairs = std::mem::take(&mut tree.flush_buf);
        pairs.clear();
        pairs.reserve(tree.index_stack.len());
        while let Some(idx) = tree.index_stack.pop() {
            let idx = idx as usize;
            pairs.push(Pair { key: Key(tree.keys.read(idx)), value: tree.values.read(idx) });
            tree.clear_occupied(idx);
            ops += 2;
        }
        Self::emit_pairs(
            tree,
            &pairs,
            pairs_per_packet,
            PacketFlags::FROM_SWITCH,
            &mut self.stats,
            pool,
            emissions,
        );
        tree.flush_buf = pairs;

        // Propagate the END and re-arm for the next round (iterative
        // workloads run one round per superstep/training step). Sequence
        // numbers wrap — dedup windows compare RFC 1982-style.
        let end = Header::end(tree.cfg.tree_id, PacketFlags::FROM_SWITCH, tree.next_seq);
        tree.next_seq = tree.next_seq.wrapping_add(1);
        let mut buf = pool.buffer();
        build_daiet_into(&mut buf, &tree.cfg.endpoints, DAIET_PORT, &end, &[]);
        let frame = pool.frame(buf);
        tree.rtx.record(end.seq, frame.clone());
        emissions.push((tree.cfg.out_port, frame));
        self.stats.frames_out += 1;
        tree.remaining_children = tree.cfg.children;
        tree.flush_deferred = false;
        self.stats.flushes += 1;
        // Round boundary: retire ring entries a full receiver WINDOW
        // behind the emission edge. The parent ages such gaps out rather
        // than NACK them (`FlowRecv`), so these frames are dead — without
        // retirement an iterative tree whose rounds underfill the ring
        // would pin dead rounds' pooled buffers indefinitely (and, across
        // a sequence-space wrap, could answer a NACK for a reused seq
        // with a stale round's bytes).
        tree.rtx
            .retire_before(tree.next_seq.wrapping_sub(crate::reliability::WINDOW));
        ops += 2;
        ops
    }

    /// Serializes `pairs` into maximal DATA packets toward the parent,
    /// straight from the slice into pooled buffers (no per-packet entry
    /// list, no staging copy).
    #[allow(clippy::too_many_arguments)]
    fn emit_pairs(
        tree: &mut TreeState,
        pairs: &[Pair],
        pairs_per_packet: usize,
        flags: PacketFlags,
        stats: &mut EngineStats,
        pool: &FramePool,
        out: &mut Vec<(PortId, Frame)>,
    ) {
        for chunk in pairs.chunks(pairs_per_packet.max(1)) {
            let hdr = Header::data(tree.cfg.tree_id, flags, tree.next_seq);
            tree.next_seq = tree.next_seq.wrapping_add(1);
            stats.frames_out += 1;
            stats.pairs_out += chunk.len() as u64;
            let mut buf = pool.buffer();
            build_daiet_into(&mut buf, &tree.cfg.endpoints, DAIET_PORT, &hdr, chunk);
            let frame = pool.frame(buf);
            // Buffer for NACK replay (a no-op on a zero-capacity ring;
            // the clone is one refcount bump, not a copy).
            tree.rtx.record(hdr.seq, frame.clone());
            out.push((tree.cfg.out_port, frame));
        }
    }

    /// Handles a NACK arriving from the parent direction: replays the
    /// requested frames from the tree's retransmit ring, in original
    /// order, out the upstream port. Returns the emissions and ops spent.
    fn process_nack(
        &mut self,
        tree_id: u16,
        next_expected: u32,
        tail: bool,
        ranges: impl Iterator<Item = Pair>,
    ) -> (Vec<(PortId, Frame)>, usize) {
        let tree = self.trees.get_mut(&tree_id).expect("caller checked tree exists");
        let req = NackRequest {
            next_expected,
            tail,
            ranges: ranges.filter_map(|p| NackRange::from_pair(&p)).collect(),
        };
        self.stats.nacks_in += 1;
        let mut emissions = Vec::new();
        let out_port = tree.cfg.out_port;
        tree.rtx.replay(&req, |frame| {
            emissions.push((out_port, frame.clone()));
        });
        self.stats.frames_replayed += emissions.len() as u64;
        self.stats.frames_out += emissions.len() as u64;
        // One preamble inspection + one ring lookup per requested item.
        let ops = 2 + emissions.len();
        (emissions, ops)
    }
}

impl SwitchExtern for DaietEngine {
    fn invoke(&mut self, pkt: &mut PacketCtx, arg: u32, pool: &FramePool) -> ExternOutput {
        let Some(daiet) = pkt.parsed.daiet else {
            // Truncated or non-DAIET packet steered here by mistake: let
            // the later forwarding stages handle it untouched.
            return ExternOutput { emit: Vec::new(), consume: false, ops: 1 };
        };
        debug_assert_eq!(u32::from(daiet.tree_id), arg, "steering rule and packet disagree");

        if !self.trees.contains_key(&daiet.tree_id) {
            self.stats.unknown_tree += 1;
            return ExternOutput { emit: Vec::new(), consume: false, ops: 1 };
        }

        // NACK recovery: record every DATA/END arrival so gaps age toward
        // a timeout — the tracker's verdict is also the duplicate filter
        // (replays must be absorbed before they touch non-idempotent
        // aggregation state) — and intercept NACKs addressed to *this
        // switch* (a NACK for a host further down rides the forwarding
        // tables).
        if self.nack.is_some() {
            match daiet.packet_type {
                PacketType::Data | PacketType::End => {
                    if let Some(child) =
                        pkt.parsed.ip.as_ref().and_then(|ip| ip.src_addr.host_id())
                    {
                        let fresh = self.nack.as_mut().expect("checked above").note(
                            daiet.tree_id,
                            child,
                            daiet.seq,
                            daiet.packet_type == PacketType::End,
                            pkt.now,
                        );
                        if !fresh {
                            return ExternOutput { emit: Vec::new(), consume: true, ops: 2 };
                        }
                    }
                }
                PacketType::Nack => {
                    let mine = pkt.parsed.ip.as_ref().is_some_and(|ip| {
                        ip.dst_addr
                            == self.trees[&daiet.tree_id].cfg.endpoints.src_ip
                    });
                    if mine {
                        let tail = daiet.flags.contains(PacketFlags::NACK_TAIL);
                        let (emit, ops) = self.process_nack(
                            daiet.tree_id,
                            daiet.seq,
                            tail,
                            pkt.parsed.daiet_pairs(),
                        );
                        return ExternOutput { emit, consume: true, ops };
                    }
                }
                PacketType::Unknown(_) => {}
            }
        }

        // Reliability extension: aggregation is not idempotent, so
        // re-delivered packets must be absorbed before they touch state.
        if let (Some(dedup), Some(ip)) = (self.dedup.as_mut(), pkt.parsed.ip.as_ref()) {
            if matches!(daiet.packet_type, PacketType::Data | PacketType::End)
                && !dedup.accept(daiet.tree_id, ip.src_addr, daiet.seq)
            {
                return ExternOutput { emit: Vec::new(), consume: true, ops: 2 };
            }
        }

        let (emit, ops) = match daiet.packet_type {
            PacketType::Data => {
                self.process_data(daiet.tree_id, pkt.parsed.daiet_pairs(), pool)
            }
            PacketType::End => self.process_end(daiet.tree_id, pool),
            // NACKs not addressed to this switch and unknown types pass
            // through toward the reducer/hosts.
            PacketType::Nack | PacketType::Unknown(_) => {
                return ExternOutput { emit: Vec::new(), consume: false, ops: 1 }
            }
        };
        ExternOutput { emit, consume: true, ops }
    }

    fn tick_interval(&self) -> Option<Duration> {
        self.nack
            .is_some()
            .then(|| Duration::from_nanos(self.config.nack_timeout_ns))
    }

    fn wants_tick(&self) -> bool {
        self.nack
            .as_ref()
            .is_some_and(|n| n.wants_attention(self.config.nack_max))
    }

    fn on_tick(&mut self, now: Time, pool: &FramePool) -> Vec<(PortId, Frame)> {
        let Some(nack) = self.nack.as_mut() else {
            return Vec::new();
        };
        let timeout = Duration::from_nanos(self.config.nack_timeout_ns);
        let ranges_per_packet = self.config.pairs_per_packet.max(1);
        let mut out = Vec::new();
        let trees = &self.trees;
        let stats = &mut self.stats;
        nack.for_each_due(now, timeout, self.config.nack_max, |tree_id, child, req| {
            let Some(tree) = trees.get(&tree_id) else { return };
            let Some(source) =
                tree.cfg.children_sources.iter().find(|c| c.id == child)
            else {
                return; // unrosterable flow: nowhere to send the NACK
            };
            // NACKs travel from this switch down to the child, out the
            // port the child's traffic came in on.
            let ep = Endpoints {
                dst_mac: daiet_wire::EthernetAddress::from_id(child),
                dst_ip: daiet_wire::Ipv4Address::from_id(child),
                src_mac: tree.cfg.endpoints.src_mac,
                src_ip: tree.cfg.endpoints.src_ip,
            };
            stats.nacks_out += crate::reliability::build_nack_frames(
                &ep,
                tree_id,
                &req,
                ranges_per_packet,
                pool,
                |f| out.push((source.port, f)),
            );
        });
        out
    }

    fn on_node_fail(&mut self) {
        // Power cycle: every tree's registers, spillover, retransmit ring
        // and the dedup/gap-tracker SRAM vanish. The engine comes back
        // with *no* trees — frames for formerly-configured trees forward
        // unaggregated via L2 until the controller reinstalls or re-plans
        // (the silent-corruption vector the chaos tests pin). Host-side
        // diagnostic counters survive; they are not switch SRAM.
        self.trees.clear();
        if self.dedup.is_some() {
            self.dedup =
                Some(crate::reliability::DedupWindow::with_capacity(self.config.dedup_flows));
        }
        if self.nack.is_some() {
            self.nack = Some(NackTracker::with_capacity(self.config.dedup_flows));
        }
    }

    fn name(&self) -> String {
        "daiet-aggregation".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use daiet_dataplane::parser::{parse, ParserConfig};
    use daiet_wire::daiet::Repr;
    use daiet_wire::stack::build_daiet;

    fn engine(cells: usize, children: u32) -> DaietEngine {
        let mut e = DaietEngine::new(DaietConfig {
            register_cells: cells,
            ..DaietConfig::default()
        });
        e.install_tree(TreeStateConfig {
            tree_id: 1,
            out_port: PortId(9),
            endpoints: Endpoints::from_ids(100, 200),
            agg: AggFn::Sum,
            children,
            children_sources: Vec::new(),
        });
        e
    }

    fn key(s: &str) -> Key {
        Key::from_str_key(s).unwrap()
    }

    /// Runs a repr through the engine via the SwitchExtern interface.
    fn drive(e: &mut DaietEngine, repr: &Repr) -> ExternOutput {
        let frame = Frame::from(build_daiet(&Endpoints::from_ids(1, 200), 5, repr));
        let parsed = parse(frame, &ParserConfig::default()).unwrap();
        let mut pkt = PacketCtx::new(PortId(0), parsed);
        e.invoke(&mut pkt, u32::from(repr.tree_id), &FramePool::new())
    }

    /// Parses frames emitted by the engine back into reprs.
    fn parse_emissions(out: &ExternOutput) -> Vec<Repr> {
        out.emit
            .iter()
            .map(|(_, f)| {
                let parsed = parse(f.clone(), &ParserConfig::default()).unwrap();
                parsed.daiet_repr().expect("engine emits DAIET frames")
            })
            .collect()
    }

    /// An engine with the full reliability + NACK-recovery extension and
    /// one tree fed by `children` rostered child hosts (ids 1..=children,
    /// each on its own port).
    fn recovering_engine(children: u32) -> DaietEngine {
        let mut e = DaietEngine::new(DaietConfig {
            register_cells: 4096,
            reliability: true,
            nack_recovery: true,
            rtx_frames: 16,
            ..DaietConfig::default()
        });
        e.install_tree(TreeStateConfig {
            tree_id: 1,
            out_port: PortId(9),
            endpoints: Endpoints::from_ids(100, 200),
            agg: AggFn::Sum,
            children,
            children_sources: (1..=children)
                .map(|c| ChildSource { id: c, port: PortId(c as usize - 1) })
                .collect(),
        });
        e
    }

    /// Drives a repr from host `src` at time `now`.
    fn drive_at(e: &mut DaietEngine, src: u32, repr: &Repr, now: Time) -> ExternOutput {
        let frame = Frame::from(build_daiet(&Endpoints::from_ids(src, 200), 5, repr));
        let parsed = parse(frame, &ParserConfig::default()).unwrap();
        let mut pkt = PacketCtx::at(PortId(0), parsed, now);
        e.invoke(&mut pkt, u32::from(repr.tree_id), &FramePool::new())
    }

    /// Regression: replacing a tree must evict the old roster's gap
    /// state. A dead former child left unsatisfied (even after its NACK
    /// budget ran out) would hold the flush gate closed forever — the
    /// new roster's ENDs would defer the flush to a retry that can never
    /// succeed, and the reducer would silently never see results.
    #[test]
    fn reinstalling_a_tree_forgets_the_old_roster() {
        let mut e = recovering_engine(2);
        // Old child 1 delivers a gapped stream (seq 1 lost) and goes away.
        let mut r = Repr::data(1, vec![Pair::new(key("a"), 1)]);
        r.seq = 0;
        drive_at(&mut e, 1, &r, Time(10));
        let mut end = Repr::end(1);
        end.seq = 2;
        drive_at(&mut e, 1, &end, Time(20));
        // The tree is re-deployed with a single fresh child, id 3.
        e.install_tree(TreeStateConfig {
            tree_id: 1,
            out_port: PortId(9),
            endpoints: Endpoints::from_ids(100, 200),
            agg: AggFn::Sum,
            children: 1,
            children_sources: vec![ChildSource { id: 3, port: PortId(0) }],
        });
        assert!(e.nack_tracker().unwrap().flows_evicted >= 2, "old roster evicted");
        // The new child delivers a complete round: the flush gate must
        // open on its END alone.
        let mut d = Repr::data(1, vec![Pair::new(key("b"), 7)]);
        d.seq = 0;
        drive_at(&mut e, 3, &d, Time(30));
        let mut end = Repr::end(1);
        end.seq = 1;
        let out = drive_at(&mut e, 3, &end, Time(40));
        assert!(
            out.emit.iter().any(|(p, _)| *p == PortId(9)),
            "flush must go out upstream, not defer on the dead roster"
        );
        assert_eq!(e.stats().flushes_deferred, 0);
        assert!(!e.wants_tick(), "no flow left to chase");
    }

    /// Regression (ISSUE 5): a deferred flush must fire when the last gap
    /// is closed by a late/NACK-recovered **END**, not only by DATA. In a
    /// continuous multi-round stream, round r's lost END can arrive after
    /// round r+1's END already zeroed the child counter; that recovered
    /// END takes the "spurious" path — which used to return without
    /// re-checking the gate, holding a satisfied round's flush closed
    /// forever (no further DATA ever arrives to retry it).
    #[test]
    fn deferred_flush_fires_when_a_recovered_end_closes_the_last_gap() {
        let mut e = recovering_engine(1);
        // Round 1: DATA seq 0 arrives; its END (seq 1) is lost.
        let mut d = Repr::data(1, vec![Pair::new(key("a"), 1)]);
        d.seq = 0;
        drive_at(&mut e, 1, &d, Time(10));
        // Round 2 streams in on the same registers: DATA seq 2, END seq 3.
        let mut d2 = Repr::data(1, vec![Pair::new(key("b"), 2)]);
        d2.seq = 2;
        drive_at(&mut e, 1, &d2, Time(20));
        let mut end2 = Repr::end(1);
        end2.seq = 3;
        let out = drive_at(&mut e, 1, &end2, Time(30));
        // Counter hit zero but the flow still has a gap at seq 1: defer.
        assert!(out.emit.is_empty());
        assert_eq!(e.stats().flushes_deferred, 1);
        assert_eq!(e.stats().flushes, 0);
        // The NACK-replayed round-1 END closes the gap — the flow is now
        // satisfied and the deferred flush must fire, END and all.
        let mut end1 = Repr::end(1);
        end1.seq = 1;
        let out = drive_at(&mut e, 1, &end1, Time(40));
        assert_eq!(e.stats().spurious_ends, 1, "the late END is spurious for the counter");
        assert_eq!(e.stats().flushes, 1, "but it must still release the deferred flush");
        let reprs = parse_emissions(&out);
        assert_eq!(reprs.last().unwrap().packet_type, PacketType::End);
        let pairs: Vec<Pair> = reprs.iter().flat_map(|r| r.entries.clone()).collect();
        let mut got: Vec<(Key, u32)> = pairs.iter().map(|p| (p.key, p.value)).collect();
        got.sort();
        assert_eq!(got, vec![(key("a"), 1), (key("b"), 2)]);
        assert!(!e.wants_tick(), "nothing left to chase");
    }

    #[test]
    fn engine_nacks_delinquent_children_on_tick() {
        let mut e = recovering_engine(2);
        assert!(e.wants_tick(), "rostered flows start unsatisfied");
        assert!(e.tick_interval().is_some());
        // Child 1 delivers seq 0 and its END (seq 2); seq 1 is lost.
        // Child 2 stays entirely silent.
        let mut r = Repr::data(1, vec![Pair::new(key("a"), 1)]);
        r.seq = 0;
        drive_at(&mut e, 1, &r, Time(10));
        let mut end = Repr::end(1);
        end.seq = 2;
        drive_at(&mut e, 1, &end, Time(20));
        let out = e.on_tick(Time(1_000_000), &FramePool::new());
        assert_eq!(out.len(), 2, "one NACK per delinquent child");
        assert_eq!(e.stats().nacks_out, 2);
        // NACKs leave on each child's own port, addressed to the child.
        let mut by_port: Vec<(usize, Repr, daiet_wire::Ipv4Address)> = out
            .iter()
            .map(|(p, f)| {
                let parsed = parse(f.clone(), &ParserConfig::default()).unwrap();
                let dst = parsed.ip.as_ref().unwrap().dst_addr;
                (p.0, parsed.daiet_repr().unwrap(), dst)
            })
            .collect();
        by_port.sort_by_key(|(p, ..)| *p);
        let (p0, nack0, dst0) = &by_port[0];
        assert_eq!(*p0, 0);
        assert_eq!(*dst0, daiet_wire::Ipv4Address::from_id(1));
        assert_eq!(nack0.packet_type, PacketType::Nack);
        let ranges: Vec<daiet_wire::daiet::NackRange> = nack0.nack_ranges().collect();
        assert_eq!(ranges, vec![daiet_wire::daiet::NackRange { first: 1, count: 1 }]);
        assert!(!nack0.flags.contains(PacketFlags::NACK_TAIL), "END was seen");
        let (p1, nack1, dst1) = &by_port[1];
        assert_eq!(*p1, 1);
        assert_eq!(*dst1, daiet_wire::Ipv4Address::from_id(2));
        assert_eq!(nack1.seq, 0, "silent child: everything from 0");
        assert!(nack1.flags.contains(PacketFlags::NACK_TAIL));
        assert!(nack1.entries.is_empty());
        // Once both children complete, the engine goes quiescent.
        let mut r1 = Repr::data(1, vec![Pair::new(key("a"), 2)]);
        r1.seq = 1;
        drive_at(&mut e, 1, &r1, Time(2_000_000));
        for (s, is_end) in [(0u32, false), (1, true)] {
            let mut r = if is_end { Repr::end(1) } else { Repr::data(1, vec![Pair::new(key("b"), 1)]) };
            r.seq = s;
            drive_at(&mut e, 2, &r, Time(2_000_100 + u64::from(s)));
        }
        assert!(!e.wants_tick(), "all flows satisfied");
    }

    #[test]
    fn engine_replays_flushed_frames_on_nack() {
        let mut e = recovering_engine(1);
        // Child 1 sends 15 distinct pairs and its END → flush emits 2
        // DATA frames (10 + 5 pairs) + 1 END, seqs 0, 1, 2.
        let pairs: Vec<Pair> =
            (0..15).map(|i| Pair::new(key(&format!("k{i}")), i)).collect();
        let mut seq = 0u32;
        for chunk in pairs.chunks(10) {
            let mut r = Repr::data(1, chunk.to_vec());
            r.seq = seq;
            seq += 1;
            drive_at(&mut e, 1, &r, Time(10));
        }
        let mut end = Repr::end(1);
        end.seq = seq;
        let flush = drive_at(&mut e, 1, &end, Time(20));
        assert_eq!(flush.emit.len(), 3);
        assert_eq!(e.rtx_stats(1), Some((3, 0, 0, 0, 0)));

        // The parent lost the middle DATA frame (seq 1) and the END
        // (seq 2): its NACK names the gap and requests the tail.
        let nack = Repr::nack(
            1,
            2,
            true,
            &[daiet_wire::daiet::NackRange { first: 1, count: 1 }],
        );
        // NACKs to this switch are addressed to its own tree source addr.
        let frame = Frame::from(build_daiet(&Endpoints::from_ids(200, 100), 5, &nack));
        let parsed = parse(frame, &ParserConfig::default()).unwrap();
        let mut pkt = PacketCtx::at(PortId(9), parsed, Time(30));
        let out = e.invoke(&mut pkt, 1, &FramePool::new());
        assert!(out.consume, "a NACK for this switch must not be forwarded");
        let replayed = parse_emissions(&out);
        assert_eq!(replayed.len(), 2);
        assert_eq!(replayed[0].seq, 1);
        assert_eq!(replayed[0].entries.len(), 5);
        assert_eq!(replayed[1].packet_type, PacketType::End);
        assert_eq!(replayed[1].seq, 2);
        assert!(out.emit.iter().all(|(p, _)| *p == PortId(9)), "replays go upstream");
        assert_eq!(e.stats().nacks_in, 1);
        assert_eq!(e.stats().frames_replayed, 2);

        // A NACK addressed to some *other* node passes through untouched.
        let foreign = Frame::from(build_daiet(&Endpoints::from_ids(200, 77), 5, &nack));
        let parsed = parse(foreign, &ParserConfig::default()).unwrap();
        let mut pkt = PacketCtx::at(PortId(9), parsed, Time(40));
        let out = e.invoke(&mut pkt, 1, &FramePool::new());
        assert!(!out.consume);
        assert!(out.emit.is_empty());
    }

    #[test]
    fn sums_matching_keys_into_one_pair() {
        let mut e = engine(1024, 2);
        let out = drive(&mut e, &Repr::data(1, vec![Pair::new(key("cat"), 2)]));
        assert!(out.consume);
        assert!(out.emit.is_empty());
        let out = drive(&mut e, &Repr::data(1, vec![Pair::new(key("cat"), 5)]));
        assert!(out.emit.is_empty());
        assert_eq!(e.stats().pairs_inserted, 1);
        assert_eq!(e.stats().pairs_aggregated, 1);
        assert_eq!(e.pairs_held(1), Some(1));

        // Two ENDs flush a single aggregated pair + END.
        drive(&mut e, &Repr::end(1));
        let out = drive(&mut e, &Repr::end(1));
        let reprs = parse_emissions(&out);
        assert_eq!(reprs.len(), 2); // one DATA + one END
        assert_eq!(reprs[0].entries, vec![Pair::new(key("cat"), 7)]);
        assert_eq!(reprs[1].packet_type, PacketType::End);
        assert!(reprs[0].flags.contains(PacketFlags::FROM_SWITCH));
        assert!(!reprs[0].flags.contains(PacketFlags::SPILLOVER));
    }

    #[test]
    fn flush_waits_for_all_children() {
        let mut e = engine(64, 3);
        drive(&mut e, &Repr::data(1, vec![Pair::new(key("x"), 1)]));
        assert!(drive(&mut e, &Repr::end(1)).emit.is_empty());
        assert!(drive(&mut e, &Repr::end(1)).emit.is_empty());
        assert_eq!(e.remaining_children(1), Some(1));
        let out = drive(&mut e, &Repr::end(1));
        assert_eq!(out.emit.len(), 2); // DATA + END
        // Counter re-armed for the next round.
        assert_eq!(e.remaining_children(1), Some(3));
        assert_eq!(e.pairs_held(1), Some(0));
    }

    #[test]
    fn collisions_go_to_spillover_and_flush_first() {
        // One cell: every distinct second key collides.
        let mut e = engine(1, 2);
        drive(&mut e, &Repr::data(1, vec![Pair::new(key("a"), 1)]));
        drive(&mut e, &Repr::data(1, vec![Pair::new(key("b"), 2)]));
        assert_eq!(e.stats().collisions, 1);
        drive(&mut e, &Repr::end(1));
        let out = drive(&mut e, &Repr::end(1));
        let reprs = parse_emissions(&out);
        // Spillover first ("more likely to be aggregated" downstream),
        // then registers, then END.
        assert_eq!(reprs.len(), 3);
        assert!(reprs[0].flags.contains(PacketFlags::SPILLOVER));
        assert_eq!(reprs[0].entries[0].key, key("b"));
        assert!(!reprs[1].flags.contains(PacketFlags::SPILLOVER));
        assert_eq!(reprs[1].entries[0].key, key("a"));
        assert_eq!(reprs[2].packet_type, PacketType::End);
    }

    #[test]
    fn full_spillover_bucket_flushes_immediately() {
        // Capacity 10 (pairs_per_packet). Insert 1 key then 10 colliding.
        let mut e = engine(1, 2);
        drive(&mut e, &Repr::data(1, vec![Pair::new(key("seed"), 1)]));
        let colliders: Vec<Pair> = (0..10)
            .map(|i| Pair::new(key(&format!("c{i}")), i as u32))
            .collect();
        let out = drive(&mut e, &Repr::data(1, colliders));
        assert_eq!(e.stats().spill_flushes, 1);
        let reprs = parse_emissions(&out);
        assert_eq!(reprs.len(), 1);
        assert_eq!(reprs[0].entries.len(), 10);
        assert!(reprs[0].flags.contains(PacketFlags::SPILLOVER));
    }

    #[test]
    fn aggregated_output_preserves_sums_exactly() {
        // Many keys, many updates, random-ish values; the flushed output
        // must equal a host-side aggregation.
        let mut e = engine(4096, 1);
        let mut expect: std::collections::HashMap<Key, u32> = Default::default();
        for round in 0u32..50 {
            let entries: Vec<Pair> = (0..10)
                .map(|i| {
                    let k = key(&format!("w{}", (round * 7 + i) % 40));
                    let v = round + i;
                    *expect.entry(k).or_insert(0) += v;
                    Pair::new(k, v)
                })
                .collect();
            drive(&mut e, &Repr::data(1, entries));
        }
        let out = drive(&mut e, &Repr::end(1));
        let mut got: std::collections::HashMap<Key, u32> = Default::default();
        for repr in parse_emissions(&out) {
            for p in repr.entries {
                *got.entry(p.key).or_insert(0) += p.value;
            }
        }
        assert_eq!(got, expect);
    }

    #[test]
    fn min_aggregation_works() {
        let mut e = DaietEngine::new(DaietConfig::default());
        e.install_tree(TreeStateConfig {
            tree_id: 3,
            out_port: PortId(0),
            endpoints: Endpoints::from_ids(1, 2),
            agg: AggFn::Min,
            children: 1,
            children_sources: Vec::new(),
        });
        drive(&mut e, &Repr::data(3, vec![Pair::new(key("d"), 9)]));
        drive(&mut e, &Repr::data(3, vec![Pair::new(key("d"), 4)]));
        drive(&mut e, &Repr::data(3, vec![Pair::new(key("d"), 7)]));
        let out = drive(&mut e, &Repr::end(3));
        let reprs = parse_emissions(&out);
        assert_eq!(reprs[0].entries, vec![Pair::new(key("d"), 4)]);
    }

    #[test]
    fn unknown_tree_passes_through() {
        let mut e = engine(64, 1);
        let out = drive(&mut e, &Repr::data(99, vec![Pair::new(key("k"), 1)]));
        assert!(!out.consume);
        assert!(out.emit.is_empty());
        assert_eq!(e.stats().unknown_tree, 1);
    }

    #[test]
    fn spurious_end_is_counted_not_underflowed() {
        let mut e = engine(64, 1);
        drive(&mut e, &Repr::end(1)); // flush (children=1)
        // Re-armed to 1; an immediate extra END flushes again (empty), and
        // a third is spurious only if the counter were stuck — exercise
        // underflow protection by two quick ENDs after a flush.
        let out = drive(&mut e, &Repr::end(1));
        assert_eq!(e.stats().flushes, 2);
        let reprs = parse_emissions(&out);
        assert_eq!(reprs.len(), 1); // just the END; no data held
        assert_eq!(e.remaining_children(1), Some(1));
    }

    #[test]
    fn per_packet_ops_fit_hardware_budget() {
        // A full 10-pair packet must stay within the per-packet op budget
        // of the default resource profile.
        let mut e = engine(16_384, 2);
        let entries: Vec<Pair> = (0..10).map(|i| Pair::new(key(&format!("k{i}")), i)).collect();
        let out = drive(&mut e, &Repr::data(1, entries));
        let budget = daiet_dataplane::Resources::tofino_like().ops_per_packet;
        assert!(out.ops <= budget, "ops {} exceed budget {}", out.ops, budget);
    }

    #[test]
    fn emitted_frames_fit_parse_budget() {
        // Flush output must itself be aggregatable upstream: every emitted
        // DATA frame must parse within the default budget.
        let mut e = engine(4096, 1);
        let entries: Vec<Pair> = (0..40).map(|i| Pair::new(key(&format!("k{i}")), i)).collect();
        for chunk in entries.chunks(10) {
            drive(&mut e, &Repr::data(1, chunk.to_vec()));
        }
        let out = drive(&mut e, &Repr::end(1));
        for (_, frame) in &out.emit {
            let parsed = parse(frame.clone(), &ParserConfig::default()).unwrap();
            assert!(!parsed.daiet_truncated);
        }
        // 40 distinct keys → 4 DATA frames + 1 END.
        assert_eq!(out.emit.len(), 5);
    }

    #[test]
    fn multiple_trees_are_independent() {
        let mut e = engine(256, 1);
        e.install_tree(TreeStateConfig {
            tree_id: 2,
            out_port: PortId(3),
            endpoints: Endpoints::from_ids(100, 201),
            agg: AggFn::Sum,
            children: 1,
            children_sources: Vec::new(),
        });
        drive(&mut e, &Repr::data(1, vec![Pair::new(key("a"), 1)]));
        drive(&mut e, &Repr::data(2, vec![Pair::new(key("a"), 10)]));
        let out1 = drive(&mut e, &Repr::end(1));
        let reprs = parse_emissions(&out1);
        assert_eq!(reprs[0].entries[0].value, 1);
        assert_eq!(e.pairs_held(2), Some(1));
        // Tree 2's flush exits on its own port.
        let out2 = drive(&mut e, &Repr::end(2));
        assert!(out2.emit.iter().all(|(p, _)| *p == PortId(3)));
    }
}
