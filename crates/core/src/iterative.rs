//! Round-by-round iterative workloads over one long-lived simulation.
//!
//! [`IterativeRunner`] is the harness behind the ML and graph workloads:
//! it deploys a DAIET job once and then drives it round by round, with
//! sequence spaces, dedup windows and switch register state carrying
//! across rounds exactly as a long-running in-network deployment would.
//! This module is deliberately the **simulator-facing** half of the
//! worker layer: the protocol nodes it drives ([`PacedSenderNode`],
//! [`ReducerHost`]) live in [`crate::worker`] and are written against
//! the backend-neutral `daiet-fabric` traits, while the runner itself
//! owns a [`daiet_netsim::Simulator`] and is free to use simulator-only
//! affordances (barriers via run-to-quiescence, node downcasts, stats
//! snapshots).

// lint:allow-file(layer-netsim): this module IS the simulator harness for
// iterative jobs — it builds the Simulator, wires nodes, and reads stats.
// Protocol logic it drives (worker/switch/reliability) stays fabric-only.
use crate::agg::AggFn;
use crate::config::DaietConfig;
use crate::worker::{plan_round, reducer_host, CollectorStats, PacedSenderNode, ReducerHost};
use daiet_fabric::{Duration, Fabric, Frame, Node, PortId, Time};
use daiet_wire::daiet::{Key, Pair};
use daiet_wire::fnv::FnvHashMap;
use daiet_wire::stack::Endpoints;

/// A host that takes no part in the job: receives and drops. Occupies
/// plan slots the placement leaves unused.
pub(crate) struct IdleHost;

impl Node for IdleHost {
    fn on_packet(&mut self, _ctx: &mut dyn Fabric, _port: PortId, _frame: Frame) {}

    fn name(&self) -> String {
        "idle-host".into()
    }
}

/// How an [`IterativeRunner`] deployment is shaped: the same knobs the
/// one-shot workloads pass to their runners, minus anything per-round.
#[derive(Debug, Clone)]
pub struct IterativeSpec {
    /// DAIET parameters (reliability/recovery switches included).
    pub config: DaietConfig,
    /// Aggregation function for every tree.
    pub agg: AggFn,
    /// The fabric.
    pub plan: daiet_netsim::topology::TopologyPlan,
    /// Plan slots acting as iterative senders (ML workers, graph
    /// workers).
    pub senders: Vec<usize>,
    /// Plan slots acting as reducers (parameter server, inbox collector);
    /// one aggregation tree each.
    pub reducers: Vec<usize>,
    /// Switch chip profile.
    pub resources: daiet_dataplane::Resources,
    /// Aggregate in-network or pass through.
    pub mode: crate::controller::AggregationMode,
    /// Gap between frames at each sender.
    pub pacing: Duration,
    /// Copies of each frame senders transmit (1 = none; >1 requires
    /// `config.reliability` so duplicates are suppressed).
    pub redundancy: u32,
    /// Simulation seed.
    pub seed: u64,
    /// Execution partitions for the simulator (default: the
    /// `DAIET_PARTITIONS` environment variable, else 1). Round results
    /// must be bit-identical at any setting.
    pub partitions: usize,
}

impl IterativeSpec {
    /// Paper-shaped defaults over `plan`: in-network aggregation with
    /// SUM, 1 µs pacing, no redundancy.
    pub fn new(
        config: DaietConfig,
        plan: daiet_netsim::topology::TopologyPlan,
        senders: Vec<usize>,
        reducers: Vec<usize>,
    ) -> IterativeSpec {
        IterativeSpec {
            config,
            agg: AggFn::Sum,
            plan,
            senders,
            reducers,
            resources: daiet_dataplane::Resources::tofino_like(),
            mode: crate::controller::AggregationMode::InNetwork,
            pacing: Duration::from_micros(1),
            redundancy: 1,
            seed: 7,
            partitions: daiet_netsim::env_partitions(),
        }
    }
}

/// What one round of an [`IterativeRunner`] produced.
#[derive(Debug)]
pub struct IterRound {
    /// Round index (0-based).
    pub round: u64,
    /// Each reducer's aggregated pairs for this round, sorted by key.
    pub per_reducer: Vec<Vec<(Key, u32)>>,
    /// Each reducer's collector-counter growth during this round.
    pub reducer_stats: Vec<CollectorStats>,
    /// Simulator counter growth during this round (frames, bytes,
    /// drops — per node and link).
    pub net: daiet_netsim::StatsSnapshot,
}

/// Drives an iterative workload **round by round over one long-lived
/// simulation**: the same switches, register arrays, dedup windows, gap
/// trackers and sequence spaces serve every round, exactly as an
/// in-network deployment would run a training job or a Pregel
/// computation. This is the packet-level counterpart of the analytic
/// fig-1 models — and the first harness to drive the reliability layer's
/// round-reopening path end to end.
///
/// Per round ([`run_round`](Self::run_round)):
///
/// 1. each sender's shards are packetized **continuing its per-tree
///    sequence space** (dedup and gap tracking stay sound across rounds),
///    interleaved at an offset that *rotates* with the round (fairness:
///    no tree is always drained first), optionally expanded
///    `k`-redundantly, and appended to the sender's pacing queue;
/// 2. the simulation runs to quiescence — the **round barrier**. With
///    NACK recovery armed, quiescence implies every gap was either
///    recovered or given up on; the runner then *requires* every reducer
///    to be complete **and** satisfied (gapless through every END), so a
///    round with unrecoverable data fails loudly instead of feeding a
///    silently-partial aggregate to the next step;
/// 3. each reducer's round result is drained ([`ReducerHost::take_round`]
///    — the flow stays open: the next round's frames reopen it), and
///    host-side replay retention plus transmitted frames are **retired**,
///    keeping memory bounded at O(one round) over arbitrarily many steps.
pub struct IterativeRunner {
    spec: IterativeSpec,
    sim: daiet_netsim::Simulator,
    deployment: crate::controller::Deployment,
    /// Node ids by plan slot.
    ids: Vec<daiet_netsim::NodeId>,
    /// Per sender (spec order), per tree id: next free sequence number.
    next_seq: Vec<FnvHashMap<u16, u32>>,
    /// END frames each reducer must see per round.
    expected_per_round: Vec<u32>,
    /// Live roster: `active[i]` is whether sender `i` (spec order) takes
    /// part in rounds. Toggled by [`set_sender_active`](Self::set_sender_active);
    /// a toggle only takes effect once [`replan`](Self::replan) has
    /// redefined trees and END expectations over the new roster.
    active: Vec<bool>,
    round: u64,
}

impl IterativeRunner {
    /// Deploys `spec` onto a fresh simulator: controller-built switches,
    /// one empty [`PacedSenderNode`] per sender (replay armed when
    /// recovery is on), one [`ReducerHost`] per reducer (dedup/NACK per
    /// the config).
    pub fn build(spec: IterativeSpec) -> Result<IterativeRunner, String> {
        use crate::controller::{Controller, JobPlacement};
        use daiet_netsim::topology::Role;

        if spec.redundancy > 1 && !spec.config.reliability {
            return Err(
                "redundancy > 1 without reliability would double-count: duplicate ENDs \
                 corrupt round accounting"
                    .into(),
            );
        }
        let controller = Controller::new(spec.config, spec.agg);
        let placement = JobPlacement {
            mappers: spec.senders.clone(),
            reducers: spec.reducers.clone(),
        };
        let (dep, mut switches) = controller
            .deploy(&spec.plan, &placement, spec.resources, spec.mode)
            .map_err(|e| e.to_string())?;

        let pmap = spec.plan.partition_map(spec.partitions);
        let mut sim = daiet_netsim::Simulator::with_partitions(spec.seed, pmap);
        let mut ids = Vec::with_capacity(spec.plan.len());
        let expected_per_round: Vec<u32> = (0..spec.reducers.len())
            .map(|r| dep.expected_ends(r, spec.senders.len()))
            .collect();
        for slot in 0..spec.plan.len() {
            let id = match spec.plan.role(slot) {
                Role::Host => {
                    if spec.senders.contains(&slot) {
                        let mut node =
                            PacedSenderNode::new(Vec::new(), spec.pacing, "iter-sender");
                        if spec.config.nack_recovery {
                            node.arm_replay();
                        }
                        sim.add_node(Box::new(node))
                    } else if !spec.reducers.contains(&slot) {
                        // A fabric host taking no part in the job: an
                        // inert NIC (plans are built in standard shapes,
                        // so a leaf may hold more hosts than the job
                        // uses).
                        sim.add_node(Box::new(IdleHost))
                    } else {
                        let r = spec
                            .reducers
                            .iter()
                            .position(|&s| s == slot)
                            .expect("checked above");
                        sim.add_node(Box::new(reducer_host(
                            &spec.config,
                            controller.agg_for(r),
                            &dep,
                            r,
                            slot,
                            &spec.senders,
                        )))
                    }
                }
                Role::Switch => sim.add_node(Box::new(
                    switches.remove(&slot).expect("controller built every switch"),
                )),
            };
            ids.push(id);
        }
        spec.plan.wire(&mut sim, &ids);
        // Fire every node's `on_start` now, so the first round's enqueue
        // finds the same steady state as every later round's.
        sim.run_until(Time::ZERO);

        let next_seq = vec![FnvHashMap::default(); spec.senders.len()];
        let active = vec![true; spec.senders.len()];
        Ok(IterativeRunner {
            spec,
            sim,
            deployment: dep,
            ids,
            next_seq,
            expected_per_round,
            active,
            round: 0,
        })
    }

    /// Runs one round: `shards[i][r]` is what sender `i` owes reducer
    /// `r`'s tree this round (an empty shard still ships its END — every
    /// rostered flow must close every round). Returns each reducer's
    /// aggregated round result, or an error naming the first reducer
    /// whose round could not be completed exactly (e.g. data lost beyond
    /// the NACK budget).
    pub fn run_round(&mut self, shards: &[Vec<Vec<Pair>>]) -> Result<IterRound, String> {
        assert_eq!(shards.len(), self.spec.senders.len(), "one shard list per sender");
        let snap_before = self.sim.snapshot();
        let stats_before: Vec<CollectorStats> = (0..self.spec.reducers.len())
            .map(|r| self.reducer(r).collector.stats())
            .collect();

        for (i, sender_shards) in shards.iter().enumerate() {
            assert_eq!(
                sender_shards.len(),
                self.spec.reducers.len(),
                "one shard per reducer per sender"
            );
            if !self.active[i] {
                // A departed worker owes the round nothing — but the
                // caller handing it data is a bug, not a no-op.
                if sender_shards.iter().any(|pairs| !pairs.is_empty()) {
                    return Err(format!(
                        "round {}: sender {i} is inactive but was handed a non-empty shard",
                        self.round
                    ));
                }
                continue;
            }
            let slot = self.spec.senders[i];
            let id = self.ids[slot];
            // Preloaded frames come from the pool of the partition that
            // owns this sender (pools are `Rc`-backed, partition-local).
            let pool = self.sim.pool_for(id).clone();
            let parts: Vec<(u16, Endpoints, &[Pair])> = sender_shards
                .iter()
                .enumerate()
                .map(|(r, pairs)| {
                    (
                        self.deployment.tree_id(r),
                        self.deployment.endpoints(slot, r),
                        pairs.as_slice(),
                    )
                })
                .collect();
            // The interleave offset rotates with the round so no tree is
            // permanently first in every sender's transmit order.
            let offset = i.wrapping_add(self.round as usize);
            let (transmit, replay_parts) = plan_round(
                &self.spec.config,
                &parts,
                &mut self.next_seq[i],
                offset,
                self.spec.redundancy,
                &pool,
            );
            let node = self
                .sim
                .node_mut::<PacedSenderNode>(id)
                .expect("sender slots hold PacedSenderNodes");
            node.enqueue_round(transmit, replay_parts);
            // Restart the pacing chain (it ran dry at the last barrier).
            let at = self.sim.now() + self.spec.pacing;
            self.sim.schedule_timer(at, id, 0);
        }

        // The round barrier: run to quiescence. Every timer in the system
        // (pacing, NACK) disarms itself when it has nothing left to do,
        // so the queue drains exactly when no node owes the round
        // anything more.
        self.sim.run();

        let round = self.round;
        let mut per_reducer = Vec::with_capacity(self.spec.reducers.len());
        let mut reducer_stats = Vec::with_capacity(self.spec.reducers.len());
        for (r, stats_at_start) in stats_before.iter().enumerate() {
            let expected = self.expected_per_round[r];
            let slot = self.spec.reducers[r];
            let id = self.ids[slot];
            let node = self
                .sim
                .node_mut::<ReducerHost>(id)
                .expect("reducer slots hold ReducerHosts");
            let ends = node.collector.ends_seen();
            if ends != expected {
                return Err(format!(
                    "round {round}: reducer {r} saw {ends}/{expected} ENDs at quiescence \
                     (data lost beyond recovery)"
                ));
            }
            if !node.recovery_satisfied() {
                return Err(format!(
                    "round {round}: reducer {r} completed its ENDs but a flow still has \
                     gaps (NACK budget exhausted — the aggregate would be silently partial)"
                ));
            }
            per_reducer.push(node.take_round());
            reducer_stats.push(node.collector.stats().delta(stats_at_start));
        }

        // Round-barrier retirement: everything below each tree's next
        // free sequence number was delivered and acknowledged-by-silence
        // (every receiver satisfied), so hosts drop it.
        for (i, &slot) in self.spec.senders.iter().enumerate() {
            if !self.active[i] {
                continue;
            }
            let cutoffs: Vec<(u16, u32)> =
                self.next_seq[i].iter().map(|(&t, &s)| (t, s)).collect();
            let id = self.ids[slot];
            let node = self
                .sim
                .node_mut::<PacedSenderNode>(id)
                .expect("sender slots hold PacedSenderNodes");
            node.retire_round(&cutoffs);
        }

        self.round += 1;
        Ok(IterRound {
            round,
            per_reducer,
            reducer_stats,
            net: self.sim.snapshot().delta(&snap_before),
        })
    }

    /// Marks sender `i` (spec order) as present or departed. The roster
    /// change is **not live** until [`replan`](Self::replan) runs: the
    /// trees, switch child counters and reducer END expectations still
    /// describe the old roster, and a round run in between wedges exactly
    /// the way an unannounced worker departure wedges a real job.
    pub fn set_sender_active(&mut self, i: usize, active: bool) {
        self.active[i] = active;
    }

    /// Whether sender `i` is on the live roster.
    pub fn sender_active(&self, i: usize) -> bool {
        self.active[i]
    }

    /// Throttles sender `i`'s pacing by `factor` (1 = full speed) — the
    /// straggler knob. Takes effect from the sender's next timer tick;
    /// no re-plan is needed, a straggler is merely slow.
    pub fn set_sender_slowdown(&mut self, i: usize, factor: u32) {
        let id = self.ids[self.spec.senders[i]];
        self.sim
            .node_mut::<PacedSenderNode>(id)
            .expect("sender slots hold PacedSenderNodes")
            .set_slowdown(factor);
    }

    /// Arms NACK-driven pacing backoff on sender `i` (see
    /// [`PacedSenderNode::enable_nack_backoff`]).
    pub fn enable_sender_backoff(&mut self, i: usize) {
        let id = self.ids[self.spec.senders[i]];
        self.sim
            .node_mut::<PacedSenderNode>(id)
            .expect("sender slots hold PacedSenderNodes")
            .enable_nack_backoff();
    }

    /// Live re-plan around failures and roster changes, at a round
    /// barrier: rebuilds every aggregation tree over the **active**
    /// senders while routing around the `dead_switches` (plan slots),
    /// reconfigures every surviving switch in place (tables cleared and
    /// rebuilt, engine tree state reinstalled), and re-rosters every
    /// reducer (END expectations and NACK/dedup guards over the new
    /// children).
    ///
    /// The re-plan starts a fresh **epoch**: every per-tree sequence
    /// space — sender, switch egress, receiver tracker — restarts at 0,
    /// which is sound exactly because the previous round completed
    /// end-to-end (nothing in flight, nothing NACKable below the
    /// barrier). Dead switches are left untouched (they are down; a
    /// later re-plan that no longer lists them reconfigures them from
    /// scratch, which their power-cycled state requires anyway).
    ///
    /// Errors if a reducer is unreachable from an active sender with the
    /// dead switches removed (the fabric is partitioned), or if no
    /// sender is active.
    pub fn replan(&mut self, dead_switches: &[usize]) -> Result<(), String> {
        use crate::controller::{Controller, JobPlacement};

        let live_mappers: Vec<usize> = self
            .spec
            .senders
            .iter()
            .enumerate()
            .filter(|&(i, _)| self.active[i])
            .map(|(_, &slot)| slot)
            .collect();
        if live_mappers.is_empty() {
            return Err("re-plan needs at least one active sender".into());
        }
        let controller = Controller::new(self.spec.config, self.spec.agg);
        let placement = JobPlacement {
            mappers: live_mappers.clone(),
            reducers: self.spec.reducers.clone(),
        };
        let trees = controller
            .replan_trees(&self.spec.plan, &placement, dead_switches)
            .map_err(|e| e.to_string())?;

        // Reconfigure every surviving switch in place.
        let switch_slots: Vec<usize> = self.spec.plan.switches();
        for slot in switch_slots {
            if dead_switches.contains(&slot) {
                continue;
            }
            let ext = *self
                .deployment
                .engine_externs
                .get(&slot)
                .ok_or_else(|| format!("switch {slot} has no registered engine"))?;
            let mode = self.deployment.mode;
            let id = self.ids[slot];
            let switch = self
                .sim
                .node_mut::<daiet_dataplane::Switch>(id)
                .ok_or_else(|| format!("slot {slot} does not hold a Switch"))?;
            controller
                .replan_switch(&self.spec.plan, &trees, dead_switches, slot, switch, ext, mode)
                .map_err(|e| e.to_string())?;
        }
        self.deployment.trees = trees;

        // Host-side epoch restart, reducers first: END expectations and
        // guard rosters over the new trees.
        self.expected_per_round = (0..self.spec.reducers.len())
            .map(|r| self.deployment.expected_ends(r, live_mappers.len()))
            .collect();
        let config = self.spec.config;
        for r in 0..self.spec.reducers.len() {
            let slot = self.spec.reducers[r];
            let sources = self.deployment.nack_sources(r, &live_mappers);
            let expected = self.expected_per_round[r];
            let id = self.ids[slot];
            let reducer = self
                .sim
                .node_mut::<ReducerHost>(id)
                .expect("reducer slots hold ReducerHosts");
            // Discard whatever a wedged round managed to deliver: the
            // epoch restart re-delivers that round in full from the
            // caller's re-submitted shards, so keeping partial pairs
            // would double-count them.
            let _ = reducer.take_round();
            reducer.reroster(slot as u32, &config, sources, expected);
        }

        // Senders: sequence spaces and replay retention restart at 0
        // (inactive ones included — if they rejoin later, they rejoin the
        // current epoch cleanly).
        for (i, &slot) in self.spec.senders.iter().enumerate() {
            self.next_seq[i].clear();
            let id = self.ids[slot];
            self.sim
                .node_mut::<PacedSenderNode>(id)
                .expect("sender slots hold PacedSenderNodes")
                .reset_epoch();
        }
        Ok(())
    }

    /// Rounds completed so far.
    pub fn rounds_run(&self) -> u64 {
        self.round
    }

    /// The deployment the controller computed.
    pub fn deployment(&self) -> &crate::controller::Deployment {
        &self.deployment
    }

    /// Node id of plan `slot`.
    pub fn node_id(&self, slot: usize) -> daiet_netsim::NodeId {
        self.ids[slot]
    }

    /// The underlying simulator (stats, engine introspection).
    pub fn sim(&self) -> &daiet_netsim::Simulator {
        &self.sim
    }

    /// Mutable simulator access — e.g. to script links before a round.
    pub fn sim_mut(&mut self) -> &mut daiet_netsim::Simulator {
        &mut self.sim
    }

    /// The reducer node for reducer index `r`.
    pub fn reducer(&self, r: usize) -> &ReducerHost {
        self.sim
            .node_ref::<ReducerHost>(self.ids[self.spec.reducers[r]])
            .expect("reducer slots hold ReducerHosts")
    }

    /// The sender node for sender index `i`.
    pub fn sender(&self, i: usize) -> &PacedSenderNode {
        self.sim
            .node_ref::<PacedSenderNode>(self.ids[self.spec.senders[i]])
            .expect("sender slots hold PacedSenderNodes")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(s: &str) -> Key {
        Key::from_str_key(s).unwrap()
    }

    /// Two senders × two reducers × three rounds over a real star fabric:
    /// per-round results are exact and independent, sequence spaces carry
    /// across rounds, and host memory stays bounded by retirement.
    #[test]
    fn iterative_runner_runs_rounds_on_one_simulation() {
        use daiet_netsim::topology::TopologyPlan;
        let config = DaietConfig {
            register_cells: 256,
            reliability: true,
            nack_recovery: true,
            ..DaietConfig::default()
        }
        .with_rtx_sized_for_flush();
        let plan = TopologyPlan::star(4, daiet_netsim::LinkSpec::fast());
        let spec = IterativeSpec::new(config, plan, vec![0, 1], vec![2, 3]);
        let mut runner = IterativeRunner::build(spec).unwrap();
        for round in 0..3u32 {
            // Sender i ships ("w", round+1+i) to reducer 0's tree and a
            // round-unique key to reducer 1's tree.
            let shards: Vec<Vec<Vec<Pair>>> = (0..2u32)
                .map(|i| {
                    vec![
                        vec![Pair::new(key("w"), round + 1 + i)],
                        vec![Pair::new(key(&format!("r{round}")), 10 + i)],
                    ]
                })
                .collect();
            let out = runner.run_round(&shards).unwrap();
            assert_eq!(out.round, u64::from(round));
            // Reducer 0: the two senders' "w" values, switch-aggregated.
            assert_eq!(out.per_reducer[0], vec![(key("w"), 2 * round + 3)]);
            // Reducer 1: only this round's key — earlier rounds were
            // drained at their own barriers.
            assert_eq!(out.per_reducer[1], vec![(key(&format!("r{round}")), 21)]);
            // In-network: exactly one switch END per reducer per round.
            assert_eq!(out.reducer_stats[0].end_packets, 1);
            // Per-round net counters are deltas, not cumulative: the
            // reducers received a handful of frames, not the whole run.
            let rnode = runner.node_id(2);
            assert!(out.net.nodes[rnode.0].frames_in >= 2);
            assert!(out.net.nodes[rnode.0].frames_in < 10);
        }
        assert_eq!(runner.rounds_run(), 3);
        // Retirement bounded the host-side state: pacing queues drained,
        // replay retention empty (every round was fully acknowledged).
        for i in 0..2 {
            assert_eq!(runner.sender(i).pending(), 0);
            assert_eq!(runner.sender(i).replay_retained(), 0);
        }
        // Sequence spaces carried across rounds: round 2's frames were
        // not treated as replays of round 0's.
        assert_eq!(runner.reducer(0).duplicates_suppressed(), 0);
    }
}
