//! The end-host side of DAIET: packetizing map output into fixed-size
//! pair packets (sender) and collecting unordered aggregated results
//! (reducer).
//!
//! §4: partitions travel as "UDP packets containing a small preamble and a
//! sequence of key-value pairs … we use a fixed-size representation for
//! the pairs, so that it is easy to calculate the offsets of pairs in the
//! file and extract a number of complete pairs" — i.e. packetization never
//! splits a pair. "Finally, the end of the transmission is marked by a
//! special END packet." On the receive side, "the intermediate results
//! must be sorted at the reducer rather than at the mapper".

use crate::agg::AggFn;
use crate::config::DaietConfig;
use crate::reliability::{seq_after, seq_at_or_after};
use daiet_dataplane::parser::{parse, ParsedPacket, ParserConfig};
use daiet_fabric::{Duration, Fabric, Frame, FramePool, Node, PortId, Time};
use daiet_wire::daiet::{self, Header, Key, NackRange, PacketFlags, PacketType, Pair, Repr};
use daiet_wire::fnv::FnvHashMap;
use daiet_wire::stack::{build_daiet_into, Endpoints};

/// Parser settings for an end host NIC stack: checksums verified, but no
/// parse-depth limit (hosts are CPUs, not line-rate parsers). Shared by
/// every host-side receiver ([`ReducerHost`] here, the querysim
/// coordinator, …) so host parsing semantics cannot diverge.
pub fn host_parser_config() -> ParserConfig {
    ParserConfig { max_parse_bytes: usize::MAX, verify_checksums: true }
}

/// The host receive prologue shared by every DAIET receiver
/// ([`ReducerHost`], the querysim coordinator): parse with host settings
/// (checksum failures and non-DAIET noise dropped, as a NIC would) and
/// extract the preamble plus the sender address. `None` means "ignore
/// this frame"; otherwise the caller applies its own admission (dedup
/// windows, tree demux — *in its own order*: a coordinator discards
/// foreign tree ids before charging dedup state) and consumes the
/// entries via
/// [`ParsedPacket::daiet_pairs`](daiet_dataplane::parser::ParsedPacket::daiet_pairs).
pub fn receive_daiet(frame: Frame) -> Option<(Header, daiet_wire::Ipv4Address, ParsedPacket)> {
    let parsed = parse(frame, &host_parser_config()).ok()?;
    let hdr = parsed.daiet?;
    let src = parsed.ip.as_ref()?.src_addr;
    Some((hdr, src, parsed))
}

/// Builds the standard multi-tree UDP sender: packetize each partition
/// (`(tree, endpoints, pairs)`), interleave round-robin at a
/// sender-specific offset, expand `k`-redundantly (`redundancy = 1` for
/// none), and replay paced — the one construction behind every bulk
/// sender (the MapReduce mappers, the querysim workers).
pub fn multi_tree_sender(
    config: &DaietConfig,
    sender_index: usize,
    partitions: &[(u16, Endpoints, Vec<Pair>)],
    redundancy: u32,
    gap: Duration,
    pool: &FramePool,
    label: &'static str,
) -> PacedSenderNode {
    // A one-shot sender is a one-round iterative sender: every tree's
    // sequence space starts at 0 and there is no next round.
    let mut next_seq = FnvHashMap::default();
    let (transmit, replay_parts) =
        plan_round(config, partitions, &mut next_seq, sender_index, redundancy, pool);
    let node = PacedSenderNode::new(transmit, gap, label);
    if config.nack_recovery {
        let store: FnvHashMap<u16, Vec<Frame>> =
            replay_parts.into_iter().map(|(tree, _base, frames)| (tree, frames)).collect();
        node.with_replay(store)
    } else {
        node
    }
}

/// Per-tree replay retention out of [`plan_round`]: one
/// `(tree, base_seq, frames)` entry per part, in part order.
pub type ReplayParts = Vec<(u16, u32, Vec<Frame>)>;

/// Packetizes one round of multi-tree output into a transmit schedule —
/// the one planning routine behind every bulk sender (the MapReduce
/// mappers, the querysim workers, each [`IterativeRunner`] round).
///
/// Per `(tree, endpoints, pairs)` part, the pairs are serialized
/// continuing that tree's wrapping sequence space from `next_seq`
/// (updated in place to the next free number); the per-tree queues are
/// then interleaved round-robin starting at `offset % parts` (fairness:
/// callers rotate the offset so no tree is permanently drained first)
/// and expanded `redundancy`-fold (1 = none).
///
/// When `config.nack_recovery` is on, the per-tree schedules also come
/// back as `(tree, base_seq, frames)` replay parts for
/// [`PacedSenderNode::enqueue_round`] (or, via [`multi_tree_sender`],
/// [`PacedSenderNode::with_replay`]). Replay frames share buffers with
/// the transmit queue — retention costs refcounts, not copies.
pub fn plan_round<P: AsRef<[Pair]>>(
    config: &DaietConfig,
    parts: &[(u16, Endpoints, P)],
    next_seq: &mut FnvHashMap<u16, u32>,
    offset: usize,
    redundancy: u32,
    pool: &FramePool,
) -> (Vec<Frame>, ReplayParts) {
    let packetizer = Packetizer::new(config);
    let mut queues = Vec::with_capacity(parts.len());
    let mut replay_parts = Vec::new();
    for (tree, ep, pairs) in parts {
        let base = next_seq.get(tree).copied().unwrap_or(0);
        let (frames, next) = packetizer.frames_from_seq(
            *tree,
            pairs.as_ref(),
            ep,
            daiet_wire::udp::DAIET_PORT,
            base,
            pool,
        );
        next_seq.insert(*tree, next);
        if config.nack_recovery {
            replay_parts.push((*tree, base, frames.clone()));
        }
        queues.push(frames);
    }
    let interleaved = interleave_round_robin(queues, offset);
    let transmit =
        crate::reliability::RedundantSender::new(redundancy.max(1)).schedule(&interleaved);
    (transmit, replay_parts)
}

/// Builds the standard DAIET receive endpoint for reducer `r` of `dep`
/// at plan `slot`: a [`ReducerHost`] expecting the deployment's END
/// count over `mappers`, with duplicate suppression and NACK recovery
/// armed per `config` — the one construction behind every reducer (the
/// MapReduce reducers, each [`IterativeRunner`] parameter server).
pub fn reducer_host(
    config: &DaietConfig,
    agg: AggFn,
    dep: &crate::controller::Deployment,
    r: usize,
    slot: usize,
    mappers: &[usize],
) -> ReducerHost {
    let mut reducer = ReducerHost::new(agg, dep.expected_ends(r, mappers.len()));
    if config.reliability {
        reducer = reducer.with_dedup();
    }
    if config.nack_recovery {
        reducer = reducer.with_nack_recovery(slot as u32, config, dep.nack_sources(r, mappers));
    }
    reducer
}

/// Splits a partition of pairs into DAIET packets.
#[derive(Debug, Clone)]
pub struct Packetizer {
    pairs_per_packet: usize,
}

impl Packetizer {
    /// A packetizer following `config`.
    pub fn new(config: &DaietConfig) -> Packetizer {
        Packetizer { pairs_per_packet: config.pairs_per_packet.max(1) }
    }

    /// Serializes `pairs` into DATA packets of at most `pairs_per_packet`
    /// entries, terminated by an END packet. Sequence numbers count up
    /// from 0 (used only by the reliability extension; harmless
    /// otherwise).
    pub fn packets(&self, tree_id: u16, pairs: &[Pair]) -> Vec<Repr> {
        self.packets_from_seq(tree_id, pairs, 0).0
    }

    /// The packetization policy, in one place: calls `f` once per packet
    /// with its preamble and entry slice (empty for the trailing END),
    /// numbering sequence from `start_seq`; returns the next free
    /// sequence number. Both the owned-[`Repr`] and the pooled-frame
    /// paths drive this, so they cannot drift apart. Sequence numbers
    /// live in a wrapping 32-bit space (long-lived iterative senders
    /// cross `u32::MAX`; the dedup windows compare RFC 1982-style).
    fn each_packet(
        &self,
        tree_id: u16,
        pairs: &[Pair],
        start_seq: u32,
        mut f: impl FnMut(&Header, &[Pair]),
    ) -> u32 {
        let mut seq = start_seq;
        for chunk in pairs.chunks(self.pairs_per_packet) {
            f(&Header::data(tree_id, PacketFlags::empty(), seq), chunk);
            seq = seq.wrapping_add(1);
        }
        f(&Header::end(tree_id, PacketFlags::empty(), seq), &[]);
        seq.wrapping_add(1)
    }

    /// Like [`Packetizer::packets`] but numbering from `start_seq`,
    /// returning the next free sequence number. Iterative senders running
    /// under the reliability extension must keep sequence numbers
    /// monotonic across rounds so duplicate suppression stays sound.
    pub fn packets_from_seq(
        &self,
        tree_id: u16,
        pairs: &[Pair],
        start_seq: u32,
    ) -> (Vec<Repr>, u32) {
        let mut out = Vec::with_capacity(pairs.len().div_ceil(self.pairs_per_packet) + 1);
        let next = self.each_packet(tree_id, pairs, start_seq, |hdr, chunk| {
            out.push(Repr {
                packet_type: hdr.packet_type,
                tree_id: hdr.tree_id,
                flags: hdr.flags,
                seq: hdr.seq,
                entries: chunk.to_vec(),
            });
        });
        (out, next)
    }

    /// Like [`Packetizer::packets`] but fully framed for the wire, with
    /// every frame serialized straight into a pooled buffer — the
    /// zero-copy path senders use (no intermediate `Repr`s or entry
    /// lists).
    pub fn frames(
        &self,
        tree_id: u16,
        pairs: &[Pair],
        endpoints: &Endpoints,
        src_port: u16,
        pool: &FramePool,
    ) -> Vec<Frame> {
        self.frames_from_seq(tree_id, pairs, endpoints, src_port, 0, pool).0
    }

    /// Like [`Packetizer::frames`] but numbering from `start_seq`,
    /// returning the next free sequence number — the iterative-sender
    /// form: each round's frames continue the tree's wrapping sequence
    /// space so receiver-side dedup and gap tracking stay sound across
    /// rounds (a restart from 0 would read as a giant stale duplicate).
    pub fn frames_from_seq(
        &self,
        tree_id: u16,
        pairs: &[Pair],
        endpoints: &Endpoints,
        src_port: u16,
        start_seq: u32,
        pool: &FramePool,
    ) -> (Vec<Frame>, u32) {
        let mut out = Vec::with_capacity(pairs.len().div_ceil(self.pairs_per_packet) + 1);
        let next = self.each_packet(tree_id, pairs, start_seq, |hdr, chunk| {
            let mut buf = pool.buffer();
            build_daiet_into(&mut buf, endpoints, src_port, hdr, chunk);
            out.push(pool.frame(buf));
        });
        (out, next)
    }
}

/// Interleaves per-tree frame queues round-robin starting at queue
/// `offset` (each queue's internal order is preserved, so every END still
/// trails its tree's data) — the shared transmit-scheduling policy of
/// every multi-tree sender. Starting different senders at different
/// offsets spreads the fan-in to any one reducer over time.
pub fn interleave_round_robin(mut queues: Vec<Vec<Frame>>, offset: usize) -> Vec<Frame> {
    let mut out = Vec::new();
    if queues.is_empty() {
        return out;
    }
    let n = queues.len();
    let mut cursors = vec![0usize; n];
    let mut remaining: usize = queues.iter().map(Vec::len).sum();
    out.reserve(remaining);
    let mut t = offset % n;
    while remaining > 0 {
        if cursors[t] < queues[t].len() {
            out.push(std::mem::take(&mut queues[t][cursors[t]]));
            cursors[t] += 1;
            remaining -= 1;
        }
        t = (t + 1) % n;
    }
    out
}

/// One tree's NACK-replay retention on a host: frames indexed densely by
/// sequence number starting at `base`. Rounds append at the tail
/// ([`PacedSenderNode::enqueue_round`]) and round barriers retire from
/// the head ([`PacedSenderNode::retire_round`]), so an iterative sender
/// retains O(one round) of frames instead of its whole history.
#[derive(Debug, Default)]
struct ReplaySchedule {
    /// Sequence number of `frames[0]` (wrapping space).
    base: u32,
    frames: std::collections::VecDeque<Frame>,
}

/// A host that replays a prebuilt frame schedule at a fixed pace: one
/// frame per `gap` tick, starting at simulation start. The transmit half
/// shared by every bulk UDP sender (the MapReduce mappers, the querysim
/// workers) — build the schedule up front (packetize, interleave,
/// optionally expand redundantly), then hand it here. Iterative senders
/// instead start empty and feed one round at a time through
/// [`enqueue_round`](Self::enqueue_round) (see
/// [`IterativeRunner`], which also restarts the pacing timer from
/// outside, via the backend's own timer facility).
pub struct PacedSenderNode {
    frames: Vec<Frame>,
    next: usize,
    gap: Duration,
    label: &'static str,
    /// Per-tree replay retention (None when recovery is off — then
    /// incoming frames are ignored, as before).
    replay: Option<FnvHashMap<u16, ReplaySchedule>>,
    /// Straggler throttle: the pacing gap is multiplied by this factor
    /// (1 = full speed). Scripted by chaos harnesses to model a slow
    /// worker without changing its transmit schedule.
    slowdown: u32,
    /// Congestion backoff multiplier on top of `slowdown`, driven by
    /// NACKs when [`enable_nack_backoff`](Self::enable_nack_backoff) was
    /// called; reset to 1 at each round barrier.
    backoff: u32,
    /// Whether receiving a NACK doubles `backoff` — the DAIET-side
    /// response to queue-buildup loss (ECN-marked TCP has its own, see
    /// `daiet-transport`). Off by default: the paper's sender is
    /// open-loop. The closed-loop sender also *paces* its replays (they
    /// join the transmit queue at the backed-off gap) instead of
    /// bursting them — a burst into the very queue that just overflowed
    /// only compounds the loss.
    nack_backoff: bool,
    /// Whether a pacing timer is currently in flight, so a paced replay
    /// arriving after the queue ran dry can restart the chain exactly
    /// once. Maintained here and by [`enqueue_round`](Self::enqueue_round)
    /// (whose caller schedules the round's first tick).
    timer_armed: bool,
    /// Frames re-sent in response to NACKs.
    pub frames_replayed: u64,
    /// NACK frames received and honored.
    pub nacks_received: u64,
    /// Replay-retention frames retired at round barriers.
    pub frames_retired: u64,
}

impl PacedSenderNode {
    /// A sender that transmits `frames` in order, one every `gap`;
    /// `label` names the node in traces.
    pub fn new(frames: Vec<Frame>, gap: Duration, label: &'static str) -> PacedSenderNode {
        PacedSenderNode {
            frames,
            next: 0,
            gap,
            label,
            replay: None,
            slowdown: 1,
            backoff: 1,
            nack_backoff: false,
            timer_armed: false,
            frames_replayed: 0,
            nacks_received: 0,
            frames_retired: 0,
        }
    }

    /// The pacing gap with the straggler throttle and congestion backoff
    /// applied.
    fn effective_gap(&self) -> Duration {
        Duration::from_nanos(
            self.gap
                .as_nanos()
                .saturating_mul(u64::from(self.slowdown.max(1)))
                .saturating_mul(u64::from(self.backoff.max(1))),
        )
    }

    /// Throttles (or restores) this sender: the pacing gap is multiplied
    /// by `factor` from the next timer tick on. `1` restores full speed.
    pub fn set_slowdown(&mut self, factor: u32) {
        self.slowdown = factor.max(1);
    }

    /// The current straggler throttle factor.
    pub fn slowdown(&self) -> u32 {
        self.slowdown
    }

    /// Makes NACKs double the pacing gap (capped at 64×) until the next
    /// round barrier — a minimal closed-loop response to queue-buildup
    /// loss, off by default to keep the paper's open-loop sender.
    pub fn enable_nack_backoff(&mut self) {
        self.nack_backoff = true;
    }

    /// The current congestion backoff multiplier (1 = none).
    pub fn backoff(&self) -> u32 {
        self.backoff
    }

    /// Arms NACK replay: `per_tree[tree][seq]` must be the frame the
    /// sender transmitted (or will transmit) with that sequence number,
    /// counting from 0.
    pub fn with_replay(mut self, per_tree: FnvHashMap<u16, Vec<Frame>>) -> PacedSenderNode {
        self.replay = Some(
            per_tree
                .into_iter()
                .map(|(tree, frames)| (tree, ReplaySchedule { base: 0, frames: frames.into() }))
                .collect(),
        );
        self
    }

    /// Arms NACK replay with empty retention — the iterative form, filled
    /// round by round via [`enqueue_round`](Self::enqueue_round).
    pub fn arm_replay(&mut self) {
        self.replay.get_or_insert_with(FnvHashMap::default);
    }

    /// Appends one round's transmit schedule (already interleaved and, if
    /// requested, redundancy-expanded) plus its per-tree replay retention:
    /// each `(tree, base_seq, frames)` must continue the tree's dense
    /// sequence numbering where the previous round left off.
    pub fn enqueue_round(
        &mut self,
        transmit: Vec<Frame>,
        replay_parts: Vec<(u16, u32, Vec<Frame>)>,
    ) {
        // The caller restarts the pacing chain for this round (see
        // `IterativeRunner::run_round`); record that so paced replays
        // don't double-arm it.
        self.timer_armed = true;
        self.frames.extend(transmit);
        if let Some(store) = self.replay.as_mut() {
            for (tree, base, frames) in replay_parts {
                let sched = store.entry(tree).or_insert(ReplaySchedule {
                    base,
                    frames: std::collections::VecDeque::new(),
                });
                debug_assert_eq!(
                    sched.base.wrapping_add(sched.frames.len() as u32),
                    base,
                    "replay retention must stay sequence-dense across rounds"
                );
                sched.frames.extend(frames);
            }
        }
    }

    /// Round-barrier cleanup: drops the already-transmitted prefix of the
    /// pacing queue and retires replay retention serially before each
    /// tree's `cutoff` sequence number. Called once the round is known
    /// complete end-to-end (every receiver satisfied), so nothing below
    /// the cutoff can ever be NACKed again — this is what keeps a
    /// hundreds-of-rounds run's memory bounded at O(one round).
    pub fn retire_round(&mut self, cutoffs: &[(u16, u32)]) {
        self.frames.drain(..self.next);
        self.next = 0;
        // The round completed: whatever congestion triggered the backoff
        // has drained with it.
        self.backoff = 1;
        if let Some(store) = self.replay.as_mut() {
            for &(tree, cutoff) in cutoffs {
                if let Some(sched) = store.get_mut(&tree) {
                    while !sched.frames.is_empty() && seq_after(cutoff, sched.base) {
                        sched.frames.pop_front();
                        sched.base = sched.base.wrapping_add(1);
                        self.frames_retired += 1;
                    }
                }
            }
        }
    }

    /// Epoch reset for a live re-plan: drops the transmit queue and every
    /// tree's replay retention, so the next
    /// [`enqueue_round`](Self::enqueue_round) starts a fresh sequence
    /// space at 0 (matching the freshly reinstalled switch trees and
    /// receiver rosters). Only sound at a round barrier, when nothing is
    /// in flight.
    pub fn reset_epoch(&mut self) {
        self.frames.clear();
        self.next = 0;
        self.backoff = 1;
        if let Some(store) = self.replay.as_mut() {
            store.clear();
        }
    }

    /// Frames queued but not yet transmitted.
    pub fn pending(&self) -> usize {
        self.frames.len() - self.next
    }

    /// Frames currently held for NACK replay, across all trees.
    pub fn replay_retained(&self) -> usize {
        self.replay
            .as_ref()
            .map_or(0, |s| s.values().map(|sched| sched.frames.len()).sum())
    }
}

impl Node for PacedSenderNode {
    fn on_packet(&mut self, ctx: &mut dyn Fabric, _port: PortId, frame: Frame) {
        // Senders only ever act on NACKs, and only when replay is armed.
        let Some(store) = self.replay.as_ref() else { return };
        let Some((hdr, _src, parsed)) = receive_daiet(frame) else { return };
        if hdr.packet_type != PacketType::Nack {
            return;
        }
        let Some(schedule) = store.get(&hdr.tree_id) else { return };
        self.nacks_received += 1;
        if self.nack_backoff {
            // A NACK means the path lost something — most often queue
            // overflow under this sender's own offered load. Double the
            // pacing gap (multiplicatively, like any AIMD sender) so the
            // replay burst below lands on a draining queue.
            self.backoff = self.backoff.saturating_mul(2).min(64);
        }
        let tail = hdr.flags.contains(PacketFlags::NACK_TAIL);
        let ranges: Vec<NackRange> =
            parsed.daiet_pairs().filter_map(|p| NackRange::from_pair(&p)).collect();
        // Retention is dense: frame `i` carries seq `base + i`. Replay in
        // original order; receiver dedup absorbs anything it already has.
        // The open-loop sender bursts replays past the pacing gap
        // (recovery is latency-critical and the burst is at most one
        // retained round); the closed-loop sender queues them behind the
        // backed-off gap instead — the loss it is repairing is usually
        // its own queue overflow, and a burst would recreate it.
        let mut queued = Vec::new();
        for (i, f) in schedule.frames.iter().enumerate() {
            let seq = schedule.base.wrapping_add(i as u32);
            if ranges.iter().any(|r| r.contains(seq)) || (tail && seq_at_or_after(seq, hdr.seq))
            {
                if self.nack_backoff {
                    queued.push(f.clone());
                } else {
                    ctx.send(PortId(0), f.clone());
                }
                self.frames_replayed += 1;
            }
        }
        if !queued.is_empty() {
            self.frames.extend(queued);
            if !self.timer_armed {
                self.timer_armed = true;
                ctx.schedule(self.effective_gap(), 0);
            }
        }
    }

    fn on_start(&mut self, ctx: &mut dyn Fabric) {
        // Iterative senders start with an empty queue; their harness arms
        // the pacing timer itself when it enqueues the first round.
        if !self.frames.is_empty() {
            self.timer_armed = true;
            ctx.schedule(self.effective_gap(), 0);
        }
    }

    fn on_timer(&mut self, ctx: &mut dyn Fabric, _token: u64) {
        if self.next < self.frames.len() {
            ctx.send(PortId(0), self.frames[self.next].clone());
            self.next += 1;
            ctx.schedule(self.effective_gap(), 0);
        } else {
            self.timer_armed = false;
        }
    }

    fn name(&self) -> String {
        self.label.into()
    }
}

/// Receive-side statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CollectorStats {
    /// DATA packets received.
    pub data_packets: u64,
    /// END packets received.
    pub end_packets: u64,
    /// Packets carrying the SPILLOVER flag.
    pub spill_packets: u64,
    /// Pairs received (pre-merge).
    pub pairs_received: u64,
    /// Pairs merged into existing keys (residual aggregation done at the
    /// host — nonzero whenever the network could not aggregate
    /// everything).
    pub pairs_merged: u64,
    /// Application payload bytes received (DAIET preamble + entries).
    pub app_bytes: u64,
}

impl CollectorStats {
    /// Counter growth since `earlier` — the per-round read-out for
    /// iterative runs, where the collector's counters are cumulative
    /// across rounds. Panics if any counter shrank (mismatched
    /// snapshots), the shared policy of
    /// [`daiet_fabric::counter_delta`].
    pub fn delta(&self, earlier: &CollectorStats) -> CollectorStats {
        let sub = daiet_fabric::counter_delta;
        CollectorStats {
            data_packets: sub(self.data_packets, earlier.data_packets, "data_packets"),
            end_packets: sub(self.end_packets, earlier.end_packets, "end_packets"),
            spill_packets: sub(self.spill_packets, earlier.spill_packets, "spill_packets"),
            pairs_received: sub(self.pairs_received, earlier.pairs_received, "pairs_received"),
            pairs_merged: sub(self.pairs_merged, earlier.pairs_merged, "pairs_merged"),
            app_bytes: sub(self.app_bytes, earlier.app_bytes, "app_bytes"),
        }
    }
}

/// Reducer-side collector: merges unordered aggregated pairs and reports
/// completion once every expected END arrived.
#[derive(Debug)]
pub struct Collector {
    agg: AggFn,
    expected_ends: u32,
    ends_seen: u32,
    pairs: FnvHashMap<Key, u32>,
    stats: CollectorStats,
}

impl Collector {
    /// A collector combining with `agg` and expecting `expected_ends` END
    /// packets (= tree children of the reducer; 1 behind a DAIET switch,
    /// the mapper count without in-network aggregation).
    pub fn new(agg: AggFn, expected_ends: u32) -> Collector {
        Collector {
            agg,
            expected_ends,
            ends_seen: 0,
            pairs: FnvHashMap::default(),
            stats: CollectorStats::default(),
        }
    }

    /// Feeds one DAIET packet; returns `true` when the partition is
    /// complete (all ENDs seen).
    pub fn on_packet(&mut self, repr: &Repr) -> bool {
        self.on_parts(&repr.header(), repr.entries.iter().copied())
    }

    /// Feeds one DAIET packet as preamble + entry iterator — the
    /// allocation-free form [`ReducerHost`] drives straight from frame
    /// bytes. Returns `true` when the partition is complete.
    pub fn on_parts(&mut self, hdr: &Header, entries: impl Iterator<Item = Pair>) -> bool {
        match hdr.packet_type {
            PacketType::Data => {
                self.stats.data_packets += 1;
                if hdr.flags.contains(PacketFlags::SPILLOVER) {
                    self.stats.spill_packets += 1;
                }
                let mut n = 0u64;
                for pair in entries {
                    n += 1;
                    match self.pairs.entry(pair.key) {
                        daiet_wire::fnv::Entry::Occupied(mut e) => {
                            let merged = self.agg.apply(*e.get(), pair.value);
                            e.insert(merged);
                            self.stats.pairs_merged += 1;
                        }
                        daiet_wire::fnv::Entry::Vacant(e) => {
                            e.insert(pair.value);
                        }
                    }
                }
                self.stats.pairs_received += n;
                self.stats.app_bytes += Header::wire_len(n as usize) as u64;
            }
            PacketType::End => {
                self.stats.app_bytes += daiet::HEADER_LEN as u64;
                self.stats.end_packets += 1;
                self.ends_seen += 1;
            }
            PacketType::Nack | PacketType::Unknown(_) => {
                self.stats.app_bytes += daiet::HEADER_LEN as u64;
            }
        }
        self.is_complete()
    }

    /// True once all expected ENDs arrived.
    pub fn is_complete(&self) -> bool {
        self.ends_seen >= self.expected_ends
    }

    /// Redefines round completion over a new roster — what a live
    /// re-plan (tree re-routed, workers joined or left) changes about the
    /// reducer. Takes effect from the current round; only sound at a
    /// round barrier, when `ends_seen` has been reset by
    /// [`take_round`](Self::take_round).
    pub fn set_expected_ends(&mut self, expected: u32) {
        self.expected_ends = expected;
    }

    /// ENDs seen so far.
    pub fn ends_seen(&self) -> u32 {
        self.ends_seen
    }

    /// Swaps the merge function — the reducer-slot *lease* operation of
    /// the multi-tenant scheduler, where one pooled [`ReducerHost`]
    /// serves a SUM job, is released, and is leased again to a MIN lane.
    /// Only sound while no pairs are held (at a lease boundary, right
    /// after [`take_round`](Self::take_round)): pairs merged under one
    /// function have no meaning under another.
    pub fn set_agg(&mut self, agg: AggFn) {
        debug_assert!(
            self.pairs.is_empty(),
            "set_agg with pairs held would reinterpret them under a new function"
        );
        self.agg = agg;
    }

    /// Distinct keys held.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// True when no pairs were collected.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Receive statistics.
    pub fn stats(&self) -> CollectorStats {
        self.stats
    }

    /// Consumes the collector, returning pairs **sorted by key** — the
    /// sort the paper moves from mappers to the reducer ("the intermediate
    /// results must be sorted at the reducer", §4).
    pub fn into_sorted(self) -> Vec<(Key, u32)> {
        let mut v: Vec<(Key, u32)> = self.pairs.into_iter().collect();
        v.sort_unstable_by_key(|a| a.0);
        v
    }

    /// Drains one completed round: returns the collected pairs **sorted
    /// by key** and re-arms the collector (pairs cleared, END count reset
    /// to zero) for the next round of an iterative flow. Counters in
    /// [`stats`](Self::stats) keep accumulating — read per-round numbers
    /// with [`CollectorStats::delta`].
    pub fn take_round(&mut self) -> Vec<(Key, u32)> {
        let mut v: Vec<(Key, u32)> = self.pairs.drain().collect();
        v.sort_unstable_by_key(|a| a.0);
        self.ends_seen = 0;
        v
    }

    /// Borrowing accessor for tests.
    pub fn get(&self, key: &Key) -> Option<u32> {
        self.pairs.get(key).copied()
    }

    /// Iterates the collected pairs in arbitrary order (callers sort).
    pub fn get_all(&self) -> impl Iterator<Item = (Key, u32)> + '_ {
        self.pairs.iter().map(|(k, v)| (*k, *v))
    }
}

/// A minimal sending host: transmits one preloaded partition at start
/// (used by examples and integration tests; the MapReduce crate has a
/// richer worker).
pub struct SenderHost {
    tree_id: u16,
    pairs: Vec<Pair>,
    endpoints: Endpoints,
    packetizer: Packetizer,
    /// Pace between frames (keeps egress queues shallow in examples).
    pub gap: Duration,
    queue: Vec<Frame>,
    next: usize,
}

impl SenderHost {
    /// A host that will send `pairs` for `tree_id` to the reducer
    /// addressed by `endpoints`.
    pub fn new(
        config: &DaietConfig,
        tree_id: u16,
        pairs: Vec<Pair>,
        endpoints: Endpoints,
    ) -> SenderHost {
        SenderHost {
            tree_id,
            pairs,
            endpoints,
            packetizer: Packetizer::new(config),
            gap: Duration::from_micros(1),
            queue: Vec::new(),
            next: 0,
        }
    }
}

impl Node for SenderHost {
    fn on_packet(&mut self, _ctx: &mut dyn Fabric, _port: PortId, _frame: Frame) {}

    fn on_start(&mut self, ctx: &mut dyn Fabric) {
        self.queue = self.packetizer.frames(
            self.tree_id,
            &self.pairs,
            &self.endpoints,
            daiet_wire::udp::DAIET_PORT,
            ctx.pool(),
        );
        ctx.schedule(self.gap, 0);
    }

    fn on_timer(&mut self, ctx: &mut dyn Fabric, _token: u64) {
        if self.next < self.queue.len() {
            ctx.send(PortId(0), self.queue[self.next].clone());
            self.next += 1;
            ctx.schedule(self.gap, 0);
        }
    }

    fn name(&self) -> String {
        format!("sender(tree {})", self.tree_id)
    }
}

/// A minimal reducer host: collects DAIET packets until complete.
pub struct ReducerHost {
    /// The collector; read it out after the run.
    pub collector: Collector,
    /// Completion time, once reached.
    pub completed_at: Option<Time>,
    /// Receive-side reliability (dedup and/or NACK recovery — the
    /// default guard is the paper-faithful fire-and-forget path).
    guard: crate::reliability::ReceiverGuard,
}

impl ReducerHost {
    /// A reducer expecting `expected_ends` ENDs, combining with `agg`.
    pub fn new(agg: AggFn, expected_ends: u32) -> ReducerHost {
        ReducerHost {
            collector: Collector::new(agg, expected_ends),
            completed_at: None,
            guard: crate::reliability::ReceiverGuard::new(),
        }
    }

    /// Enables receive-side duplicate suppression (pairs with
    /// [`crate::DaietConfig::reliability`] on the switches —
    /// aggregation is not idempotent, so the *last* hop needs protection
    /// too, not just the switches).
    pub fn with_dedup(mut self) -> ReducerHost {
        self.guard.enable_dedup();
        self
    }

    /// Arms NACK recovery: this reducer (simulator id `self_id`) watches
    /// one flow per `(tree, source)` in `sources` — the deployment's
    /// [`reducer_sources`](crate::controller::Deployment::reducer_sources)
    /// roster — and NACKs delinquent ones per `config`'s timeout/budget
    /// (see [`ReceiverGuard`](crate::reliability::ReceiverGuard)).
    pub fn with_nack_recovery(
        mut self,
        self_id: u32,
        config: &DaietConfig,
        sources: impl IntoIterator<Item = (u16, u32)>,
    ) -> ReducerHost {
        self.guard.arm_nack_recovery(self_id, config, sources);
        self
    }

    /// Re-rosters the reducer for a live re-plan: round completion is
    /// redefined over `expected_ends` ENDs, and the reliability guard is
    /// re-armed from scratch over `sources` — every flow is expected
    /// anew from sequence 0, matching the epoch restart on the senders
    /// and switches. Only sound at a round barrier (nothing in flight,
    /// `take_round` already drained). Cumulative guard counters
    /// (duplicates, NACKs emitted) restart with the new guard.
    pub fn reroster(
        &mut self,
        self_id: u32,
        config: &DaietConfig,
        sources: impl IntoIterator<Item = (u16, u32)>,
        expected_ends: u32,
    ) {
        self.collector.set_expected_ends(expected_ends);
        self.completed_at = None;
        if config.nack_recovery {
            self.guard.arm_nack_recovery(self_id, config, sources);
        } else if config.reliability {
            // Fresh window: the new epoch's sequence spaces restart at 0,
            // which the old windows would misread as stale duplicates.
            self.guard.enable_dedup();
        }
    }

    /// Frames suppressed as duplicates (by the dedup window or, under
    /// NACK recovery, the gap tracker's bitmaps).
    pub fn duplicates_suppressed(&self) -> u64 {
        self.guard.duplicates_suppressed()
    }

    /// NACK frames this reducer has sent (0 without recovery).
    pub fn nacks_emitted(&self) -> u64 {
        self.guard.nacks_emitted()
    }

    /// True when NACK recovery (if armed) owes nothing: every tracked
    /// flow is gapless through its newest END. An iterative harness must
    /// check this **in addition to** [`Collector::is_complete`] at each
    /// round barrier — the ENDs can all be in while a DATA frame of the
    /// round is still missing (the silent-corruption mode recovery
    /// exists to close).
    pub fn recovery_satisfied(&self) -> bool {
        self.guard.all_satisfied()
    }

    /// Drains one completed round (see [`Collector::take_round`]) and
    /// re-arms completion detection for the next.
    pub fn take_round(&mut self) -> Vec<(daiet_wire::daiet::Key, u32)> {
        self.completed_at = None;
        self.collector.take_round()
    }
}

impl Node for ReducerHost {
    fn on_packet(&mut self, ctx: &mut dyn Fabric, _port: PortId, frame: Frame) {
        let Some((hdr, src, parsed)) = receive_daiet(frame) else {
            return;
        };
        if !self.guard.admit(&hdr, src, ctx) {
            return;
        }
        if self.collector.on_parts(&hdr, parsed.daiet_pairs()) && self.completed_at.is_none() {
            self.completed_at = Some(ctx.now());
        }
        self.guard.arm(ctx);
    }

    fn on_start(&mut self, ctx: &mut dyn Fabric) {
        self.guard.arm(ctx);
    }

    fn on_timer(&mut self, ctx: &mut dyn Fabric, _token: u64) {
        self.guard.on_timer(ctx);
    }

    fn name(&self) -> String {
        "reducer".into()
    }
}

/// The iterative round-by-round machinery ([`IterativeRunner`] and
/// friends) lives in [`crate::iterative`]; it is re-exported here so
/// historical `daiet::worker::IterativeRunner` paths keep working.
pub use crate::iterative::{IterRound, IterativeRunner, IterativeSpec};

#[cfg(test)]
mod tests {
    use super::*;

    fn key(s: &str) -> Key {
        Key::from_str_key(s).unwrap()
    }

    fn npairs(n: usize) -> Vec<Pair> {
        (0..n).map(|i| Pair::new(key(&format!("k{i}")), i as u32)).collect()
    }

    #[test]
    fn packetizer_never_splits_pairs_and_ends_with_end() {
        let p = Packetizer::new(&DaietConfig::default());
        let packets = p.packets(4, &npairs(25));
        assert_eq!(packets.len(), 4); // 10 + 10 + 5 + END
        assert_eq!(packets[0].entries.len(), 10);
        assert_eq!(packets[2].entries.len(), 5);
        assert_eq!(packets[3].packet_type, PacketType::End);
        assert!(packets.iter().all(|r| r.tree_id == 4));
        // Sequence numbers are consecutive.
        let seqs: Vec<u32> = packets.iter().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2, 3]);
    }

    /// Regression: sequence numbering crossing `u32::MAX` must wrap, not
    /// overflow-panic — the sender half of the RFC 1982 story the dedup
    /// windows implement on the receive side.
    #[test]
    fn sequence_numbering_wraps_past_u32_max() {
        let p = Packetizer::new(&DaietConfig::default());
        let (packets, next) = p.packets_from_seq(1, &npairs(15), u32::MAX);
        // 10 + 5 pairs → 2 DATA + END, numbered MAX, 0, 1; next free: 2.
        let seqs: Vec<u32> = packets.iter().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![u32::MAX, 0, 1]);
        assert_eq!(next, 2);
    }

    #[test]
    fn empty_partition_is_just_an_end() {
        let p = Packetizer::new(&DaietConfig::default());
        let packets = p.packets(1, &[]);
        assert_eq!(packets.len(), 1);
        assert_eq!(packets[0].packet_type, PacketType::End);
    }

    #[test]
    fn frames_parse_back() {
        let p = Packetizer::new(&DaietConfig::default());
        let ep = Endpoints::from_ids(7, 8);
        let pool = FramePool::new();
        let frames = p.frames(2, &npairs(12), &ep, 777, &pool);
        assert_eq!(frames.len(), 3);
        // Frames match the Repr-based packetization exactly.
        let reprs = p.packets(2, &npairs(12));
        for (f, repr) in frames.iter().zip(&reprs) {
            let parsed = parse(f.clone(), &host_parser_config()).unwrap();
            assert_eq!(parsed.daiet_repr().as_ref(), Some(repr));
        }
    }

    #[test]
    fn collector_merges_and_completes() {
        let mut c = Collector::new(AggFn::Sum, 2);
        assert!(!c.on_packet(&Repr::data(1, vec![Pair::new(key("a"), 5)])));
        assert!(!c.on_packet(&Repr::data(1, vec![Pair::new(key("a"), 3), Pair::new(key("b"), 1)])));
        assert!(!c.on_packet(&Repr::end(1)));
        assert!(!c.is_complete());
        assert!(c.on_packet(&Repr::end(1)));
        assert!(c.is_complete());
        assert_eq!(c.get(&key("a")), Some(8));
        assert_eq!(c.stats().pairs_merged, 1);
        assert_eq!(c.stats().data_packets, 2);
        assert_eq!(c.stats().end_packets, 2);
        let sorted = c.into_sorted();
        assert_eq!(sorted, vec![(key("a"), 8), (key("b"), 1)]);
    }

    #[test]
    fn collector_counts_app_bytes_and_spill() {
        let mut c = Collector::new(AggFn::Sum, 1);
        let mut spill = Repr::data(1, npairs(3));
        spill.flags = daiet_wire::daiet::PacketFlags::SPILLOVER;
        c.on_packet(&spill);
        c.on_packet(&Repr::end(1));
        assert_eq!(c.stats().spill_packets, 1);
        // 10 B preamble + 3×20 B entries + 10 B END preamble.
        assert_eq!(c.stats().app_bytes, 10 + 60 + 10);
    }

    #[test]
    fn sorted_output_is_ordered_by_key_bytes() {
        let mut c = Collector::new(AggFn::Sum, 0);
        for name in ["zebra", "alpha", "mid"] {
            c.on_packet(&Repr::data(1, vec![Pair::new(key(name), 1)]));
        }
        let sorted: Vec<String> = c
            .into_sorted()
            .into_iter()
            .map(|(k, _)| k.display_lossy())
            .collect();
        assert_eq!(sorted, vec!["alpha", "mid", "zebra"]);
    }

    /// Satellite (ISSUE 5): the interleave offset is what spreads fan-in
    /// across trees; an iterative sender passes `sender_index + round` so
    /// the lead rotates per round. Pin the offset semantics: queue
    /// `offset % n` transmits first, order within each queue is
    /// preserved, and over any `n` consecutive rounds every queue leads
    /// exactly once (fairness — no tree is always drained first).
    #[test]
    fn interleave_offset_rotates_the_lead_across_rounds() {
        let pool = FramePool::new();
        let frame = |tag: u8| pool.copy_from_slice(&[tag]);
        let n = 3usize;
        let make_queues = || -> Vec<Vec<Frame>> {
            (0..n as u8)
                .map(|q| (0..4).map(|i| frame(q * 10 + i)).collect())
                .collect()
        };
        let sender_index = 2usize;
        let mut leads = Vec::new();
        for round in 0..2 * n {
            let out = interleave_round_robin(make_queues(), sender_index + round);
            assert_eq!(out.len(), n * 4);
            leads.push(out[0][0] / 10);
            // Every queue's internal order is preserved (ENDs still trail
            // their tree's data).
            for q in 0..n as u8 {
                let tags: Vec<u8> =
                    out.iter().map(|f| f[0]).filter(|t| t / 10 == q).collect();
                assert_eq!(tags, vec![q * 10, q * 10 + 1, q * 10 + 2, q * 10 + 3]);
            }
        }
        // The lead rotates: round r leads with queue (sender + r) % n…
        let expect: Vec<u8> =
            (0..2 * n).map(|r| ((sender_index + r) % n) as u8).collect();
        assert_eq!(leads, expect);
        // …so across any n consecutive rounds each queue led exactly once.
        for w in leads.windows(n) {
            let mut sorted = w.to_vec();
            sorted.sort_unstable();
            assert_eq!(sorted, (0..n as u8).collect::<Vec<u8>>(), "unfair window {w:?}");
        }
    }

    #[test]
    fn end_to_end_sender_switch_reducer() {
        use crate::switch_agg::{DaietEngine, TreeStateConfig};
        use daiet_dataplane::pipeline::{ActionSpec, Pipeline};
        use daiet_dataplane::table::{Field, KeySpec, Table, TableEntry, TableKind};
        use daiet_dataplane::{MatchValue, Resources, Switch};
        use daiet_netsim::{LinkSpec, Simulator};

        let config = DaietConfig::default();
        let mut sim = Simulator::new(11);

        // Two senders, one reducer, one switch doing the aggregation.
        let s1 = sim.add_node(Box::new(SenderHost::new(
            &config,
            1,
            vec![Pair::new(key("dog"), 2), Pair::new(key("cat"), 1)],
            Endpoints::from_ids(1, 3),
        )));
        let s2 = sim.add_node(Box::new(SenderHost::new(
            &config,
            1,
            vec![Pair::new(key("dog"), 5)],
            Endpoints::from_ids(2, 3),
        )));
        let reducer = sim.add_node(Box::new(ReducerHost::new(AggFn::Sum, 1)));

        let mut pipeline = Pipeline::new(Resources::tofino_like());
        let steer = pipeline
            .add_table(
                0,
                Table::new(
                    "daiet_steer",
                    TableKind::Exact,
                    KeySpec(vec![Field::DaietTreeId]),
                    16,
                    ActionSpec::NoOp,
                ),
            )
            .unwrap();
        let l2 = pipeline
            .add_table(
                1,
                Table::new(
                    "l2",
                    TableKind::Exact,
                    KeySpec(vec![Field::EthDst]),
                    16,
                    ActionSpec::Drop,
                ),
            )
            .unwrap();
        let mut sw = Switch::new("tor", pipeline);
        let mut engine = DaietEngine::new(config);
        engine.install_tree(TreeStateConfig {
            tree_id: 1,
            out_port: PortId(2), // reducer's port on the switch (3rd link)
            endpoints: Endpoints::from_ids(100, 3),
            agg: AggFn::Sum,
            children: 2,
            children_sources: Vec::new(),
        });
        let ext = sw.register_extern(Box::new(engine));
        sw.pipeline_mut()
            .table_mut(steer)
            .insert(TableEntry {
                matcher: MatchValue::Exact(1u16.to_be_bytes().to_vec()),
                action: ActionSpec::Invoke { ext, arg: 1 },
            })
            .unwrap();
        sw.pipeline_mut()
            .table_mut(l2)
            .insert(TableEntry {
                matcher: MatchValue::Exact(daiet_wire::EthernetAddress::from_id(3).0.to_vec()),
                action: ActionSpec::Forward(PortId(2)),
            })
            .unwrap();

        let sw_id = sim.add_node(Box::new(sw));
        sim.connect(s1, sw_id, LinkSpec::fast()); // switch port 0
        sim.connect(s2, sw_id, LinkSpec::fast()); // switch port 1
        sim.connect(sw_id, reducer, LinkSpec::fast()); // switch port 2
        sim.run();

        let r = sim.node_ref::<ReducerHost>(reducer).unwrap();
        assert!(r.collector.is_complete());
        assert_eq!(r.collector.get(&key("dog")), Some(7));
        assert_eq!(r.collector.get(&key("cat")), Some(1));
        // The reducer saw exactly one END (from the switch), and at most
        // one DATA packet (both keys fit one packet).
        assert_eq!(r.collector.stats().end_packets, 1);
        assert_eq!(r.collector.stats().data_packets, 1);
    }
}
