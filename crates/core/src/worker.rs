//! The end-host side of DAIET: packetizing map output into fixed-size
//! pair packets (sender) and collecting unordered aggregated results
//! (reducer).
//!
//! §4: partitions travel as "UDP packets containing a small preamble and a
//! sequence of key-value pairs … we use a fixed-size representation for
//! the pairs, so that it is easy to calculate the offsets of pairs in the
//! file and extract a number of complete pairs" — i.e. packetization never
//! splits a pair. "Finally, the end of the transmission is marked by a
//! special END packet." On the receive side, "the intermediate results
//! must be sorted at the reducer rather than at the mapper".

use crate::agg::AggFn;
use crate::config::DaietConfig;
use crate::reliability::seq_at_or_after;
use daiet_dataplane::parser::{parse, ParsedPacket, ParserConfig};
use daiet_netsim::{Context, Frame, FramePool, Node, PortId, SimDuration};
use daiet_wire::daiet::{self, Header, Key, NackRange, PacketFlags, PacketType, Pair, Repr};
use daiet_wire::fnv::FnvHashMap;
use daiet_wire::stack::{build_daiet_into, Endpoints};

/// Parser settings for an end host NIC stack: checksums verified, but no
/// parse-depth limit (hosts are CPUs, not line-rate parsers). Shared by
/// every host-side receiver ([`ReducerHost`] here, the querysim
/// coordinator, …) so host parsing semantics cannot diverge.
pub fn host_parser_config() -> ParserConfig {
    ParserConfig { max_parse_bytes: usize::MAX, verify_checksums: true }
}

/// The host receive prologue shared by every DAIET receiver
/// ([`ReducerHost`], the querysim coordinator): parse with host settings
/// (checksum failures and non-DAIET noise dropped, as a NIC would) and
/// extract the preamble plus the sender address. `None` means "ignore
/// this frame"; otherwise the caller applies its own admission (dedup
/// windows, tree demux — *in its own order*: a coordinator discards
/// foreign tree ids before charging dedup state) and consumes the
/// entries via
/// [`ParsedPacket::daiet_pairs`](daiet_dataplane::parser::ParsedPacket::daiet_pairs).
pub fn receive_daiet(frame: Frame) -> Option<(Header, daiet_wire::Ipv4Address, ParsedPacket)> {
    let parsed = parse(frame, &host_parser_config()).ok()?;
    let hdr = parsed.daiet?;
    let src = parsed.ip.as_ref()?.src_addr;
    Some((hdr, src, parsed))
}

/// Builds the standard multi-tree UDP sender: packetize each partition
/// (`(tree, endpoints, pairs)`), interleave round-robin at a
/// sender-specific offset, expand `k`-redundantly (`redundancy = 1` for
/// none), and replay paced — the one construction behind every bulk
/// sender (the MapReduce mappers, the querysim workers).
pub fn multi_tree_sender(
    config: &DaietConfig,
    sender_index: usize,
    partitions: &[(u16, Endpoints, Vec<Pair>)],
    redundancy: u32,
    gap: SimDuration,
    pool: &FramePool,
    label: &'static str,
) -> PacedSenderNode {
    let packetizer = Packetizer::new(config);
    let queues: Vec<Vec<Frame>> = partitions
        .iter()
        .map(|(tree, ep, pairs)| {
            packetizer.frames(*tree, pairs, ep, daiet_wire::udp::DAIET_PORT, pool)
        })
        .collect();
    // With NACK recovery on, keep the per-tree schedules (frames indexed
    // by sequence number — hosts have DRAM, so retention is total and a
    // NACK for *any* lost frame is answerable). Frame buffers are shared
    // with the transmit queue, so this costs refcounts, not copies.
    let replay = config.nack_recovery.then(|| {
        partitions
            .iter()
            .zip(&queues)
            .map(|((tree, ..), frames)| (*tree, frames.clone()))
            .collect::<FnvHashMap<u16, Vec<Frame>>>()
    });
    let interleaved = interleave_round_robin(queues, sender_index);
    let frames =
        crate::reliability::RedundantSender::new(redundancy.max(1)).schedule(&interleaved);
    let node = PacedSenderNode::new(frames, gap, label);
    match replay {
        Some(store) => node.with_replay(store),
        None => node,
    }
}

/// Splits a partition of pairs into DAIET packets.
#[derive(Debug, Clone)]
pub struct Packetizer {
    pairs_per_packet: usize,
}

impl Packetizer {
    /// A packetizer following `config`.
    pub fn new(config: &DaietConfig) -> Packetizer {
        Packetizer { pairs_per_packet: config.pairs_per_packet.max(1) }
    }

    /// Serializes `pairs` into DATA packets of at most `pairs_per_packet`
    /// entries, terminated by an END packet. Sequence numbers count up
    /// from 0 (used only by the reliability extension; harmless
    /// otherwise).
    pub fn packets(&self, tree_id: u16, pairs: &[Pair]) -> Vec<Repr> {
        self.packets_from_seq(tree_id, pairs, 0).0
    }

    /// The packetization policy, in one place: calls `f` once per packet
    /// with its preamble and entry slice (empty for the trailing END),
    /// numbering sequence from `start_seq`; returns the next free
    /// sequence number. Both the owned-[`Repr`] and the pooled-frame
    /// paths drive this, so they cannot drift apart. Sequence numbers
    /// live in a wrapping 32-bit space (long-lived iterative senders
    /// cross `u32::MAX`; the dedup windows compare RFC 1982-style).
    fn each_packet(
        &self,
        tree_id: u16,
        pairs: &[Pair],
        start_seq: u32,
        mut f: impl FnMut(&Header, &[Pair]),
    ) -> u32 {
        let mut seq = start_seq;
        for chunk in pairs.chunks(self.pairs_per_packet) {
            f(&Header::data(tree_id, PacketFlags::empty(), seq), chunk);
            seq = seq.wrapping_add(1);
        }
        f(&Header::end(tree_id, PacketFlags::empty(), seq), &[]);
        seq.wrapping_add(1)
    }

    /// Like [`Packetizer::packets`] but numbering from `start_seq`,
    /// returning the next free sequence number. Iterative senders running
    /// under the reliability extension must keep sequence numbers
    /// monotonic across rounds so duplicate suppression stays sound.
    pub fn packets_from_seq(
        &self,
        tree_id: u16,
        pairs: &[Pair],
        start_seq: u32,
    ) -> (Vec<Repr>, u32) {
        let mut out = Vec::with_capacity(pairs.len().div_ceil(self.pairs_per_packet) + 1);
        let next = self.each_packet(tree_id, pairs, start_seq, |hdr, chunk| {
            out.push(Repr {
                packet_type: hdr.packet_type,
                tree_id: hdr.tree_id,
                flags: hdr.flags,
                seq: hdr.seq,
                entries: chunk.to_vec(),
            });
        });
        (out, next)
    }

    /// Like [`Packetizer::packets`] but fully framed for the wire, with
    /// every frame serialized straight into a pooled buffer — the
    /// zero-copy path senders use (no intermediate `Repr`s or entry
    /// lists).
    pub fn frames(
        &self,
        tree_id: u16,
        pairs: &[Pair],
        endpoints: &Endpoints,
        src_port: u16,
        pool: &FramePool,
    ) -> Vec<Frame> {
        let mut out = Vec::with_capacity(pairs.len().div_ceil(self.pairs_per_packet) + 1);
        self.each_packet(tree_id, pairs, 0, |hdr, chunk| {
            let mut buf = pool.buffer();
            build_daiet_into(&mut buf, endpoints, src_port, hdr, chunk);
            out.push(pool.frame(buf));
        });
        out
    }
}

/// Interleaves per-tree frame queues round-robin starting at queue
/// `offset` (each queue's internal order is preserved, so every END still
/// trails its tree's data) — the shared transmit-scheduling policy of
/// every multi-tree sender. Starting different senders at different
/// offsets spreads the fan-in to any one reducer over time.
pub fn interleave_round_robin(mut queues: Vec<Vec<Frame>>, offset: usize) -> Vec<Frame> {
    let mut out = Vec::new();
    if queues.is_empty() {
        return out;
    }
    let n = queues.len();
    let mut cursors = vec![0usize; n];
    let mut remaining: usize = queues.iter().map(Vec::len).sum();
    out.reserve(remaining);
    let mut t = offset % n;
    while remaining > 0 {
        if cursors[t] < queues[t].len() {
            out.push(std::mem::take(&mut queues[t][cursors[t]]));
            cursors[t] += 1;
            remaining -= 1;
        }
        t = (t + 1) % n;
    }
    out
}

/// A host that replays a prebuilt frame schedule at a fixed pace: one
/// frame per `gap` tick, starting at simulation start. The transmit half
/// shared by every bulk UDP sender (the MapReduce mappers, the querysim
/// workers) — build the schedule up front (packetize, interleave,
/// optionally expand redundantly), then hand it here.
pub struct PacedSenderNode {
    frames: Vec<Frame>,
    next: usize,
    gap: SimDuration,
    label: &'static str,
    /// Per-tree schedules indexed by sequence number, kept for NACK
    /// replay (None when recovery is off — then incoming frames are
    /// ignored, as before).
    replay: Option<FnvHashMap<u16, Vec<Frame>>>,
    /// Frames re-sent in response to NACKs.
    pub frames_replayed: u64,
    /// NACK frames received and honored.
    pub nacks_received: u64,
}

impl PacedSenderNode {
    /// A sender that transmits `frames` in order, one every `gap`;
    /// `label` names the node in traces.
    pub fn new(frames: Vec<Frame>, gap: SimDuration, label: &'static str) -> PacedSenderNode {
        PacedSenderNode {
            frames,
            next: 0,
            gap,
            label,
            replay: None,
            frames_replayed: 0,
            nacks_received: 0,
        }
    }

    /// Arms NACK replay: `per_tree[tree][seq]` must be the frame the
    /// sender transmitted (or will transmit) with that sequence number.
    pub fn with_replay(mut self, per_tree: FnvHashMap<u16, Vec<Frame>>) -> PacedSenderNode {
        self.replay = Some(per_tree);
        self
    }
}

impl Node for PacedSenderNode {
    fn on_packet(&mut self, ctx: &mut Context<'_>, _port: PortId, frame: Frame) {
        // Senders only ever act on NACKs, and only when replay is armed.
        let Some(store) = self.replay.as_ref() else { return };
        let Some((hdr, _src, parsed)) = receive_daiet(frame) else { return };
        if hdr.packet_type != PacketType::Nack {
            return;
        }
        let Some(schedule) = store.get(&hdr.tree_id) else { return };
        self.nacks_received += 1;
        let tail = hdr.flags.contains(PacketFlags::NACK_TAIL);
        let ranges: Vec<NackRange> =
            parsed.daiet_pairs().filter_map(|p| NackRange::from_pair(&p)).collect();
        // Host schedules are dense: frame `i` carries seq `i`. Replay in
        // original order; receiver dedup absorbs anything it already has.
        // (A replay burst bypasses the pacing gap — recovery is latency-
        // critical and the burst is at most one partition.)
        for (i, f) in schedule.iter().enumerate() {
            let seq = i as u32;
            if ranges.iter().any(|r| r.contains(seq)) || (tail && seq_at_or_after(seq, hdr.seq))
            {
                ctx.send(PortId(0), f.clone());
                self.frames_replayed += 1;
            }
        }
    }

    fn on_start(&mut self, ctx: &mut Context<'_>) {
        ctx.schedule(self.gap, 0);
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, _token: u64) {
        if self.next < self.frames.len() {
            ctx.send(PortId(0), self.frames[self.next].clone());
            self.next += 1;
            ctx.schedule(self.gap, 0);
        }
    }

    fn name(&self) -> String {
        self.label.into()
    }
}

/// Receive-side statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CollectorStats {
    /// DATA packets received.
    pub data_packets: u64,
    /// END packets received.
    pub end_packets: u64,
    /// Packets carrying the SPILLOVER flag.
    pub spill_packets: u64,
    /// Pairs received (pre-merge).
    pub pairs_received: u64,
    /// Pairs merged into existing keys (residual aggregation done at the
    /// host — nonzero whenever the network could not aggregate
    /// everything).
    pub pairs_merged: u64,
    /// Application payload bytes received (DAIET preamble + entries).
    pub app_bytes: u64,
}

/// Reducer-side collector: merges unordered aggregated pairs and reports
/// completion once every expected END arrived.
#[derive(Debug)]
pub struct Collector {
    agg: AggFn,
    expected_ends: u32,
    ends_seen: u32,
    pairs: FnvHashMap<Key, u32>,
    stats: CollectorStats,
}

impl Collector {
    /// A collector combining with `agg` and expecting `expected_ends` END
    /// packets (= tree children of the reducer; 1 behind a DAIET switch,
    /// the mapper count without in-network aggregation).
    pub fn new(agg: AggFn, expected_ends: u32) -> Collector {
        Collector {
            agg,
            expected_ends,
            ends_seen: 0,
            pairs: FnvHashMap::default(),
            stats: CollectorStats::default(),
        }
    }

    /// Feeds one DAIET packet; returns `true` when the partition is
    /// complete (all ENDs seen).
    pub fn on_packet(&mut self, repr: &Repr) -> bool {
        self.on_parts(&repr.header(), repr.entries.iter().copied())
    }

    /// Feeds one DAIET packet as preamble + entry iterator — the
    /// allocation-free form [`ReducerHost`] drives straight from frame
    /// bytes. Returns `true` when the partition is complete.
    pub fn on_parts(&mut self, hdr: &Header, entries: impl Iterator<Item = Pair>) -> bool {
        match hdr.packet_type {
            PacketType::Data => {
                self.stats.data_packets += 1;
                if hdr.flags.contains(PacketFlags::SPILLOVER) {
                    self.stats.spill_packets += 1;
                }
                let mut n = 0u64;
                for pair in entries {
                    n += 1;
                    match self.pairs.entry(pair.key) {
                        std::collections::hash_map::Entry::Occupied(mut e) => {
                            let merged = self.agg.apply(*e.get(), pair.value);
                            e.insert(merged);
                            self.stats.pairs_merged += 1;
                        }
                        std::collections::hash_map::Entry::Vacant(e) => {
                            e.insert(pair.value);
                        }
                    }
                }
                self.stats.pairs_received += n;
                self.stats.app_bytes += Header::wire_len(n as usize) as u64;
            }
            PacketType::End => {
                self.stats.app_bytes += daiet::HEADER_LEN as u64;
                self.stats.end_packets += 1;
                self.ends_seen += 1;
            }
            PacketType::Nack | PacketType::Unknown(_) => {
                self.stats.app_bytes += daiet::HEADER_LEN as u64;
            }
        }
        self.is_complete()
    }

    /// True once all expected ENDs arrived.
    pub fn is_complete(&self) -> bool {
        self.ends_seen >= self.expected_ends
    }

    /// ENDs seen so far.
    pub fn ends_seen(&self) -> u32 {
        self.ends_seen
    }

    /// Distinct keys held.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// True when no pairs were collected.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Receive statistics.
    pub fn stats(&self) -> CollectorStats {
        self.stats
    }

    /// Consumes the collector, returning pairs **sorted by key** — the
    /// sort the paper moves from mappers to the reducer ("the intermediate
    /// results must be sorted at the reducer", §4).
    pub fn into_sorted(self) -> Vec<(Key, u32)> {
        let mut v: Vec<(Key, u32)> = self.pairs.into_iter().collect();
        v.sort_unstable_by_key(|a| a.0);
        v
    }

    /// Borrowing accessor for tests.
    pub fn get(&self, key: &Key) -> Option<u32> {
        self.pairs.get(key).copied()
    }

    /// Iterates the collected pairs in arbitrary order (callers sort).
    pub fn get_all(&self) -> impl Iterator<Item = (Key, u32)> + '_ {
        self.pairs.iter().map(|(k, v)| (*k, *v))
    }
}

/// A minimal sending host: transmits one preloaded partition at start
/// (used by examples and integration tests; the MapReduce crate has a
/// richer worker).
pub struct SenderHost {
    tree_id: u16,
    pairs: Vec<Pair>,
    endpoints: Endpoints,
    packetizer: Packetizer,
    /// Pace between frames (keeps egress queues shallow in examples).
    pub gap: SimDuration,
    queue: Vec<Frame>,
    next: usize,
}

impl SenderHost {
    /// A host that will send `pairs` for `tree_id` to the reducer
    /// addressed by `endpoints`.
    pub fn new(
        config: &DaietConfig,
        tree_id: u16,
        pairs: Vec<Pair>,
        endpoints: Endpoints,
    ) -> SenderHost {
        SenderHost {
            tree_id,
            pairs,
            endpoints,
            packetizer: Packetizer::new(config),
            gap: SimDuration::from_micros(1),
            queue: Vec::new(),
            next: 0,
        }
    }
}

impl Node for SenderHost {
    fn on_packet(&mut self, _ctx: &mut Context<'_>, _port: PortId, _frame: Frame) {}

    fn on_start(&mut self, ctx: &mut Context<'_>) {
        self.queue = self.packetizer.frames(
            self.tree_id,
            &self.pairs,
            &self.endpoints,
            daiet_wire::udp::DAIET_PORT,
            ctx.pool(),
        );
        ctx.schedule(self.gap, 0);
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, _token: u64) {
        if self.next < self.queue.len() {
            ctx.send(PortId(0), self.queue[self.next].clone());
            self.next += 1;
            ctx.schedule(self.gap, 0);
        }
    }

    fn name(&self) -> String {
        format!("sender(tree {})", self.tree_id)
    }
}

/// A minimal reducer host: collects DAIET packets until complete.
pub struct ReducerHost {
    /// The collector; read it out after the run.
    pub collector: Collector,
    /// Completion time, once reached.
    pub completed_at: Option<daiet_netsim::SimTime>,
    /// Receive-side reliability (dedup and/or NACK recovery — the
    /// default guard is the paper-faithful fire-and-forget path).
    guard: crate::reliability::ReceiverGuard,
}

impl ReducerHost {
    /// A reducer expecting `expected_ends` ENDs, combining with `agg`.
    pub fn new(agg: AggFn, expected_ends: u32) -> ReducerHost {
        ReducerHost {
            collector: Collector::new(agg, expected_ends),
            completed_at: None,
            guard: crate::reliability::ReceiverGuard::new(),
        }
    }

    /// Enables receive-side duplicate suppression (pairs with
    /// [`crate::DaietConfig::reliability`] on the switches —
    /// aggregation is not idempotent, so the *last* hop needs protection
    /// too, not just the switches).
    pub fn with_dedup(mut self) -> ReducerHost {
        self.guard.enable_dedup();
        self
    }

    /// Arms NACK recovery: this reducer (simulator id `self_id`) watches
    /// one flow per `(tree, source)` in `sources` — the deployment's
    /// [`reducer_sources`](crate::controller::Deployment::reducer_sources)
    /// roster — and NACKs delinquent ones per `config`'s timeout/budget
    /// (see [`ReceiverGuard`](crate::reliability::ReceiverGuard)).
    pub fn with_nack_recovery(
        mut self,
        self_id: u32,
        config: &DaietConfig,
        sources: impl IntoIterator<Item = (u16, u32)>,
    ) -> ReducerHost {
        self.guard.arm_nack_recovery(self_id, config, sources);
        self
    }

    /// Frames suppressed as duplicates (by the dedup window or, under
    /// NACK recovery, the gap tracker's bitmaps).
    pub fn duplicates_suppressed(&self) -> u64 {
        self.guard.duplicates_suppressed()
    }

    /// NACK frames this reducer has sent (0 without recovery).
    pub fn nacks_emitted(&self) -> u64 {
        self.guard.nacks_emitted()
    }
}

impl Node for ReducerHost {
    fn on_packet(&mut self, ctx: &mut Context<'_>, _port: PortId, frame: Frame) {
        let Some((hdr, src, parsed)) = receive_daiet(frame) else {
            return;
        };
        if !self.guard.admit(&hdr, src, ctx) {
            return;
        }
        if self.collector.on_parts(&hdr, parsed.daiet_pairs()) && self.completed_at.is_none() {
            self.completed_at = Some(ctx.now());
        }
        self.guard.arm(ctx);
    }

    fn on_start(&mut self, ctx: &mut Context<'_>) {
        self.guard.arm(ctx);
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, _token: u64) {
        self.guard.on_timer(ctx);
    }

    fn name(&self) -> String {
        "reducer".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(s: &str) -> Key {
        Key::from_str_key(s).unwrap()
    }

    fn npairs(n: usize) -> Vec<Pair> {
        (0..n).map(|i| Pair::new(key(&format!("k{i}")), i as u32)).collect()
    }

    #[test]
    fn packetizer_never_splits_pairs_and_ends_with_end() {
        let p = Packetizer::new(&DaietConfig::default());
        let packets = p.packets(4, &npairs(25));
        assert_eq!(packets.len(), 4); // 10 + 10 + 5 + END
        assert_eq!(packets[0].entries.len(), 10);
        assert_eq!(packets[2].entries.len(), 5);
        assert_eq!(packets[3].packet_type, PacketType::End);
        assert!(packets.iter().all(|r| r.tree_id == 4));
        // Sequence numbers are consecutive.
        let seqs: Vec<u32> = packets.iter().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2, 3]);
    }

    /// Regression: sequence numbering crossing `u32::MAX` must wrap, not
    /// overflow-panic — the sender half of the RFC 1982 story the dedup
    /// windows implement on the receive side.
    #[test]
    fn sequence_numbering_wraps_past_u32_max() {
        let p = Packetizer::new(&DaietConfig::default());
        let (packets, next) = p.packets_from_seq(1, &npairs(15), u32::MAX);
        // 10 + 5 pairs → 2 DATA + END, numbered MAX, 0, 1; next free: 2.
        let seqs: Vec<u32> = packets.iter().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![u32::MAX, 0, 1]);
        assert_eq!(next, 2);
    }

    #[test]
    fn empty_partition_is_just_an_end() {
        let p = Packetizer::new(&DaietConfig::default());
        let packets = p.packets(1, &[]);
        assert_eq!(packets.len(), 1);
        assert_eq!(packets[0].packet_type, PacketType::End);
    }

    #[test]
    fn frames_parse_back() {
        let p = Packetizer::new(&DaietConfig::default());
        let ep = Endpoints::from_ids(7, 8);
        let pool = FramePool::new();
        let frames = p.frames(2, &npairs(12), &ep, 777, &pool);
        assert_eq!(frames.len(), 3);
        // Frames match the Repr-based packetization exactly.
        let reprs = p.packets(2, &npairs(12));
        for (f, repr) in frames.iter().zip(&reprs) {
            let parsed = parse(f.clone(), &host_parser_config()).unwrap();
            assert_eq!(parsed.daiet_repr().as_ref(), Some(repr));
        }
    }

    #[test]
    fn collector_merges_and_completes() {
        let mut c = Collector::new(AggFn::Sum, 2);
        assert!(!c.on_packet(&Repr::data(1, vec![Pair::new(key("a"), 5)])));
        assert!(!c.on_packet(&Repr::data(1, vec![Pair::new(key("a"), 3), Pair::new(key("b"), 1)])));
        assert!(!c.on_packet(&Repr::end(1)));
        assert!(!c.is_complete());
        assert!(c.on_packet(&Repr::end(1)));
        assert!(c.is_complete());
        assert_eq!(c.get(&key("a")), Some(8));
        assert_eq!(c.stats().pairs_merged, 1);
        assert_eq!(c.stats().data_packets, 2);
        assert_eq!(c.stats().end_packets, 2);
        let sorted = c.into_sorted();
        assert_eq!(sorted, vec![(key("a"), 8), (key("b"), 1)]);
    }

    #[test]
    fn collector_counts_app_bytes_and_spill() {
        let mut c = Collector::new(AggFn::Sum, 1);
        let mut spill = Repr::data(1, npairs(3));
        spill.flags = daiet_wire::daiet::PacketFlags::SPILLOVER;
        c.on_packet(&spill);
        c.on_packet(&Repr::end(1));
        assert_eq!(c.stats().spill_packets, 1);
        // 10 B preamble + 3×20 B entries + 10 B END preamble.
        assert_eq!(c.stats().app_bytes, 10 + 60 + 10);
    }

    #[test]
    fn sorted_output_is_ordered_by_key_bytes() {
        let mut c = Collector::new(AggFn::Sum, 0);
        for name in ["zebra", "alpha", "mid"] {
            c.on_packet(&Repr::data(1, vec![Pair::new(key(name), 1)]));
        }
        let sorted: Vec<String> = c
            .into_sorted()
            .into_iter()
            .map(|(k, _)| k.display_lossy())
            .collect();
        assert_eq!(sorted, vec!["alpha", "mid", "zebra"]);
    }

    #[test]
    fn end_to_end_sender_switch_reducer() {
        use crate::switch_agg::{DaietEngine, TreeStateConfig};
        use daiet_dataplane::pipeline::{ActionSpec, Pipeline};
        use daiet_dataplane::table::{Field, KeySpec, Table, TableEntry, TableKind};
        use daiet_dataplane::{MatchValue, Resources, Switch};
        use daiet_netsim::{LinkSpec, Simulator};

        let config = DaietConfig::default();
        let mut sim = Simulator::new(11);

        // Two senders, one reducer, one switch doing the aggregation.
        let s1 = sim.add_node(Box::new(SenderHost::new(
            &config,
            1,
            vec![Pair::new(key("dog"), 2), Pair::new(key("cat"), 1)],
            Endpoints::from_ids(1, 3),
        )));
        let s2 = sim.add_node(Box::new(SenderHost::new(
            &config,
            1,
            vec![Pair::new(key("dog"), 5)],
            Endpoints::from_ids(2, 3),
        )));
        let reducer = sim.add_node(Box::new(ReducerHost::new(AggFn::Sum, 1)));

        let mut pipeline = Pipeline::new(Resources::tofino_like());
        let steer = pipeline
            .add_table(
                0,
                Table::new(
                    "daiet_steer",
                    TableKind::Exact,
                    KeySpec(vec![Field::DaietTreeId]),
                    16,
                    ActionSpec::NoOp,
                ),
            )
            .unwrap();
        let l2 = pipeline
            .add_table(
                1,
                Table::new(
                    "l2",
                    TableKind::Exact,
                    KeySpec(vec![Field::EthDst]),
                    16,
                    ActionSpec::Drop,
                ),
            )
            .unwrap();
        let mut sw = Switch::new("tor", pipeline);
        let mut engine = DaietEngine::new(config);
        engine.install_tree(TreeStateConfig {
            tree_id: 1,
            out_port: PortId(2), // reducer's port on the switch (3rd link)
            endpoints: Endpoints::from_ids(100, 3),
            agg: AggFn::Sum,
            children: 2,
            children_sources: Vec::new(),
        });
        let ext = sw.register_extern(Box::new(engine));
        sw.pipeline_mut()
            .table_mut(steer)
            .insert(TableEntry {
                matcher: MatchValue::Exact(1u16.to_be_bytes().to_vec()),
                action: ActionSpec::Invoke { ext, arg: 1 },
            })
            .unwrap();
        sw.pipeline_mut()
            .table_mut(l2)
            .insert(TableEntry {
                matcher: MatchValue::Exact(daiet_wire::EthernetAddress::from_id(3).0.to_vec()),
                action: ActionSpec::Forward(PortId(2)),
            })
            .unwrap();

        let sw_id = sim.add_node(Box::new(sw));
        sim.connect(s1, sw_id, LinkSpec::fast()); // switch port 0
        sim.connect(s2, sw_id, LinkSpec::fast()); // switch port 1
        sim.connect(sw_id, reducer, LinkSpec::fast()); // switch port 2
        sim.run();

        let r = sim.node_ref::<ReducerHost>(reducer).unwrap();
        assert!(r.collector.is_complete());
        assert_eq!(r.collector.get(&key("dog")), Some(7));
        assert_eq!(r.collector.get(&key("cat")), Some(1));
        // The reducer saw exactly one END (from the switch), and at most
        // one DATA packet (both keys fit one packet).
        assert_eq!(r.collector.stats().end_packets, 1);
        assert_eq!(r.collector.stats().data_packets, 1);
    }
}
