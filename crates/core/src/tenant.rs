//! Multi-tenant control plane: concurrent jobs sharing one fabric.
//!
//! The paper pitches in-network aggregation as *shared datacenter
//! infrastructure* — which only holds if many jobs can use the switches
//! at once. This module is the online counterpart of
//! [`Controller::deploy`](crate::controller::Controller::deploy): a
//! [`JobScheduler`] owns one long-lived simulation of the fabric and
//! admits, drives and evicts jobs against the switches' SRAM budgets
//! while their neighbors keep streaming.
//!
//! The isolation story rests on three mechanisms:
//!
//! * **Tree-id namespacing.** Every job's trees get fabric-unique tree
//!   ids, so per-tree register arrays, retransmit rings, steering rules
//!   and gap-tracker flows (all keyed by tree id) never collide between
//!   tenants. Departed ids are quarantined (recycled only if the u16
//!   space is exhausted) so a straggler frame from a dead job cannot be
//!   mistaken for live traffic.
//! * **All-or-nothing admission.** [`JobScheduler::admit`] mutates
//!   switches through an undo log; the first refusal (SRAM exhausted,
//!   steering table full, dedup flow cap short) rolls every prior
//!   mutation back in reverse order. [`SramTracker::free`] preserves
//!   allocation order and per-stage accounting, so a rejected job leaves
//!   the fabric **bit-identically** in its pre-admission state — future
//!   first-fit placements are unchanged.
//! * **Per-job teardown.** [`JobScheduler::depart`] removes exactly the
//!   departing job's steering entries ([`Table::remove_exact`]), engine
//!   trees ([`DaietEngine::remove_tree`]) and SRAM reservations
//!   (`daiet.tree[id]@sw` / `daiet.rtx[id]@sw`), and returns its host
//!   slots to the pool — neighbor jobs' switch state and in-flight
//!   recovery are untouched. The deliberately wrong
//!   [`naive_depart`](JobScheduler::naive_depart) (wipe-and-rebuild
//!   teardown) is kept as a regression foil.
//!
//! On top of the scheduler, [`run_mix`] drives a deterministic tenant
//! mix: Poisson arrivals ([`poisson_offsets`], seeded `stream_seed`
//! style), per-job round loops, and per-job [`StatsSnapshot`] deltas for
//! accounting ([`JobOutcome::usage`]).
//!
//! [`SramTracker::free`]: daiet_dataplane::resources::SramTracker::free
//! [`Table::remove_exact`]: daiet_dataplane::table::Table::remove_exact

// lint:allow-file(layer-netsim): the multi-tenant controller plans over the
// shared topology and spawns per-job simulator runs; it is harness, not
// protocol — the per-job dataplane code it launches stays fabric-only.
use crate::agg::AggFn;
use crate::config::DaietConfig;
use crate::controller::{DeployError, L2_TABLE, STEER_TABLE};
use crate::iterative::IdleHost;
use crate::switch_agg::{ChildSource, DaietEngine, TreeStateConfig};
use crate::tree::AggregationTree;
use crate::worker::{plan_round, PacedSenderNode, ReducerHost};
use daiet_dataplane::pipeline::{ActionSpec, Pipeline};
use daiet_dataplane::resources::Resources;
use daiet_dataplane::table::{Field, KeySpec, MatchValue, Table, TableEntry, TableKind};
use daiet_dataplane::{ExternId, Switch};
use daiet_fabric::{Duration, Time};
use daiet_netsim::topology::{Role, TopologyPlan};
use daiet_netsim::{NodeId, NodeStats, Simulator, StatsSnapshot};
use daiet_wire::daiet::{Key, Pair};
use daiet_wire::fnv::FnvHashMap;
use daiet_wire::stack::Endpoints;
use std::collections::{BTreeMap, BTreeSet};

/// How the shared tenant fabric is shaped: the topology, the host pools
/// jobs lease slots from, and the switch/link/protocol parameters every
/// tenant shares.
#[derive(Debug, Clone)]
pub struct TenantSpec {
    /// DAIET parameters applied fabric-wide (all tenants share the
    /// switch pipeline configuration, exactly as they would share a
    /// physical chip's P4 program).
    pub config: DaietConfig,
    /// The fabric.
    pub plan: TopologyPlan,
    /// Host slots jobs may lease as senders (lowest slots first).
    pub sender_slots: Vec<usize>,
    /// Host slots jobs may lease as reducers (one aggregation tree
    /// each).
    pub reducer_slots: Vec<usize>,
    /// Switch chip profile.
    pub resources: Resources,
    /// Capacity of each switch's steering table — the maximum number of
    /// concurrently installed trees per switch. Admission of a tree
    /// past this cap fails cleanly (and rolls back).
    pub steer_capacity: usize,
    /// Gap between frames at each sender.
    pub pacing: Duration,
    /// Simulation seed.
    pub seed: u64,
    /// Execution partitions (default: the `DAIET_PARTITIONS`
    /// environment variable, else 1). Per-job results must be
    /// bit-identical at any setting.
    pub partitions: usize,
}

impl TenantSpec {
    /// Paper-shaped defaults over `plan`: Tofino-class chip, 1 µs
    /// pacing, room for 64 concurrent trees per switch.
    pub fn new(
        config: DaietConfig,
        plan: TopologyPlan,
        sender_slots: Vec<usize>,
        reducer_slots: Vec<usize>,
    ) -> TenantSpec {
        TenantSpec {
            config,
            plan,
            sender_slots,
            reducer_slots,
            resources: Resources::tofino_like(),
            steer_capacity: 64,
            pacing: Duration::from_micros(1),
            seed: 7,
            partitions: daiet_netsim::env_partitions(),
        }
    }
}

/// Handle of an admitted job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct JobId(pub u64);

impl core::fmt::Display for JobId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "job#{}", self.0)
    }
}

/// What a tenant asks the scheduler for.
#[derive(Debug, Clone)]
pub struct JobRequest {
    /// Human-readable tag carried through accounting.
    pub label: String,
    /// Sender slots to lease.
    pub senders: usize,
    /// One aggregation tree per entry, aggregating with that function;
    /// leases `aggs.len()` reducer slots.
    pub aggs: Vec<AggFn>,
}

/// Accounting returned by [`JobScheduler::depart`]: what the job did to
/// the fabric while it was admitted, attributed via [`StatsSnapshot`]
/// deltas restricted to its leased host slots.
#[derive(Debug, Clone)]
pub struct JobUsage {
    /// Rounds the job completed.
    pub rounds: u64,
    /// When the job was admitted.
    pub admitted_at: Time,
    /// When the job departed.
    pub departed_at: Time,
    /// Frame/byte totals over the job's leased hosts for its lifetime.
    pub usage: NodeStats,
}

/// Per-job state the scheduler tracks while a job is admitted.
struct JobState {
    label: String,
    /// Leased sender plan slots (job-local sender index → plan slot).
    sender_slots: Vec<usize>,
    /// Leased reducer plan slots (tree index → plan slot).
    reducer_slots: Vec<usize>,
    trees: Vec<AggregationTree>,
    /// Per sender, per tree id: next free sequence number.
    next_seq: Vec<FnvHashMap<u16, u32>>,
    /// END frames each reducer must see per round.
    expected_ends: Vec<u32>,
    round: u64,
    round_open: bool,
    admitted_at: Time,
    snap_at_admit: StatsSnapshot,
}

/// One undo-log entry of an in-flight admission; replayed in reverse on
/// the first failure so a rejected job leaves zero partial switch state.
enum Undo {
    /// An SRAM reservation on switch `slot` under `name`.
    Sram { slot: usize, name: String },
    /// A tree installed on switch `slot`'s engine.
    Engine { slot: usize, tree_id: u16 },
    /// A steering rule for `tree_id` on switch `slot`.
    Steer { slot: usize, tree_id: u16 },
}

/// The multi-tenant control plane: one long-lived simulated fabric,
/// jobs admitted and evicted online against the switches' SRAM budgets.
///
/// Hosts are pre-created (a running fabric cannot grow NICs): sender
/// slots hold idle [`PacedSenderNode`]s, reducer slots idle
/// [`ReducerHost`]s, and jobs lease disjoint subsets lowest-slot-first.
/// Switches are built once with empty steering tables and engines; each
/// admission installs exactly the departing-side state
/// ([`depart`](Self::depart)) later removes.
pub struct JobScheduler {
    spec: TenantSpec,
    sim: Simulator,
    /// Node ids by plan slot.
    ids: Vec<NodeId>,
    /// A switch to hang inert wakeup timers on: `run_until` only
    /// advances the clock to the last processed event, so
    /// [`advance_to`](Self::advance_to) pins a no-op timer at its
    /// deadline to make a quiet fabric reach it.
    clock_anchor: NodeId,
    engine_externs: BTreeMap<usize, ExternId>,
    /// Unleased sender plan slots, sorted ascending.
    free_senders: Vec<usize>,
    /// Unleased reducer plan slots, sorted ascending.
    free_reducers: Vec<usize>,
    /// Next never-used tree id (u32 so exhaustion of the u16 space is
    /// representable).
    next_tree_id: u32,
    /// Ids of departed jobs, quarantined until the fresh space runs dry
    /// — a straggler frame carrying a dead job's tree id must not hit a
    /// live tree.
    recycled_tree_ids: BTreeSet<u16>,
    /// Live dedup/gap flow demand per switch slot (sum of tree children
    /// across every admitted job's trees at that switch).
    flow_demand: BTreeMap<usize, u64>,
    jobs: BTreeMap<u64, JobState>,
    next_job: u64,
}

impl JobScheduler {
    /// Brings up the shared fabric: validates the configuration,
    /// instantiates every switch (empty steering table, L2 routes to
    /// all hosts, fabric-lifetime `daiet.nack@sw`/`daiet.dedup@sw`
    /// reservations) and every pooled host, wires the plan, and runs
    /// `on_start`.
    pub fn build(spec: TenantSpec) -> Result<JobScheduler, DeployError> {
        spec.config
            .validate(spec.resources.max_parse_bytes)
            .map_err(DeployError::Config)?;
        if spec.config.nack_recovery {
            let demand = spec.config.rtx_demand_per_tree();
            if spec.config.rtx_frames < demand {
                return Err(DeployError::Config(format!(
                    "a full flush emits up to {demand} frames per tree but rtx_frames \
                     is {}; raise DaietConfig::rtx_frames or shrink register_cells",
                    spec.config.rtx_frames
                )));
            }
        }
        let mut seen = BTreeSet::new();
        for &slot in spec.sender_slots.iter().chain(&spec.reducer_slots) {
            if slot >= spec.plan.len() || spec.plan.role(slot) != Role::Host {
                return Err(DeployError::Config(format!(
                    "pool slot {slot} is not a host of the plan"
                )));
            }
            if !seen.insert(slot) {
                return Err(DeployError::Config(format!(
                    "pool slot {slot} appears twice (sender/reducer pools must be disjoint)"
                )));
            }
        }

        let pmap = spec.plan.partition_map(spec.partitions);
        let mut sim = Simulator::with_partitions(spec.seed, pmap);
        let mut ids = Vec::with_capacity(spec.plan.len());
        let mut engine_externs = BTreeMap::new();
        let mut flow_demand = BTreeMap::new();
        let hosts = spec.plan.hosts();
        for slot in 0..spec.plan.len() {
            let id = match spec.plan.role(slot) {
                Role::Host => {
                    if spec.sender_slots.contains(&slot) {
                        let mut node =
                            PacedSenderNode::new(Vec::new(), spec.pacing, "tenant-sender");
                        if spec.config.nack_recovery {
                            node.arm_replay();
                        }
                        sim.add_node(Box::new(node))
                    } else if spec.reducer_slots.contains(&slot) {
                        // Pooled reducers idle with nothing expected;
                        // admission re-rosters them for their job.
                        sim.add_node(Box::new(ReducerHost::new(AggFn::Sum, 0)))
                    } else {
                        sim.add_node(Box::new(IdleHost))
                    }
                }
                Role::Switch => {
                    let (switch, ext) = build_tenant_switch(&spec, slot, &hosts)?;
                    flow_demand.insert(slot, 0u64);
                    let id = sim.add_node(Box::new(switch));
                    engine_externs.insert(slot, ext);
                    id
                }
            };
            ids.push(id);
        }
        spec.plan.wire(&mut sim, &ids);
        sim.run_until(Time::ZERO);

        let clock_anchor = spec
            .plan
            .switches()
            .first()
            .map(|&slot| ids[slot])
            .ok_or_else(|| DeployError::Config("the plan has no switches".into()))?;
        let free_senders = spec.sender_slots.iter().copied().collect::<BTreeSet<_>>();
        let free_reducers = spec.reducer_slots.iter().copied().collect::<BTreeSet<_>>();
        Ok(JobScheduler {
            free_senders: free_senders.into_iter().collect(),
            free_reducers: free_reducers.into_iter().collect(),
            spec,
            sim,
            ids,
            clock_anchor,
            engine_externs,
            next_tree_id: 0,
            recycled_tree_ids: BTreeSet::new(),
            flow_demand,
            jobs: BTreeMap::new(),
            next_job: 0,
        })
    }

    /// Admits a job **all-or-nothing**: leases host slots, assigns
    /// fabric-unique tree ids, builds one aggregation tree per
    /// requested aggregation function, and installs SRAM reservations,
    /// engine tree state and steering rules on every crossed switch —
    /// or, on the first refusal, rolls back every mutation already made
    /// and returns the error with the fabric bit-identical to its
    /// pre-admission state. Neighbor jobs are never paused.
    pub fn admit(&mut self, req: JobRequest) -> Result<JobId, DeployError> {
        if req.senders == 0 || req.aggs.is_empty() {
            return Err(DeployError::Config(
                "a job needs at least one sender and one aggregation tree".into(),
            ));
        }
        if req.senders > self.free_senders.len() || req.aggs.len() > self.free_reducers.len() {
            return Err(DeployError::Config(format!(
                "host pool exhausted: {} senders free of {} requested, {} reducers free \
                 of {} requested",
                self.free_senders.len(),
                req.senders,
                self.free_reducers.len(),
                req.aggs.len()
            )));
        }
        let sender_slots: Vec<usize> = self.free_senders[..req.senders].to_vec();
        let reducer_slots: Vec<usize> = self.free_reducers[..req.aggs.len()].to_vec();

        // Tree ids: fresh-first; recycled ids only once the u16 space is
        // spent (quarantine against straggler frames from dead jobs).
        let mut tree_ids = Vec::with_capacity(req.aggs.len());
        for _ in 0..req.aggs.len() {
            match self.alloc_tree_id() {
                Some(tid) => tree_ids.push(tid),
                None => {
                    self.release_tree_ids(&tree_ids);
                    return Err(DeployError::Config(
                        "tree-id space exhausted (65536 live or quarantined trees)".into(),
                    ));
                }
            }
        }

        let mut trees = Vec::with_capacity(req.aggs.len());
        for (t, &tid) in tree_ids.iter().enumerate() {
            match AggregationTree::build(&self.spec.plan, tid, reducer_slots[t], &sender_slots) {
                Ok(tree) => trees.push(tree),
                Err(e) => {
                    self.release_tree_ids(&tree_ids);
                    return Err(DeployError::Tree(e));
                }
            }
        }

        // Dedup/gap flow capacity precheck — before any switch is
        // touched, so a refusal here needs no rollback at all.
        let mut added: BTreeMap<usize, u64> = BTreeMap::new();
        for tree in &trees {
            for (&sw, &children) in &tree.switch_children {
                *added.entry(sw).or_insert(0) += u64::from(children);
            }
        }
        if self.spec.config.reliability {
            for (&sw, &add) in &added {
                let live = self.flow_demand.get(&sw).copied().unwrap_or(0);
                if live + add > self.spec.config.dedup_flows as u64 {
                    self.release_tree_ids(&tree_ids);
                    return Err(DeployError::Config(format!(
                        "switch {sw} would need {} dedup flows ({live} live + {add} new) \
                         but dedup_flows is {}",
                        live + add,
                        self.spec.config.dedup_flows
                    )));
                }
            }
        }

        // Install switch state through the undo log.
        let mut log = Vec::new();
        if let Err(e) = self.install_job(&trees, &req.aggs, &mut log) {
            self.rollback(log);
            self.release_tree_ids(&tree_ids);
            return Err(e);
        }

        // Committed: lease the slots and arm the hosts.
        self.free_senders.drain(..req.senders);
        self.free_reducers.drain(..req.aggs.len());
        for (&sw, &add) in &added {
            *self.flow_demand.entry(sw).or_insert(0) += add;
        }
        let config = self.spec.config;
        for (t, tree) in trees.iter().enumerate() {
            let slot = reducer_slots[t];
            let id = self.ids[slot];
            let reducer = self
                .sim
                .node_mut::<ReducerHost>(id)
                .expect("reducer pool slots hold ReducerHosts");
            // Drain anything a straggler frame deposited while pooled,
            // then re-arm collection and the reliability guard for this
            // job's tree from scratch.
            let _ = reducer.take_round();
            reducer.collector.set_agg(req.aggs[t]);
            let sources: Vec<(u16, u32)> = tree
                .children_of(tree.reducer)
                .into_iter()
                .map(|(child, _)| (tree.tree_id, child as u32))
                .collect();
            reducer.reroster(slot as u32, &config, sources, tree.reducer_children);
        }
        for &slot in &sender_slots {
            let id = self.ids[slot];
            self.sim
                .node_mut::<PacedSenderNode>(id)
                .expect("sender pool slots hold PacedSenderNodes")
                .reset_epoch();
        }

        let expected_ends: Vec<u32> = trees.iter().map(|t| t.reducer_children).collect();
        let jid = self.next_job;
        self.next_job += 1;
        self.jobs.insert(
            jid,
            JobState {
                label: req.label,
                next_seq: vec![FnvHashMap::default(); sender_slots.len()],
                sender_slots,
                reducer_slots,
                trees,
                expected_ends,
                round: 0,
                round_open: false,
                admitted_at: self.sim.now(),
                snap_at_admit: self.sim.snapshot(),
            },
        );
        Ok(JobId(jid))
    }

    /// Installs `trees` on every crossed switch, recording each mutation
    /// in `log`. On `Err` the caller replays the log in reverse.
    fn install_job(
        &mut self,
        trees: &[AggregationTree],
        aggs: &[AggFn],
        log: &mut Vec<Undo>,
    ) -> Result<(), DeployError> {
        let config = self.spec.config;
        for (t, tree) in trees.iter().enumerate() {
            let tid = tree.tree_id;
            for (&sw, &children) in &tree.switch_children {
                let ext = self.engine_externs[&sw];
                let id = self.ids[sw];
                let upstream = tree.upstream(sw).expect("participating switch has a parent");
                let children_sources: Vec<ChildSource> = tree
                    .children_of(sw)
                    .into_iter()
                    .map(|(child, port)| ChildSource { id: child as u32, port })
                    .collect();
                debug_assert_eq!(children_sources.len() as u32, children);
                let switch = self
                    .sim
                    .node_mut::<Switch>(id)
                    .expect("switch slots hold Switches");

                let name = format!("daiet.tree[{tid}]@{sw}");
                switch
                    .pipeline_mut()
                    .tracker_mut()
                    .allocate_first_fit(&name, 2, config.sram_per_tree())?;
                log.push(Undo::Sram { slot: sw, name });
                if config.nack_recovery {
                    let name = format!("daiet.rtx[{tid}]@{sw}");
                    switch.pipeline_mut().tracker_mut().allocate_first_fit(
                        &name,
                        2,
                        config.sram_for_rtx_per_tree(),
                    )?;
                    log.push(Undo::Sram { slot: sw, name });
                }

                let engine = switch
                    .extern_mut::<DaietEngine>(ext)
                    .expect("tenant switches carry a DaietEngine");
                engine.install_tree(TreeStateConfig {
                    tree_id: tid,
                    out_port: upstream.port,
                    endpoints: Endpoints::from_ids(sw as u32, tree.reducer as u32),
                    agg: aggs[t],
                    children,
                    children_sources,
                });
                log.push(Undo::Engine { slot: sw, tree_id: tid });

                switch
                    .pipeline_mut()
                    .table_mut(STEER_TABLE)
                    .insert(TableEntry {
                        matcher: MatchValue::Exact(tid.to_be_bytes().to_vec()),
                        action: ActionSpec::Invoke { ext, arg: u32::from(tid) },
                    })
                    .map_err(|e| DeployError::Config(e.to_string()))?;
                log.push(Undo::Steer { slot: sw, tree_id: tid });
            }
        }
        Ok(())
    }

    /// Replays an admission undo log in reverse, restoring every touched
    /// switch to its pre-admission state.
    fn rollback(&mut self, log: Vec<Undo>) {
        for entry in log.into_iter().rev() {
            match entry {
                Undo::Steer { slot, tree_id } => {
                    let id = self.ids[slot];
                    let switch = self
                        .sim
                        .node_mut::<Switch>(id)
                        .expect("switch slots hold Switches");
                    switch
                        .pipeline_mut()
                        .table_mut(STEER_TABLE)
                        .remove_exact(&tree_id.to_be_bytes());
                }
                Undo::Engine { slot, tree_id } => {
                    let ext = self.engine_externs[&slot];
                    let id = self.ids[slot];
                    let switch = self
                        .sim
                        .node_mut::<Switch>(id)
                        .expect("switch slots hold Switches");
                    switch
                        .extern_mut::<DaietEngine>(ext)
                        .expect("tenant switches carry a DaietEngine")
                        .remove_tree(tree_id);
                }
                Undo::Sram { slot, name } => {
                    let id = self.ids[slot];
                    let switch = self
                        .sim
                        .node_mut::<Switch>(id)
                        .expect("switch slots hold Switches");
                    switch.pipeline_mut().tracker_mut().free(&name);
                }
            }
        }
    }

    fn alloc_tree_id(&mut self) -> Option<u16> {
        if self.next_tree_id <= u32::from(u16::MAX) {
            let tid = self.next_tree_id as u16;
            self.next_tree_id += 1;
            Some(tid)
        } else {
            self.recycled_tree_ids.pop_first()
        }
    }

    fn release_tree_ids(&mut self, tids: &[u16]) {
        self.recycled_tree_ids.extend(tids.iter().copied());
    }

    /// Tears down a departed job **without draining its neighbors**:
    /// removes exactly its steering rules, engine trees, and
    /// `daiet.tree[..]`/`daiet.rtx[..]` SRAM reservations from every
    /// switch it crossed, resets and returns its leased host slots to
    /// the pools, quarantines its tree ids, and returns per-job
    /// accounting ([`StatsSnapshot`] delta over its lifetime, restricted
    /// to its leased hosts).
    ///
    /// Teardown is a per-**job** barrier operation: the departing job
    /// must have no open round (its own in-flight frames would otherwise
    /// become strays), while every other job may be mid-round with
    /// recovery in flight.
    pub fn depart(&mut self, job: JobId) -> Result<JobUsage, String> {
        let st = self
            .jobs
            .remove(&job.0)
            .ok_or_else(|| format!("{job} is not admitted"))?;
        if st.round_open {
            let err = format!("{job} has an open round; collect it before departing");
            self.jobs.insert(job.0, st);
            return Err(err);
        }
        let leased: Vec<NodeId> = st
            .sender_slots
            .iter()
            .chain(&st.reducer_slots)
            .map(|&slot| self.ids[slot])
            .collect();
        let usage = self.sim.snapshot().delta(&st.snap_at_admit).nodes_total(&leased);

        for tree in &st.trees {
            let tid = tree.tree_id;
            for (&sw, &children) in &tree.switch_children {
                let ext = self.engine_externs[&sw];
                let id = self.ids[sw];
                let switch = self
                    .sim
                    .node_mut::<Switch>(id)
                    .expect("switch slots hold Switches");
                switch
                    .pipeline_mut()
                    .table_mut(STEER_TABLE)
                    .remove_exact(&tid.to_be_bytes());
                switch
                    .extern_mut::<DaietEngine>(ext)
                    .expect("tenant switches carry a DaietEngine")
                    .remove_tree(tid);
                let tracker = switch.pipeline_mut().tracker_mut();
                tracker.free(&format!("daiet.tree[{tid}]@{sw}"));
                tracker.free(&format!("daiet.rtx[{tid}]@{sw}"));
                if let Some(d) = self.flow_demand.get_mut(&sw) {
                    *d -= u64::from(children);
                }
            }
        }
        self.return_hosts(&st);
        self.release_tree_ids(&st.trees.iter().map(|t| t.tree_id).collect::<Vec<_>>());
        Ok(JobUsage {
            rounds: st.round,
            admitted_at: st.admitted_at,
            departed_at: self.sim.now(),
            usage,
        })
    }

    /// The **deliberately wrong** teardown this module's regression
    /// tests pin against: instead of removing only the departing job's
    /// steering rules, it clears the whole steering table of every
    /// switch the job crossed (the wipe-and-rebuild idiom single-tenant
    /// re-planning uses — [`Controller::replan_switch`] may clear tables
    /// because it *re-installs* the survivors; a teardown that clears
    /// without re-installing silently disconnects neighbor jobs'
    /// traffic from their aggregation trees). Host/SRAM/engine
    /// bookkeeping for the departing job itself matches
    /// [`depart`](Self::depart).
    ///
    /// [`Controller::replan_switch`]: crate::controller::Controller::replan_switch
    pub fn naive_depart(&mut self, job: JobId) -> Result<JobUsage, String> {
        let crossed: Vec<usize> = {
            let st = self
                .jobs
                .get(&job.0)
                .ok_or_else(|| format!("{job} is not admitted"))?;
            st.trees
                .iter()
                .flat_map(|t| t.switch_children.keys().copied())
                .collect()
        };
        for sw in crossed {
            let id = self.ids[sw];
            let switch = self
                .sim
                .node_mut::<Switch>(id)
                .expect("switch slots hold Switches");
            switch.pipeline_mut().table_mut(STEER_TABLE).clear();
        }
        self.depart(job)
    }

    /// Returns a departed job's host slots to the pools, reset so the
    /// next lease starts from a clean epoch.
    fn return_hosts(&mut self, st: &JobState) {
        for &slot in &st.sender_slots {
            let id = self.ids[slot];
            self.sim
                .node_mut::<PacedSenderNode>(id)
                .expect("sender pool slots hold PacedSenderNodes")
                .reset_epoch();
        }
        for &slot in &st.reducer_slots {
            let id = self.ids[slot];
            let reducer = self
                .sim
                .node_mut::<ReducerHost>(id)
                .expect("reducer pool slots hold ReducerHosts");
            let _ = reducer.take_round();
            reducer.collector.set_expected_ends(0);
        }
        self.free_senders.extend(&st.sender_slots);
        self.free_senders.sort_unstable();
        self.free_reducers.extend(&st.reducer_slots);
        self.free_reducers.sort_unstable();
    }

    /// Opens a round for `job`: `shards[i][t]` is what the job's
    /// sender `i` owes its tree `t` this round (an empty shard still
    /// ships its END — every rostered flow closes every round). Frames
    /// are enqueued and pacing timers armed; the caller advances
    /// simulated time ([`step`](Self::step)) and polls
    /// [`round_done`](Self::round_done) — there is **no global
    /// barrier**, other jobs stream concurrently.
    pub fn begin_round(&mut self, job: JobId, shards: &[Vec<Vec<Pair>>]) -> Result<(), String> {
        let config = self.spec.config;
        let pacing = self.spec.pacing;
        let st = self
            .jobs
            .get_mut(&job.0)
            .ok_or_else(|| format!("{job} is not admitted"))?;
        if st.round_open {
            return Err(format!("{job} already has round {} open", st.round));
        }
        if shards.len() != st.sender_slots.len() {
            return Err(format!(
                "{job}: {} shard lists for {} senders",
                shards.len(),
                st.sender_slots.len()
            ));
        }
        for (i, sender_shards) in shards.iter().enumerate() {
            if sender_shards.len() != st.trees.len() {
                return Err(format!(
                    "{job}: sender {i} has {} shards for {} trees",
                    sender_shards.len(),
                    st.trees.len()
                ));
            }
            let slot = st.sender_slots[i];
            let id = self.ids[slot];
            let pool = self.sim.pool_for(id).clone();
            let parts: Vec<(u16, Endpoints, &[Pair])> = sender_shards
                .iter()
                .enumerate()
                .map(|(t, pairs)| {
                    let tree = &st.trees[t];
                    (
                        tree.tree_id,
                        Endpoints::from_ids(slot as u32, tree.reducer as u32),
                        pairs.as_slice(),
                    )
                })
                .collect();
            // Rotate the interleave offset with the round so no tree is
            // permanently first in this sender's transmit order.
            let offset = i.wrapping_add(st.round as usize);
            let (transmit, replay_parts) =
                plan_round(&config, &parts, &mut st.next_seq[i], offset, 1, &pool);
            let node = self
                .sim
                .node_mut::<PacedSenderNode>(id)
                .expect("sender pool slots hold PacedSenderNodes");
            node.enqueue_round(transmit, replay_parts);
            let at = self.sim.now() + pacing;
            self.sim.schedule_timer(at, id, 0);
        }
        st.round_open = true;
        Ok(())
    }

    /// Whether `job`'s open round has completed exactly: every reducer
    /// saw its END count and (under NACK recovery) owes no gaps. An END
    /// **overshoot** — more ENDs than the job's trees can produce — is a
    /// hard error: it means foreign traffic leaked into the job's
    /// reducers (the failure mode a broken teardown causes).
    pub fn round_done(&self, job: JobId) -> Result<bool, String> {
        let st = self
            .jobs
            .get(&job.0)
            .ok_or_else(|| format!("{job} is not admitted"))?;
        if !st.round_open {
            return Err(format!("{job} has no open round"));
        }
        let mut done = true;
        for (t, &slot) in st.reducer_slots.iter().enumerate() {
            let node = self
                .sim
                .node_ref::<ReducerHost>(self.ids[slot])
                .expect("reducer pool slots hold ReducerHosts");
            let ends = node.collector.ends_seen();
            let expected = st.expected_ends[t];
            if ends > expected {
                return Err(format!(
                    "{job} round {}: reducer {t} saw {ends}/{expected} ENDs — foreign \
                     traffic leaked into the job (broken neighbor teardown?)",
                    st.round
                ));
            }
            done &= ends == expected && node.recovery_satisfied();
        }
        Ok(done)
    }

    /// Closes `job`'s open round: verifies exact completion (END counts
    /// and recovery), drains each reducer's aggregated result (sorted by
    /// key, tree order), and retires the senders' replay retention up to
    /// the round's sequence cutoffs.
    #[allow(clippy::type_complexity)]
    pub fn collect_round(&mut self, job: JobId) -> Result<Vec<Vec<(Key, u32)>>, String> {
        let st = self
            .jobs
            .get_mut(&job.0)
            .ok_or_else(|| format!("{job} is not admitted"))?;
        if !st.round_open {
            return Err(format!("{job} has no open round"));
        }
        let round = st.round;
        let mut per_tree = Vec::with_capacity(st.reducer_slots.len());
        for (t, &slot) in st.reducer_slots.iter().enumerate() {
            let expected = st.expected_ends[t];
            let node = self
                .sim
                .node_mut::<ReducerHost>(self.ids[slot])
                .expect("reducer pool slots hold ReducerHosts");
            let ends = node.collector.ends_seen();
            if ends != expected {
                return Err(format!(
                    "{job} round {round}: reducer {t} saw {ends}/{expected} ENDs \
                     (short: data lost beyond recovery; over: foreign traffic leaked in)"
                ));
            }
            if !node.recovery_satisfied() {
                return Err(format!(
                    "{job} round {round}: reducer {t} completed its ENDs but a flow \
                     still has gaps (NACK budget exhausted — the aggregate would be \
                     silently partial)"
                ));
            }
            per_tree.push(node.take_round());
        }
        for (i, &slot) in st.sender_slots.iter().enumerate() {
            let cutoffs: Vec<(u16, u32)> =
                st.next_seq[i].iter().map(|(&t, &s)| (t, s)).collect();
            self.sim
                .node_mut::<PacedSenderNode>(self.ids[slot])
                .expect("sender pool slots hold PacedSenderNodes")
                .retire_round(&cutoffs);
        }
        st.round += 1;
        st.round_open = false;
        Ok(per_tree)
    }

    /// Advances simulated time by `dt`, processing whatever events fall
    /// due — every admitted job's traffic progresses concurrently.
    pub fn step(&mut self, dt: Duration) -> Time {
        let deadline = self.sim.now() + dt;
        self.advance_to(deadline)
    }

    /// Advances simulated time to `t` even if the fabric is quiet
    /// (no-op if already past).
    pub fn advance_to(&mut self, t: Time) -> Time {
        if t.as_nanos() <= self.sim.now().as_nanos() {
            return self.sim.now();
        }
        // An out-of-range extern token is ignored by Switch::on_timer —
        // the timer exists only to carry the clock to the deadline.
        self.sim.schedule_timer(t, self.clock_anchor, u64::MAX);
        self.sim.run_until(t)
    }

    /// Current simulated time.
    pub fn now(&self) -> Time {
        self.sim.now()
    }

    /// The fabric specification.
    pub fn spec(&self) -> &TenantSpec {
        &self.spec
    }

    /// Number of currently admitted jobs.
    pub fn job_count(&self) -> usize {
        self.jobs.len()
    }

    /// A job's label, while admitted.
    pub fn job_label(&self, job: JobId) -> Option<&str> {
        self.jobs.get(&job.0).map(|st| st.label.as_str())
    }

    /// Rounds `job` has completed so far.
    pub fn job_rounds(&self, job: JobId) -> Option<u64> {
        self.jobs.get(&job.0).map(|st| st.round)
    }

    /// Unleased (sender, reducer) pool sizes.
    pub fn free_hosts(&self) -> (usize, usize) {
        (self.free_senders.len(), self.free_reducers.len())
    }

    /// Live dedup/gap flow demand at switch `slot`.
    pub fn flow_demand_at(&self, slot: usize) -> u64 {
        self.flow_demand.get(&slot).copied().unwrap_or(0)
    }

    /// The switch at plan `slot` (tables, SRAM tracker, engine — the
    /// regression tests compare tracker state across a failed admit).
    pub fn switch(&self, slot: usize) -> &Switch {
        self.sim
            .node_ref::<Switch>(self.ids[slot])
            .expect("switch slots hold Switches")
    }

    /// The aggregation engine of the switch at plan `slot`.
    pub fn engine(&self, slot: usize) -> &DaietEngine {
        let ext = self.engine_externs[&slot];
        self.switch(slot)
            .extern_ref::<DaietEngine>(ext)
            .expect("tenant switches carry a DaietEngine")
    }

    /// Node id of plan `slot`.
    pub fn node_id(&self, slot: usize) -> NodeId {
        self.ids[slot]
    }

    /// The underlying simulator (stats, link scripting).
    pub fn sim(&self) -> &Simulator {
        &self.sim
    }

    /// Mutable simulator access — e.g. to script link faults.
    pub fn sim_mut(&mut self) -> &mut Simulator {
        &mut self.sim
    }
}

/// Builds one tenant switch: empty steering table (stage 0, capacity
/// [`TenantSpec::steer_capacity`]), L2 routes toward every host (stage
/// 1), an empty [`DaietEngine`], and the fabric-lifetime reliability
/// SRAM (`daiet.nack@sw` under NACK recovery, `daiet.dedup@sw` under
/// plain reliability) reserved once at bring-up — tenant churn never
/// reallocates shared state.
fn build_tenant_switch(
    spec: &TenantSpec,
    sw_slot: usize,
    hosts: &[usize],
) -> Result<(Switch, ExternId), DeployError> {
    let mut pipeline = Pipeline::new(spec.resources);
    let steer_handle = pipeline.add_table(
        0,
        Table::new(
            format!("daiet_steer[{sw_slot}]"),
            TableKind::Exact,
            KeySpec(vec![Field::DaietTreeId]),
            spec.steer_capacity.max(1),
            ActionSpec::NoOp,
        ),
    )?;
    debug_assert_eq!(steer_handle, STEER_TABLE);
    let l2_handle = pipeline.add_table(
        1,
        Table::new(
            format!("l2[{sw_slot}]"),
            TableKind::Exact,
            KeySpec(vec![Field::EthDst]),
            hosts.len().max(1),
            ActionSpec::Drop,
        ),
    )?;
    debug_assert_eq!(l2_handle, L2_TABLE);

    let mut switch = Switch::new(format!("switch[{sw_slot}]"), pipeline);
    if spec.config.nack_recovery {
        let nack_sram = spec.config.sram_for_nack_tracker();
        if nack_sram > 0 {
            switch.pipeline_mut().tracker_mut().allocate_first_fit(
                &format!("daiet.nack@{sw_slot}"),
                2,
                nack_sram,
            )?;
        }
    } else if spec.config.reliability {
        let dedup_sram = spec.config.sram_for_dedup();
        if dedup_sram > 0 {
            switch.pipeline_mut().tracker_mut().allocate_first_fit(
                &format!("daiet.dedup@{sw_slot}"),
                2,
                dedup_sram,
            )?;
        }
    }
    let ext = switch.register_extern(Box::new(DaietEngine::new(spec.config)));

    for &h in hosts {
        let next = spec.plan.next_hops_toward(h);
        if let Some(hop) = next[sw_slot] {
            switch
                .pipeline_mut()
                .table_mut(l2_handle)
                .insert(TableEntry {
                    matcher: MatchValue::Exact(
                        daiet_wire::EthernetAddress::from_id(h as u32).0.to_vec(),
                    ),
                    action: ActionSpec::Forward(hop.port),
                })
                .map_err(|e| DeployError::Config(e.to_string()))?;
        }
    }
    Ok((switch, ext))
}

/// A tenant job the mix driver can run end to end: shape (senders,
/// per-tree aggregation functions, round count), per-round input
/// shards, result absorption, and a final digest/verification.
///
/// The workload crates implement this for WordCount, GROUP BY and
/// iterative SGD; the trait lives here so the scheduler stays
/// workload-agnostic.
pub trait TenantWorkload {
    /// Accounting label (also the job label the scheduler records).
    fn label(&self) -> String;
    /// Sender slots the job leases.
    fn senders(&self) -> usize;
    /// One aggregation tree per entry, aggregating with that function.
    fn aggs(&self) -> Vec<AggFn>;
    /// Rounds the job runs before departing.
    fn rounds(&self) -> u64;
    /// Input for `round`: `shards[i][t]` is sender `i`'s pairs for tree
    /// `t`. Must be deterministic in `round` (solo and mixed runs must
    /// feed identical inputs).
    fn shards(&mut self, round: u64) -> Vec<Vec<Vec<Pair>>>;
    /// Absorbs `round`'s aggregated result (`per_tree[t]` sorted by
    /// key).
    fn absorb(&mut self, round: u64, per_tree: Vec<Vec<(Key, u32)>>);
    /// Order-independent digest of everything absorbed — the value the
    /// property tests compare bit-for-bit between solo and mixed runs.
    fn digest(&self) -> u64;
    /// Workload-level correctness check after the last round (e.g.
    /// against a host-side reference computation).
    fn verify(&self) -> Result<(), String>;
}

/// Knobs of the [`run_mix`] driver loop.
#[derive(Debug, Clone)]
pub struct MixOptions {
    /// Simulated time advanced per poll while any job is running.
    pub poll: Duration,
    /// Back-off before retrying a rejected admission.
    pub retry: Duration,
    /// Hard cap on simulated time for the whole mix.
    pub deadline: Duration,
}

impl Default for MixOptions {
    fn default() -> Self {
        MixOptions {
            poll: Duration::from_micros(25),
            retry: Duration::from_micros(200),
            deadline: Duration::from_secs(2),
        }
    }
}

/// What one job did over a [`run_mix`] run.
#[derive(Debug, Clone)]
pub struct JobOutcome {
    /// The workload's label.
    pub label: String,
    /// When the job first asked for admission (its Poisson arrival).
    pub requested_at: Time,
    /// When admission succeeded.
    pub admitted_at: Time,
    /// When the job departed after its last round.
    pub finished_at: Time,
    /// Rounds completed.
    pub rounds: u64,
    /// Admission attempts refused before the job got in.
    pub rejections: u32,
    /// The workload's digest after its last round.
    pub digest: u64,
    /// Result pairs delivered to the job's reducers across all rounds.
    pub result_pairs: u64,
    /// The job's traffic (its leased hosts' counters over its
    /// admitted lifetime).
    pub usage: NodeStats,
}

/// What a whole [`run_mix`] run produced.
#[derive(Debug)]
pub struct MixOutcome {
    /// Per-job outcomes, in arrival order.
    pub jobs: Vec<JobOutcome>,
    /// Simulated time from first arrival to last departure.
    pub makespan: Duration,
    /// Result pairs delivered across all jobs.
    pub result_pairs: u64,
    /// Fabric-wide counter growth over the run.
    pub net: StatsSnapshot,
}

struct PendingJob {
    due: Time,
    idx: usize,
    wl: Box<dyn TenantWorkload>,
    requested_at: Time,
    rejections: u32,
}

struct RunningJob {
    idx: usize,
    job: JobId,
    wl: Box<dyn TenantWorkload>,
    requested_at: Time,
    admitted_at: Time,
    rejections: u32,
    round: u64,
    open: bool,
    result_pairs: u64,
}

/// Drives a deterministic tenant mix over `sched`: each `(offset,
/// workload)` arrival is admitted at its offset from now (retried with
/// [`MixOptions::retry`] back-off on rejection), run for its round
/// count with all admitted jobs streaming **concurrently**, verified,
/// and departed. Returns per-job outcomes in arrival order.
///
/// A rejection while *no* job is running is a hard error (the job could
/// never be admitted); so is exceeding [`MixOptions::deadline`] in
/// simulated time.
pub fn run_mix(
    sched: &mut JobScheduler,
    arrivals: Vec<(Duration, Box<dyn TenantWorkload>)>,
    opts: &MixOptions,
) -> Result<MixOutcome, String> {
    let base = sched.now();
    let snap_start = sched.sim().snapshot();
    let hard_deadline = base + opts.deadline;
    let n = arrivals.len();
    let mut outcomes: Vec<Option<JobOutcome>> = (0..n).map(|_| None).collect();

    let mut pending: Vec<PendingJob> = arrivals
        .into_iter()
        .enumerate()
        .map(|(idx, (offset, wl))| PendingJob {
            due: base + offset,
            idx,
            wl,
            requested_at: base + offset,
            rejections: 0,
        })
        .collect();
    pending.sort_by_key(|p| (p.due.as_nanos(), p.idx));
    let mut running: Vec<RunningJob> = Vec::new();

    while !pending.is_empty() || !running.is_empty() {
        if sched.now().as_nanos() > hard_deadline.as_nanos() {
            return Err(format!(
                "mix exceeded its deadline with {} jobs pending, {} running",
                pending.len(),
                running.len()
            ));
        }

        // Admit every arrival that has come due.
        while pending.first().is_some_and(|p| p.due.as_nanos() <= sched.now().as_nanos()) {
            let mut p = pending.remove(0);
            let req = JobRequest {
                label: p.wl.label(),
                senders: p.wl.senders(),
                aggs: p.wl.aggs(),
            };
            match sched.admit(req) {
                Ok(job) => running.push(RunningJob {
                    idx: p.idx,
                    job,
                    wl: p.wl,
                    requested_at: p.requested_at,
                    admitted_at: sched.now(),
                    rejections: p.rejections,
                    round: 0,
                    open: false,
                    result_pairs: 0,
                }),
                Err(e) => {
                    if running.is_empty() {
                        return Err(format!(
                            "arrival {} ({}) can never be admitted: {e}",
                            p.idx,
                            p.wl.label()
                        ));
                    }
                    p.rejections += 1;
                    p.due = sched.now() + opts.retry;
                    let at = pending
                        .iter()
                        .position(|q| (q.due.as_nanos(), q.idx) > (p.due.as_nanos(), p.idx))
                        .unwrap_or(pending.len());
                    pending.insert(at, p);
                }
            }
        }

        // Drive every running job: open its next round, or close a
        // completed one (departing after the last).
        let mut i = 0;
        while i < running.len() {
            let finished = {
                let r = &mut running[i];
                if !r.open {
                    let shards = r.wl.shards(r.round);
                    sched.begin_round(r.job, &shards)?;
                    r.open = true;
                    false
                } else if !sched.round_done(r.job)? {
                    false
                } else {
                    let per_tree = sched.collect_round(r.job)?;
                    r.result_pairs += per_tree.iter().map(|v| v.len() as u64).sum::<u64>();
                    r.wl.absorb(r.round, per_tree);
                    r.open = false;
                    r.round += 1;
                    r.round == r.wl.rounds()
                }
            };
            if finished {
                let r = running.remove(i);
                r.wl.verify()
                    .map_err(|e| format!("{} failed verification: {e}", r.wl.label()))?;
                let usage = sched.depart(r.job)?;
                outcomes[r.idx] = Some(JobOutcome {
                    label: r.wl.label(),
                    requested_at: r.requested_at,
                    admitted_at: r.admitted_at,
                    finished_at: usage.departed_at,
                    rounds: usage.rounds,
                    rejections: r.rejections,
                    digest: r.wl.digest(),
                    result_pairs: r.result_pairs,
                    usage: usage.usage,
                });
            } else {
                i += 1;
            }
        }

        // Advance simulated time: to the next arrival when idle, by one
        // poll quantum otherwise.
        if running.is_empty() {
            match pending.first() {
                Some(p) => {
                    let due = p.due;
                    sched.advance_to(due);
                }
                None => break,
            }
        } else {
            sched.step(opts.poll);
        }
    }

    let jobs: Vec<JobOutcome> = outcomes
        .into_iter()
        .map(|o| o.expect("every arrival either finished or errored out"))
        .collect();
    let result_pairs = jobs.iter().map(|j| j.result_pairs).sum();
    Ok(MixOutcome {
        jobs,
        makespan: sched.now().duration_since(base),
        result_pairs,
        net: sched.sim().snapshot().delta(&snap_start),
    })
}

/// Runs one workload alone on `sched` — the solo baseline the
/// isolation property tests and the `fig_multitenant` slowdown figures
/// compare against.
pub fn run_solo(
    sched: &mut JobScheduler,
    wl: Box<dyn TenantWorkload>,
    opts: &MixOptions,
) -> Result<JobOutcome, String> {
    let mut out = run_mix(sched, vec![(Duration::ZERO, wl)], opts)?;
    Ok(out.jobs.remove(0))
}

/// Deterministic Poisson arrival offsets: `n` cumulative
/// exponentially-distributed gaps with mean `mean_gap`, derived from
/// `seed` with the same splitmix64-flavoured mixing the simulator's
/// per-stream RNGs use — reseeding a mix reproduces it exactly, and
/// distinct seeds give independent arrival processes.
pub fn poisson_offsets(seed: u64, mean_gap: Duration, n: usize) -> Vec<Duration> {
    fn mix(base: u64, word: u64) -> u64 {
        let mut h = base ^ 0x9E37_79B9_7F4A_7C15;
        h ^= word
            .wrapping_add(0xBF58_476D_1CE4_E5B9)
            .wrapping_mul(0x94D0_49BB_1331_11EB);
        h = (h ^ (h >> 27)).wrapping_mul(0x2545_F491_4F6C_DD1D);
        h ^= h >> 31;
        h
    }
    let mut offsets = Vec::with_capacity(n);
    let mut t: u64 = 0;
    for k in 0..n {
        let x = mix(seed, k as u64);
        // 53 uniform bits → u ∈ [0, 1); inverse-CDF of the exponential.
        let u = (x >> 11) as f64 / (1u64 << 53) as f64;
        let gap = -(1.0 - u).ln() * mean_gap.as_nanos() as f64;
        t = t.saturating_add(gap as u64);
        offsets.push(Duration::from_nanos(t));
    }
    offsets
}

/// Folds one round's per-tree results into a running FNV-1a digest —
/// the shared digest primitive behind every [`TenantWorkload`]'s
/// [`digest`](TenantWorkload::digest), so "bit-identical to the solo
/// run" means the same thing for every workload. Start from
/// [`DIGEST_SEED`] and fold each round's output in round order.
pub fn fold_round_digest(acc: u64, per_tree: &[Vec<(Key, u32)>]) -> u64 {
    const PRIME: u64 = 0x0000_0100_0000_01B3;
    let mut h = acc;
    for (t, pairs) in per_tree.iter().enumerate() {
        h = (h ^ t as u64).wrapping_mul(PRIME);
        for (k, v) in pairs {
            for &b in &k.0 {
                h = (h ^ u64::from(b)).wrapping_mul(PRIME);
            }
            h = (h ^ u64::from(*v)).wrapping_mul(PRIME);
        }
    }
    h
}

/// FNV-1a offset basis: the initial accumulator for
/// [`fold_round_digest`].
pub const DIGEST_SEED: u64 = 0xCBF2_9CE4_8422_2325;

#[cfg(test)]
mod tests {
    use super::*;
    use daiet_netsim::LinkSpec;

    fn key(s: &str) -> Key {
        Key::from_str_key(s).unwrap()
    }

    fn star_sched(config: DaietConfig) -> JobScheduler {
        // star(8): hosts 0-7, switch 8.
        let plan = TopologyPlan::star(8, LinkSpec::fast());
        let spec = TenantSpec::new(config, plan, vec![0, 1, 2, 3], vec![4, 5, 6, 7]);
        JobScheduler::build(spec).unwrap()
    }

    fn drive(sched: &mut JobScheduler, jobs: &[JobId]) {
        for _ in 0..10_000 {
            if jobs.iter().all(|&j| sched.round_done(j).unwrap()) {
                return;
            }
            sched.step(Duration::from_micros(25));
        }
        panic!("jobs did not complete in simulated time");
    }

    #[test]
    fn two_jobs_share_the_fabric_and_depart_independently() {
        let mut sched = star_sched(DaietConfig::default());
        let a = sched
            .admit(JobRequest { label: "a".into(), senders: 2, aggs: vec![AggFn::Sum] })
            .unwrap();
        let b = sched
            .admit(JobRequest { label: "b".into(), senders: 2, aggs: vec![AggFn::Max] })
            .unwrap();
        assert_eq!(sched.job_count(), 2);
        assert_eq!(sched.free_hosts(), (0, 2));
        // Both trees live side by side on the shared switch.
        assert_eq!(sched.engine(8).tree_count(), 2);

        // One concurrent round each: A sums, B maxes, same key space.
        let a_shards: Vec<Vec<Vec<Pair>>> =
            (0..2).map(|i| vec![vec![Pair::new(key("w"), 1 + i)]]).collect();
        let b_shards: Vec<Vec<Vec<Pair>>> =
            (0..2).map(|i| vec![vec![Pair::new(key("w"), 10 * (1 + i))]]).collect();
        sched.begin_round(a, &a_shards).unwrap();
        sched.begin_round(b, &b_shards).unwrap();
        drive(&mut sched, &[a, b]);
        assert_eq!(sched.collect_round(a).unwrap(), vec![vec![(key("w"), 3)]]);
        assert_eq!(sched.collect_round(b).unwrap(), vec![vec![(key("w"), 20)]]);

        // A departs; B keeps running rounds, exactly.
        let usage = sched.depart(a).unwrap();
        assert_eq!(usage.rounds, 1);
        assert!(usage.usage.frames_out > 0, "A's senders sent frames");
        assert_eq!(sched.engine(8).tree_count(), 1);
        assert_eq!(sched.free_hosts(), (2, 3));
        sched.begin_round(b, &b_shards).unwrap();
        drive(&mut sched, &[b]);
        assert_eq!(sched.collect_round(b).unwrap(), vec![vec![(key("w"), 20)]]);
        sched.depart(b).unwrap();
        assert_eq!(sched.job_count(), 0);
        assert_eq!(sched.free_hosts(), (4, 4));
        assert_eq!(sched.flow_demand_at(8), 0);
    }

    /// A rejected admission (here: steering-table capacity, which fails
    /// *after* the tree's SRAM and engine state were installed) rolls
    /// everything back: the tracker and engine are bit-identical to
    /// their pre-admission state, and a departure later makes the same
    /// request admissible.
    #[test]
    fn failed_admission_leaves_zero_partial_state() {
        let plan = TopologyPlan::star(8, LinkSpec::fast());
        let mut spec =
            TenantSpec::new(DaietConfig::default(), plan, vec![0, 1, 2, 3], vec![4, 5, 6, 7]);
        spec.steer_capacity = 1;
        let mut sched = JobScheduler::build(spec).unwrap();
        let a = sched
            .admit(JobRequest { label: "a".into(), senders: 2, aggs: vec![AggFn::Sum] })
            .unwrap();

        let allocs_before = sched.switch(8).pipeline().tracker().allocations().to_vec();
        let used_before = sched.switch(8).pipeline().tracker().total_used();
        let req = JobRequest { label: "b".into(), senders: 2, aggs: vec![AggFn::Sum] };
        let err = sched.admit(req.clone()).unwrap_err();
        assert!(matches!(err, DeployError::Config(_)), "steer table full: {err}");
        assert_eq!(
            sched.switch(8).pipeline().tracker().allocations(),
            allocs_before.as_slice()
        );
        assert_eq!(sched.switch(8).pipeline().tracker().total_used(), used_before);
        assert_eq!(sched.engine(8).tree_count(), 1);
        assert_eq!(sched.free_hosts(), (2, 3), "no slots leaked");

        sched.depart(a).unwrap();
        sched.admit(req).unwrap();
    }

    #[test]
    fn poisson_offsets_are_deterministic_and_monotone() {
        let a = poisson_offsets(23, Duration::from_micros(50), 16);
        let b = poisson_offsets(23, Duration::from_micros(50), 16);
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0].as_nanos() <= w[1].as_nanos()));
        let c = poisson_offsets(24, Duration::from_micros(50), 16);
        assert_ne!(a, c, "distinct seeds give distinct processes");
        // Mean gap within a loose factor of the requested mean.
        let mean = a.last().unwrap().as_nanos() as f64 / 16.0;
        assert!((10_000.0..250_000.0).contains(&mean), "mean gap {mean} ns");
    }

    struct ToyJob {
        rounds_done: u64,
        digest: u64,
    }

    impl TenantWorkload for ToyJob {
        fn label(&self) -> String {
            "toy".into()
        }
        fn senders(&self) -> usize {
            2
        }
        fn aggs(&self) -> Vec<AggFn> {
            vec![AggFn::Sum]
        }
        fn rounds(&self) -> u64 {
            3
        }
        fn shards(&mut self, round: u64) -> Vec<Vec<Vec<Pair>>> {
            (0..2)
                .map(|i| vec![vec![Pair::new(key("k"), (round as u32 + 1) * (i + 1))]])
                .collect()
        }
        fn absorb(&mut self, round: u64, per_tree: Vec<Vec<(Key, u32)>>) {
            assert_eq!(per_tree, vec![vec![(key("k"), 3 * (round as u32 + 1))]]);
            self.rounds_done += 1;
            self.digest = fold_round_digest(self.digest, &per_tree);
        }
        fn digest(&self) -> u64 {
            self.digest
        }
        fn verify(&self) -> Result<(), String> {
            if self.rounds_done == 3 {
                Ok(())
            } else {
                Err(format!("absorbed {} rounds of 3", self.rounds_done))
            }
        }
    }

    #[test]
    fn run_mix_drives_workloads_to_completion() {
        let mut sched = star_sched(DaietConfig::default());
        let arrivals: Vec<(Duration, Box<dyn TenantWorkload>)> = vec![
            (Duration::ZERO, Box::new(ToyJob { rounds_done: 0, digest: DIGEST_SEED })),
            (
                Duration::from_micros(30),
                Box::new(ToyJob { rounds_done: 0, digest: DIGEST_SEED }),
            ),
        ];
        let out = run_mix(&mut sched, arrivals, &MixOptions::default()).unwrap();
        assert_eq!(out.jobs.len(), 2);
        assert_eq!(out.jobs[0].rounds, 3);
        assert_eq!(out.jobs[1].rounds, 3);
        assert_eq!(out.jobs[0].digest, out.jobs[1].digest, "same inputs, same digest");
        assert_eq!(out.result_pairs, 6);
        assert!(out.makespan.as_nanos() > 0);
        assert_eq!(sched.job_count(), 0);

        // The solo digest matches too: concurrency did not perturb it.
        let mut solo = star_sched(DaietConfig::default());
        let solo_out = run_solo(
            &mut solo,
            Box::new(ToyJob { rounds_done: 0, digest: DIGEST_SEED }),
            &MixOptions::default(),
        )
        .unwrap();
        assert_eq!(solo_out.digest, out.jobs[0].digest);
    }

    /// More arrivals than the host pools hold: later jobs are rejected,
    /// retried, and admitted once earlier ones depart.
    #[test]
    fn run_mix_queues_jobs_past_pool_capacity() {
        let mut sched = star_sched(DaietConfig::default());
        let arrivals: Vec<(Duration, Box<dyn TenantWorkload>)> = (0..4)
            .map(|k| {
                (
                    Duration::from_nanos(100 * k),
                    Box::new(ToyJob { rounds_done: 0, digest: DIGEST_SEED })
                        as Box<dyn TenantWorkload>,
                )
            })
            .collect();
        let out = run_mix(&mut sched, arrivals, &MixOptions::default()).unwrap();
        assert_eq!(out.jobs.len(), 4);
        assert!(
            out.jobs.iter().any(|j| j.rejections > 0),
            "a 4-sender pool cannot hold 4×2 senders at once"
        );
        let d0 = out.jobs[0].digest;
        assert!(out.jobs.iter().all(|j| j.digest == d0));
    }
}
