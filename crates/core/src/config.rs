//! System-wide DAIET configuration.

use daiet_wire::daiet::{ENTRY_LEN, KEY_LEN, MAX_ENTRIES, VALUE_LEN};

/// Tunables shared by the controller, switch engine and worker library.
///
/// Defaults mirror the paper's prototype (§5): 16 K key-value pairs of
/// switch state per tree ("We configure P4 registers to store 16K
/// key-value pairs"), 16-byte keys, 4-byte values and at most 10 pairs per
/// packet ("we consider that one DAIET packet can contain at most 10
/// key-value pairs" given the 200–300 B parse budget).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DaietConfig {
    /// Key-value pairs per DATA packet (bounded by the parse budget).
    pub pairs_per_packet: usize,
    /// Cells in each per-tree key/value register array.
    pub register_cells: usize,
    /// Spillover bucket capacity in pairs ("as many entries as the number
    /// of pairs that can fit in one packet", §4). `None` means "same as
    /// `pairs_per_packet`".
    pub spillover_pairs: Option<usize>,
    /// Enable the reliability extension (sequence numbers + NACKs). The
    /// paper's prototype runs without it ("we do not address the issue of
    /// packet losses, which we leave as future work").
    pub reliability: bool,
    /// Maximum `(tree, sender)` flows each switch's duplicate-suppression
    /// table may track when [`reliability`](Self::reliability) is on. The
    /// table is switch SRAM like any register array: the controller
    /// reserves its worst-case footprint ([`Self::sram_for_dedup`]) at
    /// deployment, and packets from flows beyond the cap are refused
    /// deterministically.
    pub dedup_flows: usize,
    /// Enable NACK-based recovery on top of
    /// [`reliability`](Self::reliability) (which must also be on — dedup
    /// is what makes replays idempotent): receivers track per-flow gaps
    /// and NACK after [`nack_timeout_ns`](Self::nack_timeout_ns), hosts
    /// replay from their schedules, switches from a bounded
    /// [`rtx_frames`](Self::rtx_frames)-deep retransmit ring. See
    /// `docs/RELIABILITY.md`.
    pub nack_recovery: bool,
    /// Per-tree retransmit ring depth on each switch, in frames. The
    /// controller validates at deployment that one full register flush
    /// (⌈cells / pairs-per-packet⌉ DATA frames + the END) fits, and
    /// reserves the ring's worst-case SRAM as `daiet.rtx@<switch>`.
    pub rtx_frames: usize,
    /// How long a receiver lets an incomplete flow sit idle before
    /// NACKing it, in nanoseconds (also the NACK timer period).
    pub nack_timeout_ns: u64,
    /// NACKs a receiver may send per flow without progress before giving
    /// up (bounds the event load when data is genuinely unrecoverable).
    pub nack_max: u32,
}

impl Default for DaietConfig {
    fn default() -> Self {
        DaietConfig {
            pairs_per_packet: MAX_ENTRIES,
            register_cells: 16 * 1024,
            spillover_pairs: None,
            reliability: false,
            // 1024 flows × 132 B ≈ 132 KiB: room for dozens of trees ×
            // dozens of senders within a tenth of one Tofino stage.
            dedup_flows: 1024,
            nack_recovery: false,
            // Covers a full default flush: ⌈16384/10⌉ + 1 = 1640 frames.
            rtx_frames: 2048,
            // ≫ the 2 µs default pacing gap, ≪ the 120 s run deadline.
            nack_timeout_ns: 50_000,
            nack_max: 32,
        }
    }
}

impl DaietConfig {
    /// Effective spillover capacity.
    pub fn spillover_capacity(&self) -> usize {
        self.spillover_pairs.unwrap_or(self.pairs_per_packet)
    }

    /// SRAM bytes one tree's state occupies on a switch:
    /// keys + values + occupancy bitmap + index stack + spillover bucket
    /// + the child counter.
    ///
    /// The `resources` bench binary uses this to reproduce the paper's
    /// "total SRAM required would be around 10 MB" estimate for 16 K pairs
    /// across 12 reducers.
    pub fn sram_per_tree(&self) -> usize {
        let keys = self.register_cells * KEY_LEN;
        let values = self.register_cells * VALUE_LEN;
        let occupancy = self.register_cells.div_ceil(8);
        // Index stack entries must address every cell: 4-byte indices.
        let index_stack = self.register_cells * 4;
        let spill = self.spillover_capacity() * ENTRY_LEN;
        let counter = 4;
        keys + values + occupancy + index_stack + spill + counter
    }

    /// SRAM bytes the switch duplicate-suppression table occupies at its
    /// flow cap (0 when the reliability extension is off — the table is
    /// not instantiated at all).
    pub fn sram_for_dedup(&self) -> usize {
        if self.reliability {
            crate::reliability::DedupWindow::sram_capacity_for(self.dedup_flows)
        } else {
            0
        }
    }

    /// SRAM bytes one tree's retransmit ring occupies at its frame cap
    /// (0 when NACK recovery is off): each slot holds one maximal DAIET
    /// frame (Ethernet through entries) plus its sequence tag.
    pub fn sram_for_rtx_per_tree(&self) -> usize {
        if self.nack_recovery {
            crate::reliability::RetransmitRing::sram_capacity_for(
                self.rtx_frames,
                self.max_frame_bytes(),
            )
        } else {
            0
        }
    }

    /// SRAM bytes the switch NACK gap-tracker occupies at the dedup flow
    /// cap (the two tables track the same `(tree, sender)` flow set).
    pub fn sram_for_nack_tracker(&self) -> usize {
        if self.nack_recovery {
            crate::reliability::NackTracker::sram_capacity_for(self.dedup_flows)
        } else {
            0
        }
    }

    /// Retransmit-ring frames one full register flush emits per tree:
    /// every cell packed into maximal DATA frames, plus the END. The
    /// deploy-time check requires [`rtx_frames`](Self::rtx_frames) to
    /// cover this — the flush burst is the largest *instantaneous*
    /// emission, so the END-of-round state is always recoverable.
    ///
    /// Mid-round **spillover** frames share the ring, so total-round
    /// retention is workload-dependent: a loss is recoverable while the
    /// ring still holds it, i.e. as long as fewer than `rtx_frames`
    /// further frames were emitted between the loss and the replay.
    /// Receivers NACK an open gap within ~one
    /// [`nack_timeout_ns`](Self::nack_timeout_ns) even mid-stream
    /// (prompt NACKs), so in practice the ring must cover one NACK
    /// round-trip of emissions, not the whole round; the ring's
    /// `misses` counter is the audit signal that a deployment violated
    /// this.
    pub fn rtx_demand_per_tree(&self) -> usize {
        self.register_cells.div_ceil(self.pairs_per_packet.max(1)) + 1
    }

    /// Right-sizes [`rtx_frames`](Self::rtx_frames) to this
    /// configuration's register size: the flush demand rounded up to a
    /// power of two (slack absorbs mid-round spillover flushes). Call
    /// after choosing `register_cells` so small deployments don't pay
    /// the default 2048-deep ring's SRAM.
    pub fn with_rtx_sized_for_flush(mut self) -> Self {
        self.rtx_frames = self.rtx_demand_per_tree().next_power_of_two();
        self
    }

    /// Byte length of a maximal DAIET frame on the wire (all headers).
    pub fn max_frame_bytes(&self) -> usize {
        daiet_wire::ethernet::HEADER_LEN
            + daiet_wire::ipv4::HEADER_LEN
            + daiet_wire::udp::HEADER_LEN
            + self.max_daiet_payload()
    }

    /// Byte length of a full DATA packet's DAIET payload.
    pub fn max_daiet_payload(&self) -> usize {
        daiet_wire::daiet::HEADER_LEN + self.pairs_per_packet * ENTRY_LEN
    }

    /// Validates internal consistency against a parse budget.
    pub fn validate(&self, max_parse_bytes: usize) -> Result<(), String> {
        if self.pairs_per_packet == 0 {
            return Err("pairs_per_packet must be positive".into());
        }
        if self.register_cells == 0 {
            return Err("register_cells must be positive".into());
        }
        let frame_prefix = daiet_wire::ethernet::HEADER_LEN
            + daiet_wire::ipv4::HEADER_LEN
            + daiet_wire::udp::HEADER_LEN
            + self.max_daiet_payload();
        if frame_prefix > max_parse_bytes {
            return Err(format!(
                "a full DATA packet needs {frame_prefix} parsed bytes but the \
                 switch parser is limited to {max_parse_bytes}; reduce pairs_per_packet"
            ));
        }
        if self.nack_recovery && !self.reliability {
            return Err(
                "nack_recovery requires reliability: dedup windows are what \
                 make NACK replays idempotent"
                    .into(),
            );
        }
        if self.nack_recovery && self.nack_timeout_ns == 0 {
            return Err("nack_timeout_ns must be positive".into());
        }
        if self.nack_recovery && self.nack_max == 0 {
            // A zero budget would leave incomplete flows permanently
            // "needy" (never NACKed, never given up): the recovery timer
            // re-arms forever and `Simulator::run` never terminates
            // after a single loss.
            return Err("nack_max must be positive".into());
        }
        // Note: `reliability` with `dedup_flows == 0` is not rejected
        // here — whether the dedup table is ever consulted depends on the
        // deployment mode, so the controller's deploy-time flow-demand
        // check (InNetwork only) owns that rejection.
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_paper() {
        let c = DaietConfig::default();
        assert_eq!(c.pairs_per_packet, 10);
        assert_eq!(c.register_cells, 16_384);
        assert_eq!(c.spillover_capacity(), 10);
        assert!(!c.reliability);
        assert_eq!(c.dedup_flows, 1024);
        // Off by default → no SRAM charged for the dedup table.
        assert_eq!(c.sram_for_dedup(), 0);
    }

    #[test]
    fn dedup_sram_is_charged_only_with_reliability_on() {
        let c = DaietConfig { reliability: true, ..Default::default() };
        let per_flow = crate::reliability::FlowWindow::sram_bytes();
        assert_eq!(c.sram_for_dedup(), 1024 * per_flow);
        let small = DaietConfig { reliability: true, dedup_flows: 3, ..Default::default() };
        assert_eq!(small.sram_for_dedup(), 3 * per_flow);
    }

    #[test]
    fn nack_recovery_requires_reliability_and_timeout() {
        let bare = DaietConfig { nack_recovery: true, ..Default::default() };
        assert!(bare.validate(256).unwrap_err().contains("reliability"));
        let ok = DaietConfig { nack_recovery: true, reliability: true, ..Default::default() };
        ok.validate(256).unwrap();
        let zero = DaietConfig { nack_timeout_ns: 0, ..ok };
        assert!(zero.validate(256).unwrap_err().contains("timeout"));
        // A zero NACK budget would never NACK and never give up: flows
        // stay needy forever and the run cannot terminate.
        let no_budget = DaietConfig { nack_max: 0, ..ok };
        assert!(no_budget.validate(256).unwrap_err().contains("nack_max"));
    }

    #[test]
    fn rtx_sram_and_demand_formulas() {
        let off = DaietConfig { reliability: true, ..Default::default() };
        assert_eq!(off.sram_for_rtx_per_tree(), 0);
        assert_eq!(off.sram_for_nack_tracker(), 0);
        let on = DaietConfig { reliability: true, nack_recovery: true, ..Default::default() };
        // 16384 cells / 10 per packet → 1639 DATA + 1 END.
        assert_eq!(on.rtx_demand_per_tree(), 1640);
        assert!(on.rtx_frames >= on.rtx_demand_per_tree());
        // A maximal frame is the paper's 252 bytes; each slot adds a tag.
        assert_eq!(on.max_frame_bytes(), 252);
        assert_eq!(on.sram_for_rtx_per_tree(), on.rtx_frames * 256);
        assert_eq!(
            on.sram_for_nack_tracker(),
            on.dedup_flows * crate::reliability::FlowRecv::sram_bytes()
        );
    }

    #[test]
    fn zero_dedup_flows_passes_validation() {
        // Mode-independent validation must not reject it: PassThrough
        // never consults the table, and the controller's InNetwork
        // flow-demand check rejects it exactly when it would matter.
        let c = DaietConfig { reliability: true, dedup_flows: 0, ..Default::default() };
        c.validate(256).unwrap();
    }

    #[test]
    fn default_fits_a_256_byte_parser() {
        DaietConfig::default().validate(256).unwrap();
    }

    #[test]
    fn too_many_pairs_fail_validation() {
        let c = DaietConfig { pairs_per_packet: 11, ..Default::default() };
        let err = c.validate(256).unwrap_err();
        assert!(err.contains("parse"));
        // A deeper parser accepts it.
        c.validate(512).unwrap();
    }

    #[test]
    fn zero_values_are_rejected() {
        assert!(DaietConfig { pairs_per_packet: 0, ..Default::default() }
            .validate(256)
            .is_err());
        assert!(DaietConfig { register_cells: 0, ..Default::default() }
            .validate(256)
            .is_err());
    }

    #[test]
    fn sram_estimate_is_near_the_papers_10mb_for_12_trees() {
        let c = DaietConfig::default();
        let twelve_trees = 12 * c.sram_per_tree();
        // Keys+values alone: 12 × 16K × 20 B ≈ 3.9 MB; with occupancy,
        // index stacks and buckets the estimate lands in the 4.5–10 MB
        // band the paper quotes loosely as "around 10 MB".
        assert!(twelve_trees > 4_000_000, "got {twelve_trees}");
        assert!(twelve_trees < 10_500_000, "got {twelve_trees}");
    }

    #[test]
    fn explicit_spillover_capacity_wins() {
        let c = DaietConfig { spillover_pairs: Some(25), ..Default::default() };
        assert_eq!(c.spillover_capacity(), 25);
    }
}
