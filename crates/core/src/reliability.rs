//! Loss and duplication handling — the paper's *future work*, provided as
//! an optional extension ("In the current prototype, we do not address the
//! issue of packet losses, which we leave as future work", §4).
//!
//! Two composable mechanisms, both off by default to mirror the prototype:
//!
//! 1. **Switch-side duplicate suppression** ([`DedupWindow`]): aggregation
//!    is *not idempotent* — replaying a DATA packet double-counts its
//!    pairs, and replaying an END corrupts the child counter. Every DAIET
//!    packet already carries a per-sender sequence number, so a per
//!    `(tree, sender)` sliding bitmap suppresses re-delivery. The window
//!    is sized in SRAM like any other switch state.
//! 2. **Sender-side redundancy** ([`RedundantSender`]): each frame is
//!    transmitted `k` times; duplicate suppression keeps aggregation
//!    exact, and data survives unless *all* `k` copies are lost
//!    (residual loss `p^k`, see [`residual_loss`]). This trades bandwidth
//!    for reliability without a reverse channel — an appropriate design
//!    point for a switch that cannot buffer for retransmission.
//!
//! A full NACK-based recovery protocol would additionally need reducer
//! feedback and mapper-side buffering; [`residual_loss`] quantifies how far
//! plain redundancy goes, and the integration tests exercise exactness
//! under duplication faults and under loss with redundancy.

use daiet_wire::fnv::FnvHashMap;
use daiet_wire::Ipv4Address;

/// Size of each per-sender sequence window, in packets. Power of two so
/// the bitmap math stays cheap.
pub const WINDOW: u32 = 1024;

/// A sliding-window duplicate detector for one `(tree, sender)` flow.
///
/// Accepts each sequence number at most once; sequence numbers more than
/// [`WINDOW`] behind the highest seen are treated as duplicates (stale
/// replays), which is safe because senders emit sequence numbers densely
/// in order, so a genuine packet can never be that old on first delivery
/// unless more than a full window was reordered in flight.
///
/// Sequence numbers live in a **wrapping** 32-bit space: long-lived
/// senders (iterative workloads emit one seq per frame per tree,
/// indefinitely) roll past `u32::MAX`, so "newer" is decided by RFC
/// 1982-style serial-number comparison — `seq` is ahead of `max` iff the
/// wrapping forward distance is in `(0, 2^31)` — never by raw `<`/`>`.
#[derive(Debug, Clone)]
pub struct FlowWindow {
    /// Most recent sequence number accepted so far in serial-number order
    /// (`None` until the first).
    max_seen: Option<u32>,
    bits: [u64; (WINDOW as usize) / 64],
}

impl Default for FlowWindow {
    fn default() -> Self {
        FlowWindow { max_seen: None, bits: [0; (WINDOW as usize) / 64] }
    }
}

impl FlowWindow {
    #[inline]
    fn slot(seq: u32) -> (usize, u64) {
        // WINDOW is a power of two dividing 2^32, so consecutive wrapping
        // sequence numbers keep mapping to consecutive slots across the
        // u32::MAX → 0 boundary.
        let bit = seq % WINDOW;
        ((bit / 64) as usize, 1u64 << (bit % 64))
    }

    /// Returns `true` exactly once per fresh sequence number.
    pub fn accept(&mut self, seq: u32) -> bool {
        match self.max_seen {
            None => {
                let (w, m) = Self::slot(seq);
                self.bits[w] |= m;
                self.max_seen = Some(seq);
                true
            }
            Some(max) => {
                // RFC 1982 serial comparison: `seq` is newer than `max`
                // iff the wrapping forward distance is in (0, 2^31). A
                // distance of exactly 2^31 is undefined by the RFC; we
                // refuse it as stale, the safe direction for a duplicate
                // filter.
                let ahead = seq.wrapping_sub(max);
                if ahead != 0 && ahead < 1 << 31 {
                    // Slide forward, clearing every slot the window passed.
                    let advance = ahead.min(WINDOW);
                    for step in 1..=advance {
                        let (w, m) = Self::slot(max.wrapping_add(step));
                        self.bits[w] &= !m;
                    }
                    let (w, m) = Self::slot(seq);
                    self.bits[w] |= m;
                    self.max_seen = Some(seq);
                    true
                } else if max.wrapping_sub(seq) >= WINDOW {
                    false // too old: treat as duplicate
                } else {
                    let (w, m) = Self::slot(seq);
                    if self.bits[w] & m != 0 {
                        false
                    } else {
                        self.bits[w] |= m;
                        true
                    }
                }
            }
        }
    }

    /// SRAM bytes one flow window occupies.
    pub const fn sram_bytes() -> usize {
        (WINDOW as usize) / 8 + 4
    }
}

/// Duplicate suppression across all flows of one switch.
///
/// On a switch the flow table is SRAM like any register array, so it is
/// **bounded**: construct with [`DedupWindow::with_capacity`], have the
/// controller reserve [`DedupWindow::sram_capacity_bytes`] through the
/// dataplane's `SramTracker`, and packets from flows beyond the cap are
/// deterministically refused (counted in
/// [`flows_rejected`](Self::flows_rejected)) rather than silently tracked
/// past the budget. Host-side use ([`DedupWindow::new`]) is unbounded —
/// reducers run on CPUs with DRAM.
#[derive(Debug)]
pub struct DedupWindow {
    flows: FnvHashMap<(u16, Ipv4Address), FlowWindow>,
    /// Maximum flows the table may track (`usize::MAX` when unbounded).
    max_flows: usize,
    /// Packets suppressed as duplicates.
    pub duplicates: u64,
    /// Packets refused because their flow would exceed the flow cap.
    pub flows_rejected: u64,
    /// Flow entries evicted by [`DedupWindow::clear_tree`] (tree
    /// teardown/reinstallation).
    pub flows_evicted: u64,
}

impl Default for DedupWindow {
    fn default() -> Self {
        DedupWindow {
            flows: FnvHashMap::default(),
            max_flows: usize::MAX,
            duplicates: 0,
            flows_rejected: 0,
            flows_evicted: 0,
        }
    }
}

impl DedupWindow {
    /// An empty, **unbounded** table (host-side use only).
    pub fn new() -> DedupWindow {
        DedupWindow::default()
    }

    /// An empty table tracking at most `max_flows` `(tree, sender)` flows
    /// — the switch-side form, whose worst-case SRAM footprint
    /// ([`sram_capacity_bytes`](Self::sram_capacity_bytes)) is reserved
    /// against the chip budget at deployment.
    pub fn with_capacity(max_flows: usize) -> DedupWindow {
        DedupWindow { max_flows, ..DedupWindow::default() }
    }

    /// The flow cap (`usize::MAX` when unbounded).
    pub fn max_flows(&self) -> usize {
        self.max_flows
    }

    /// Returns `true` when `(tree, sender, seq)` is fresh. A packet from a
    /// new flow while the table is at capacity is refused (`false`) and
    /// counted in [`flows_rejected`](Self::flows_rejected): suppressing it
    /// is the only answer that keeps aggregation exact, because an
    /// untracked flow could replay forever undetected.
    pub fn accept(&mut self, tree: u16, sender: Ipv4Address, seq: u32) -> bool {
        use std::collections::hash_map::Entry;
        let len = self.flows.len();
        let fresh = match self.flows.entry((tree, sender)) {
            Entry::Occupied(mut e) => e.get_mut().accept(seq),
            Entry::Vacant(e) => {
                if len >= self.max_flows {
                    self.flows_rejected += 1;
                    return false;
                }
                e.insert(FlowWindow::default()).accept(seq)
            }
        };
        if !fresh {
            self.duplicates += 1;
        }
        fresh
    }

    /// Number of tracked flows.
    pub fn flow_count(&self) -> usize {
        self.flows.len()
    }

    /// SRAM bytes the table currently occupies.
    pub fn sram_bytes(&self) -> usize {
        self.flows.len() * FlowWindow::sram_bytes()
    }

    /// Worst-case SRAM bytes a table capped at `max_flows` occupies —
    /// the **single definition** of the dedup footprint;
    /// `DaietConfig::sram_for_dedup` (what the controller reserves
    /// through the `SramTracker`) delegates here. Saturates for
    /// unbounded tables (which must never be deployed to a switch).
    pub fn sram_capacity_for(max_flows: usize) -> usize {
        max_flows.saturating_mul(FlowWindow::sram_bytes())
    }

    /// [`Self::sram_capacity_for`] at this table's own flow cap.
    pub fn sram_capacity_bytes(&self) -> usize {
        Self::sram_capacity_for(self.max_flows)
    }

    /// Evicts every flow belonging to `tree` (tree teardown or
    /// reinstallation), counting the evictions.
    pub fn clear_tree(&mut self, tree: u16) {
        let before = self.flows.len();
        self.flows.retain(|(t, _), _| *t != tree);
        self.flows_evicted += (before - self.flows.len()) as u64;
    }

    /// Drops all flow state (between jobs).
    pub fn clear(&mut self) {
        self.flows.clear();
    }
}

/// Expands a frame sequence into `k`-redundant transmission order:
/// `[a, b]` with `k = 2` becomes `[a, a, b, b]`. Duplicate suppression on
/// the aggregation path keeps semantics exact.
#[derive(Debug, Clone, Copy)]
pub struct RedundantSender {
    /// Copies of each frame to transmit (`k >= 1`).
    pub k: u32,
}

impl RedundantSender {
    /// A sender transmitting `k` copies of everything.
    pub fn new(k: u32) -> RedundantSender {
        assert!(k >= 1, "at least one copy must be sent");
        RedundantSender { k }
    }

    /// The transmission schedule for `frames`.
    pub fn schedule<T: Clone>(&self, frames: &[T]) -> Vec<T> {
        let mut out = Vec::with_capacity(frames.len() * self.k as usize);
        for f in frames {
            for _ in 0..self.k {
                out.push(f.clone());
            }
        }
        out
    }
}

/// Residual probability that a packet is lost entirely when each of `k`
/// independent copies is dropped with probability `p`.
pub fn residual_loss(p: f64, k: u32) -> f64 {
    p.powi(k as i32)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ip(n: u32) -> Ipv4Address {
        Ipv4Address::from_id(n)
    }

    #[test]
    fn first_delivery_accepts_duplicates_reject() {
        let mut w = FlowWindow::default();
        assert!(w.accept(0));
        assert!(!w.accept(0));
        assert!(w.accept(1));
        assert!(!w.accept(1));
        assert!(!w.accept(0));
    }

    #[test]
    fn out_of_order_within_window_is_fine() {
        let mut w = FlowWindow::default();
        assert!(w.accept(5));
        assert!(w.accept(3));
        assert!(w.accept(4));
        assert!(!w.accept(3));
        assert!(w.accept(6));
    }

    #[test]
    fn window_slides_and_reuses_slots() {
        let mut w = FlowWindow::default();
        assert!(w.accept(0));
        // Jump a full window ahead: slot 0 is recycled for seq WINDOW.
        assert!(w.accept(WINDOW));
        assert!(!w.accept(WINDOW));
        // seq 0 is now "too old" and must be refused even though its slot
        // bit was recycled.
        assert!(!w.accept(0));
        // Within the new window everything works.
        assert!(w.accept(WINDOW - 1));
    }

    #[test]
    fn big_jump_clears_stale_bits() {
        let mut w = FlowWindow::default();
        for s in 0..10 {
            assert!(w.accept(s));
        }
        assert!(w.accept(5 * WINDOW));
        // Slots of 0..10 were cleared by the slide; their old seqs are
        // outside the window and refused by the age check.
        assert!(!w.accept(9));
        // Fresh nearby seqs are accepted.
        assert!(w.accept(5 * WINDOW - 10));
    }

    /// Regression: raw `u32` comparison rejected every post-wrap sequence
    /// number forever (`0 > u32::MAX` is false and the "age" `u32::MAX - 0`
    /// dwarfs the window). Serial-number comparison must carry the flow
    /// straight across the boundary.
    #[test]
    fn sequence_space_wraps_cleanly() {
        let mut w = FlowWindow::default();
        assert!(w.accept(u32::MAX - 2));
        assert!(w.accept(u32::MAX - 1));
        assert!(w.accept(u32::MAX));
        // Post-wrap packets are fresh, not "stale duplicates".
        assert!(w.accept(0), "first post-wrap seq must be accepted");
        assert!(w.accept(1));
        assert!(w.accept(2));
        // ...and stay exactly-once.
        assert!(!w.accept(0));
        assert!(!w.accept(u32::MAX));
        // In-window reordering across the boundary still works.
        let mut w = FlowWindow::default();
        assert!(w.accept(2)); // sender wrapped before we saw anything else
        assert!(w.accept(u32::MAX), "3 behind, within the window");
        assert!(!w.accept(u32::MAX));
        assert!(w.accept(0));
        assert!(w.accept(1));
        assert!(!w.accept(0));
    }

    #[test]
    fn wrap_jump_clears_stale_bits_and_ages_out_old_seqs() {
        let mut w = FlowWindow::default();
        assert!(w.accept(u32::MAX - WINDOW / 2));
        // Jump across the boundary by several windows.
        assert!(w.accept(2 * WINDOW));
        // The pre-wrap seq is now more than a window behind: refused.
        assert!(!w.accept(u32::MAX - WINDOW / 2));
        // Slots recycled by the slide accept fresh nearby seqs.
        assert!(w.accept(2 * WINDOW - (WINDOW - 1)));
    }

    #[test]
    fn half_space_jump_is_refused_as_stale() {
        // Forward distance of exactly 2^31 is undefined under RFC 1982;
        // the filter must refuse rather than risk replays.
        let mut w = FlowWindow::default();
        assert!(w.accept(0));
        assert!(!w.accept(1 << 31));
        // Just under the half-space is still "newer".
        assert!(w.accept((1 << 31) - 1));
    }

    #[test]
    fn dedup_tracks_flows_independently() {
        let mut d = DedupWindow::new();
        assert!(d.accept(1, ip(1), 0));
        assert!(d.accept(1, ip(2), 0)); // other sender, same seq: fresh
        assert!(d.accept(2, ip(1), 0)); // other tree: fresh
        assert!(!d.accept(1, ip(1), 0));
        assert_eq!(d.duplicates, 1);
        assert_eq!(d.flow_count(), 3);
        assert_eq!(d.sram_bytes(), 3 * FlowWindow::sram_bytes());
        d.clear();
        assert_eq!(d.flow_count(), 0);
    }

    #[test]
    fn flow_cap_rejects_deterministically() {
        let mut d = DedupWindow::with_capacity(2);
        assert_eq!(d.max_flows(), 2);
        assert!(d.accept(1, ip(1), 0));
        assert!(d.accept(1, ip(2), 0));
        // Third flow: at capacity → refused, counted, not tracked.
        assert!(!d.accept(1, ip(3), 0));
        assert!(!d.accept(2, ip(1), 0));
        assert_eq!(d.flows_rejected, 2);
        assert_eq!(d.flow_count(), 2);
        // Rejections are not duplicates.
        assert_eq!(d.duplicates, 0);
        // Existing flows keep working at capacity.
        assert!(d.accept(1, ip(1), 1));
        assert!(!d.accept(1, ip(1), 1));
        assert_eq!(d.duplicates, 1);
        // The worst-case footprint is what the tracker must reserve.
        assert_eq!(d.sram_capacity_bytes(), 2 * FlowWindow::sram_bytes());
        assert!(d.sram_bytes() <= d.sram_capacity_bytes());
    }

    #[test]
    fn clear_tree_evicts_and_frees_capacity() {
        let mut d = DedupWindow::with_capacity(2);
        assert!(d.accept(1, ip(1), 0));
        assert!(d.accept(2, ip(1), 0));
        d.clear_tree(1);
        assert_eq!(d.flows_evicted, 1);
        assert_eq!(d.flow_count(), 1);
        // The freed slot is reusable.
        assert!(d.accept(3, ip(1), 0));
        // Eviction forgot tree 1's history: its seq 0 reads as fresh
        // again — callers only evict on tree teardown, where that is safe.
        d.clear_tree(3);
        assert_eq!(d.flows_evicted, 2);
    }

    #[test]
    fn redundant_schedule_interleaves_copies() {
        let s = RedundantSender::new(3);
        assert_eq!(s.schedule(&['a', 'b']), vec!['a', 'a', 'a', 'b', 'b', 'b']);
        let s1 = RedundantSender::new(1);
        assert_eq!(s1.schedule(&[1, 2, 3]), vec![1, 2, 3]);
    }

    #[test]
    fn residual_loss_math() {
        assert!((residual_loss(0.1, 3) - 0.001).abs() < 1e-12);
        assert_eq!(residual_loss(0.0, 4), 0.0);
        assert_eq!(residual_loss(1.0, 4), 1.0);
    }

    #[test]
    #[should_panic(expected = "at least one copy")]
    fn zero_copies_is_rejected() {
        RedundantSender::new(0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Whatever the delivery pattern (duplicates, bounded reordering),
        /// each sequence number is accepted at most once.
        #[test]
        fn at_most_once(seqs in prop::collection::vec(0u32..200, 1..400)) {
            let mut w = FlowWindow::default();
            let mut accepted = std::collections::HashSet::new();
            for s in seqs {
                if w.accept(s) {
                    prop_assert!(accepted.insert(s), "seq {} accepted twice", s);
                }
            }
        }

        /// In-order delivery without duplicates is always accepted in full.
        #[test]
        fn in_order_all_accepted(n in 1u32..2000) {
            let mut w = FlowWindow::default();
            for s in 0..n {
                prop_assert!(w.accept(s));
            }
        }

        /// In-order delivery is accepted in full from ANY starting offset,
        /// including streams that cross the u32 wrap boundary (regression
        /// for the raw-comparison bug).
        #[test]
        fn in_order_accepted_across_wrap(start: u32, n in 1u32..2000) {
            let mut w = FlowWindow::default();
            for i in 0..n {
                let s = start.wrapping_add(i);
                prop_assert!(w.accept(s), "seq {} (offset {}) refused", s, i);
                prop_assert!(!w.accept(s), "seq {} accepted twice", s);
            }
        }
    }
}
